"""Generate docs/API.md from package docstrings.

Walks the public surface (everything re-exported through each package's
``__all__``), collects signatures and docstring summaries, and writes a
single markdown reference.  Run from the repo root::

    python tools/gen_api_docs.py

The generated file is committed; CI-style checking is provided by
``tests/test_api_docs.py``, which regenerates and diffs it so the
reference can never drift from the code.
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

PACKAGES = [
    "repro",
    # errors must precede everything that re-exports its classes.
    "repro.errors",
    "repro.core",
    "repro.core.strategies",
    "repro.kmeans",
    "repro.bitpack",
    "repro.io",
    "repro.baselines",
    "repro.simulations",
    "repro.simulations.flash",
    "repro.simulations.cmip",
    "repro.parallel",
    "repro.restart",
    "repro.analysis",
    "repro.resilience",
    # analysis must precede telemetry: telemetry re-exports its names,
    # and the walk skips re-exports whose home was already documented.
    "repro.telemetry.analysis",
    "repro.telemetry",
    "repro.bench",
    "repro.service",
]


def _summary(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
    return first


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _describe(name: str, obj) -> list[str]:
    lines: list[str] = []
    if inspect.isclass(obj):
        lines.append(f"#### class `{name}{_signature(obj)}`")
        lines.append("")
        lines.append(_summary(obj))
        methods = []
        for mname, member in sorted(vars(obj).items()):
            if mname.startswith("_"):
                continue
            if callable(member) or isinstance(member, property):
                target = member.fget if isinstance(member, property) else member
                if target is None:
                    continue
                kind = "property " if isinstance(member, property) else ""
                sig = "" if isinstance(member, property) else _signature(member)
                methods.append(f"- {kind}`{mname}{sig}` — {_summary(target)}")
        if methods:
            lines.append("")
            lines.extend(methods)
    elif callable(obj):
        lines.append(f"#### `{name}{_signature(obj)}`")
        lines.append("")
        lines.append(_summary(obj))
    else:
        lines.append(f"#### `{name}`")
        lines.append("")
        lines.append(f"constant of type `{type(obj).__name__}`")
    lines.append("")
    return lines


DURABILITY_NOTES = """\
## Durability & crash consistency

The checkpoint store is crash-consistent by construction:

* **Atomic whole-file saves.** `save_chain` / `save_chains` /
  `save_streamed` write into a temporary file in the target directory,
  flush, `fsync`, then `os.replace` over the target and `fsync` the
  directory (`repro.io.durable.atomic_write`). A crash at any instant
  leaves either the complete old file or the complete new file.
  Transient `OSError`s are retried with bounded exponential backoff
  (`repro.io.durable.retry_io`).
* **Append-mode persistence.** `CheckpointFile.append(path)` validates
  the header, scans to the last CRC-valid record, truncates any torn
  tail, and appends new records with a per-record `fsync` — so
  `RestartManager.persist_incremental(path_fn)` makes each checkpoint
  cost O(1) appended records per variable instead of a full rewrite, and
  a crash can only damage the record being written.
* **Torn-write salvage.** `CheckpointFile.records(strict=False)` stops
  at a torn tail instead of raising; `load_chain(path, recover="tail")`
  and `load_chains(path, recover="tail")` return the longest valid
  prefix plus a `SalvageReport` (records kept/dropped, bytes truncated,
  reason). Corruption *before* the last record still raises
  `FormatError` — the delta chain beyond it cannot be trusted — and a
  file with no salvageable prefix raises `SalvageError`.
* **Fault injection.** `repro.restart.DiskFaultInjector` plugs into
  `CheckpointFile`'s write hook to tear a write mid-record, flip bits in
  flushed bytes, or raise transient `OSError`s; `run_with_faults`
  accepts it via `disk_faults=` and recovers such crashes through the
  salvage path.
* **Tooling.** `repro verify <file>` walks any checkpoint file and
  reports per-record CRC status (exit 1 on damage); `repro repair
  <file>` writes a backup, then truncates the file to its last valid
  record.
"""


OBSERVABILITY_NOTES = """\
## Observability

Every stage of the pipeline is instrumented through `repro.telemetry`:

* **Spans.** Hot paths open nested, attributed spans —
  `pipeline.compress` → `encode` → `encode.fit` →
  `strategy.clustering.fit` → `kmeans.lloyd`, plus `bitpack.pack`,
  `io.write_record`, `io.save_chain` / `io.load_chain`,
  `io.save_streamed` and `restart.persist_incremental` — each carrying
  wall/CPU time and byte counts (`bytes_in` / `bytes_out`).
* **Metrics.** Counters (`io.bytes_written`, `io.fsync`,
  `io.records_salvaged`, `bitpack.bytes_packed`,
  `kmeans.converged_runs`), and histograms (`kmeans.sweeps`,
  `encode.incompressible_fraction`).
* **Zero cost when off.** The ambient default is a shared no-op
  telemetry object; untraced runs stay within noise of uninstrumented
  code (enforced by `benchmarks/test_throughput.py`).
* **Enabling.** Scoped: `with telemetry.use(Telemetry()) as tel: ...;
  tel.export("trace.jsonl")`. Process-wide with no code changes:
  `NUMARCK_TRACE=trace.jsonl python your_script.py`.
* **Trace format.** Append-only JSONL (one span per line plus a final
  metrics snapshot), written with the same retry/torn-tail discipline
  as the checkpoint store; `read_trace` drops a torn final line.
* **Reporting.** `repro stats trace.jsonl` renders the paper-style
  stage-breakdown table (calls, wall/self/CPU ms, share, MB in/out)
  and a metrics table; the same tables are available programmatically
  via `repro.telemetry.stage_table` / `metrics_table`. Exact on-disk
  byte accounting (`delta_payload_nbytes` et al.) backs the size
  figures in `repro inspect`.
* **Trace analytics.** `repro.telemetry.analysis` reconstructs the
  span forest from any trace (`span_tree` — order-tolerant, crash
  orphans surface as roots), extracts the heaviest chain
  (`critical_path`), emits flamegraph-ready folded stacks
  (`folded_stacks`), and diffs two traces (`diff_traces` /
  `diff_table`, also `repro stats --diff A B`): self times partition a
  trace, so per-stage deltas sum exactly to the end-to-end delta.
* **Memory gauges.** `Telemetry(memory=True)` (or
  `NUMARCK_TRACE_MEMORY=1`) attaches `mem_py_peak_kb` (tracemalloc
  peak, propagated through nested spans) and `mem_rss_peak_kb` (RSS
  high-water) to every span.
"""


PERFORMANCE_NOTES = """\
## Performance tracking

`repro.bench` turns the telemetry into regression gating:

* **Scenarios.** Named, seeded end-to-end workloads
  (`repro.bench.scenarios`): CMIP compression under each strategy,
  FLASH chain compression, chain persistence, bit-packing and k-means
  in isolation — each in a `--quick` and a full size.
* **Runner.** `repro bench run` executes each scenario N times under
  tracing (median + MAD per stage; a separate pass collects memory so
  tracemalloc never pollutes the timings) and writes schema-validated
  `BENCH_<scenario>.json` files stamped with an environment
  fingerprint.
* **Comparator.** `repro bench compare BASELINE CURRENT` gates the
  total wall time and every stage's self time with a noise threshold
  `max(k·1.4826·(MAD_base+MAD_cur), rel_floor·median, abs_floor)`;
  regressions exit 1, improvements are reported but never fail.
* **Baseline.** `benchmarks/baselines/` commits a quick-suite
  baseline; CI's `bench-quick` job (manual + nightly) re-runs the
  suite and gates against it.
"""


def generate() -> str:
    out: list[str] = [
        "# API reference",
        "",
        "Generated by `python tools/gen_api_docs.py` — do not edit by hand.",
        "",
        DURABILITY_NOTES,
        OBSERVABILITY_NOTES,
        PERFORMANCE_NOTES,
    ]
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(f"## `{pkg_name}`")
        out.append("")
        out.append(_summary(pkg))
        out.append("")
        exported = getattr(pkg, "__all__", [])
        for name in exported:
            if name.startswith("__"):
                continue
            obj = getattr(pkg, name)
            # Skip names whose home package appears later in the walk.
            home = getattr(obj, "__module__", pkg_name) or pkg_name
            if home != pkg_name and home in PACKAGES and \
                    PACKAGES.index(home) < PACKAGES.index(pkg_name):
                continue
            out.extend(_describe(name, obj))
        out.append("")
    return "\n".join(out).rstrip() + "\n"


def main() -> None:
    target = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.parent.mkdir(exist_ok=True)
    target.write_text(generate())
    print(f"wrote {target} ({len(target.read_text().splitlines())} lines)")


if __name__ == "__main__":
    main()
