"""Tracing a FLASH chain compression: where does the time and space go?

Runs the hydro solver for a few checkpoints, compresses every variable
under an explicit Telemetry object, persists the chains, and prints the
paper-style stage-breakdown table (calls, wall/self/CPU time, share of
traced time, bytes in/out per stage) plus the metrics the run collected.
Then compresses the same iteration pair twice -- equal-width bins vs
k-means -- and *diffs* the two traces, attributing the wall-time delta
between the strategies to the specific stages that changed.

The same information is available for *any* script without code changes:

    NUMARCK_TRACE=trace.jsonl python examples/flash_checkpointing.py
    python -m repro stats trace.jsonl
    python -m repro stats --diff before.jsonl after.jsonl --top 5

Run:  python examples/observability.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Codec
from repro.core import NumarckConfig
from repro.io import load_chain
from repro.restart import RestartManager
from repro.simulations.flash import FLASH_VARIABLES, FlashSimulation
from repro.telemetry import (
    Telemetry,
    critical_path,
    diff_table,
    diff_traces,
    metrics_table,
    stage_table,
    use,
)

N_CHECKPOINTS = 4

workdir = Path(tempfile.mkdtemp(prefix="numarck_obs_"))
print(f"writing checkpoints under {workdir}\n")

tel = Telemetry()
with use(tel):
    # Everything inside this block traces through `tel`: the encoder, the
    # strategy fits, k-means, bit packing and the container writes.
    sim = FlashSimulation("sedov", ny=64, nx=64, steps_per_checkpoint=3)
    config = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
    manager = RestartManager(FLASH_VARIABLES, config)

    manager.record(sim.checkpoint())
    for _ in range(N_CHECKPOINTS):
        sim.advance()
        manager.record(sim.checkpoint())
    appended = manager.persist_incremental(lambda v: workdir / f"{v}.nmk")
    manager.close_writers()

print(f"persisted {appended} records across {len(FLASH_VARIABLES)} variables "
      f"({len(tel.spans)} spans collected)\n")

# Outside the `use` block the *ambient* telemetry is back in charge -- the
# no-op default, or a JSONL stream when NUMARCK_TRACE is set.  Read one
# chain back to verify the round trip (and to show ambient tracing).
decoded = load_chain(workdir / "dens.nmk", config).reconstruct()
ref = manager.restart_state()["dens"]
assert np.allclose(decoded, ref), "round-trip mismatch"
print(f"round-trip check: dens reconstructed, "
      f"max |delta| = {np.abs(decoded - ref).max():.3e}\n")

spans = [s.to_dict() for s in tel.spans]
print(stage_table(spans))
print()
print(metrics_table(tel.metrics.snapshot()))

trace = workdir / "trace.jsonl"
n = tel.export(trace)
print(f"\n{n} trace records exported to {trace}")
print(f"inspect them any time with: python -m repro stats {trace}")

# -- two-run trace diff: equal-width vs k-means --------------------------
# Compress the same iteration pair under each strategy, then attribute
# the wall-time difference to stages.  Self times partition a trace, so
# the per-stage deltas below sum to the end-to-end delta instead of
# double-counting parents and children.
rng = np.random.default_rng(0)
prev = rng.uniform(1.0, 2.0, 100_000)
curr = prev * (1.0 + rng.normal(0.0, 0.002, 100_000))

traces = {}
for strategy in ("equal_width", "clustering"):
    run_tel = Telemetry()
    with use(run_tel):
        comp = Codec(
            config=NumarckConfig(error_bound=1e-3, nbits=8, strategy=strategy))
        comp.decompress(prev, comp.compress(prev, curr))
    traces[strategy] = [s.to_dict() for s in run_tel.spans]

print("\nWhat does k-means cost over equal-width bins on the same pair?\n")
print(diff_table(traces["equal_width"], traces["clustering"], top=6,
                 labels=("ew", "km"),
                 title="trace diff: A=equal_width  B=clustering"))

diffs = diff_traces(traces["equal_width"], traces["clustering"])
top = diffs[0]
assert top["delta_self"] > 0, "k-means should cost extra time somewhere"
print(f"\n{top['share']:.0%} of the strategy delta is "
      f"{top['stage']!r} ({top['delta_self'] * 1e3:+.2f} ms)")

chain_path = [hop["name"] for hop in critical_path(traces["clustering"])]
print(f"k-means run critical path: {' > '.join(chain_path)}")
