"""Streaming compression of arrays too large for one allocation.

The two-pass chunked encoder keeps peak memory at O(chunk) while
preserving the per-point guarantee: pass 1 fits the bin table from a
bounded reservoir sample, pass 2 encodes every chunk against it.

Run:  python examples/streaming_large_arrays.py
"""

import numpy as np

from repro import Codec
from repro.core import NumarckConfig, decode_stream

N = 4_000_000          # "large": stands in for a many-GB checkpoint
CHUNK = 1 << 18        # 256k points per chunk -> ~2 MB peak per array

rng = np.random.default_rng(0)
prev = rng.uniform(1.0, 2.0, N)
curr = prev * (1.0 + rng.normal(0.0, 0.002, N))

n_chunks = -(-N // CHUNK)
codec = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8),
              chunk_size=CHUNK, sample_size=100_000)

# In production the factories would read chunks from disk / the simulation;
# here they replay views of the in-memory arrays.
streamed = codec.compress_stream(
    lambda: iter(np.array_split(prev, n_chunks)),
    lambda: iter(np.array_split(curr, n_chunks)),
)

n_exact = sum(c.exact_values.size for c in streamed.chunks)
index_bytes = N * streamed.nbits / 8
exact_bytes = n_exact * 8
table_bytes = streamed.representatives.size * 8
print(f"points           : {N:,} in {len(streamed.chunks)} chunks")
print(f"stored exactly   : {n_exact:,} ({n_exact / N:.3%})")
print(f"payload estimate : {index_bytes + exact_bytes + table_bytes:,.0f} bytes "
      f"vs {N * 8:,} raw ({(index_bytes + exact_bytes + table_bytes) / (N * 8):.1%})")

# Chunked decode: never materialises more than one chunk.  The guarantee
# is on the *change ratio*: |decoded_ratio - true_ratio| < E per point.
worst = 0.0
pos = 0
for i, out in enumerate(decode_stream(iter(np.array_split(prev, n_chunks)),
                                      streamed)):
    n = out.size
    sl = slice(pos, pos + n)
    err = np.abs((out - prev[sl]) / prev[sl] - (curr[sl] - prev[sl]) / prev[sl])
    err[streamed.chunks[i].incompressible] = 0.0
    worst = max(worst, float(err.max()))
    pos += n
print(f"worst ratio error: {worst:.2e} (bound 1e-3)")
assert worst < 1e-3
print("guarantee verified across all chunks")
