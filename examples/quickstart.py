"""Quickstart: compress one checkpoint iteration against the previous one.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Codec, NumarckConfig

# Two consecutive "checkpoints": one million points whose values drift by
# ~0.2 % per iteration -- the temporal pattern NUMARCK exploits.
rng = np.random.default_rng(0)
previous = rng.uniform(1.0, 2.0, size=1_000_000)
current = previous * (1.0 + rng.normal(0.0, 0.002, size=previous.size))

# User knobs: a hard 0.1 % per-point error bound on the change ratio, 8-bit
# indices, and the paper's best strategy (k-means clustering).
config = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
compressor = Codec(config=config)

encoded = compressor.compress(previous, current)
decoded = compressor.decompress(previous, encoded)
stats = compressor.stats(previous, current, encoded)

print(f"points               : {stats.n_points:,}")
print(f"stored exactly       : {stats.n_incompressible:,} "
      f"({stats.incompressible_ratio:.2%})")
print(f"bins used            : {stats.n_bins} (of {2**config.nbits - 1})")
print(f"compression ratio    : {stats.ratio_paper:.2f} % (paper Eq. 3)")
print(f"                       {stats.ratio_actual:.2f} % (incl. bitmap)")
print(f"mean ratio error     : {stats.mean_error:.2e}")
print(f"max  ratio error     : {stats.max_error:.2e}  (bound {config.error_bound})")

# The guarantee: every decoded point is within E of the true change ratio,
# or bit-exact.
true_ratio = (current - previous) / previous
decoded_ratio = (decoded - previous) / previous
err = np.abs(decoded_ratio - true_ratio)
err[encoded.incompressible] = 0.0
assert err.max() < config.error_bound
print("\nper-point guarantee verified: all points within the error bound")
