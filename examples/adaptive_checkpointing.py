"""Adaptive checkpoint cadence (paper future work): write full checkpoints
only when the error budget or compressibility demands one.

A fixed cadence wastes I/O when the simulation is quiet and accumulates
error when it is violent; the controller watches each delta's stats and
decides when to re-anchor the chain.

Run:  python examples/adaptive_checkpointing.py
"""

import numpy as np

from repro.analysis import CadenceController
from repro.core import CheckpointChain, NumarckConfig, open_loop_error_bound
from repro.simulations.cmip import CmipSimulation

N_DAYS = 40
cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
controller = CadenceController(error_budget=1.5e-3, gamma_threshold=0.5,
                               max_depth=16)

sim = CmipSimulation("rlds", nlat=45, nlon=72, seed=2)
state = sim.checkpoint()["rlds"]
chain = CheckpointChain(state, cfg)
full_checkpoints = [0]

print(f"{'day':>4s} {'depth':>6s} {'gamma %':>8s} {'acc err':>9s}  action")
for day in range(1, N_DAYS + 1):
    sim.advance()
    state = sim.checkpoint()["rlds"]
    stats = chain.append(state)
    decision = controller.observe_delta(stats)
    action = ""
    if decision.write_full:
        action = f"FULL checkpoint ({decision.reason})"
        chain = CheckpointChain(state, cfg)
        controller.notify_full_checkpoint()
        full_checkpoints.append(day)
    if decision.write_full or day % 10 == 0:
        print(f"{day:4d} {decision.depth:6d} "
              f"{stats.incompressible_ratio * 100:8.2f} "
              f"{decision.accumulated_error:9.2e}  {action}")

depths = np.diff(full_checkpoints + [N_DAYS])
print(f"\nfull checkpoints at days {full_checkpoints}")
print(f"chain depths: {[int(d) for d in depths]}")
print(f"worst-case restart error bound at max depth: "
      f"{open_loop_error_bound(cfg.error_bound, int(depths.max())):.2e}")
assert len(full_checkpoints) > 1, "the controller should have fired"
assert len(full_checkpoints) < N_DAYS, "but not on every iteration"
