"""Compression-as-a-service: async jobs over HTTP, chains per tenant.

Boots a real service on an ephemeral port, drives it with the bundled
client -- three tenants submitting checkpoint iterations concurrently --
then verifies the containers it hands back are byte-identical to what a
local ``Codec`` produces.

Run:  python examples/compression_service.py
"""

import threading

import numpy as np

from repro import Codec, NumarckConfig
from repro.errors import QueueFullError
from repro.io import chain_to_bytes
from repro.service import ServiceClient, ServiceConfig, ServiceServer

CFG = {"error_bound": 1e-3, "nbits": 8, "strategy": "clustering",
       "adaptive": True}
N_TENANTS = 3
ITERATIONS = 4
N_POINTS = 50_000


def tenant_states(seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    states = [rng.uniform(1.0, 2.0, N_POINTS)]
    for _ in range(ITERATIONS):
        states.append(states[-1] * (1.0 + rng.normal(0.0, 2e-3, N_POINTS)))
    return states


def run_tenant(port: int, idx: int, blobs: dict) -> None:
    client = ServiceClient(port=port)
    chain_id = f"tenant-{idx}"
    for i, state in enumerate(tenant_states(idx)):
        # First submit pins the chain config; retries absorb 429s.
        status = client.compress(chain_id, state,
                                 CFG if i == 0 else None, retries=100)
        assert status["state"] == "done", status
    blobs[idx] = client.download_chain(chain_id)


def main() -> None:
    with ServiceServer(ServiceConfig(workers=2, capacity=8)) as server:
        print(f"service up on 127.0.0.1:{server.port} "
              f"(2 workers, capacity 8)")
        client = ServiceClient(port=server.port)

        blobs: dict[int, bytes] = {}
        threads = [threading.Thread(target=run_tenant,
                                    args=(server.port, i, blobs))
                   for i in range(N_TENANTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(blobs) == N_TENANTS

        for chain in client.chains():
            reuse = chain["model_reuse"]
            print(f"  {chain['id']}: {chain['iterations']} iterations, "
                  f"model reuse {reuse['reuse_hits']}/{reuse['encodes']}")

        # Decode through the service: the full checkpoint comes back
        # bit-exact and every decoded state matches a local decode.
        states = tenant_states(0)
        decoded = client.decompress(blobs[0], CFG)
        assert len(decoded) == len(states)
        np.testing.assert_array_equal(decoded[0], states[0])
        print(f"  decode round trip: {len(decoded)} states recovered")

        health = client.health()
        print(f"  health: {health['status']}, "
              f"{health['queue']['done']} jobs done")

    # The server is down and ambient telemetry is restored; verify the
    # service's containers match a purely local Codec, byte for byte.
    for idx in range(N_TENANTS):
        codec = Codec(config=NumarckConfig.from_dict(CFG))
        direct = chain_to_bytes(codec.compress_chain(tenant_states(idx)))
        assert blobs[idx] == direct, f"tenant {idx} container diverged"
    print(f"byte-identical containers for all {N_TENANTS} tenants "
          f"({sum(len(b) for b in blobs.values()):,} bytes total)")


if __name__ == "__main__":
    main()
