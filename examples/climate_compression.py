"""Climate-data compression: all six CMIP5-like variables, three
strategies, against the B-Splines and ISABELA baselines.

Run:  python examples/climate_compression.py
"""

import numpy as np

from repro.analysis import format_table, summarize_changes
from repro.baselines import BSplineCompressor, IsabelaCompressor
from repro import Codec
from repro.core import NumarckConfig, pearson_r, rmse
from repro.simulations.cmip import CMIP_VARIABLES, CmipSimulation

E = 5e-3  # the paper's Table I setting: 0.5 % tolerance
N_ITERS = 3

rows_strategy = []
rows_baseline = []
for var in CMIP_VARIABLES:
    nlat, nlon = (45, 72) if var == "mc" else (90, 144)
    sim = CmipSimulation(var, nlat=nlat, nlon=nlon, seed=1)
    traj = [cp[var] for cp in sim.run(N_ITERS)]

    summary = summarize_changes(traj[0], traj[1])
    for strat in ("equal_width", "log_scale", "clustering"):
        cfg = NumarckConfig(error_bound=E, nbits=9, strategy=strat)
        comp = Codec(config=cfg)
        stats = [comp.stats(p, c) for p, c in zip(traj, traj[1:])]
        rows_strategy.append([
            var, strat,
            float(np.mean([s.incompressible_ratio for s in stats])) * 100,
            float(np.mean([s.ratio_paper for s in stats])),
            float(np.mean([s.mean_error for s in stats])) * 100,
        ])

    # Baselines on the final iteration.
    curr = traj[-1]
    comp = Codec(config=NumarckConfig(error_bound=E, nbits=9))
    out, _, stats = comp.roundtrip(traj[-2], curr)
    bs = BSplineCompressor(0.8)
    isa = IsabelaCompressor(512, 30)
    bs_out = bs.decompress(bs.compress(curr)).reshape(curr.shape)
    isa_out = isa.decompress(isa.compress(curr.ravel())).reshape(curr.shape)
    rows_baseline.append([
        var,
        f"{stats.ratio_paper:.1f}/{rmse(curr, out):.3g}",
        f"{isa.compression_ratio(isa.compress(curr.ravel())):.1f}/{rmse(curr, isa_out):.3g}",
        f"20.0/{rmse(curr, bs_out):.3g}",
        pearson_r(curr, out),
    ])

print(format_table(
    ["variable", "strategy", "incompressible %", "ratio %", "mean err %"],
    rows_strategy, precision=3,
    title=f"NUMARCK strategies on CMIP5-like data (E={E:.1%}, B=9)",
))
print()
print(format_table(
    ["variable", "NUMARCK ratio/RMSE", "ISABELA ratio/RMSE",
     "B-Splines ratio/RMSE", "NUMARCK rho"],
    rows_baseline, precision=4,
    title="Baseline comparison (paper Tables I-II shape)",
))
