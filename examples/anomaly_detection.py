"""Anomaly detection from evolving change distributions (the paper's
future-work idea, Section V): a soft error that corrupts part of the state
shows up as a spike in the divergence between consecutive iterations'
change-ratio histograms -- without ever comparing raw states.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro.analysis import distribution_drift, format_series
from repro.simulations.cmip import CmipSimulation

N_DAYS = 14
CORRUPT_DAY = 9

sim = CmipSimulation("rlus", nlat=90, nlon=144, seed=3)
states = [cp["rlus"] for cp in sim.run(N_DAYS)]

# Inject a "soft error": a bit-flip-like corruption multiplying a patch of
# the state by a wrong factor on one day.
states[CORRUPT_DAY] = states[CORRUPT_DAY].copy()
states[CORRUPT_DAY][30:50, 40:80] *= 1.06

# Shared binning across all iteration pairs so drifts are comparable.
lo, hi = -0.03, 0.03
def hist(a, b):
    r = np.clip((b - a) / np.where(a != 0, a, 1.0), lo, hi)
    return np.histogram(r, bins=128, range=(lo, hi))[0]

hists = [hist(a, b) for a, b in zip(states, states[1:])]
drifts = [distribution_drift(h1, h2) for h1, h2 in zip(hists, hists[1:])]

print(format_series("JS divergence between consecutive change histograms",
                    drifts, precision=4, per_line=7))

baseline = np.median(drifts)
flagged = [i + 2 for i, d in enumerate(drifts) if d > 3 * baseline]
print(f"\nbaseline drift (median): {baseline:.4f}")
print(f"iterations flagged as anomalous: {flagged}")
# A corruption at day D perturbs the change pairs (D-1 -> D) and
# (D -> D+1), so the drift series spikes somewhere in labels D .. D+2.
assert any(d in flagged for d in (CORRUPT_DAY, CORRUPT_DAY + 1,
                                  CORRUPT_DAY + 2)), \
    "the injected corruption should be flagged"
print(f"injected corruption at iteration {CORRUPT_DAY} detected "
      "from the change distribution alone")
