"""FLASH-style checkpointing: run the hydro solver, write compressed
checkpoint files, then restart the simulation from disk.

Run:  python examples/flash_checkpointing.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import NumarckConfig
from repro.io import load_chain, save_chain
from repro.restart import RestartManager
from repro.simulations.flash import FLASH_VARIABLES, FlashSimulation

N_CHECKPOINTS = 6
PRIMS = ("dens", "velx", "vely", "velz", "pres")

workdir = Path(tempfile.mkdtemp(prefix="numarck_flash_"))
print(f"writing checkpoints under {workdir}\n")

# -- run the simulation, recording every checkpoint ------------------------
sim = FlashSimulation("sedov", ny=64, nx=64, steps_per_checkpoint=3)
config = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
manager = RestartManager(FLASH_VARIABLES, config)

manager.record(sim.checkpoint())
for _ in range(N_CHECKPOINTS):
    sim.advance()
    manager.record(sim.checkpoint())

# -- persist one chain file per variable and compare sizes ----------------
raw_bytes = (N_CHECKPOINTS + 1) * 64 * 64 * 8
total_compressed = 0
print(f"{'variable':8s} {'file bytes':>12s} {'raw bytes':>12s} {'saved':>7s}")
for var in FLASH_VARIABLES:
    nbytes = save_chain(workdir / f"{var}.nmk", manager.chain(var))
    total_compressed += nbytes
    print(f"{var:8s} {nbytes:12,d} {raw_bytes:12,d} {1 - nbytes / raw_bytes:7.1%}")
print(f"{'TOTAL':8s} {total_compressed:12,d} {raw_bytes * 10:12,d} "
      f"{1 - total_compressed / (raw_bytes * 10):7.1%}\n")

# -- simulate a crash: rebuild the solver purely from the files -----------
state = {v: load_chain(workdir / f"{v}.nmk", config).reconstruct()
         for v in PRIMS}
restarted = FlashSimulation("sedov", ny=64, nx=64, steps_per_checkpoint=3)
restarted.restore(state)

# Continue both runs and compare.
sim.advance()
restarted.advance()
truth = sim.checkpoint()
rerun = restarted.checkpoint()
for var in ("dens", "pres", "temp"):
    ref = truth[var]
    err = np.abs((rerun[var] - ref) / np.where(ref != 0, ref, 1.0))
    print(f"post-restart {var:5s}: mean err {err.mean():.2e}, "
          f"max err {err.max():.2e}")
print("\nsimulation restarted successfully from compressed checkpoints")
