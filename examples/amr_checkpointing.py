"""Checkpointing an adaptive mesh (FLASH's block-structured AMR).

A moving feature drags refinement across the domain; blocks are born and
die every few iterations.  The AMR checkpointer keeps one NUMARCK chain
per block lifetime: persistent blocks accumulate cheap deltas, fresh
blocks pay one full record, and any past iteration reconstructs with its
own block population.

Run:  python examples/amr_checkpointing.py
"""

import numpy as np

from repro.core import NumarckConfig
from repro.simulations.flash import AmrCheckpointer, QuadTreeMesh

N_ITERS = 10


def field(cx):
    def fn(yy, xx):
        return 1.0 + 5.0 * np.exp(-((xx - cx) ** 2 + (yy - 0.5) ** 2) / 0.05**2)
    return fn


mesh = QuadTreeMesh(block_size=16, base=2, max_level=3)
ckpt = AmrCheckpointer(NumarckConfig(error_bound=1e-3, nbits=8,
                                     strategy="clustering"))

print(f"{'iter':>4s} {'cx':>5s} {'leaves':>7s} {'born':>5s} {'died':>5s} "
      f"{'appended':>9s}")
for i in range(N_ITERS):
    cx = 0.2 + 0.6 * i / (N_ITERS - 1)
    mesh.sample(field(cx))
    mesh.adapt(refine_above=0.5, coarsen_below=0.05)
    mesh.sample(field(cx))
    stats = ckpt.record(mesh.snapshot())
    print(f"{i:4d} {cx:5.2f} {stats['blocks']:7d} {stats['born']:5d} "
          f"{stats['died']:5d} {stats['appended']:9d}")

# Reconstruct an early iteration with its own (different) mesh.
early = ckpt.reconstruct(1)
late = ckpt.reconstruct(N_ITERS - 1)
print(f"\niteration 1 had {len(early)} blocks; "
      f"iteration {N_ITERS - 1} has {len(late)} blocks")
print(f"chains across all block lifetimes: {ckpt.n_chains}")

# Verify every reconstructed block of the final iteration.
truth = mesh.snapshot()
worst = max(
    float(np.max(np.abs(late[k] - truth[k]) / np.maximum(np.abs(truth[k]),
                                                         1e-12)))
    for k in truth
)
print(f"worst relative reconstruction error at final iteration: {worst:.2e}")
assert worst < 2e-2
print("adaptive-mesh checkpoint/reconstruct verified")
