"""Fault tolerance: crash a running simulation -- including *in the
middle of a checkpoint write* -- and recover from the compressed
checkpoint files each time.

Two fault classes are demonstrated:

* process crashes between checkpoints (``FaultSchedule``): the classic
  case -- restart from the last persisted chain;
* a process crash halfway through writing a checkpoint record
  (``DiskFaultInjector(torn_at=...)``): the file is left with a torn
  tail, and recovery goes through torn-write salvage
  (``load_chain(..., recover="tail")``), losing at most the single
  checkpoint whose write was interrupted.

Afterwards every chain file is re-verified record by record, the same
check ``python -m repro verify <file>`` performs.

Run:  python examples/fault_tolerance.py
"""

import tempfile
from pathlib import Path

from repro.core import NumarckConfig
from repro.io import CheckpointFile
from repro.restart import DiskFaultInjector, FaultSchedule, run_with_faults
from repro.simulations.flash import FlashSimulation

PRIMS = ("dens", "velx", "vely", "velz", "pres")


def factory():
    return FlashSimulation("kelvin_helmholtz", ny=48, nx=48,
                           steps_per_checkpoint=3)


workdir = tempfile.mkdtemp(prefix="numarck_faults_")
schedule = FaultSchedule(crash_at=(3, 6))
# Record writes are counted globally across all five chain files; the
# initial persist writes 5 FULL records, so write #12 is a DELT record of
# a mid-run checkpoint -- the "power cable pulled mid-write" case.
disk_faults = DiskFaultInjector(torn_at=(12,))
print("running 8 checkpoint intervals, crashing after #3 and #6,")
print("plus one process death halfway through record write #12")
print(f"chains persisted under {workdir}\n")

result = run_with_faults(
    factory, PRIMS, n_checkpoints=8, schedule=schedule, workdir=workdir,
    config=NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering"),
    disk_faults=disk_faults,
)

print(f"completed          : {result.completed}")
print(f"crashes survived   : {result.n_crashes}")
print(f"  via torn-tail salvage : {result.n_salvages}")
print(f"checkpoints written: {result.checkpoints_written}")
print(f"checkpoints lost   : {result.checkpoints_lost} "
      "(only the one being written when the crash hit)")
print(f"records appended   : {result.records_appended} "
      "(incremental persistence, no rewrites)")
for rep in result.salvage_reports:
    print(f"  salvaged {Path(rep.path).name}: {rep.describe()}")

print("\nfinal-state deviation from the fault-free reference run:")
for var in PRIMS:
    print(f"  {var:5s} mean {result.final_mean_error[var]:.2e}  "
          f"max {result.final_max_error[var]:.2e}")

print("\nper-record verification of the surviving files "
      "(what `python -m repro verify` runs):")
for var in PRIMS:
    path = Path(workdir) / f"{var}.nmk"
    with CheckpointFile.open(path) as f:
        records = sum(1 for _ in f.records(strict=False))
        status = "clean" if f.damage is None else f"DAMAGED ({f.damage})"
    print(f"  {path.name:10s} {records} records  {status}")
