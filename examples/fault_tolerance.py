"""Fault tolerance: crash a running simulation twice and recover from the
compressed checkpoint files each time.

Run:  python examples/fault_tolerance.py
"""

import tempfile

from repro.core import NumarckConfig
from repro.restart import FaultSchedule, run_with_faults
from repro.simulations.flash import FlashSimulation

PRIMS = ("dens", "velx", "vely", "velz", "pres")


def factory():
    return FlashSimulation("kelvin_helmholtz", ny=48, nx=48,
                           steps_per_checkpoint=3)


workdir = tempfile.mkdtemp(prefix="numarck_faults_")
schedule = FaultSchedule(crash_at=(3, 6))
print(f"running 8 checkpoint intervals, crashing after #3 and #6")
print(f"chains persisted under {workdir}\n")

result = run_with_faults(
    factory, PRIMS, n_checkpoints=8, schedule=schedule, workdir=workdir,
    config=NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering"),
)

print(f"completed        : {result.completed}")
print(f"crashes survived : {result.n_crashes}")
print(f"checkpoints      : {result.checkpoints_written}")
print("\nfinal-state deviation from the fault-free reference run:")
for var in PRIMS:
    print(f"  {var:5s} mean {result.final_mean_error[var]:.2e}  "
          f"max {result.final_max_error[var]:.2e}")
