"""Distributed in-situ compression: SPMD ranks compress their own block
shards, learning one global bin table with distributed k-means.

Mirrors how NUMARCK runs inside an MPI simulation: each rank holds a set
of mesh blocks (paper: ~80 16x16 blocks per process), computes change
ratios locally, participates in a parallel k-means to fit the shared
2^B - 1 representatives, then encodes its shard against the shared table.

The second half kills one rank mid-encode with a
:class:`~repro.parallel.RankFaultInjector` and shows degraded-mode
recovery: the survivors still produce a decodable checkpoint honoring the
error bound, reporting the casualty in their ``GlobalStats``.

Run:  python examples/distributed_checkpointing.py
"""

import numpy as np

from repro.core import decode_iteration
from repro.core.change import change_ratios
from repro.core.config import NumarckConfig
from repro.core.strategies.base import BinModel
from repro.kmeans import histogram_init, parallel_kmeans1d
from repro.parallel import RankFaultInjector, parallel_encode, run_spmd
from repro.simulations.flash import FlashSimulation

N_RANKS = 4
E = 1e-3
K = 255


def rank_worker(comm, prev_shards, curr_shards):
    """Executed on every rank with its own shard of the mesh blocks."""
    prev = prev_shards[comm.rank]
    curr = curr_shards[comm.rank]

    # Local forward predictive coding.
    field = change_ratios(prev, curr)
    local_ratios = field.ratios.ravel()
    candidates = local_ratios[(np.abs(local_ratios) >= E)
                              & ~field.forced_exact.ravel()]

    # Rank 0 seeds centroids from a gathered sample, broadcasts them.
    sample = comm.gather(candidates[:2000])
    if comm.rank == 0:
        centroids = histogram_init(np.concatenate(sample), K)
    else:
        centroids = None
    centroids = comm.bcast(centroids)

    # Distributed Lloyd: local assignment, allreduced centroid update.
    result = parallel_kmeans1d(comm, candidates, centroids, max_iter=15)

    # Encode the local shard against the now-global table.
    model = BinModel(np.unique(result.centroids))
    approx = model.approximate(local_ratios)
    ok = (np.abs(approx - local_ratios) < E) & ~field.forced_exact.ravel()
    small = np.abs(local_ratios) < E
    n_compressible = int((ok | small).sum())
    return comm.rank, prev.size, n_compressible, float(result.inertia)


def encode_worker(comm, prev_shards, curr_shards, cfg):
    """Full in-situ encode; survives peer loss via degraded mode."""
    prev = prev_shards[comm.rank]
    curr = curr_shards[comm.rank]
    enc, stats = parallel_encode(comm, prev, curr, cfg)
    decoded = decode_iteration(prev, enc)
    err = np.abs((decoded - curr) / np.where(prev == 0, 1.0, prev))
    err[enc.incompressible.reshape(curr.shape)] = 0.0
    return comm.rank, stats, float(err.max())


def chaos_drill(prev_shards, curr_shards):
    """Crash rank 1 while rank 0 gathers the model-fit sample."""
    cfg = NumarckConfig(error_bound=E, nbits=8)
    injector = RankFaultInjector(crash_in_phase="insitu.sample_gather")
    outcomes = run_spmd(encode_worker, N_RANKS, prev_shards, curr_shards,
                        cfg, strict=False, comm_timeout=2.0, timeout=60.0,
                        faults={1: injector})
    for o in outcomes:
        if not o.ok:
            print(f"rank {o.rank}: lost ({'timeout' if o.timed_out else 'died'})")
            continue
        rank, stats, max_err = o.value
        state = "degraded" if stats.degraded else "complete"
        print(f"rank {rank}: {state}, lost_ranks={stats.lost_ranks}, "
              f"max ratio error {max_err:.2e} (bound {E:.0e})")
        assert max_err < E * (1 + 1e-9), "bound must hold even degraded"


def main():
    sim = FlashSimulation("sedov", ny=64, nx=64, steps_per_checkpoint=3,
                          n_ranks=N_RANKS)
    for _ in range(4):  # develop the blast past the initial transient
        sim.advance()
    prev_shards = [sim.rank_checkpoint(r)["pres"] for r in range(N_RANKS)]
    sim.advance()
    curr_shards = [sim.rank_checkpoint(r)["pres"] for r in range(N_RANKS)]

    print(f"{N_RANKS} ranks x {prev_shards[0].shape[0]} blocks "
          f"of {prev_shards[0].shape[1]}x{prev_shards[0].shape[2]} cells\n")
    results = run_spmd(rank_worker, N_RANKS, prev_shards, curr_shards)

    total = comp = 0
    for rank, n, n_comp, inertia in results:
        total += n
        comp += n_comp
        print(f"rank {rank}: {n:6d} points, {n_comp:6d} compressible "
              f"({n_comp / n:.1%}), global inertia {inertia:.3e}")
    inertias = {r[3] for r in results}
    assert len(inertias) == 1, "all ranks must agree on the global model"
    print(f"\nglobal: {comp}/{total} points compressible ({comp / total:.1%}) "
          f"with one shared {K}-bin table")

    print("\n-- chaos drill: rank 1 crashes during the sample gather --")
    chaos_drill(prev_shards, curr_shards)


if __name__ == "__main__":
    main()
