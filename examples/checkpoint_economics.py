"""What NUMARCK compression buys at system level.

Measures NUMARCK's compression ratio on live hydro data, then runs it
through the Young/Daly checkpoint-economics model at exascale-ish
parameters: optimal checkpoint interval, time-waste fraction and total
wall time for a 72-hour campaign, raw vs compressed.

Run:  python examples/checkpoint_economics.py
"""

import numpy as np

from repro import Codec
from repro.core import NumarckConfig
from repro.resilience import (
    CheckpointCostModel,
    expected_makespan,
    simulate_makespan,
    young_interval,
)
from repro.simulations.flash import FlashSimulation

# -- measure the ratio on real(istic) checkpoint data ----------------------
sim = FlashSimulation("sedov", ny=64, nx=64, steps_per_checkpoint=3)
for _ in range(4):
    sim.advance()
comp = Codec(config=NumarckConfig(error_bound=5e-3, nbits=8,
                                       strategy="clustering"))
ratios = []
prev = sim.checkpoint()
for _ in range(3):
    sim.advance()
    curr = sim.checkpoint()
    for var in ("dens", "pres", "temp", "ener", "eint"):
        ratios.append(comp.stats(prev[var], curr[var]).ratio_paper)
    prev = curr
measured = float(np.mean(ratios))
print(f"measured NUMARCK compression ratio: {measured:.1f} % "
      f"(E=0.5 %, B=8, clustering)\n")

# -- run it through the checkpoint-economics model --------------------------
DATA = 2e14        # 200 TB of state
BW = 2e12          # 2 TB/s filesystem
MTBF = 6 * 3600.0  # one failure per 6 hours
WORK = 72 * 3600.0

print(f"{'mode':10s} {'C (s)':>8s} {'T* (min)':>9s} {'waste':>7s} "
      f"{'analytic':>9s} {'simulated':>10s}")
for label, ratio in (("raw", 0.0), ("NUMARCK", measured)):
    cost = CheckpointCostModel(DATA, BW, compression_ratio=ratio)
    c, r = cost.checkpoint_time, cost.restart_time
    t = young_interval(c, MTBF)
    analytic = expected_makespan(WORK, t, c, r, MTBF)
    sim_time = simulate_makespan(WORK, t, c, r, MTBF,
                                 rng=np.random.default_rng(1), n_runs=16)
    print(f"{label:10s} {c:8.1f} {t / 60:9.1f} "
          f"{analytic / WORK - 1:7.2%} {analytic / 3600:8.1f}h "
          f"{sim_time / 3600:9.1f}h")

print("\ncompression cuts both the checkpoint cost C and (via sqrt(C))")
print("the optimal interval, protecting more work with less overhead")
