"""Passive species advection tests."""

import numpy as np
import pytest

from repro.simulations.flash import Euler2D
from repro.simulations.flash.problems import kelvin_helmholtz, sedov


def _with_species(problem, n_species=2, ny=32, nx=32, **kw):
    ic = problem(ny, nx)
    yy = (np.arange(ny) + 0.5)[:, None] / ny * np.ones((ny, nx))
    species = np.stack([
        (yy < 0.5).astype(float),          # bottom tracer
        0.5 * np.ones((ny, nx)),           # uniform tracer
    ])[:n_species]
    return Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"], ic["pres"],
                   dx=1 / nx, dy=1 / ny, species=species, **kw)


class TestSpecies:
    def test_species_mass_conserved(self):
        solver = _with_species(kelvin_helmholtz)
        m0 = solver.u[5].sum()
        for _ in range(15):
            solver.step()
        assert solver.u[5].sum() == pytest.approx(m0, rel=1e-10)

    def test_uniform_fraction_stays_uniform(self):
        """A constant mass fraction is an exact solution of the passive
        advection equation regardless of the flow."""
        solver = _with_species(sedov)
        for _ in range(15):
            solver.step()
        frac = solver.species_fractions()[1]
        np.testing.assert_allclose(frac, 0.5, atol=1e-10)

    def test_fractions_bounded(self):
        solver = _with_species(kelvin_helmholtz)
        for _ in range(15):
            solver.step()
        frac = solver.species_fractions()[0]
        assert frac.min() >= -1e-12
        assert frac.max() <= 1.0 + 1e-10

    def test_tracer_mixes_across_shear_layer(self):
        """KH rolls must transport bottom tracer into the top half."""
        solver = _with_species(kelvin_helmholtz, ny=32, nx=32)
        top_before = solver.species_fractions()[0][20:, :].mean()
        for _ in range(60):
            solver.step()
        top_after = solver.species_fractions()[0][20:, :].mean()
        assert top_after > top_before

    def test_no_species_by_default(self):
        ic = sedov(16, 16)
        solver = Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"],
                         ic["pres"], dx=1 / 16, dy=1 / 16)
        assert solver.n_species == 0
        assert solver.species_fractions().shape == (0, 16, 16)

    def test_species_shape_validated(self):
        ic = sedov(16, 16)
        with pytest.raises(ValueError, match="species"):
            Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"],
                    ic["pres"], species=np.ones((2, 8, 8)))

    def test_set_state_preserves_fractions(self):
        solver = _with_species(sedov)
        for _ in range(3):
            solver.step()
        frac_before = solver.species_fractions().copy()
        prim = solver.primitives()
        solver.set_state(prim["dens"], prim["velx"], prim["vely"],
                         prim["velz"], prim["pres"])
        np.testing.assert_allclose(solver.species_fractions(), frac_before,
                                   rtol=1e-12)

    def test_set_state_explicit_species(self):
        solver = _with_species(sedov)
        prim = solver.primitives()
        new_frac = np.stack([np.full((32, 32), 0.25), np.full((32, 32), 0.75)])
        solver.set_state(prim["dens"], prim["velx"], prim["vely"],
                         prim["velz"], prim["pres"], species=new_frac)
        np.testing.assert_allclose(solver.species_fractions(), new_frac)

    def test_species_compress_like_other_variables(self):
        """Species fields feed NUMARCK exactly like the 10 standard ones."""
        from repro import Codec
        from repro.core import NumarckConfig

        solver = _with_species(kelvin_helmholtz)
        for _ in range(10):
            solver.step()
        prev = solver.species_fractions()[0].copy()
        for _ in range(3):
            solver.step()
        curr = solver.species_fractions()[0].copy()
        comp = Codec(config=NumarckConfig(error_bound=1e-3))
        _, enc, stats = comp.roundtrip(prev, curr)
        assert stats.max_error < 1e-3
