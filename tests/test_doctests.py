"""Run the executable examples embedded in module docstrings.

Public-facing docstrings carry small usage examples; running them keeps
the documentation honest as the API evolves.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro.core.pipeline",
    "repro.core.streaming",
    "repro.baselines.bspline",
    "repro.simulations.flash.simulation",
    "repro.simulations.flash.simulation3d",
    "repro.simulations.cmip.simulation",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False,
                             optionflags=doctest.ELLIPSIS)
    assert result.attempted > 0, f"{module_name} lost its doctests"
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failures"
