"""B-Splines baseline tests."""

import numpy as np
import pytest

from repro.baselines import BSplineCompressor, lsq_bspline_fit


class TestLsqFit:
    def test_reproduces_smooth_signal(self):
        y = np.sin(np.linspace(0, 3, 400))
        spline = lsq_bspline_fit(y, 50)
        out = spline(np.arange(400, dtype=float))
        assert np.max(np.abs(out - y)) < 1e-4

    def test_reproduces_polynomial_exactly(self):
        """Cubics are in the spline space, so the LSQ fit is exact."""
        x = np.linspace(0, 1, 200)
        y = 1 + 2 * x - 3 * x**2 + 0.5 * x**3
        spline = lsq_bspline_fit(y, 20)
        out = spline(np.arange(200, dtype=float))
        np.testing.assert_allclose(out, y, atol=1e-8)

    def test_ncoef_clamped_to_n(self):
        y = np.arange(10, dtype=float)
        spline = lsq_bspline_fit(y, 50)  # more coefficients than samples
        assert len(spline.c) <= 10

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            lsq_bspline_fit(np.array([1.0, 2.0]), 4)


class TestCompressor:
    def test_paper_ratio_is_20_percent(self, rng):
        comp = BSplineCompressor(coef_fraction=0.8)
        enc = comp.compress(rng.normal(size=1000))
        assert comp.compression_ratio(enc) == pytest.approx(20.0, abs=0.1)

    def test_roundtrip_smooth(self):
        comp = BSplineCompressor(coef_fraction=0.8)
        y = np.cos(np.linspace(0, 5, 600)) * 100 + 300
        out = comp.decompress(comp.compress(y))
        assert np.max(np.abs(out - y)) < 1e-6

    def test_noise_poorly_reconstructed(self, rng):
        """The paper's point: raw snapshots are not smooth in index order,
        so a B-spline at 20 % compression loses real information."""
        y = rng.normal(size=1000)
        comp = BSplineCompressor(coef_fraction=0.8)
        out = comp.decompress(comp.compress(y))
        resid = np.sqrt(np.mean((out - y) ** 2))
        assert resid > 0.01 * np.std(y)

    def test_output_length(self, rng):
        comp = BSplineCompressor()
        y = rng.normal(size=777)
        assert comp.decompress(comp.compress(y)).shape == (777,)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            BSplineCompressor(coef_fraction=0.0)
        with pytest.raises(ValueError):
            BSplineCompressor(coef_fraction=1.5)

    def test_2d_input_flattened(self, rng):
        comp = BSplineCompressor()
        y = rng.normal(size=(20, 30))
        enc = comp.compress(y)
        assert enc.n == 600
