"""Adaptive bin-model reuse: drift gating, warm starts, persistence.

The engine's contract: stationary ratio distributions reuse the cached
table (fit skipped entirely), a genuine distribution shift trips the
drift trigger and refits, and the per-point guarantee E is untouched in
both paths.
"""

import numpy as np
import pytest

from repro import AdaptiveEncoder, Codec
from repro.core import CheckpointChain, NumarckConfig, decode_iteration
from repro.core.encoder import encode_pair
from repro.core.strategies.base import BinModel
from repro.telemetry import Telemetry, use


def _stationary_states(n_iters=8, size=6000, seed=3):
    """States whose consecutive change-ratio distributions barely move."""
    rng = np.random.default_rng(seed)
    state = rng.uniform(50.0, 150.0, size=size)
    out = [state]
    for i in range(n_iters):
        state = state * (1.0 + np.sin(state * 3.0 + i) * 0.004)
        out.append(state)
    return out


def _shifted_pair(prev, scale):
    """A pair whose ratio distribution sits at a new magnitude.

    The ratios stay continuous (more distinct values than table slots) so
    a refit genuinely exercises the clustering path rather than the
    exact small-alphabet shortcut.
    """
    return prev * (1.0 + scale * (1.0 + 0.25 * np.sin(prev * 7.0)))


CFG = dict(error_bound=1e-3, nbits=8, strategy="clustering")


class TestDriftTrigger:
    def test_stationary_reuses_every_iteration_after_first(self):
        enc = AdaptiveEncoder(NumarckConfig(adaptive=True, **CFG))
        states = _stationary_states()
        for prev, curr in zip(states, states[1:]):
            enc.encode(prev, curr)
        assert enc.stats.encodes == len(states) - 1
        assert enc.stats.reuse_hits == enc.stats.encodes - 1
        assert enc.stats.refits == 0
        assert enc.stats.hit_rate == pytest.approx(
            (enc.stats.encodes - 1) / enc.stats.encodes)

    def test_forced_shift_triggers_refit(self):
        enc = AdaptiveEncoder(NumarckConfig(adaptive=True, **CFG))
        states = _stationary_states(4)
        for prev, curr in zip(states, states[1:]):
            enc.encode(prev, curr)
        assert enc.stats.refits == 0
        # Jump the ratio distribution two orders of magnitude: the cached
        # +-0.004-scale table cannot cover +-0.2 within E=1e-3.
        prev = states[-1]
        enc.encode(prev, _shifted_pair(prev, 0.2))
        assert enc.stats.refits == 1
        assert enc.last_report.refitted and not enc.last_report.model_reused
        assert enc.last_report.drift > enc.config.drift_threshold

    def test_baseline_anchored_at_fit_not_at_reuse(self):
        enc = AdaptiveEncoder(NumarckConfig(adaptive=True, **CFG))
        states = _stationary_states(3)
        for prev, curr in zip(states, states[1:]):
            enc.encode(prev, curr)
        baseline_after_fit = enc._baseline
        # reuse hits must not move the baseline (slow-drift ratchet guard)
        prev = states[-1]
        enc.encode(prev, prev * (1.0 + np.sin(prev * 3.0 + 9) * 0.004))
        assert enc.last_report.model_reused
        assert enc._baseline == baseline_after_fit

    def test_seed_and_reset(self):
        enc = AdaptiveEncoder(NumarckConfig(adaptive=True, **CFG))
        model = BinModel(np.array([-0.004, 0.0, 0.004]))
        enc.seed(model, baseline=0.1)
        assert enc.cached_model is model
        enc.reset()
        assert enc.cached_model is None

    def test_error_bound_holds_in_both_paths(self):
        cfg = NumarckConfig(adaptive=True, **CFG)
        enc = AdaptiveEncoder(cfg)
        states = _stationary_states(5)
        pairs = list(zip(states, states[1:]))
        prev = states[-1]
        pairs.append((prev, _shifted_pair(prev, 0.2)))  # forces a refit
        modes = []
        for prev, curr in pairs:
            encoded = enc.encode(prev, curr)
            modes.append(encoded.model_reused)
            out = decode_iteration(prev, encoded)
            err = np.abs(out - curr) / np.abs(prev)
            err[encoded.incompressible] = 0.0
            assert err.max() < cfg.error_bound
        assert True in modes and False in modes  # both paths exercised


class TestEncodePairHints:
    def test_hint_drift_none_reuses_unconditionally(self):
        prev = np.linspace(1.0, 2.0, 1000)
        curr = prev * 1.05  # far outside the hinted table's reach
        hint = BinModel(np.array([0.001, 0.002]))
        enc, report = encode_pair(prev, curr, NumarckConfig(**CFG),
                                  model_hint=hint, hint_drift=None)
        assert report.model_reused and not report.refitted
        np.testing.assert_array_equal(enc.representatives,
                                      hint.representatives)
        # reuse never weakens E: unreachable points went incompressible
        out = decode_iteration(prev, enc)
        err = np.abs(out - curr) / np.abs(prev)
        err[enc.incompressible] = 0.0
        assert err.max() < 1e-3

    def test_no_candidates_with_hint_is_trivial_reuse(self):
        prev = np.linspace(1.0, 2.0, 500)
        hint = BinModel(np.array([0.01, 0.02]))
        enc, report = encode_pair(prev, prev, NumarckConfig(**CFG),
                                  model_hint=hint, hint_drift=0.05)
        assert report.model_reused and report.n_candidates == 0
        np.testing.assert_array_equal(enc.representatives,
                                      hint.representatives)

    def test_warm_start_counter_increments_on_refit(self):
        states = _stationary_states(2)
        prev = states[-1]
        shifted = _shifted_pair(prev, 0.2)
        hint_enc, _ = encode_pair(states[0], states[1], NumarckConfig(**CFG))
        hint = BinModel(hint_enc.representatives)
        for warm, expected in ((True, 1), (False, 0)):
            tel = Telemetry()
            with use(tel):
                _, report = encode_pair(prev, shifted, NumarckConfig(**CFG),
                                        model_hint=hint, hint_drift=0.05,
                                        warm_start=warm)
            assert report.refitted
            assert tel.metrics.counter("kmeans.warm_starts").value == expected

    def test_telemetry_counters(self):
        tel = Telemetry()
        with use(tel):
            enc = AdaptiveEncoder(NumarckConfig(adaptive=True, **CFG))
            states = _stationary_states(3)
            for prev, curr in zip(states, states[1:]):
                enc.encode(prev, curr)
        assert tel.metrics.counter("adaptive.reuse_hits").value == 2
        assert tel.metrics.counter("adaptive.refits").value == 0


class TestChainIntegration:
    def test_chain_marks_reuse_and_roundtrips(self, tmp_path):
        from repro.io import load_chain, save_chain

        states = _stationary_states(6)
        chain = Codec(config=NumarckConfig(adaptive=True, **CFG)).compress_chain(
            states)
        flags = [d.model_reused for d in chain.deltas]
        assert flags[0] is False and all(flags[1:])
        assert chain.reuse_stats.reuse_hits == len(states) - 2

        path = tmp_path / "adaptive.nmk"
        save_chain(path, chain)
        loaded = load_chain(path, NumarckConfig(adaptive=True, **CFG))
        for i in range(len(states)):
            np.testing.assert_array_equal(loaded.reconstruct(i),
                                          chain.reconstruct(i))
        assert [d.model_reused for d in loaded.deltas] == flags

    def test_table_ref_dedup_shrinks_file(self, tmp_path):
        from repro.io import save_chain

        states = _stationary_states(6)
        adaptive = Codec(config=NumarckConfig(adaptive=True, **CFG)).compress_chain(
            states)
        plain = Codec(config=NumarckConfig(**CFG)).compress_chain(states)
        a = save_chain(tmp_path / "a.nmk", adaptive)
        b = save_chain(tmp_path / "b.nmk", plain)
        # 5 reuse-hit deltas elide their 255-entry float64 table
        assert b - a >= 5 * 200 * 8

    def test_append_mode_continues_dedup(self, tmp_path):
        from repro.io import CheckpointFile, load_chain, save_chain

        states = _stationary_states(8)
        cfg = NumarckConfig(adaptive=True, **CFG)
        chain = Codec(config=cfg).compress_chain(states[:5])
        path = tmp_path / "chain.nmk"
        save_chain(path, chain)

        resumed = load_chain(path, cfg)
        for state in states[5:]:
            resumed.append(state)
        with CheckpointFile.append(path) as f:
            from repro.io.format import encode_delta_bytes  # noqa: F401
            for enc in resumed.deltas[4:]:
                f.write_delta(enc)
        final = load_chain(path, cfg)
        assert len(final) == len(states)
        np.testing.assert_array_equal(final.reconstruct(len(states) - 1),
                                      resumed.reconstruct(len(states) - 1))

    def test_truncate_resets_cache(self):
        states = _stationary_states(4)
        cfg = NumarckConfig(adaptive=True, **CFG)
        chain = Codec(config=cfg).compress_chain(states)
        chain.truncate(1)
        chain.append(states[1])
        assert chain.deltas[-1].model_reused is False  # cold refit


class TestParallelReuse:
    def test_serial_comm_reuse_hit(self):
        from repro.parallel import parallel_encode

        cfg = NumarckConfig(**CFG)
        states = _stationary_states(3)
        enc1, stats1 = parallel_encode(None, states[0], states[1], cfg)
        assert not stats1.model_reused
        hint = BinModel(enc1.representatives)
        enc2, stats2 = parallel_encode(None, states[1], states[2], cfg,
                                       model_hint=hint, hint_drift=0.05)
        assert stats2.model_reused and enc2.model_reused
        np.testing.assert_array_equal(enc2.representatives,
                                      hint.representatives)

    def test_serial_comm_drift_refits(self):
        from repro.parallel import parallel_encode

        cfg = NumarckConfig(**CFG)
        states = _stationary_states(2)
        prev = states[-1]
        hint = BinModel(np.array([-0.004, 0.004]))
        enc, stats = parallel_encode(None, prev, _shifted_pair(prev, 0.2),
                                     cfg, model_hint=hint, hint_drift=0.05)
        assert not stats.model_reused and not enc.model_reused
