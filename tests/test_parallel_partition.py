"""Block-partition helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import block_partition, partition_bounds, partition_slices
from repro.parallel.partition import grid_partition


class TestPartitionBounds:
    def test_even_split(self):
        np.testing.assert_array_equal(partition_bounds(12, 3), [0, 4, 8, 12])

    def test_remainder_goes_first(self):
        np.testing.assert_array_equal(partition_bounds(10, 3), [0, 4, 7, 10])

    def test_more_parts_than_items(self):
        bounds = partition_bounds(2, 5)
        sizes = np.diff(bounds)
        assert sizes.sum() == 2
        assert sizes.max() <= 1

    def test_zero_items(self):
        np.testing.assert_array_equal(partition_bounds(0, 3), [0, 0, 0, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_bounds(-1, 2)
        with pytest.raises(ValueError):
            partition_bounds(5, 0)


class TestSlicesAndBlocks:
    def test_slices_cover_range(self):
        slices = partition_slices(17, 4)
        covered = np.concatenate([np.arange(17)[s] for s in slices])
        np.testing.assert_array_equal(covered, np.arange(17))

    def test_block_partition_views(self, rng):
        arr = rng.normal(size=(20, 3))
        parts = block_partition(arr, 3)
        np.testing.assert_array_equal(np.vstack(parts), arr)
        # Parts are views, not copies.
        parts[0][0, 0] = 99.0
        assert arr[0, 0] == 99.0

    def test_grid_partition_row_bands(self):
        bands = grid_partition((10, 6), 3)
        assert len(bands) == 3
        rows = sum(b[0].stop - b[0].start for b in bands)
        assert rows == 10
        for _, xs in bands:
            assert xs == slice(0, 6)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(0, 10_000), p=st.integers(1, 64))
def test_property_balanced_exact_cover(n, p):
    bounds = partition_bounds(n, p)
    sizes = np.diff(bounds)
    assert bounds[0] == 0 and bounds[-1] == n
    assert sizes.min() >= 0
    assert sizes.max() - sizes.min() <= 1, "parts must differ by at most one"
    assert np.all(sizes[:-1] >= sizes[1:]), "larger parts must come first"
