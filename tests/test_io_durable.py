"""Durable write primitives: atomic replace and bounded retry."""

import errno
import os

import numpy as np
import pytest

from repro.core import CheckpointChain, NumarckConfig
from repro.io import atomic_write, load_chain, retry_io, save_chain
from repro.io.durable import is_transient_oserror


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(target) as fh:
            fh.write(b"hello")
        assert target.read_bytes() == b"hello"

    def test_no_temp_leftovers_on_success(self, tmp_path):
        with atomic_write(tmp_path / "out.bin") as fh:
            fh.write(b"x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_failure_preserves_original(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"precious")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as fh:
                fh.write(b"partial garbage")
                raise RuntimeError("crash mid-write")
        assert target.read_bytes() == b"precious"

    def test_failure_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with atomic_write(target) as fh:
                fh.write(b"junk")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with atomic_write(target) as fh:
            fh.write(b"new contents")
        assert target.read_bytes() == b"new contents"


class TestRetryIO:
    def test_returns_result_first_try(self):
        assert retry_io(lambda: 42, sleep=lambda _: None) == 42

    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "transient")
            return "ok"

        delays = []
        assert retry_io(flaky, base_delay=0.01, sleep=delays.append) == "ok"
        assert len(calls) == 3
        # Exponential backoff: each delay doubles.
        assert delays == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_backoff_capped(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise OSError(errno.EIO, "transient")
            return "ok"

        delays = []
        retry_io(flaky, base_delay=0.3, max_delay=0.5, sleep=delays.append)
        assert delays == [pytest.approx(0.3), pytest.approx(0.5),
                          pytest.approx(0.5)]

    def test_gives_up_after_attempts(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise OSError(errno.EIO, "transient")

        with pytest.raises(OSError):
            retry_io(always_fails, attempts=3, sleep=lambda _: None)
        assert len(calls) == 3

    def test_permanent_error_not_retried(self):
        calls = []

        def missing():
            calls.append(1)
            raise FileNotFoundError(errno.ENOENT, "gone", "f")

        with pytest.raises(FileNotFoundError):
            retry_io(missing, sleep=lambda _: None)
        assert len(calls) == 1

    def test_non_oserror_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("not io")

        with pytest.raises(ValueError):
            retry_io(broken, sleep=lambda _: None)
        assert len(calls) == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            retry_io(lambda: 1, attempts=0)

    def test_transient_classification(self):
        assert is_transient_oserror(OSError(errno.EIO, "x"))
        assert is_transient_oserror(OSError(errno.EINTR, "x"))
        assert not is_transient_oserror(OSError(errno.ENOENT, "x"))
        assert not is_transient_oserror(OSError(errno.ENOSPC, "x"))


class TestDurableSave:
    def test_save_chain_replaces_not_truncates(self, tmp_path, rng):
        """A failed save must leave the previous file intact."""
        data = rng.uniform(1, 2, 300)
        chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
        path = tmp_path / "c.nmk"
        save_chain(path, chain)
        before = path.read_bytes()

        # Corrupt the *chain object* so the save blows up mid-write.
        class Boom:
            def __getattr__(self, name):
                raise RuntimeError("encoder exploded")

        broken = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
        broken._deltas = [Boom()]  # noqa: SLF001
        with pytest.raises(RuntimeError):
            save_chain(path, broken)
        assert path.read_bytes() == before
        np.testing.assert_array_equal(load_chain(path).reconstruct(), data)

    def test_save_chain_durable_false_still_roundtrips(self, tmp_path, rng):
        data = rng.uniform(1, 2, 128)
        chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
        chain.append(data * 1.001)
        path = tmp_path / "nd.nmk"
        save_chain(path, chain, durable=False)
        np.testing.assert_allclose(load_chain(path).reconstruct(),
                                   chain.reconstruct())

    def test_durable_and_plain_writes_identical_bytes(self, tmp_path, rng):
        data = rng.uniform(1, 2, 128)
        chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
        chain.append(data * 1.002)
        a, b = tmp_path / "a.nmk", tmp_path / "b.nmk"
        save_chain(a, chain, durable=True)
        save_chain(b, chain, durable=False)
        assert a.read_bytes() == b.read_bytes()
