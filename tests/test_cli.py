"""CLI tests (driving main() directly, plus subprocess exit-code checks)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def arrays(tmp_path, rng):
    """Three consecutive iterations saved as .npy files."""
    paths = []
    data = rng.uniform(1.0, 2.0, 3000)
    for i in range(3):
        p = tmp_path / f"iter{i}.npy"
        np.save(p, data)
        paths.append(str(p))
        data = data * (1 + rng.normal(0, 0.002, 3000))
    return paths


class TestWorkflow:
    def test_init_append_extract(self, tmp_path, arrays, capsys):
        chain = str(tmp_path / "c.nmk")
        assert main(["init", chain, arrays[0], "--error-bound", "1e-3"]) == 0
        assert main(["append", chain, arrays[1]]) == 0
        assert main(["append", chain, arrays[2]]) == 0
        out_npy = str(tmp_path / "out.npy")
        assert main(["extract", chain, "-o", out_npy]) == 0

        decoded = np.load(out_npy)
        truth = np.load(arrays[2])
        rel = np.abs(decoded / truth - 1)
        assert rel.max() < 5e-3  # two open-loop steps at E=1e-3

    def test_extract_specific_iteration(self, tmp_path, arrays):
        chain = str(tmp_path / "c.nmk")
        main(["init", chain, arrays[0]])
        main(["append", chain, arrays[1]])
        out_npy = str(tmp_path / "it0.npy")
        assert main(["extract", chain, "-i", "0", "-o", out_npy]) == 0
        np.testing.assert_array_equal(np.load(out_npy), np.load(arrays[0]))

    def test_append_inherits_config(self, tmp_path, arrays, capsys):
        chain = str(tmp_path / "c.nmk")
        main(["init", chain, arrays[0]])
        main(["append", chain, arrays[1], "--error-bound", "5e-3",
              "--nbits", "9", "--strategy", "log_scale"])
        capsys.readouterr()
        main(["inspect", chain])
        first = capsys.readouterr().out
        assert "B=9" in first and "log_scale" in first
        # Second append without flags must reuse the same parameters.
        main(["append", chain, arrays[2]])
        capsys.readouterr()
        main(["inspect", chain])
        out = capsys.readouterr().out
        assert out.count("B=9") == 2
        assert out.count("log_scale") == 2

    def test_inspect_output(self, tmp_path, arrays, capsys):
        chain = str(tmp_path / "c.nmk")
        main(["init", chain, arrays[0]])
        main(["append", chain, arrays[1]])
        capsys.readouterr()
        assert main(["inspect", chain]) == 0
        out = capsys.readouterr().out
        assert "2 iterations" in out
        assert "delta 1" in out
        assert "gamma=" in out


class TestErrors:
    def test_append_missing_chain(self, tmp_path, arrays, capsys):
        rc = main(["append", str(tmp_path / "nope.nmk"), arrays[0]])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_inspect_garbage_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.nmk"
        bad.write_bytes(b"garbage")
        assert main(["inspect", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_config_value(self, tmp_path, arrays, capsys):
        chain = str(tmp_path / "c.nmk")
        rc = main(["init", chain, arrays[0], "--error-bound", "5.0"])
        assert rc == 1
        assert "error_bound" in capsys.readouterr().err

    def test_extract_out_of_range(self, tmp_path, arrays, capsys):
        chain = str(tmp_path / "c.nmk")
        main(["init", chain, arrays[0]])
        rc = main(["extract", chain, "-i", "7",
                   "-o", str(tmp_path / "x.npy")])
        assert rc == 1


def _run_cli(*args, env_extra=None):
    """Run ``python -m repro ...`` as a real subprocess.

    Exit codes flow through ``raise SystemExit(main())``, so this checks
    the actual process status an operator's shell script would see.
    """
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=120,
    )


class TestSubprocessExitCodes:
    """verify/repair drive shell pipelines; pin their process exit codes."""

    @pytest.fixture
    def chain(self, tmp_path, arrays):
        path = str(tmp_path / "c.nmk")
        assert main(["init", path, arrays[0]]) == 0
        assert main(["append", path, arrays[1]]) == 0
        return path

    def test_verify_clean_exits_zero(self, chain):
        proc = _run_cli("verify", chain)
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_verify_damaged_exits_one(self, chain):
        with open(chain, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            fh.write(b"\xff\xff\xff")
        proc = _run_cli("verify", chain)
        assert proc.returncode == 1
        assert "DAMAGED" in proc.stderr

    def test_verify_missing_file_exits_one(self, tmp_path):
        proc = _run_cli("verify", str(tmp_path / "nope.nmk"))
        assert proc.returncode == 1
        assert "error:" in proc.stderr

    def test_repair_then_verify_recovers(self, chain, tmp_path):
        with open(chain, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            fh.write(b"\xff\xff\xff")
        proc = _run_cli("repair", chain)
        assert proc.returncode == 0
        assert "kept" in proc.stdout
        assert Path(f"{chain}.bak").exists()
        assert _run_cli("verify", chain).returncode == 0

    def test_repair_clean_file_is_noop(self, chain):
        proc = _run_cli("repair", chain)
        assert proc.returncode == 0
        assert "already clean" in proc.stdout
        assert not Path(f"{chain}.bak").exists()

    def test_repair_missing_file_exits_one(self, tmp_path):
        proc = _run_cli("repair", str(tmp_path / "nope.nmk"))
        assert proc.returncode == 1
        assert "error:" in proc.stderr
