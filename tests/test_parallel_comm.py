"""Communicator protocol and SPMD harness tests."""

import operator

import numpy as np
import pytest

from repro.parallel import SerialComm, run_spmd, tree_allreduce


class TestSerialComm:
    def test_identity_collectives(self):
        comm = SerialComm()
        assert comm.rank == 0 and comm.size == 1
        assert comm.bcast(42) == 42
        assert comm.allreduce(7) == 7
        assert comm.reduce(7) == 7
        assert comm.gather("x") == ["x"]
        assert comm.allgather("x") == ["x"]
        assert comm.scatter(["only"]) == "only"
        comm.barrier()  # no-op, must not hang

    def test_point_to_point_guarded(self):
        comm = SerialComm()
        with pytest.raises(RuntimeError):
            comm.send(1, 0)
        with pytest.raises(RuntimeError):
            comm.recv(0)

    def test_scatter_wrong_length(self):
        with pytest.raises(ValueError):
            SerialComm().scatter([1, 2])

    def test_tree_allreduce_serial(self):
        assert tree_allreduce(SerialComm(), 5) == 5


def _collectives_worker(comm, payload):
    out = {}
    out["bcast"] = comm.bcast(payload if comm.rank == 0 else None)
    out["gather"] = comm.gather(comm.rank)
    out["allgather"] = comm.allgather(comm.rank * 2)
    out["scatter"] = comm.scatter(
        [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
    )
    out["reduce"] = comm.reduce(comm.rank + 1)
    out["allreduce"] = comm.allreduce(comm.rank + 1)
    out["max"] = comm.allreduce(comm.rank, op=max)
    out["tree"] = tree_allreduce(comm, comm.rank + 1)
    comm.barrier()
    return out


class TestSPMDCollectives:
    @pytest.mark.parametrize("nprocs", [2, 3, 4])
    def test_all_collectives(self, nprocs):
        results = run_spmd(_collectives_worker, nprocs, {"k": 1})
        total = nprocs * (nprocs + 1) // 2
        for rank, out in enumerate(results):
            assert out["bcast"] == {"k": 1}
            assert out["allgather"] == [i * 2 for i in range(nprocs)]
            assert out["scatter"] == rank * 10
            assert out["allreduce"] == total
            assert out["max"] == nprocs - 1
            assert out["tree"] == total
        assert results[0]["gather"] == list(range(nprocs))
        assert results[0]["reduce"] == total
        for out in results[1:]:
            assert out["gather"] is None
            assert out["reduce"] is None


def _numpy_worker(comm):
    local = np.full(5, float(comm.rank))
    return comm.allreduce(local)


def _failing_worker(comm):
    if comm.rank == 1:
        raise RuntimeError("boom on rank 1")
    comm.barrier  # no-op attribute access; ranks return without syncing
    return comm.rank


class TestSPMDHarness:
    def test_numpy_payloads(self):
        results = run_spmd(_numpy_worker, 3)
        for r in results:
            np.testing.assert_array_equal(r, np.full(5, 3.0))

    def test_single_proc_shortcircuit(self):
        assert run_spmd(lambda comm: comm.size, 1) == [1]

    def test_errors_are_relayed(self):
        with pytest.raises(RuntimeError, match="rank 1: RuntimeError: boom"):
            run_spmd(_failing_worker, 2)

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 0)


class TestOutOfBandSerialization:
    """pickle protocol-5 framing used by PipeComm array sends."""

    def _roundtrip(self, obj):
        from repro.parallel.comm import _dumps, _loads

        return _loads(_dumps(obj))

    def test_plain_objects_skip_oob_framing(self):
        from repro.parallel.comm import _OOB_MAGIC, _dumps

        payload = _dumps({"a": 1, "b": [2, 3]})
        assert payload[0] != _OOB_MAGIC  # plain pickle, no extra header

    def test_arrays_use_oob_framing(self):
        from repro.parallel.comm import _OOB_MAGIC, _dumps

        assert _dumps(np.arange(64.0))[0] == _OOB_MAGIC

    def test_array_roundtrip_bitexact(self):
        arr = np.linspace(-1.0, 1.0, 4096).reshape(64, 64)
        out = self._roundtrip(arr)
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype and out.shape == arr.shape

    def test_decoded_arrays_are_writable(self):
        out = self._roundtrip(np.zeros(16))
        out[0] = 1.0  # views into the receive buffer must stay mutable
        assert out[0] == 1.0

    def test_mixed_payload_roundtrip(self):
        obj = {"meta": "x", "a": np.arange(10, dtype=np.int32),
               "b": np.full((3, 3), 2.5), "n": 7}
        out = self._roundtrip(obj)
        assert out["meta"] == "x" and out["n"] == 7
        np.testing.assert_array_equal(out["a"], obj["a"])
        np.testing.assert_array_equal(out["b"], obj["b"])

    def test_noncontiguous_array_roundtrip(self):
        arr = np.arange(100.0).reshape(10, 10)[::2, ::3]
        np.testing.assert_array_equal(self._roundtrip(arr), arr)

    def test_legacy_plain_pickle_still_decodes(self):
        import pickle

        from repro.parallel.comm import _loads

        obj = {"x": np.arange(5)}
        out = _loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        np.testing.assert_array_equal(out["x"], obj["x"])

    def test_pipecomm_array_send(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(np.arange(1000.0), dest=1)
                return None
            arr = comm.recv(source=0)
            arr += 1.0  # received arrays must be writable
            return float(arr.sum())

        results = run_spmd(worker, 2)
        assert results[1] == pytest.approx(sum(range(1000)) + 1000)
