"""Communicator protocol and SPMD harness tests."""

import operator

import numpy as np
import pytest

from repro.parallel import SerialComm, run_spmd, tree_allreduce


class TestSerialComm:
    def test_identity_collectives(self):
        comm = SerialComm()
        assert comm.rank == 0 and comm.size == 1
        assert comm.bcast(42) == 42
        assert comm.allreduce(7) == 7
        assert comm.reduce(7) == 7
        assert comm.gather("x") == ["x"]
        assert comm.allgather("x") == ["x"]
        assert comm.scatter(["only"]) == "only"
        comm.barrier()  # no-op, must not hang

    def test_point_to_point_guarded(self):
        comm = SerialComm()
        with pytest.raises(RuntimeError):
            comm.send(1, 0)
        with pytest.raises(RuntimeError):
            comm.recv(0)

    def test_scatter_wrong_length(self):
        with pytest.raises(ValueError):
            SerialComm().scatter([1, 2])

    def test_tree_allreduce_serial(self):
        assert tree_allreduce(SerialComm(), 5) == 5


def _collectives_worker(comm, payload):
    out = {}
    out["bcast"] = comm.bcast(payload if comm.rank == 0 else None)
    out["gather"] = comm.gather(comm.rank)
    out["allgather"] = comm.allgather(comm.rank * 2)
    out["scatter"] = comm.scatter(
        [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
    )
    out["reduce"] = comm.reduce(comm.rank + 1)
    out["allreduce"] = comm.allreduce(comm.rank + 1)
    out["max"] = comm.allreduce(comm.rank, op=max)
    out["tree"] = tree_allreduce(comm, comm.rank + 1)
    comm.barrier()
    return out


class TestSPMDCollectives:
    @pytest.mark.parametrize("nprocs", [2, 3, 4])
    def test_all_collectives(self, nprocs):
        results = run_spmd(_collectives_worker, nprocs, {"k": 1})
        total = nprocs * (nprocs + 1) // 2
        for rank, out in enumerate(results):
            assert out["bcast"] == {"k": 1}
            assert out["allgather"] == [i * 2 for i in range(nprocs)]
            assert out["scatter"] == rank * 10
            assert out["allreduce"] == total
            assert out["max"] == nprocs - 1
            assert out["tree"] == total
        assert results[0]["gather"] == list(range(nprocs))
        assert results[0]["reduce"] == total
        for out in results[1:]:
            assert out["gather"] is None
            assert out["reduce"] is None


def _numpy_worker(comm):
    local = np.full(5, float(comm.rank))
    return comm.allreduce(local)


def _failing_worker(comm):
    if comm.rank == 1:
        raise RuntimeError("boom on rank 1")
    comm.barrier  # no-op attribute access; ranks return without syncing
    return comm.rank


class TestSPMDHarness:
    def test_numpy_payloads(self):
        results = run_spmd(_numpy_worker, 3)
        for r in results:
            np.testing.assert_array_equal(r, np.full(5, 3.0))

    def test_single_proc_shortcircuit(self):
        assert run_spmd(lambda comm: comm.size, 1) == [1]

    def test_errors_are_relayed(self):
        with pytest.raises(RuntimeError, match="rank 1: RuntimeError: boom"):
            run_spmd(_failing_worker, 2)

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 0)
