"""Unit tests for the service job queue: lifecycle, backpressure,
cancellation, crash isolation and telemetry-fed progress."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    JobCancelledError,
    JobNotFoundError,
    QueueFullError,
    ServiceUnavailableError,
    StateError,
)
from repro.service.jobs import JobQueue
from repro.telemetry.tracer import get_telemetry


@pytest.fixture
def queue():
    q = JobQueue(capacity=8, workers=2).start()
    yield q
    q.close()


class TestLifecycle:
    def test_done_job(self, queue):
        job = queue.submit("t", lambda: b"payload")
        queue.wait(job.id, timeout=10)
        assert job.state == "done"
        assert queue.result(job.id) == b"payload"
        assert job.started_at is not None and job.finished_at is not None

    def test_result_before_done_is_conflict(self, queue):
        queue.pause()
        job = queue.submit("t", lambda: b"x")
        with pytest.raises(StateError):
            queue.result(job.id)
        queue.resume()
        queue.wait(job.id, timeout=10)

    def test_unknown_job(self, queue):
        with pytest.raises(JobNotFoundError):
            queue.get("job-999")

    def test_submit_after_close(self):
        q = JobQueue(capacity=2, workers=1).start()
        q.close()
        with pytest.raises(ServiceUnavailableError):
            q.submit("t", lambda: b"")

    def test_close_drains_accepted_jobs(self):
        q = JobQueue(capacity=16, workers=2).start()
        jobs = [q.submit("t", lambda i=i: f"r{i}".encode())
                for i in range(10)]
        q.close()  # must not drop any accepted job
        assert all(j.state == "done" for j in jobs)

    def test_validation(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)
        with pytest.raises(ValueError):
            JobQueue(workers=0)


class TestBackpressure:
    def test_full_queue_raises_and_drains(self, queue):
        queue.pause()
        accepted = [queue.submit("t", lambda: b"ok") for _ in range(8)]
        with pytest.raises(QueueFullError) as exc_info:
            queue.submit("t", lambda: b"overflow")
        assert exc_info.value.retry_after > 0
        assert queue.stats()["accepting"] is False
        queue.resume()
        for job in accepted:
            queue.wait(job.id, timeout=10)
            assert queue.result(job.id) == b"ok"
        # Capacity frees up once the accepted jobs drained.
        late = queue.submit("t", lambda: b"late")
        queue.wait(late.id, timeout=10)
        assert late.state == "done"


class TestCancellation:
    def test_cancel_queued(self, queue):
        queue.pause()
        job = queue.submit("t", lambda: b"never")
        queue.cancel(job.id)
        assert job.state == "cancelled"
        with pytest.raises(JobCancelledError):
            queue.result(job.id)
        queue.resume()
        # The worker discards the cancelled job; the queue stays healthy.
        ok = queue.submit("t", lambda: b"ok")
        queue.wait(ok.id, timeout=10)
        assert ok.result == b"ok"

    def test_cancel_running_is_conflict(self, queue):
        release = threading.Event()
        started = threading.Event()

        def body():
            started.set()
            release.wait(10)
            return b"done"

        job = queue.submit("t", body)
        assert started.wait(10)
        with pytest.raises(StateError):
            queue.cancel(job.id)
        release.set()
        queue.wait(job.id, timeout=10)
        assert job.state == "done"

    def test_cancel_finished_is_conflict(self, queue):
        job = queue.submit("t", lambda: b"x")
        queue.wait(job.id, timeout=10)
        with pytest.raises(StateError):
            queue.cancel(job.id)


class TestCrashIsolation:
    def test_failing_job_marks_failed(self, queue):
        def boom():
            raise RuntimeError("worker exploded")

        job = queue.submit("t", boom)
        queue.wait(job.id, timeout=10)
        assert job.state == "failed"
        with pytest.raises(RuntimeError, match="worker exploded"):
            queue.result(job.id)

    def test_pool_survives_crashes(self, queue):
        def boom():
            raise ValueError("bad input")

        for _ in range(6):
            job = queue.submit("t", boom)
            queue.wait(job.id, timeout=10)
            assert job.state == "failed"
        survivor = queue.submit("t", lambda: b"alive")
        queue.wait(survivor.id, timeout=10)
        assert survivor.result == b"alive"
        stats = queue.stats()
        assert stats["failed"] == 6 and stats["done"] == 1


class TestProgress:
    def test_spans_feed_progress(self, queue):
        def traced():
            with get_telemetry().span("stage.one", bytes_in=100):
                pass
            with get_telemetry().span("stage.two", bytes_out=40):
                pass
            return b"ok"

        job = queue.submit("t", traced)
        queue.wait(job.id, timeout=10)
        assert job.progress["spans"] >= 2
        assert job.progress["bytes_in"] >= 100
        assert job.progress["bytes_out"] >= 40
        assert job.progress["last_stage"] == "stage.two"

    def test_progress_isolated_per_job(self, queue):
        def traced(tag):
            with get_telemetry().span(f"stage.{tag}"):
                time.sleep(0.01)
            return tag.encode()

        jobs = [queue.submit("t", lambda t=f"j{i}": traced(t))
                for i in range(6)]
        for job in jobs:
            queue.wait(job.id, timeout=10)
        for i, job in enumerate(jobs):
            assert job.progress["last_stage"] == f"stage.j{i}"

    def test_ambient_telemetry_restored_after_close(self):
        before = get_telemetry()
        q = JobQueue(capacity=2, workers=1).start()
        assert get_telemetry() is not before
        q.close()
        assert get_telemetry() is before

    def test_status_dict_shape(self, queue):
        job = queue.submit("t", lambda: b"x", chain_id="c1")
        queue.wait(job.id, timeout=10)
        doc = job.to_dict()
        assert doc["id"] == job.id
        assert doc["state"] == "done"
        assert doc["chain"] == "c1"
        assert doc["result_bytes"] == 1
        assert isinstance(doc["progress"], dict)
