"""Exact Riemann solver tests + solver validation against it."""

import numpy as np
import pytest

from repro.simulations.flash import Euler2D, GammaLawEOS
from repro.simulations.flash.riemann import RiemannState, exact_riemann, sod_exact


class TestExactSolver:
    def test_canonical_sod_star_values(self):
        """Textbook Sod values: p* = 0.30313, u* = 0.92745."""
        sol = sod_exact(np.array([0.5]), t=1e-9)
        # At xi ~ 0 we are in the star region (u* > 0 means left of contact).
        assert sol["p"][0] == pytest.approx(0.30313, abs=1e-4)
        assert sol["u"][0] == pytest.approx(0.92745, abs=1e-4)

    def test_trivial_riemann_problem(self):
        """Equal states: the solution is the state everywhere."""
        s = RiemannState(rho=1.0, u=0.3, p=2.0)
        sol = exact_riemann(s, s, np.linspace(-2, 2, 41))
        np.testing.assert_allclose(sol["rho"], 1.0)
        np.testing.assert_allclose(sol["u"], 0.3)
        np.testing.assert_allclose(sol["p"], 2.0)

    def test_symmetric_collision_stagnates(self):
        """Two equal streams colliding: u* = 0, double shock, p* > p."""
        left = RiemannState(rho=1.0, u=1.0, p=1.0)
        right = RiemannState(rho=1.0, u=-1.0, p=1.0)
        sol = exact_riemann(left, right, np.array([0.0]))
        assert sol["u"][0] == pytest.approx(0.0, abs=1e-10)
        assert sol["p"][0] > 1.0

    def test_symmetric_expansion(self):
        """Receding streams: u* = 0, double rarefaction, p* < p."""
        left = RiemannState(rho=1.0, u=-0.5, p=1.0)
        right = RiemannState(rho=1.0, u=0.5, p=1.0)
        sol = exact_riemann(left, right, np.array([0.0]))
        assert sol["u"][0] == pytest.approx(0.0, abs=1e-10)
        assert sol["p"][0] < 1.0

    def test_vacuum_rejected(self):
        left = RiemannState(rho=1.0, u=-10.0, p=0.01)
        right = RiemannState(rho=1.0, u=10.0, p=0.01)
        with pytest.raises(ValueError, match="vacuum"):
            exact_riemann(left, right, np.array([0.0]))

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            RiemannState(rho=-1.0, u=0.0, p=1.0)
        with pytest.raises(ValueError):
            sod_exact(np.array([0.5]), t=0.0)

    def test_solution_fields_physical(self):
        sol = sod_exact(np.linspace(0, 1, 500), t=0.2)
        assert np.all(sol["rho"] > 0)
        assert np.all(sol["p"] > 0)
        # Density is monotone non-increasing left to right for Sod.
        assert np.all(np.diff(sol["rho"]) < 1e-12)


def _run_sod_to(nx: int, t_end: float) -> dict[str, np.ndarray]:
    """Run the FV solver on a 1-D-extruded Sod problem to exactly t_end."""
    ny = 4
    x = (np.arange(nx) + 0.5) / nx
    left = x < 0.5
    dens = np.where(left, 1.0, 0.125)[None, :].repeat(ny, axis=0)
    pres = np.where(left, 1.0, 0.1)[None, :].repeat(ny, axis=0)
    zero = np.zeros((ny, nx))
    solver = Euler2D(dens, zero.copy(), zero.copy(), zero.copy(), pres,
                     eos=GammaLawEOS(gamma_drop=0.0),
                     dx=1.0 / nx, dy=1.0 / ny, bc="outflow", cfl=0.4)
    while solver.time < t_end:
        smax = solver.max_signal_speed()
        dt = min(0.4 * (1.0 / nx) / smax, t_end - solver.time)
        solver.step(dt=dt)
    prim = solver.primitives()
    return {"x": x, "rho": prim["dens"][0], "u": prim["velx"][0],
            "p": prim["pres"][0]}


class TestSolverValidation:
    def test_converges_to_exact_sod(self):
        """First-order scheme: L1 error must shrink with resolution and be
        small in absolute terms at the finer grid."""
        t_end = 0.15
        errors = {}
        for nx in (64, 256):
            got = _run_sod_to(nx, t_end)
            exact = sod_exact(got["x"], t_end)
            errors[nx] = float(np.mean(np.abs(got["rho"] - exact["rho"])))
        assert errors[256] < 0.6 * errors[64], \
            f"no convergence: {errors}"
        assert errors[256] < 0.02

    def test_wave_positions(self):
        """Shock and contact locations must match the exact solution."""
        t_end = 0.15
        got = _run_sod_to(256, t_end)
        exact = sod_exact(got["x"], t_end)
        # Locate the shock as the steepest pressure drop.
        got_shock = got["x"][np.argmin(np.diff(got["p"]))]
        exact_shock = got["x"][np.argmin(np.diff(exact["p"]))]
        assert abs(got_shock - exact_shock) < 0.03
        # Star-region plateau values.
        star = (got["x"] > 0.55) & (got["x"] < 0.68)
        assert np.allclose(got["p"][star], 0.30313, atol=0.02)
        assert np.allclose(got["u"][star], 0.92745, atol=0.05)
