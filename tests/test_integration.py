"""End-to-end integration: simulations -> compression -> files -> restart."""

import numpy as np
import pytest

from repro import Codec
from repro.core import (
    CheckpointChain,
    NumarckConfig,
    change_ratios,
    pearson_r,
)
from repro.io import load_chain, save_chain
from repro.simulations.cmip import CmipSimulation
from repro.simulations.flash import FlashSimulation


class TestFlashEndToEnd:
    def test_compress_all_ten_variables_within_bound(self, flash_checkpoints):
        cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
        comp = Codec(config=cfg)
        prev_cp, curr_cp = flash_checkpoints[3], flash_checkpoints[4]
        for var, prev in prev_cp.items():
            curr = curr_cp[var]
            out, enc, stats = comp.roundtrip(prev, curr)
            field = change_ratios(prev, curr)
            got = change_ratios(prev, out)
            mask = ~(enc.incompressible.reshape(prev.shape) | field.forced_exact)
            err = np.abs(got.ratios - field.ratios)[mask]
            assert err.size == 0 or err.max() < cfg.error_bound * (1 + 1e-9), var
            assert stats.max_error < cfg.error_bound, var

    def test_full_chain_through_disk_restart(self, tmp_path, flash_checkpoints):
        cfg = NumarckConfig(error_bound=1e-3, strategy="clustering")
        chain = CheckpointChain(flash_checkpoints[0]["dens"], cfg)
        for cp in flash_checkpoints[1:]:
            chain.append(cp["dens"])
        path = tmp_path / "dens.nmk"
        save_chain(path, chain)
        loaded = load_chain(path, cfg)
        final = loaded.reconstruct()
        truth = flash_checkpoints[-1]["dens"]
        assert pearson_r(truth, final) > 0.999
        # Accumulated error stays within iterations * bound (open loop).
        rel = np.abs(final / truth - 1)
        assert rel.max() < len(flash_checkpoints) * cfg.error_bound * 2

    def test_clustering_dominates_on_flash(self, flash_checkpoints):
        """Paper Fig. 5: clustering has the lowest incompressible ratio."""
        prev, curr = flash_checkpoints[4]["pres"], flash_checkpoints[5]["pres"]
        gammas = {}
        for strat in ("equal_width", "log_scale", "clustering"):
            cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy=strat)
            enc = Codec(config=cfg).compress(prev, curr)
            gammas[strat] = enc.incompressible_ratio
        assert gammas["clustering"] <= gammas["equal_width"] + 1e-9
        assert gammas["clustering"] <= gammas["log_scale"] + 1e-9


class TestCmipEndToEnd:
    def test_rlus_order_of_magnitude_reduction(self):
        """The paper's headline on CMIP data: ~10x with bounded error.

        Run at the paper's real grid size -- Eq. 3's bin-table term
        ((2^B - 1) * 64 bits) is only negligible for realistic point counts.
        """
        cfg = NumarckConfig(error_bound=5e-3, nbits=9, strategy="clustering")
        comp = Codec(config=cfg)
        sim = CmipSimulation("rlus", seed=11)  # paper grid 90 x 144
        prev = sim.checkpoint()["rlus"]
        sim.advance()
        curr = sim.checkpoint()["rlus"]
        _, _, stats = comp.roundtrip(prev, curr)
        assert stats.ratio_paper > 70.0
        assert stats.mean_error < cfg.error_bound / 2

    def test_abs550aer_harder_than_rlus(self):
        """Paper Figs 4/7: the aerosol variable is the most incompressible."""
        cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
        comp = Codec(config=cfg)

        def gamma(var):
            sim = CmipSimulation(var, nlat=24, nlon=36, seed=8)
            a = sim.checkpoint()[var]
            sim.advance()
            b = sim.checkpoint()[var]
            return comp.compress(a, b).incompressible_ratio

        assert gamma("abs550aer") > gamma("rlus")

    def test_mrro_zeros_forced_exact(self):
        sim = CmipSimulation("mrro", nlat=24, nlon=36, seed=8)
        a = sim.checkpoint()["mrro"]
        sim.advance()
        b = sim.checkpoint()["mrro"]
        enc = Codec(config=NumarckConfig()).compress(a, b)
        zero_frac = np.mean(a == 0)
        assert enc.incompressible_ratio >= zero_frac * 0.99

    def test_higher_precision_reduces_gamma(self, cmip_rlus_checkpoints):
        """Paper Fig. 6: more index bits -> fewer incompressible points."""
        prev, curr = cmip_rlus_checkpoints[0], cmip_rlus_checkpoints[1]
        gammas = []
        for b in (6, 8, 10):
            cfg = NumarckConfig(error_bound=1e-3, nbits=b, strategy="equal_width")
            gammas.append(
                Codec(config=cfg).compress(prev, curr).incompressible_ratio
            )
        assert gammas[0] >= gammas[1] >= gammas[2]

    def test_larger_tolerance_reduces_gamma(self):
        """Paper Fig. 7: growing E shrinks the incompressible set."""
        sim = CmipSimulation("abs550aer", nlat=24, nlon=36, seed=8)
        a = sim.checkpoint()["abs550aer"]
        sim.advance()
        b = sim.checkpoint()["abs550aer"]
        gammas = []
        for e in (1e-3, 3e-3, 5e-3):
            cfg = NumarckConfig(error_bound=e, nbits=8, strategy="clustering")
            gammas.append(
                Codec(config=cfg).compress(a, b).incompressible_ratio
            )
        assert gammas[0] >= gammas[1] >= gammas[2]


class TestCrossSystem:
    def test_numarck_beats_bspline_accuracy_at_better_ratio(self,
                                                            cmip_rlus_checkpoints):
        """Table I/II shape: NUMARCK compresses more than B-Splines' 20 %
        while reconstructing far more accurately."""
        from repro.baselines import BSplineCompressor
        from repro.core import rmse

        prev, curr = cmip_rlus_checkpoints[2], cmip_rlus_checkpoints[3]
        cfg = NumarckConfig(error_bound=5e-3, nbits=9, strategy="clustering")
        out, _, stats = Codec(config=cfg).roundtrip(prev, curr)

        bs = BSplineCompressor(0.8)
        bs_out = bs.decompress(bs.compress(curr)).reshape(curr.shape)

        assert stats.ratio_paper > 20.0
        assert rmse(curr, out) < rmse(curr, bs_out)

    def test_spmd_change_ratio_pipeline(self, cmip_rlus_checkpoints):
        """Distributed encode: ranks compute change ratios on shards and the
        fitted model on gathered candidates matches the serial one."""
        from repro.kmeans import histogram_init, parallel_kmeans1d
        from repro.parallel import block_partition, run_spmd

        prev, curr = cmip_rlus_checkpoints[0], cmip_rlus_checkpoints[1]
        ratios = change_ratios(prev, curr).ratios.ravel()
        init = histogram_init(ratios, 16)

        def worker(comm, shards, init):
            res = parallel_kmeans1d(comm, shards[comm.rank], init)
            return res.centroids

        shards = block_partition(ratios, 2)
        results = run_spmd(worker, 2, shards, init)
        from repro.kmeans import kmeans1d

        ref = kmeans1d(ratios, init)
        for cent in results:
            np.testing.assert_allclose(cent, ref.centroids, rtol=1e-12)
