"""3-D Euler solver and FlashSimulation3D tests."""

import numpy as np
import pytest

from repro.simulations.flash import (
    Euler2D,
    Euler3D,
    FLASH_VARIABLES,
    FlashSimulation3D,
    GammaLawEOS,
)
from repro.simulations.flash.simulation3d import sedov3d, sod3d


def _solver(problem, n=16, **kw):
    ic = problem(n, n, n)
    return Euler3D(ic["dens"], ic["velx"], ic["vely"], ic["velz"], ic["pres"],
                   dx=1 / n, dy=1 / n, dz=1 / n, **kw)


class TestConservation:
    def test_mass_conserved(self):
        solver = _solver(sedov3d)
        m0 = solver.total_mass()
        for _ in range(10):
            solver.step()
        assert solver.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_energy_conserved(self):
        solver = _solver(sedov3d)
        e0 = solver.total_energy()
        for _ in range(10):
            solver.step()
        assert solver.total_energy() == pytest.approx(e0, rel=1e-8)

    def test_uniform_steady(self):
        ones = np.ones((8, 8, 8))
        solver = Euler3D(ones, 0 * ones, 0 * ones, 0 * ones, ones,
                         dx=1 / 8, dy=1 / 8, dz=1 / 8)
        before = solver.u.copy()
        for _ in range(5):
            solver.step()
        np.testing.assert_allclose(solver.u, before, atol=1e-13)


class TestPhysics:
    def test_blast_expands_spherically(self):
        solver = _solver(sedov3d, n=24)
        for _ in range(15):
            solver.step()
        prim = solver.primitives()
        c = 12
        # Central density drops; the solution stays symmetric under axis
        # permutation (spherical blast in a cubic domain).
        assert prim["dens"][c, c, c] < 1.0
        np.testing.assert_allclose(prim["dens"],
                                   np.transpose(prim["dens"], (1, 2, 0)),
                                   atol=1e-10)
        np.testing.assert_allclose(prim["dens"],
                                   np.transpose(prim["dens"], (2, 0, 1)),
                                   atol=1e-10)

    def test_matches_2d_on_extruded_problem(self):
        """A y/z-invariant Sod tube must evolve identically in 2-D and 3-D."""
        n = 32
        eos = GammaLawEOS(gamma_drop=0.0)
        ic3 = sod3d(4, 4, n)
        s3 = Euler3D(ic3["dens"], ic3["velx"], ic3["vely"], ic3["velz"],
                     ic3["pres"], eos=eos, dx=1 / n, dy=1 / 4, dz=1 / 4,
                     bc="outflow")
        x = (np.arange(n) + 0.5) / n
        left = x < 0.5
        dens2 = np.where(left, 1.0, 0.125)[None, :].repeat(4, axis=0)
        pres2 = np.where(left, 1.0, 0.1)[None, :].repeat(4, axis=0)
        zero2 = np.zeros((4, n))
        s2 = Euler2D(dens2, zero2.copy(), zero2.copy(), zero2.copy(), pres2,
                     eos=eos, dx=1 / n, dy=1 / 4, bc="outflow")
        for _ in range(10):
            dt = min(s2.cfl, s3.cfl) * (1 / n) / max(s2.max_signal_speed(),
                                                     s3.max_signal_speed())
            s2.step(dt=dt)
            s3.step(dt=dt)
        np.testing.assert_allclose(s3.primitives()["dens"][0, 0],
                                   s2.primitives()["dens"][0], rtol=1e-10)

    def test_positivity(self):
        solver = _solver(lambda *s: sedov3d(*s, blast_pressure=500.0), n=16)
        for _ in range(25):
            solver.step()
        prim = solver.primitives()
        assert prim["dens"].min() > 0 and prim["pres"].min() > 0
        assert np.all(np.isfinite(solver.u))


class TestAPI:
    def test_validation(self):
        ones = np.ones((4, 4))
        with pytest.raises(ValueError, match="3-D"):
            Euler3D(ones, ones, ones, ones, ones)
        ones3 = np.ones((4, 4, 4))
        with pytest.raises(ValueError, match="mismatch"):
            Euler3D(ones3, np.ones((2, 2, 2)), ones3, ones3, ones3)
        with pytest.raises(ValueError, match="bc"):
            Euler3D(ones3, ones3, ones3, ones3, ones3, bc="weird")

    def test_set_state_roundtrip(self):
        solver = _solver(sedov3d)
        for _ in range(3):
            solver.step()
        prim = solver.primitives()
        other = _solver(sedov3d)
        other.set_state(prim["dens"], prim["velx"], prim["vely"],
                        prim["velz"], prim["pres"])
        np.testing.assert_allclose(other.primitives()["dens"], prim["dens"],
                                   rtol=1e-10)


class TestSimulation3D:
    def test_checkpoint_variables(self):
        sim = FlashSimulation3D("sedov", n=12)
        cp = sim.checkpoint()
        assert set(cp) == set(FLASH_VARIABLES)
        assert cp["dens"].shape == (12, 12, 12)

    def test_restore_and_continue(self):
        a = FlashSimulation3D("sedov", n=12, steps_per_checkpoint=1)
        a.advance()
        cp = a.checkpoint()
        b = FlashSimulation3D("sedov", n=12, steps_per_checkpoint=1)
        b.restore(cp)
        a.advance()
        b.advance()
        np.testing.assert_allclose(b.checkpoint()["dens"],
                                   a.checkpoint()["dens"], rtol=1e-7)

    def test_compresses_with_numarck(self):
        """End-to-end: the 3-D substrate feeds the compressor correctly."""
        from repro import Codec
        from repro.core import NumarckConfig

        sim = FlashSimulation3D("sedov", n=16, steps_per_checkpoint=2)
        for _ in range(3):
            sim.advance()
        prev = sim.checkpoint()["pres"]
        sim.advance()
        curr = sim.checkpoint()["pres"]
        comp = Codec(config=NumarckConfig(error_bound=1e-3))
        out, enc, stats = comp.roundtrip(prev, curr)
        assert enc.shape == (16, 16, 16)
        assert stats.max_error < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashSimulation3D("warp")
        with pytest.raises(ValueError):
            FlashSimulation3D("sedov", n=4)
        with pytest.raises(ValueError):
            FlashSimulation3D("sedov", steps_per_checkpoint=0)
