"""Tests for repro.telemetry.analysis: trees, paths, stacks, diffs."""

import numpy as np
import pytest

from repro import Codec
from repro.core import NumarckConfig
from repro.telemetry import (
    Telemetry,
    critical_path,
    diff_table,
    diff_traces,
    folded_stacks,
    self_time_ranking,
    span_tree,
    stage_rollup,
    use,
)


def _span(name, sid, parent=None, wall=1.0, t_start=0.0, attrs=None):
    return {"type": "span", "name": name, "id": sid, "parent": parent,
            "depth": 0, "t_start": t_start, "wall_s": wall, "cpu_s": wall,
            "attrs": attrs or {}}


class TestSpanTree:
    def test_simple_forest(self):
        records = [
            _span("child", 2, parent=1, wall=0.4, t_start=0.1),
            _span("root", 1, wall=1.0),
            _span("other_root", 3, wall=0.5, t_start=2.0),
        ]
        roots = span_tree(records)
        assert [r.name for r in roots] == ["root", "other_root"]
        assert [c.name for c in roots[0].children] == ["child"]
        assert roots[0].self_s == pytest.approx(0.6)
        assert roots[0].children[0].self_s == pytest.approx(0.4)

    def test_out_of_order_records(self):
        # Sinks write spans in completion order (children first); the
        # tree must come out identical for any permutation.
        records = [
            _span("root", 1, wall=3.0),
            _span("b", 3, parent=1, wall=1.0, t_start=1.5),
            _span("a", 2, parent=1, wall=1.0, t_start=0.5),
            _span("a.x", 4, parent=2, wall=0.5, t_start=0.6),
        ]
        for perm in (records, records[::-1], records[2:] + records[:2]):
            roots = span_tree(perm)
            assert len(roots) == 1
            assert [c.name for c in roots[0].children] == ["a", "b"]
            assert [c.name for c in roots[0].children[0].children] == ["a.x"]

    def test_unclosed_parent_orphans_become_roots(self):
        # A crash leaves the parent span unfinished (never written); its
        # children must surface as roots, not vanish.
        records = [
            _span("survivor", 5, parent=99, wall=0.2),
            _span("root", 1, wall=1.0, t_start=1.0),
        ]
        roots = span_tree(records)
        assert sorted(r.name for r in roots) == ["root", "survivor"]

    def test_self_parent_cycle_is_root(self):
        records = [_span("weird", 7, parent=7, wall=0.1)]
        roots = span_tree(records)
        assert [r.name for r in roots] == ["weird"]

    def test_walk_covers_all(self):
        records = [
            _span("root", 1, wall=1.0),
            _span("a", 2, parent=1, wall=0.3),
            _span("a.x", 3, parent=2, wall=0.1),
        ]
        (root,) = span_tree(records)
        assert [n.name for n in root.walk()] == ["root", "a", "a.x"]

    def test_non_span_records_ignored(self):
        records = [_span("root", 1), {"type": "metrics", "counters": {}}]
        assert len(span_tree(records)) == 1


class TestRollupAndRanking:
    def test_rollup_self_time(self):
        records = [
            _span("root", 1, wall=1.0),
            _span("leaf", 2, parent=1, wall=0.75),
        ]
        roll = stage_rollup(records)
        assert roll["root"]["self_s"] == pytest.approx(0.25)
        assert roll["leaf"]["self_s"] == pytest.approx(0.75)

    def test_rollup_memory_peak_is_max(self):
        records = [
            _span("s", 1, wall=1.0, attrs={"mem_py_peak_kb": 10.0}),
            _span("s", 2, wall=1.0, t_start=2.0,
                  attrs={"mem_py_peak_kb": 30.0}),
        ]
        assert stage_rollup(records)["s"]["mem_py_peak_kb"] == 30.0

    def test_ranking_orders_by_self_time(self):
        records = [
            _span("root", 1, wall=1.0),
            _span("hot", 2, parent=1, wall=0.9),
            _span("cold", 3, parent=2, wall=0.05),
        ]
        ranked = self_time_ranking(records)
        assert [r["stage"] for r in ranked] == ["hot", "root", "cold"]
        assert [r["stage"] for r in self_time_ranking(records, top=1)] == \
            ["hot"]


class TestCriticalPath:
    def test_follows_heaviest_chain(self):
        records = [
            _span("root", 1, wall=1.0),
            _span("light", 2, parent=1, wall=0.2),
            _span("heavy", 3, parent=1, wall=0.7),
            _span("heavy.leaf", 4, parent=3, wall=0.6),
        ]
        path = critical_path(records)
        assert [p["name"] for p in path] == ["root", "heavy", "heavy.leaf"]
        assert [p["depth"] for p in path] == [0, 1, 2]

    def test_picks_heaviest_root(self):
        records = [_span("small", 1, wall=0.1),
                   _span("big", 2, wall=5.0, t_start=1.0)]
        assert critical_path(records)[0]["name"] == "big"

    def test_empty_trace(self):
        assert critical_path([]) == []


class TestFoldedStacks:
    def test_stacks_and_merging(self):
        records = [
            _span("root", 1, wall=1.0),
            _span("a", 2, parent=1, wall=0.25),
            _span("a", 3, parent=1, wall=0.25, t_start=0.5),
        ]
        lines = folded_stacks(records)
        by_stack = dict(line.rsplit(" ", 1) for line in lines)
        # Two sibling "a" spans merge into one folded line.
        assert set(by_stack) == {"root", "root;a"}
        assert int(by_stack["root;a"]) == 500_000  # 0.5 s of self time in us
        assert int(by_stack["root"]) == 500_000

    def test_real_trace_has_pipeline_prefix(self, rng):
        prev = rng.uniform(1.0, 2.0, 5000)
        curr = prev * (1 + rng.normal(0, 0.002, 5000))
        tel = Telemetry()
        with use(tel):
            Codec(config=NumarckConfig(error_bound=1e-3)).compress(
                prev, curr)
        lines = folded_stacks([s.to_dict() for s in tel.spans])
        assert any(line.startswith("codec.compress;encode ")
                   for line in lines)


class TestDiff:
    def test_deltas_sum_to_root_delta(self):
        a = [_span("root", 1, wall=1.0), _span("x", 2, parent=1, wall=0.5)]
        b = [_span("root", 1, wall=2.0), _span("x", 2, parent=1, wall=1.6)]
        diffs = diff_traces(a, b)
        assert sum(d["delta_self"] for d in diffs) == pytest.approx(1.0)
        # x grew by 1.1 of self time, root self shrank by 0.1.
        assert diffs[0]["stage"] == "x"
        assert diffs[0]["delta_self"] == pytest.approx(1.1)

    def test_stage_only_in_one_trace(self):
        a = [_span("root", 1, wall=1.0)]
        b = [_span("root", 1, wall=1.0),
             _span("new", 2, parent=1, wall=0.4)]
        by_stage = {d["stage"]: d for d in diff_traces(a, b)}
        assert by_stage["new"]["calls_a"] == 0
        assert by_stage["new"]["delta_self"] == pytest.approx(0.4)

    def test_real_traces_attribute_strategy_change(self, rng):
        prev = rng.uniform(1.0, 2.0, 20_000)
        curr = prev * (1 + rng.normal(0, 0.002, 20_000))
        traces = {}
        for strategy in ("equal_width", "clustering"):
            tel = Telemetry()
            with use(tel):
                Codec(config=NumarckConfig(
                    error_bound=1e-3, strategy=strategy)).compress(prev, curr)
            traces[strategy] = [s.to_dict() for s in tel.spans]
        diffs = diff_traces(traces["equal_width"], traces["clustering"])
        top = diffs[0]
        assert top["stage"] in ("kmeans.lloyd", "strategy.clustering.fit")
        assert top["delta_self"] > 0
        assert top["share"] > 0.3

    def test_diff_table_renders(self):
        a = [_span("root", 1, wall=1.0)]
        b = [_span("root", 1, wall=2.0)]
        table = diff_table(a, b, labels=("before", "after"))
        assert "self ms before" in table
        assert "root" in table
        assert len(diff_table(a, b, top=0).splitlines()) <= 3


class TestMemoryGauges:
    def test_span_records_python_peak(self):
        tel = Telemetry(memory=True)
        try:
            with use(tel):
                with tel.span("alloc"):
                    block = np.ones(512 * 1024)  # ~4 MiB
                    del block
        finally:
            tel.close()
        attrs = tel.spans[0].attrs
        assert attrs["mem_py_peak_kb"] > 3000
        if "mem_rss_peak_kb" in attrs:
            assert attrs["mem_rss_peak_kb"] > 0

    def test_child_peak_propagates_to_parent(self):
        tel = Telemetry(memory=True)
        try:
            with use(tel):
                with tel.span("parent"):
                    with tel.span("child"):
                        block = np.ones(512 * 1024)
                        del block
        finally:
            tel.close()
        by_name = {s.name: s.attrs for s in tel.spans}
        assert by_name["child"]["mem_py_peak_kb"] > 3000
        # The parent's peak must include what happened inside the child,
        # even though tracemalloc's global peak was reset on child entry.
        assert by_name["parent"]["mem_py_peak_kb"] >= \
            by_name["child"]["mem_py_peak_kb"] * 0.9

    def test_memory_off_leaves_attrs_clean(self):
        tel = Telemetry()
        with use(tel):
            with tel.span("plain"):
                pass
        assert "mem_py_peak_kb" not in tel.spans[0].attrs

    def test_close_stops_tracemalloc_only_if_started(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        tel = Telemetry(memory=True)
        tel.close()
        assert tracemalloc.is_tracing() == was_tracing
