"""Multi-variable checkpoint file tests."""

import numpy as np
import pytest

from repro.core import CheckpointChain, FormatError, NumarckConfig, encode_pair
from repro.io import MultiChainWriter, load_chains, save_chains
from repro.simulations.flash import FlashSimulation


def _chains(rng, n_vars=3, n_iters=3, n=1500):
    cfg = NumarckConfig(error_bound=1e-3)
    out = {}
    for v in range(n_vars):
        data = rng.uniform(1, 2, n)
        chain = CheckpointChain(data, cfg)
        for _ in range(n_iters):
            data = data * (1 + rng.normal(0, 0.002, n))
            chain.append(data)
        out[f"var{v}"] = chain
    return out


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        chains = _chains(rng)
        path = tmp_path / "multi.nmk"
        nbytes = save_chains(path, chains)
        assert nbytes == path.stat().st_size
        loaded = load_chains(path)
        assert set(loaded) == set(chains)
        for name, chain in chains.items():
            for i in range(len(chain)):
                np.testing.assert_array_equal(chain.reconstruct(i),
                                              loaded[name].reconstruct(i))

    def test_uneven_chain_lengths(self, tmp_path, rng):
        chains = _chains(rng, n_vars=2, n_iters=2)
        chains["var0"].append(chains["var0"].reconstruct() * 1.001)
        path = tmp_path / "m.nmk"
        save_chains(path, chains)
        loaded = load_chains(path)
        assert len(loaded["var0"]) == 4
        assert len(loaded["var1"]) == 3

    def test_loaded_chains_appendable(self, tmp_path, rng):
        chains = _chains(rng, n_vars=1, n_iters=1)
        path = tmp_path / "m.nmk"
        save_chains(path, chains)
        loaded = load_chains(path, NumarckConfig())
        prev = loaded["var0"].reconstruct()
        loaded["var0"].append(prev * 1.002)
        assert len(loaded["var0"]) == 3

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            save_chains(tmp_path / "e.nmk", {})

    def test_flash_checkpoint_roundtrip(self, tmp_path, flash_checkpoints):
        """All ten FLASH variables in one file, like a real checkpoint."""
        cfg = NumarckConfig(error_bound=1e-3)
        chains = {}
        for var in flash_checkpoints[0]:
            chain = CheckpointChain(flash_checkpoints[0][var], cfg)
            for cp in flash_checkpoints[1:4]:
                chain.append(cp[var])
            chains[var] = chain
        path = tmp_path / "flash.nmk"
        save_chains(path, chains)
        loaded = load_chains(path)
        assert len(loaded) == 10
        for var in chains:
            np.testing.assert_array_equal(chains[var].reconstruct(),
                                          loaded[var].reconstruct())


class TestWriter:
    def test_duplicate_full_rejected(self, tmp_path, rng):
        with MultiChainWriter.create(tmp_path / "w.nmk") as w:
            w.write_full("a", rng.normal(size=10))
            with pytest.raises(FormatError, match="already"):
                w.write_full("a", rng.normal(size=10))

    def test_delta_before_full_rejected(self, tmp_path, rng):
        prev = rng.uniform(1, 2, 50)
        enc = encode_pair(prev, prev * 1.01, NumarckConfig())[0]
        with MultiChainWriter.create(tmp_path / "w.nmk") as w:
            with pytest.raises(FormatError, match="no full"):
                w.write_delta("a", enc)

    def test_interleaved_streaming_write(self, tmp_path, rng):
        """Write the way an in-situ integration would: iteration by
        iteration across variables."""
        cfg = NumarckConfig(error_bound=1e-3)
        a = rng.uniform(1, 2, 500)
        b = rng.uniform(5, 6, 500)
        path = tmp_path / "s.nmk"
        with MultiChainWriter.create(path) as w:
            w.write_full("a", a)
            w.write_full("b", b)
            ca, cb = a, b
            for _ in range(2):
                na = ca * (1 + rng.normal(0, 0.002, 500))
                nb = cb * (1 + rng.normal(0, 0.002, 500))
                w.write_delta("a", encode_pair(ca, na, cfg)[0])
                w.write_delta("b", encode_pair(cb, nb, cfg)[0])
                ca, cb = na, nb
        loaded = load_chains(path)
        assert len(loaded["a"]) == 3 and len(loaded["b"]) == 3
        rel = np.abs(loaded["a"].reconstruct() / ca - 1)
        assert rel.max() < 5e-3

    def test_long_name_rejected(self, tmp_path, rng):
        with MultiChainWriter.create(tmp_path / "w.nmk") as w:
            with pytest.raises(FormatError, match="too long"):
                w.write_full("x" * 300, rng.normal(size=10))

    def test_corruption_detected(self, tmp_path, rng):
        path = tmp_path / "c.nmk"
        save_chains(path, _chains(rng, n_vars=1, n_iters=1))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(FormatError):
            load_chains(path)
