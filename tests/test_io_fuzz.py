"""Fuzzing the container reader: corruption must always be *detected*.

The restart path feeds decoded checkpoints straight back into a running
simulation, so the failure mode that matters is silent corruption.  These
tests assert that arbitrary single-bit flips and random garbage always
surface as :class:`~repro.core.errors.FormatError` -- never as a different
exception type and never as silently wrong data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CheckpointChain, FormatError, NumarckConfig
from repro.io import load_chain, save_chain


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("fuzz_work")


@pytest.fixture(scope="module")
def chain_blob(tmp_path_factory):
    rng = np.random.default_rng(99)
    data = rng.uniform(1, 2, 800)
    chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
    for _ in range(2):
        data = data * (1 + rng.normal(0, 0.002, 800))
        chain.append(data)
    path = tmp_path_factory.mktemp("fuzz") / "chain.nmk"
    save_chain(path, chain)
    truth = chain.reconstruct()
    return path, path.read_bytes(), truth


def _load_mutated(tmp_path, blob: bytes):
    p = tmp_path / "mut.nmk"
    p.write_bytes(blob)
    return load_chain(p)


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_single_bit_flip_always_detected(chain_blob, workdir, data):
    path, blob, truth = chain_blob
    pos = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    mutated = bytearray(blob)
    mutated[pos] ^= 1 << bit
    with pytest.raises(FormatError):
        _load_mutated(workdir, bytes(mutated))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_truncation_always_detected(chain_blob, workdir, data):
    path, blob, truth = chain_blob
    cut = data.draw(st.integers(1, len(blob) - 1))
    with pytest.raises(FormatError):
        _load_mutated(workdir, blob[:cut])


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=0, max_size=200))
def test_random_garbage_rejected(workdir, junk):
    p = workdir / "junk.nmk"
    p.write_bytes(junk)
    with pytest.raises(FormatError):
        load_chain(p)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_garbage_after_magic_rejected(workdir, data):
    """Even with a valid magic+version prefix, junk records must fail."""
    junk = data.draw(st.binary(min_size=1, max_size=200))
    p = workdir / "g.nmk"
    p.write_bytes(b"NMRK\x01\x00" + junk)
    with pytest.raises(FormatError):
        load_chain(p)


def test_untouched_blob_still_loads(chain_blob, tmp_path):
    """Sanity: the fixture blob itself is valid (the fuzzers above would
    vacuously pass if it were not)."""
    path, blob, truth = chain_blob
    loaded = _load_mutated(tmp_path, blob)
    np.testing.assert_array_equal(loaded.reconstruct(), truth)
