"""Fuzzing the container reader: corruption must always be *detected*.

The restart path feeds decoded checkpoints straight back into a running
simulation, so the failure mode that matters is silent corruption.  These
tests assert that arbitrary single-bit flips and random garbage always
surface as :class:`~repro.core.errors.FormatError` -- never as a different
exception type and never as silently wrong data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CheckpointChain,
    FormatError,
    NumarckConfig,
    SalvageError,
)
from repro.io import (
    load_chain,
    load_chains,
    load_streamed,
    save_chain,
    save_chains,
    save_streamed,
)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("fuzz_work")


@pytest.fixture(scope="module")
def chain_blob(tmp_path_factory):
    rng = np.random.default_rng(99)
    data = rng.uniform(1, 2, 800)
    chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
    for _ in range(2):
        data = data * (1 + rng.normal(0, 0.002, 800))
        chain.append(data)
    path = tmp_path_factory.mktemp("fuzz") / "chain.nmk"
    save_chain(path, chain)
    truth = chain.reconstruct()
    return path, path.read_bytes(), truth


def _load_mutated(tmp_path, blob: bytes):
    p = tmp_path / "mut.nmk"
    p.write_bytes(blob)
    return load_chain(p)


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_single_bit_flip_always_detected(chain_blob, workdir, data):
    path, blob, truth = chain_blob
    pos = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    mutated = bytearray(blob)
    mutated[pos] ^= 1 << bit
    with pytest.raises(FormatError):
        _load_mutated(workdir, bytes(mutated))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_truncation_always_detected(chain_blob, workdir, data):
    path, blob, truth = chain_blob
    cut = data.draw(st.integers(1, len(blob) - 1))
    with pytest.raises(FormatError):
        _load_mutated(workdir, blob[:cut])


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=0, max_size=200))
def test_random_garbage_rejected(workdir, junk):
    p = workdir / "junk.nmk"
    p.write_bytes(junk)
    with pytest.raises(FormatError):
        load_chain(p)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_garbage_after_magic_rejected(workdir, data):
    """Even with a valid magic+version prefix, junk records must fail."""
    junk = data.draw(st.binary(min_size=1, max_size=200))
    p = workdir / "g.nmk"
    p.write_bytes(b"NMRK\x01\x00" + junk)
    with pytest.raises(FormatError):
        load_chain(p)


def test_untouched_blob_still_loads(chain_blob, tmp_path):
    """Sanity: the fixture blob itself is valid (the fuzzers above would
    vacuously pass if it were not)."""
    path, blob, truth = chain_blob
    loaded = _load_mutated(tmp_path, blob)
    np.testing.assert_array_equal(loaded.reconstruct(), truth)


# -- salvage mode: recovery must never return wrong data ---------------------


@pytest.fixture(scope="module")
def chain_states(chain_blob):
    """Decoded state at every iteration of the fixture chain."""
    path, blob, truth = chain_blob
    chain = load_chain(path)
    return [chain.reconstruct(i) for i in range(len(chain))]


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_salvage_truncation_returns_exact_prefix_or_raises(
        chain_blob, chain_states, workdir, data):
    """For a cut at *every* byte boundary, ``recover="tail"`` either
    salvages a chain whose every iteration matches the original exactly,
    or raises (SalvageError when nothing survives).  Never wrong data."""
    path, blob, truth = chain_blob
    cut = data.draw(st.integers(1, len(blob) - 1))
    p = workdir / "s.nmk"
    p.write_bytes(blob[:cut])
    try:
        loaded, report = load_chain(p, recover="tail")
    except SalvageError:
        return  # header or FULL record destroyed: nothing to salvage
    assert 1 <= len(loaded) <= len(chain_states)
    assert report.records_kept == len(loaded)
    assert (report.bytes_truncated > 0) == (not report.clean)
    for i in range(len(loaded)):
        np.testing.assert_array_equal(loaded.reconstruct(i), chain_states[i])


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_salvage_bitflip_never_silently_corrupts(chain_blob, chain_states,
                                                 workdir, data):
    """A single bit flip anywhere either raises (interior damage) or is
    dropped by salvage; the surviving prefix is always bit-exact."""
    path, blob, truth = chain_blob
    pos = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    mutated = bytearray(blob)
    mutated[pos] ^= 1 << bit
    p = workdir / "sf.nmk"
    p.write_bytes(bytes(mutated))
    try:
        loaded, report = load_chain(p, recover="tail")
    except FormatError:  # includes SalvageError
        return
    # Only damage confined to the trailing record can reach this branch.
    assert len(loaded) < len(chain_states)
    for i in range(len(loaded)):
        np.testing.assert_array_equal(loaded.reconstruct(i), chain_states[i])


# -- multichain format: same detection guarantees ----------------------------


@pytest.fixture(scope="module")
def multichain_blob(tmp_path_factory):
    rng = np.random.default_rng(17)
    chains = {}
    for name in ("dens", "pres"):
        data = rng.uniform(1, 2, 400)
        chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
        for _ in range(2):
            data = data * (1 + rng.normal(0, 0.002, 400))
            chain.append(data)
        chains[name] = chain
    path = tmp_path_factory.mktemp("fuzz_multi") / "multi.nmk"
    save_chains(path, chains)
    truth = {n: c.reconstruct() for n, c in chains.items()}
    return path, path.read_bytes(), truth


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_multichain_bit_flip_always_detected(multichain_blob, workdir, data):
    path, blob, truth = multichain_blob
    pos = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    mutated = bytearray(blob)
    mutated[pos] ^= 1 << bit
    p = workdir / "m.nmk"
    p.write_bytes(bytes(mutated))
    with pytest.raises(FormatError):
        load_chains(p)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_multichain_truncation_always_detected(multichain_blob, workdir,
                                               data):
    path, blob, truth = multichain_blob
    cut = data.draw(st.integers(1, len(blob) - 1))
    p = workdir / "mt.nmk"
    p.write_bytes(blob[:cut])
    with pytest.raises(FormatError):
        load_chains(p)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_multichain_salvage_prefix_exact_or_raises(multichain_blob, workdir,
                                                   data):
    path, blob, truth = multichain_blob
    cut = data.draw(st.integers(1, len(blob) - 1))
    p = workdir / "ms.nmk"
    p.write_bytes(blob[:cut])
    try:
        loaded, report = load_chains(p, recover="tail")
    except SalvageError:
        return
    reference = load_chains(path)
    for name, chain in loaded.items():
        full_ref = reference[name]
        assert len(chain) <= len(full_ref)
        for i in range(len(chain)):
            np.testing.assert_array_equal(chain.reconstruct(i),
                                          full_ref.reconstruct(i))


def test_multichain_untouched_blob_still_loads(multichain_blob, tmp_path):
    path, blob, truth = multichain_blob
    p = tmp_path / "ok.nmk"
    p.write_bytes(blob)
    loaded = load_chains(p)
    for name, expected in truth.items():
        np.testing.assert_array_equal(loaded[name].reconstruct(), expected)


# -- streamed format: same detection guarantees ------------------------------


@pytest.fixture(scope="module")
def streamed_blob(tmp_path_factory):
    rng = np.random.default_rng(23)
    prev = rng.uniform(1, 2, 1200)
    curr = prev * (1 + rng.normal(0, 0.002, 1200))

    def chunks(arr):
        def factory():
            for start in range(0, arr.size, 256):
                yield arr[start : start + 256]
        return factory

    from repro import Codec

    encoder = Codec(config=NumarckConfig(error_bound=1e-3),
                               chunk_size=256)
    streamed = encoder.compress_stream(chunks(prev), chunks(curr))
    path = tmp_path_factory.mktemp("fuzz_stream") / "iter.nms"
    save_streamed(path, streamed)
    return path, path.read_bytes()


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_streamed_bit_flip_always_detected(streamed_blob, workdir, data):
    path, blob = streamed_blob
    pos = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    mutated = bytearray(blob)
    mutated[pos] ^= 1 << bit
    p = workdir / "st.nms"
    p.write_bytes(bytes(mutated))
    with pytest.raises(FormatError):
        load_streamed(p)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_streamed_truncation_always_detected(streamed_blob, workdir, data):
    path, blob = streamed_blob
    cut = data.draw(st.integers(1, len(blob) - 1))
    p = workdir / "stt.nms"
    p.write_bytes(blob[:cut])
    with pytest.raises(FormatError):
        load_streamed(p)


def test_streamed_untouched_blob_still_loads(streamed_blob, tmp_path):
    path, blob = streamed_blob
    p = tmp_path / "ok.nms"
    p.write_bytes(blob)
    streamed = load_streamed(p)
    assert streamed.n_points == 1200
