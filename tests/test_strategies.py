"""Approximation-strategy tests: BinModel plus the three fitters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NumarckConfig
from repro.core.strategies import (
    ClusteringStrategy,
    EqualWidthStrategy,
    LogScaleStrategy,
)
from repro.core.strategies.base import ApproximationStrategy, BinModel

ALL = [EqualWidthStrategy(), LogScaleStrategy(), ClusteringStrategy()]
E = 1e-3
K = 255


class TestBinModel:
    def test_assign_nearest(self):
        model = BinModel(np.array([-1.0, 0.0, 2.0]))
        labels = model.assign(np.array([-0.9, 0.4, 1.5, 3.0]))
        np.testing.assert_array_equal(labels, [0, 1, 2, 2])

    def test_approximate(self):
        model = BinModel(np.array([0.0, 10.0]))
        np.testing.assert_array_equal(model.approximate(np.array([1.0, 9.0])),
                                      [0.0, 10.0])

    def test_single_representative(self):
        model = BinModel(np.array([5.0]))
        assert model.assign(np.array([1.0, 100.0])).tolist() == [0, 0]

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            BinModel(np.array([2.0, 1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BinModel(np.array([]))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            BinModel(np.array([0.0, np.inf]))


class TestRegistry:
    def test_from_config_dispatch(self):
        for name, cls in (("equal_width", EqualWidthStrategy),
                          ("log_scale", LogScaleStrategy),
                          ("clustering", ClusteringStrategy)):
            cfg = NumarckConfig(strategy=name)
            assert isinstance(ApproximationStrategy.from_config(cfg), cls)

    def test_from_config_forwards_clustering_params(self):
        cfg = NumarckConfig(strategy="clustering", kmeans_init="random",
                            kmeans_max_iter=3)
        s = ApproximationStrategy.from_config(cfg)
        assert s.init == "random" and s.max_iter == 3

    def test_from_config_on_subclass(self):
        cfg = NumarckConfig(strategy="clustering")
        # calling from_config on a concrete class builds THAT class,
        # regardless of config.strategy
        assert isinstance(EqualWidthStrategy.from_config(cfg),
                          EqualWidthStrategy)


@pytest.mark.parametrize("strategy", ALL, ids=lambda s: s.name)
class TestCommonContract:
    def test_at_most_k_sorted_finite(self, strategy, rng):
        ratios = rng.normal(0, 0.01, 5000)
        model = strategy.fit(ratios, K, E)
        assert 1 <= model.n_bins <= K
        assert np.all(np.diff(model.representatives) >= 0)
        assert np.all(np.isfinite(model.representatives))

    def test_constant_input_single_bin(self, strategy):
        model = strategy.fit(np.full(100, 0.02), K, E)
        assert model.n_bins == 1
        assert model.representatives[0] == pytest.approx(0.02)

    def test_k_one(self, strategy, rng):
        model = strategy.fit(rng.normal(0, 0.01, 200), 1, E)
        assert model.n_bins == 1

    def test_empty_raises(self, strategy):
        with pytest.raises(ValueError):
            strategy.fit(np.array([]), K, E)

    def test_nonfinite_raises(self, strategy):
        with pytest.raises(ValueError):
            strategy.fit(np.array([0.1, np.nan]), K, E)

    def test_bad_k_raises(self, strategy, rng):
        with pytest.raises(ValueError):
            strategy.fit(rng.normal(size=10), 0, E)

    def test_concentrated_data_within_bound(self, strategy, rng):
        """When the data span fits in 2*E*k, every point must be coverable.

        Log-scale spends its budget geometrically, so give it data that is
        concentrated in *log* space; the fixed-width strategies get a
        linearly concentrated span.  Either way the bin budget suffices.
        """
        if strategy.name == "log_scale":
            ratios = np.exp(rng.uniform(np.log(0.01), np.log(0.011), 3000))
        else:
            ratios = rng.uniform(0.01, 0.01 + 0.5 * E * K, 3000)
        model = strategy.fit(ratios, K, E)
        err = np.abs(model.approximate(ratios) - ratios)
        assert np.mean(err < E) > 0.95


class TestEqualWidth:
    def test_bin_width_respected(self, rng):
        ratios = rng.uniform(-1.0, 1.0, 10_000)
        model = EqualWidthStrategy().fit(ratios, 100, E)
        # width = 2/100 = 0.02 -> max error 0.01 to the containing center.
        err = np.abs(model.approximate(ratios) - ratios)
        assert err.max() <= 0.01 + 1e-12

    def test_only_occupied_bins_kept(self):
        ratios = np.concatenate([np.full(50, -1.0), np.full(50, 1.0)])
        model = EqualWidthStrategy().fit(ratios, 100, E)
        assert model.n_bins == 2


class TestLogScale:
    def test_finer_bins_near_small_magnitudes(self, rng):
        """Bin density must decrease with |ratio| (geometric spacing)."""
        ratios = np.exp(rng.uniform(np.log(1e-3), np.log(1.0), 20_000))
        model = LogScaleStrategy().fit(ratios, 64, E)
        reps = model.representatives[model.representatives > 0]
        gaps = np.diff(reps)
        # Geometric layout: gaps grow with position.
        assert gaps[-1] > gaps[0]

    def test_handles_mixed_signs(self, rng):
        ratios = np.concatenate([-np.exp(rng.uniform(-5, 0, 500)),
                                 np.exp(rng.uniform(-5, 0, 1500))])
        model = LogScaleStrategy().fit(ratios, 32, E)
        assert (model.representatives < 0).any()
        assert (model.representatives > 0).any()

    def test_handles_exact_zero_candidates(self):
        ratios = np.array([0.0, 0.0, 0.5, -0.5])
        model = LogScaleStrategy().fit(ratios, 8, E)
        assert np.any(model.representatives == 0.0)

    def test_single_sign(self, rng):
        ratios = np.exp(rng.uniform(-5, 0, 1000))
        model = LogScaleStrategy().fit(ratios, 16, E)
        assert np.all(model.representatives > 0)


class TestClustering:
    def test_multimodal_beats_equal_width(self, rng):
        """On multi-modal ratios, clustering must leave fewer points out of
        tolerance than equal-width with the same bin budget -- the paper's
        central claim (Section II-C3)."""
        ratios = np.concatenate([
            rng.normal(-0.5, 4 * E, 4000),
            rng.normal(0.02, 4 * E, 4000),
            rng.normal(0.8, 4 * E, 4000),
        ])
        k = 24
        cl = ClusteringStrategy().fit(ratios, k, E)
        ew = EqualWidthStrategy().fit(ratios, k, E)
        fail_cl = np.mean(np.abs(cl.approximate(ratios) - ratios) >= E)
        fail_ew = np.mean(np.abs(ew.approximate(ratios) - ratios) >= E)
        assert fail_cl < fail_ew

    def test_few_distinct_values_exact(self):
        ratios = np.tile(np.array([0.01, 0.02, 0.03]), 100)
        model = ClusteringStrategy().fit(ratios, 10, E)
        np.testing.assert_allclose(np.sort(np.unique(ratios)),
                                   model.representatives)
        assert np.all(model.approximate(ratios) == ratios)

    def test_subsampling_keeps_extremes(self, rng):
        ratios = rng.normal(0, 0.01, 5000)
        ratios[0], ratios[-1] = -1.0, 1.0
        strat = ClusteringStrategy(sample_limit=500)
        model = strat.fit(ratios, 50, E)
        assert model.representatives.min() <= 0.0
        assert model.representatives.max() >= 0.5

    def test_deterministic_given_seed(self, rng):
        ratios = rng.normal(0, 0.01, 2000)
        a = ClusteringStrategy(seed=5).fit(ratios, 16, E)
        b = ClusteringStrategy(seed=5).fit(ratios, 16, E)
        np.testing.assert_array_equal(a.representatives, b.representatives)

    @pytest.mark.parametrize("init", ["histogram", "kmeans++", "random"])
    def test_all_inits_work(self, init, rng):
        ratios = rng.normal(0, 0.01, 1000)
        model = ClusteringStrategy(init=init).fit(ratios, 16, E)
        assert 1 <= model.n_bins <= 16

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            ClusteringStrategy(init="bogus")

    def test_invalid_sample_limit(self):
        with pytest.raises(ValueError):
            ClusteringStrategy(sample_limit=1)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), k=st.integers(1, 64),
       scale=st.floats(1e-4, 10.0))
def test_property_models_valid_for_any_data(seed, k, scale):
    rng = np.random.default_rng(seed)
    ratios = rng.normal(0, scale, 300)
    for strategy in ALL:
        model = strategy.fit(ratios, k, E)
        assert 1 <= model.n_bins <= max(k, 1)
        labels = model.assign(ratios)
        assert labels.min() >= 0 and labels.max() < model.n_bins
        # Assignment must be to the nearest representative.
        dist = np.abs(ratios - model.representatives[labels])
        best = np.min(np.abs(ratios[:, None] - model.representatives[None, :]),
                      axis=1)
        np.testing.assert_allclose(dist, best, rtol=1e-12, atol=1e-15)
