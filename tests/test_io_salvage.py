"""Torn-write salvage, append-mode persistence and the verify/repair CLI.

The contract under test: a crash during an append can only damage the
*tail* of a checkpoint file, and every reader/repair path must then
recover exactly the longest valid record prefix -- while corruption
*before* the last record (which appends cannot produce) must keep raising,
because the delta chain beyond it is untrustworthy.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    CheckpointChain,
    FormatError,
    NumarckConfig,
    SalvageError,
)
from repro.io import (
    CheckpointFile,
    load_chain,
    load_chains,
    salvage_truncate,
    save_chain,
    save_chains,
)
from repro.io.container import HEADER_SIZE


def _build_chain(rng, n_deltas=3, n=400):
    data = rng.uniform(1, 2, n)
    chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
    for _ in range(n_deltas):
        data = data * (1 + rng.normal(0, 0.002, n))
        chain.append(data)
    return chain


def _record_ends(blob: bytes) -> list[int]:
    """Byte offset just past each record (index 0 = end of header)."""
    import struct

    ends = [HEADER_SIZE]
    pos = HEADER_SIZE
    while pos < len(blob):
        (length,) = struct.unpack_from("<Q", blob, pos + 4)
        pos += 12 + length + 4
        ends.append(pos)
    return ends


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    rng = np.random.default_rng(42)
    chain = _build_chain(rng)
    path = tmp_path_factory.mktemp("salvage") / "chain.nmk"
    save_chain(path, chain)
    return path, path.read_bytes(), chain


class TestSalvageLoad:
    def test_clean_file_reports_clean(self, saved, tmp_path):
        path, blob, chain = saved
        loaded, report = load_chain(path, recover="tail")
        assert report.clean
        assert report.records_kept == len(chain)
        assert report.records_dropped == 0
        assert report.bytes_truncated == 0
        np.testing.assert_array_equal(loaded.reconstruct(),
                                      chain.reconstruct())

    @pytest.mark.parametrize("drop_records", [1, 2, 3])
    def test_torn_tail_recovers_exact_prefix(self, saved, tmp_path,
                                             drop_records):
        path, blob, chain = saved
        ends = _record_ends(blob)
        # Cut in the middle of the record after the kept prefix.
        keep = len(ends) - 1 - drop_records
        cut = (ends[keep] + ends[keep + 1]) // 2
        p = tmp_path / f"torn{drop_records}.nmk"
        p.write_bytes(blob[:cut])
        with pytest.raises(FormatError):
            load_chain(p)
        loaded, report = load_chain(p, recover="tail")
        assert len(loaded) == keep
        assert report.records_kept == keep
        assert report.records_dropped == 1
        assert report.bytes_truncated == cut - ends[keep]
        assert not report.clean
        np.testing.assert_array_equal(loaded.reconstruct(),
                                      chain.reconstruct(keep - 1))

    def test_bitflip_in_final_record_salvaged(self, saved, tmp_path):
        path, blob, chain = saved
        ends = _record_ends(blob)
        mutated = bytearray(blob)
        mutated[(ends[-2] + ends[-1]) // 2] ^= 0x10
        p = tmp_path / "flip_last.nmk"
        p.write_bytes(bytes(mutated))
        loaded, report = load_chain(p, recover="tail")
        assert len(loaded) == len(chain) - 1
        assert report.records_dropped == 1
        np.testing.assert_array_equal(loaded.reconstruct(),
                                      chain.reconstruct(len(chain) - 2))

    def test_interior_corruption_still_raises(self, saved, tmp_path):
        path, blob, chain = saved
        ends = _record_ends(blob)
        mutated = bytearray(blob)
        # Flip a bit inside the *second* record (an interior delta).
        mutated[(ends[1] + ends[2]) // 2] ^= 0x01
        p = tmp_path / "interior.nmk"
        p.write_bytes(bytes(mutated))
        with pytest.raises(FormatError):
            load_chain(p, recover="tail")

    def test_torn_full_record_is_salvage_error(self, saved, tmp_path):
        path, blob, chain = saved
        ends = _record_ends(blob)
        p = tmp_path / "no_full.nmk"
        p.write_bytes(blob[: (ends[0] + ends[1]) // 2])
        with pytest.raises(SalvageError):
            load_chain(p, recover="tail")

    def test_not_a_checkpoint_is_salvage_error(self, tmp_path):
        p = tmp_path / "junk.nmk"
        p.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(SalvageError):
            load_chain(p, recover="tail")

    def test_unknown_recover_mode_rejected(self, saved):
        path, _, _ = saved
        with pytest.raises(ValueError):
            load_chain(path, recover="head")


class TestSalvageLoadChains:
    @pytest.fixture(scope="class")
    def multi(self, tmp_path_factory):
        rng = np.random.default_rng(7)
        chains = {"dens": _build_chain(rng, 2, 200),
                  "pres": _build_chain(rng, 2, 200)}
        path = tmp_path_factory.mktemp("multi") / "multi.nmk"
        save_chains(path, chains)
        return path, path.read_bytes(), chains

    def test_clean_multi_salvage(self, multi):
        path, blob, chains = multi
        loaded, report = load_chains(path, recover="tail")
        assert report.clean
        for name, chain in chains.items():
            np.testing.assert_array_equal(loaded[name].reconstruct(),
                                          chain.reconstruct())

    def test_torn_multi_tail_recovers_prefix(self, multi, tmp_path):
        path, blob, chains = multi
        ends = _record_ends(blob)
        cut = (ends[-2] + ends[-1]) // 2
        p = tmp_path / "torn.nmk"
        p.write_bytes(blob[:cut])
        with pytest.raises(FormatError):
            load_chains(p)
        loaded, report = load_chains(p, recover="tail")
        assert report.records_kept == len(ends) - 2
        assert report.records_dropped == 1
        # save_chains interleaves by iteration, so the torn final record
        # belongs to the *last* variable: chains may differ in depth by 1.
        depths = sorted(len(c) for c in loaded.values())
        assert depths in ([2, 3], [3, 3])
        for name, chain in loaded.items():
            np.testing.assert_array_equal(
                chain.reconstruct(), chains[name].reconstruct(len(chain) - 1))

    def test_nothing_salvageable_multi(self, tmp_path):
        p = tmp_path / "junk.nmk"
        p.write_bytes(b"NMRK\x01\x00")
        with pytest.raises(SalvageError):
            load_chains(p, recover="tail")


class TestAppendMode:
    def test_append_matches_full_rewrite_bytes(self, saved, tmp_path):
        """Growing a file by appends produces byte-identical output to a
        one-shot save -- the strongest possible compatibility check."""
        path, blob, chain = saved
        p = tmp_path / "grown.nmk"
        prefix = CheckpointChain(chain.full_checkpoint,
                                 NumarckConfig(error_bound=1e-3))
        save_chain(p, prefix)
        with CheckpointFile.append(p) as writer:
            assert writer.n_records == 1
            for enc in chain.deltas:
                writer.write_delta(enc)
            assert writer.n_records == len(chain)
        assert p.read_bytes() == blob

    def test_append_truncates_torn_tail_first(self, saved, tmp_path):
        path, blob, chain = saved
        ends = _record_ends(blob)
        p = tmp_path / "torn.nmk"
        p.write_bytes(blob[: ends[-1] - 5])  # tear the final record
        with CheckpointFile.append(p) as writer:
            assert writer.n_records == len(chain) - 1
            assert writer.salvage.records_dropped == 1
            assert writer.salvage.bytes_truncated > 0
            writer.write_delta(chain.deltas[-1])
        assert p.read_bytes() == blob
        np.testing.assert_array_equal(load_chain(p).reconstruct(),
                                      chain.reconstruct())

    def test_append_rejects_interior_damage(self, saved, tmp_path):
        path, blob, chain = saved
        ends = _record_ends(blob)
        mutated = bytearray(blob)
        mutated[(ends[0] + ends[1]) // 2] ^= 0x04
        p = tmp_path / "bad.nmk"
        p.write_bytes(bytes(mutated))
        with pytest.raises(FormatError):
            CheckpointFile.append(p)

    def test_append_rejects_non_checkpoint(self, tmp_path):
        p = tmp_path / "junk.nmk"
        p.write_bytes(b"not a checkpoint at all")
        with pytest.raises(FormatError):
            CheckpointFile.append(p)

    def test_truncate_records(self, saved, tmp_path):
        path, blob, chain = saved
        p = tmp_path / "cut.nmk"
        p.write_bytes(blob)
        with CheckpointFile.append(p) as writer:
            writer.truncate_records(2)
            assert writer.n_records == 2
        loaded = load_chain(p)
        assert len(loaded) == 2
        np.testing.assert_array_equal(loaded.reconstruct(),
                                      chain.reconstruct(1))

    def test_truncate_records_bounds(self, saved, tmp_path):
        path, blob, chain = saved
        p = tmp_path / "cut2.nmk"
        p.write_bytes(blob)
        with CheckpointFile.append(p) as writer:
            with pytest.raises(ValueError):
                writer.truncate_records(len(chain) + 1)


class TestChainTruncate:
    def test_truncate_then_append_consistent(self, rng):
        chain = _build_chain(rng, 3, 100)
        states = [chain.reconstruct(i) for i in range(len(chain))]
        chain.truncate(2)
        assert len(chain) == 2
        np.testing.assert_array_equal(chain.reconstruct(), states[1])
        chain.append(states[1] * 1.001)
        assert len(chain) == 3

    def test_truncate_noop_and_bounds(self, rng):
        chain = _build_chain(rng, 2, 50)
        chain.truncate(3)
        assert len(chain) == 3
        with pytest.raises(IndexError):
            chain.truncate(0)
        with pytest.raises(IndexError):
            chain.truncate(4)


class TestSalvageTruncate:
    def test_repairs_torn_tail(self, saved, tmp_path):
        path, blob, chain = saved
        ends = _record_ends(blob)
        p = tmp_path / "torn.nmk"
        p.write_bytes(blob[: ends[-1] - 3])
        report = salvage_truncate(p)
        assert report.records_kept == len(chain) - 1
        assert not report.clean
        loaded = load_chain(p)  # strict load now succeeds
        assert len(loaded) == len(chain) - 1

    def test_clean_file_untouched(self, saved, tmp_path):
        path, blob, chain = saved
        p = tmp_path / "clean.nmk"
        p.write_bytes(blob)
        report = salvage_truncate(p)
        assert report.clean
        assert p.read_bytes() == blob

    def test_interior_damage_truncates_at_first_bad_record(self, saved,
                                                           tmp_path):
        path, blob, chain = saved
        ends = _record_ends(blob)
        mutated = bytearray(blob)
        mutated[(ends[1] + ends[2]) // 2] ^= 0x02
        p = tmp_path / "interior.nmk"
        p.write_bytes(bytes(mutated))
        report = salvage_truncate(p)
        # Damage in record 2 of 4: only the FULL record survives, and the
        # two intact-looking deltas after the bad one are (correctly) cut.
        assert report.records_kept == 1
        loaded = load_chain(p)
        assert len(loaded) == 1


class TestVerifyRepairCli:
    def test_verify_clean(self, saved, tmp_path, capsys):
        path, blob, chain = saved
        p = tmp_path / "ok.nmk"
        p.write_bytes(blob)
        assert main(["verify", str(p)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert f"{len(chain)} records" in out
        assert out.count("crc ok") == len(chain)

    def test_verify_damaged_exits_nonzero(self, saved, tmp_path, capsys):
        path, blob, chain = saved
        p = tmp_path / "torn.nmk"
        p.write_bytes(blob[:-7])
        assert main(["verify", str(p)]) == 1
        err = capsys.readouterr().err
        assert "DAMAGED" in err
        assert "repair" in err

    def test_verify_interior_damage(self, saved, tmp_path, capsys):
        path, blob, chain = saved
        ends = _record_ends(blob)
        mutated = bytearray(blob)
        mutated[(ends[1] + ends[2]) // 2] ^= 0x08
        p = tmp_path / "interior.nmk"
        p.write_bytes(bytes(mutated))
        assert main(["verify", str(p)]) == 1
        assert "interior damage" in capsys.readouterr().err

    def test_verify_non_checkpoint(self, tmp_path, capsys):
        p = tmp_path / "junk.nmk"
        p.write_bytes(b"garbage")
        assert main(["verify", str(p)]) == 1

    def test_repair_then_verify_clean(self, saved, tmp_path, capsys):
        path, blob, chain = saved
        p = tmp_path / "torn.nmk"
        p.write_bytes(blob[:-9])
        assert main(["repair", str(p)]) == 0
        backup = tmp_path / "torn.nmk.bak"
        assert backup.exists()
        assert backup.read_bytes() == blob[:-9]
        assert main(["verify", str(p)]) == 0
        loaded = load_chain(p)
        assert len(loaded) == len(chain) - 1

    def test_repair_clean_file_removes_backup(self, saved, tmp_path, capsys):
        path, blob, chain = saved
        p = tmp_path / "clean.nmk"
        p.write_bytes(blob)
        assert main(["repair", str(p)]) == 0
        assert not (tmp_path / "clean.nmk.bak").exists()
        assert p.read_bytes() == blob

    def test_repair_custom_backup_path(self, saved, tmp_path):
        path, blob, chain = saved
        p = tmp_path / "torn.nmk"
        p.write_bytes(blob[:-4])
        backup = tmp_path / "keep_me.orig"
        assert main(["repair", str(p), "--backup", str(backup)]) == 0
        assert backup.read_bytes() == blob[:-4]

    def test_verify_multichain_flavour(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        chains = {"a": _build_chain(rng, 1, 64), "b": _build_chain(rng, 1, 64)}
        p = tmp_path / "multi.nmk"
        save_chains(p, chains)
        assert main(["verify", str(p)]) == 0
        assert "clean (4 records)" in capsys.readouterr().out

    def test_repaired_multichain_never_mixes_iterations(self, tmp_path,
                                                        capsys):
        """Repairing a multichain file can leave chains of uneven depth
        (one variable salvaged its last delta, another lost it); the
        latest *common* iteration must then be decoded for every
        variable -- never each chain's own latest."""
        from repro.core import VariableSet

        rng = np.random.default_rng(9)
        chains = {"a": _build_chain(rng, 1, 64), "b": _build_chain(rng, 1, 64)}
        p = tmp_path / "multi.nmk"
        save_chains(p, chains)
        # Tear the final record (b's DELT): a keeps depth 2, b drops to 1.
        p.write_bytes(p.read_bytes()[:-9])
        assert main(["repair", str(p)]) == 0
        vs = VariableSet.load(p)
        assert vs.n_checkpoints == 1
        state = vs.reconstruct()
        np.testing.assert_array_equal(state["a"],
                                      chains["a"].reconstruct(0))
        np.testing.assert_array_equal(state["b"],
                                      chains["b"].reconstruct(0))
