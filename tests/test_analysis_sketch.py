"""RatioSketch tests: merging, quantiles, sketch-fit models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import RatioSketch
from repro.parallel import SerialComm, block_partition, parallel_encode, run_spmd
from repro.core import NumarckConfig, decode_iteration

E = 1e-3


class TestSketchBasics:
    def test_total_counts(self, rng):
        sk = RatioSketch(E).add(rng.normal(0, 0.01, 1000))
        assert sk.total == 1000

    def test_chainable_add(self, rng):
        sk = RatioSketch(E).add(rng.normal(size=10)).add(rng.normal(size=5))
        assert sk.total == 15

    def test_outliers_clipped_into_edge_bins(self):
        sk = RatioSketch(E, max_magnitude=10.0)
        sk.add(np.array([1e12, -1e12]))
        assert sk.total == 2
        assert sk.counts[0] == 1 and sk.counts[-1] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RatioSketch(0.0)
        with pytest.raises(ValueError):
            RatioSketch(E, bins=4)
        with pytest.raises(ValueError):
            RatioSketch(E, max_magnitude=E / 2)


class TestMerging:
    def test_merge_equals_joint_build(self, rng):
        a_data = rng.normal(0, 0.01, 700)
        b_data = rng.normal(0.05, 0.02, 300)
        merged = RatioSketch(E).add(a_data).merge(RatioSketch(E).add(b_data))
        joint = RatioSketch(E).add(np.concatenate([a_data, b_data]))
        np.testing.assert_array_equal(merged.counts, joint.counts)

    def test_add_operator(self, rng):
        a = RatioSketch(E).add(rng.normal(size=100))
        b = RatioSketch(E).add(rng.normal(size=50))
        c = a + b
        assert c.total == 150
        assert a.total == 100, "operands must be unchanged"

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError, match="binnings"):
            RatioSketch(E, bins=64).merge(RatioSketch(E, bins=128))
        with pytest.raises(ValueError, match="binnings"):
            RatioSketch(1e-3).merge(RatioSketch(1e-2))


class TestQuantiles:
    def test_median_of_symmetric_data(self, rng):
        sk = RatioSketch(E).add(rng.normal(0, 0.02, 50_000))
        assert abs(sk.quantile(0.5)) < 2e-3

    def test_quantile_ordering(self, rng):
        sk = RatioSketch(E).add(rng.normal(0, 0.05, 20_000))
        qs = [sk.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9)]
        assert all(a <= b for a, b in zip(qs, qs[1:]))

    def test_quantile_accuracy(self, rng):
        data = rng.uniform(-0.1, 0.1, 100_000)
        sk = RatioSketch(E).add(data)
        for q in (0.1, 0.5, 0.9):
            exact = np.quantile(data, q)
            assert abs(sk.quantile(q) - exact) < 0.01

    def test_empty_and_bad_q(self):
        sk = RatioSketch(E)
        with pytest.raises(ValueError, match="empty"):
            sk.quantile(0.5)
        sk.add(np.array([0.01]))
        with pytest.raises(ValueError):
            sk.quantile(1.5)


class TestSketchFit:
    def test_model_covers_like_exact_fit(self, rng):
        """Model fitted from the sketch should cover nearly as many points
        as the model fitted from the raw data."""
        from repro.core.strategies import ClusteringStrategy

        data = np.concatenate([
            rng.normal(-0.02, 5 * E, 5000),
            rng.normal(0.05, 5 * E, 5000),
        ])
        exact = ClusteringStrategy(seed=0).fit(data, 255, E)
        sketch_model = RatioSketch(E).add(data).fit_model(255)
        fail_exact = np.mean(np.abs(exact.approximate(data) - data) >= E)
        fail_sketch = np.mean(np.abs(sketch_model.approximate(data) - data) >= E)
        assert fail_sketch <= fail_exact + 0.05

    def test_few_occupied_bins_exact(self):
        sk = RatioSketch(E).add(np.full(100, 0.02)).add(np.full(50, -0.07))
        model = sk.fit_model(16)
        assert model.n_bins == 2

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RatioSketch(E).fit_model(8)

    def test_bad_k(self, rng):
        sk = RatioSketch(E).add(rng.normal(size=10))
        with pytest.raises(ValueError):
            sk.fit_model(0)


class TestSketchEncodePath:
    def test_serial_sketch_mode_guarantee(self, rng):
        prev = rng.uniform(1, 2, 5000)
        curr = prev * (1 + rng.normal(0, 0.003, 5000))
        cfg = NumarckConfig(error_bound=E, nbits=8, strategy="clustering")
        enc, stats = parallel_encode(SerialComm(), prev, curr, cfg,
                                     fit_mode="sketch", refine=False)
        out = decode_iteration(prev, enc)
        rel = np.abs(out / curr - 1)
        rel[enc.incompressible] = 0
        assert rel.max() < 1.2e-3
        assert stats.n_points == 5000

    def test_spmd_sketch_matches_across_ranks(self, rng):
        prev = rng.uniform(1, 2, 3000)
        curr = prev * (1 + rng.normal(0, 0.004, 3000))
        cfg = NumarckConfig(error_bound=E, nbits=8, strategy="clustering")

        def worker(comm, ps, cs, cfg):
            enc, stats = parallel_encode(comm, ps[comm.rank], cs[comm.rank],
                                         cfg, fit_mode="sketch", refine=False)
            return enc.representatives, stats.n_incompressible

        results = run_spmd(worker, 2, block_partition(prev, 2),
                           block_partition(curr, 2), cfg)
        np.testing.assert_array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]

    def test_unknown_fit_mode(self, rng):
        with pytest.raises(ValueError, match="fit_mode"):
            parallel_encode(SerialComm(), rng.uniform(1, 2, 10),
                            rng.uniform(1, 2, 10), NumarckConfig(),
                            fit_mode="magic")


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31), splits=st.integers(2, 6))
def test_property_merge_associative(seed, splits):
    """Any partition of the data merges to the same sketch."""
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 0.05, 500)
    joint = RatioSketch(E).add(data)
    parts = np.array_split(data, splits)
    merged = RatioSketch(E)
    for p in parts:
        merged.merge(RatioSketch(E).add(p))
    np.testing.assert_array_equal(joint.counts, merged.counts)
