"""Normalized CLI flag surface: canonical spellings, hidden aliases,
the global --trace flag and the serve subcommand's parser."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def arrays(tmp_path):
    rng = np.random.default_rng(0)
    a0 = rng.uniform(1.0, 2.0, 4000)
    a1 = a0 * (1.0 + rng.normal(0.0, 2e-3, 4000))
    p0, p1 = tmp_path / "a0.npy", tmp_path / "a1.npy"
    np.save(p0, a0)
    np.save(p1, a1)
    return str(p0), str(p1)


class TestErrorBoundAlias:
    def test_short_E(self, tmp_path, arrays):
        chain = str(tmp_path / "c.nmk")
        assert main(["init", chain, arrays[0], "-E", "1e-3"]) == 0

    def test_long_spelling_unchanged(self, tmp_path, arrays):
        chain = str(tmp_path / "c.nmk")
        assert main(["init", chain, arrays[0], "--error-bound", "1e-3"]) == 0


class TestOutputAlias:
    def test_extract_accepts_out_alias(self, tmp_path, arrays):
        chain = str(tmp_path / "c.nmk")
        main(["init", chain, arrays[0]])
        out = str(tmp_path / "x.npy")
        assert main(["extract", chain, "--out", out]) == 0
        assert np.load(out).shape == (4000,)

    def test_extract_requires_output(self, tmp_path, arrays, capsys):
        chain = str(tmp_path / "c.nmk")
        main(["init", chain, arrays[0]])
        assert main(["extract", chain]) == 2
        assert "--output/-o is required" in capsys.readouterr().err

    def test_out_alias_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["extract", "--help"])
        help_text = capsys.readouterr().out
        assert "--output" in help_text
        assert "--out " not in help_text and "--out," not in help_text

    def test_bench_run_keeps_out_alias(self):
        args = build_parser().parse_args(
            ["bench", "run", "--quick", "--out", "somewhere"])
        assert args.out == "somewhere"
        args = build_parser().parse_args(
            ["bench", "run", "--quick", "--output", "elsewhere"])
        assert args.out == "elsewhere"


class TestCompressStreamForms:
    def test_flag_form(self, tmp_path, arrays, capsys):
        out = str(tmp_path / "s.nms")
        assert main(["compress-stream", arrays[0], arrays[1],
                     "-o", out, "--chunk-size", "1024"]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_legacy_positional_form(self, tmp_path, arrays, capsys):
        out = str(tmp_path / "s.nms")
        assert main(["compress-stream", out, arrays[0], arrays[1],
                     "--chunk-size", "1024"]) == 0
        assert "deprecated" in capsys.readouterr().err

    def test_wrong_arity_rejected(self, tmp_path, arrays, capsys):
        assert main(["compress-stream", arrays[0]]) == 2
        assert main(["compress-stream", arrays[0],
                     "-o", str(tmp_path / "s.nms")]) == 2


class TestGlobalTrace:
    def test_trace_flag_writes_spans(self, tmp_path, arrays):
        trace = tmp_path / "t.jsonl"
        chain = str(tmp_path / "c.nmk")
        assert main(["--trace", str(trace), "init", chain, arrays[0]]) == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert any(r.get("type") == "span" for r in records)

    def test_no_trace_flag_no_file(self, tmp_path, arrays):
        chain = str(tmp_path / "c.nmk")
        assert main(["init", chain, arrays[0]]) == 0
        assert not list(tmp_path.glob("*.jsonl"))


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8765
        assert args.workers == 2
        assert args.capacity == 32
        assert args.store_dir is None

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0", "--workers", "4",
             "--capacity", "64", "--retry-after", "0.2",
             "--store-dir", "/tmp/chains", "-E", "1e-4"])
        assert args.port == 0
        assert args.capacity == 64
        assert args.error_bound == 1e-4
