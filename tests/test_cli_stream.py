"""CLI streaming (out-of-core) command tests."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def pair_files(tmp_path, rng):
    prev = rng.uniform(1.0, 2.0, 50_000)
    curr = prev * (1 + rng.normal(0, 0.002, 50_000))
    pp, cp = tmp_path / "prev.npy", tmp_path / "curr.npy"
    np.save(pp, prev)
    np.save(cp, curr)
    return str(pp), str(cp), prev, curr


class TestStreamCommands:
    def test_compress_decompress_roundtrip(self, tmp_path, pair_files):
        pp, cp, prev, curr = pair_files
        stream = str(tmp_path / "s.nms")
        assert main(["compress-stream", stream, pp, cp,
                     "--chunk-size", "8192", "--error-bound", "1e-3"]) == 0
        out = str(tmp_path / "out.npy")
        assert main(["decompress-stream", stream, pp, "-o", out]) == 0
        decoded = np.load(out)
        err = np.abs((decoded - prev) / prev - (curr - prev) / prev)
        assert err.max() < 1.1e-3  # exact points have zero ratio error anyway

    def test_stream_file_smaller_than_raw(self, tmp_path, pair_files, capsys):
        pp, cp, _, curr = pair_files
        stream = tmp_path / "s.nms"
        main(["compress-stream", str(stream), pp, cp, "--chunk-size", "8192"])
        assert stream.stat().st_size < 0.3 * curr.nbytes

    def test_wrong_reference_rejected(self, tmp_path, pair_files, capsys):
        pp, cp, *_ = pair_files
        stream = str(tmp_path / "s.nms")
        main(["compress-stream", stream, pp, cp, "--chunk-size", "8192"])
        short = tmp_path / "short.npy"
        np.save(short, np.ones(10))
        rc = main(["decompress-stream", stream, str(short),
                   "-o", str(tmp_path / "x.npy")])
        assert rc == 2
        assert "reference has" in capsys.readouterr().err

    def test_2d_input_flattened(self, tmp_path, rng):
        prev = rng.uniform(1, 2, (100, 200))
        curr = prev * 1.001
        pp, cp = tmp_path / "p.npy", tmp_path / "c.npy"
        np.save(pp, prev)
        np.save(cp, curr)
        stream = str(tmp_path / "s.nms")
        assert main(["compress-stream", stream, str(pp), str(cp),
                     "--chunk-size", "4096"]) == 0
        out = str(tmp_path / "o.npy")
        assert main(["decompress-stream", stream, str(pp), "-o", out]) == 0
        assert np.load(out).size == 20_000
