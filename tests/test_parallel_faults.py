"""Rank-fault chaos tests: deadlock freedom, bounded-wait detection, and
degraded-mode recovery of the distributed encoder.

Mirrors the disk-fault salvage suite of the persistence layer: every fault
family x pipeline phase combination must leave the system either complete
(possibly degraded, with the casualties reported) or loudly failed -- never
deadlocked, and never violating the per-point error bound E on a completed
encode.
"""

import threading
import time
from multiprocessing import Pipe, active_children

import numpy as np
import pytest

from repro.core import NumarckConfig, decode_iteration
from repro.parallel import (
    PipeComm,
    RankFailureError,
    RankFaultInjector,
    block_partition,
    parallel_encode,
    run_spmd,
)

E = 1e-3
#: tight per-message deadline so detection latencies stay test-sized.
COMM_TIMEOUT = 1.5
#: generous harness deadline; tests additionally assert tight wall-clock.
RUN_TIMEOUT = 30.0


def _pair(n=6000, seed=0):
    rng = np.random.default_rng(seed)
    prev = rng.uniform(1.0, 2.0, n)
    curr = prev * (1.0 + rng.normal(0.0, 0.003, n))
    return prev, curr


# -- workers (module level: they must survive the trip into rank processes)

def _allreduce_worker(comm):
    try:
        return ("ok", comm.allreduce(comm.rank + 1))
    except RankFailureError as exc:
        return ("rank-failure", exc.rank)


def _gather_worker(comm):
    try:
        comm.gather(np.arange(3), root=0)
        comm.barrier()
        return ("ok", None)
    except RankFailureError as exc:
        return ("rank-failure", exc.rank)


def _encode_worker(comm, prev_shards, curr_shards, cfg):
    enc, stats = parallel_encode(comm, prev_shards[comm.rank],
                                 curr_shards[comm.rank], cfg)
    out = decode_iteration(prev_shards[comm.rank], enc)
    rel = np.abs(out / curr_shards[comm.rank] - 1)
    rel[enc.incompressible] = 0
    return {
        "rank": comm.rank,
        "degraded": stats.degraded,
        "lost": stats.lost_ranks,
        "max_err": float(rel.max()),
        "n_points": stats.n_points,
        "n_incompressible": stats.n_incompressible,
        "n_bins": stats.n_bins,
    }


def _sleepy_worker(comm):
    if comm.rank == 1:
        time.sleep(60.0)
    return comm.rank


def _boom_helper():
    raise ValueError("boom-with-context")


def _boom_worker(comm):
    if comm.rank == 1:
        _boom_helper()
    return comm.rank


def _attempt_worker(comm):
    return (comm.attempt, comm.allreduce(comm.rank + 1))


class TestInjectorSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            RankFaultInjector(crash_at=(0,))
        with pytest.raises(ValueError):
            RankFaultInjector(hang_seconds=0)
        with pytest.raises(ValueError):
            RankFaultInjector(flip_bit=8)

    def test_fires_once_per_trigger(self):
        from repro.parallel.faults import DROP, CommEvent

        inj = RankFaultInjector(drop_at=(2,), flip_at=(3,))
        ev = lambda: CommEvent("send", 1, "", 0, b"payload-bytes")
        assert inj.apply(ev()) is None          # op 1
        assert inj.apply(ev()) is DROP          # op 2: drop fires
        flipped = inj.apply(ev())               # op 3: flip fires
        assert flipped != b"payload-bytes" and len(flipped) == 13
        assert inj.apply(ev()) is None          # schedules exhausted

    def test_phase_trigger_and_attempt_filter(self):
        from repro.parallel.faults import DROP, CommEvent

        inj = RankFaultInjector(drop_in_phase="fit", on_attempts=(1,))
        assert inj.apply(CommEvent("send", 0, "fit", 0, b"x" * 8)) is None
        assert inj.apply(CommEvent("send", 0, "fit", 1, b"x" * 8)) is DROP
        assert inj.apply(CommEvent("send", 0, "fit", 1, b"x" * 8)) is None

    def test_recv_events_do_not_consume_data_faults(self):
        from repro.parallel.faults import DROP, CommEvent

        inj = RankFaultInjector(drop_at=(1, 2))
        assert inj.apply(CommEvent("recv", 0, "", 0)) is None
        assert inj.apply(CommEvent("send", 0, "", 0, b"x" * 8)) is DROP


class TestProtocolInProcess:
    """Reliable-delivery protocol over one real pipe pair, no subprocesses."""

    def _linked(self, **kwargs):
        a, b = Pipe(duplex=True)
        return (PipeComm(0, 2, {1: a}, timeout=2.0, **kwargs),
                PipeComm(1, 2, {0: b}, timeout=2.0))

    def _exchange(self, sender, receiver, obj):
        box = []
        t = threading.Thread(target=lambda: box.append(receiver.recv(0)))
        t.start()
        sender.send(obj, 1)
        t.join(5.0)
        assert not t.is_alive()
        return box[0]

    def test_roundtrip(self):
        c0, c1 = self._linked()
        payload = {"a": np.arange(5), "b": "text"}
        out = self._exchange(c0, c1, payload)
        np.testing.assert_array_equal(out["a"], payload["a"])

    def test_flip_recovered_by_nak_resend(self):
        c0, c1 = self._linked(
            fault_injector=RankFaultInjector(flip_at=(1,)))
        assert self._exchange(c0, c1, [1, 2, 3]) == [1, 2, 3]

    def test_drop_recovered_by_ack_timeout_resend(self):
        c0, c1 = self._linked(
            fault_injector=RankFaultInjector(drop_at=(1,)), resend_wait=0.1)
        assert self._exchange(c0, c1, "dropped-once") == "dropped-once"

    def test_transient_error_retried_with_backoff(self):
        c0, c1 = self._linked(
            fault_injector=RankFaultInjector(error_at=(1,)))
        assert self._exchange(c0, c1, 42) == 42

    def test_recv_timeout_raises_rank_failure(self):
        a, b = Pipe(duplex=True)
        comm = PipeComm(0, 2, {1: a}, timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as ei:
            comm.recv(1)
        assert time.monotonic() - t0 < 2.0
        assert ei.value.rank == 1
        assert comm.lost_ranks == (1,)
        # Once lost, every further operation fails fast.
        t0 = time.monotonic()
        with pytest.raises(RankFailureError):
            comm.send("x", 1)
        assert time.monotonic() - t0 < 0.1

    def test_peer_close_detected_as_failure(self):
        a, b = Pipe(duplex=True)
        comm = PipeComm(0, 2, {1: a}, timeout=5.0)
        b.close()
        t0 = time.monotonic()
        with pytest.raises(RankFailureError):
            comm.recv(1)
        assert time.monotonic() - t0 < 1.0  # EOF, not deadline

    def test_phase_label_in_failure(self):
        a, b = Pipe(duplex=True)
        comm = PipeComm(0, 2, {1: a}, timeout=0.2)
        with comm.phase("unit.phase"):
            with pytest.raises(RankFailureError, match="unit.phase"):
                comm.recv(1)


class TestDeadlockFreedom:
    """Killing a rank mid-collective never deadlocks: every survivor
    raises RankFailureError well inside the configured timeout."""

    @pytest.mark.parametrize("nprocs", [2, 3, 4])
    def test_crash_mid_allreduce(self, nprocs):
        t0 = time.monotonic()
        outcomes = run_spmd(
            _allreduce_worker, nprocs, strict=False,
            comm_timeout=COMM_TIMEOUT, timeout=RUN_TIMEOUT,
            faults={1: RankFaultInjector(crash_at=(1,))})
        elapsed = time.monotonic() - t0
        assert elapsed < 3 * COMM_TIMEOUT + 5.0
        assert not outcomes[1].ok
        for o in outcomes:
            if o.rank != 1:
                assert o.ok and o.value[0] == "rank-failure"

    def test_crash_mid_gather(self):
        t0 = time.monotonic()
        outcomes = run_spmd(
            _gather_worker, 3, strict=False,
            comm_timeout=COMM_TIMEOUT, timeout=RUN_TIMEOUT,
            faults={1: RankFaultInjector(crash_at=(1,))})
        assert time.monotonic() - t0 < 3 * COMM_TIMEOUT + 5.0
        assert not outcomes[1].ok
        assert outcomes[0].value == ("rank-failure", 1)
        assert outcomes[2].value[0] == "rank-failure"

    def test_hang_detected_by_deadline(self):
        t0 = time.monotonic()
        outcomes = run_spmd(
            _allreduce_worker, 3, strict=False,
            comm_timeout=1.0, timeout=RUN_TIMEOUT,
            faults={1: RankFaultInjector(hang_at=(1,), hang_seconds=3.0)})
        assert time.monotonic() - t0 < 10.0
        survivors = [o for o in outcomes if o.rank != 1]
        assert all(o.ok and o.value[0] == "rank-failure" for o in survivors)


class TestRecoverableFaults:
    """Drop / bit-flip / transient-error faults are absorbed by the
    resend/retry layer: the collective completes with correct values."""

    @pytest.mark.parametrize("fault", [
        dict(drop_at=(1,)),
        dict(flip_at=(1,)),
        dict(flip_at=(2,), flip_bit=5),
        dict(error_at=(1,)),
        dict(error_at=(2,)),
    ])
    def test_allreduce_correct(self, fault):
        results = run_spmd(
            _allreduce_worker, 3, comm_timeout=4.0, timeout=RUN_TIMEOUT,
            faults={1: RankFaultInjector(**fault)})
        assert results == [("ok", 6)] * 3


FAULT_FAMILIES = {
    "crash": lambda phase: RankFaultInjector(crash_in_phase=phase),
    "hang": lambda phase: RankFaultInjector(hang_in_phase=phase,
                                            hang_seconds=4.0),
    "drop": lambda phase: RankFaultInjector(drop_in_phase=phase),
    "flip": lambda phase: RankFaultInjector(flip_in_phase=phase),
    "transient": lambda phase: RankFaultInjector(error_in_phase=phase),
}
LOSSY = ("crash", "hang")


class TestChaosMatrix:
    """fault family x pipeline phase x rank count: every completed encode
    honors E; lossy faults complete degraded with the casualty reported."""

    @pytest.mark.parametrize("fault", sorted(FAULT_FAMILIES))
    @pytest.mark.parametrize("phase", ["insitu.sample_gather", "insitu.stats"])
    @pytest.mark.parametrize("nprocs", [3])
    def test_matrix(self, fault, phase, nprocs):
        prev, curr = _pair()
        cfg = NumarckConfig(error_bound=E, nbits=8)
        ps = block_partition(prev, nprocs)
        cs = block_partition(curr, nprocs)
        outcomes = run_spmd(
            _encode_worker, nprocs, ps, cs, cfg, strict=False,
            comm_timeout=COMM_TIMEOUT, timeout=RUN_TIMEOUT,
            faults={1: FAULT_FAMILIES[fault](phase)})

        if fault in LOSSY:
            survivors = [o for o in outcomes if o.rank != 1]
            # The faulty rank either died (crash) or erred/overslept (hang);
            # either way it must not have silently produced a clean result.
            assert all(o.ok for o in survivors)
            expected_pts = sum(ps[r].size for r in range(nprocs) if r != 1)
            for o in survivors:
                r = o.value
                assert r["degraded"] and r["lost"] == (1,)
                assert r["n_points"] == expected_pts
                assert r["max_err"] < 1.2 * E
            # Survivors agree on the global statistics.
            stats = {(o.value["n_points"], o.value["n_incompressible"],
                      o.value["n_bins"], o.value["lost"])
                     for o in survivors}
            assert len(stats) == 1
        else:
            assert all(o.ok for o in outcomes)
            for o in outcomes:
                r = o.value
                assert not r["degraded"] and r["lost"] == ()
                assert r["n_points"] == prev.size
                assert r["max_err"] < 1.2 * E

    def test_two_ranks_lose_the_only_peer(self):
        """nprocs=2 with the non-root rank lost: root completes alone."""
        prev, curr = _pair(3000)
        cfg = NumarckConfig(error_bound=E, nbits=8)
        ps, cs = block_partition(prev, 2), block_partition(curr, 2)
        outcomes = run_spmd(
            _encode_worker, 2, ps, cs, cfg, strict=False,
            comm_timeout=COMM_TIMEOUT, timeout=RUN_TIMEOUT,
            faults={1: RankFaultInjector(crash_in_phase="insitu.sample_gather")})
        assert not outcomes[1].ok
        r = outcomes[0].value
        assert r["degraded"] and r["lost"] == (1,)
        assert r["n_points"] == ps[0].size
        assert r["max_err"] < 1.2 * E

    def test_clustering_with_refine_survives_crash(self):
        """Degraded mode also covers the distributed Lloyd refinement."""
        prev, curr = _pair()
        cfg = NumarckConfig(error_bound=E, nbits=8, strategy="clustering")
        ps, cs = block_partition(prev, 3), block_partition(curr, 3)
        outcomes = run_spmd(
            _encode_worker, 3, ps, cs, cfg, strict=False,
            comm_timeout=COMM_TIMEOUT, timeout=RUN_TIMEOUT,
            faults={1: RankFaultInjector(crash_in_phase="insitu.refine")})
        survivors = [o for o in outcomes if o.rank != 1]
        assert all(o.ok for o in survivors)
        for o in survivors:
            assert o.value["degraded"] and o.value["lost"] == (1,)
            assert o.value["max_err"] < 1.2 * E

    def test_root_loss_is_loud(self):
        """Losing rank 0 (the recovery coordinator) fails loudly."""
        prev, curr = _pair(3000)
        cfg = NumarckConfig(error_bound=E, nbits=8)
        ps, cs = block_partition(prev, 3), block_partition(curr, 3)
        outcomes = run_spmd(
            _encode_worker, 3, ps, cs, cfg, strict=False,
            comm_timeout=COMM_TIMEOUT, timeout=RUN_TIMEOUT,
            faults={0: RankFaultInjector(crash_in_phase="insitu.fit_bcast")})
        assert not outcomes[0].ok
        for o in outcomes[1:]:
            assert (not o.ok) and "RankFailureError" in (o.error or "")


class TestHarnessHygiene:
    def test_timeout_terminates_and_reaps_children(self):
        """Ranks that miss the deadline are killed, not leaked."""
        t0 = time.monotonic()
        outcomes = run_spmd(_sleepy_worker, 3, strict=False,
                            comm_timeout=1.0, timeout=2.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 8.0
        assert outcomes[1].timed_out and not outcomes[1].ok
        assert active_children() == []  # no live children, no zombies

    def test_strict_timeout_raises_and_reaps(self):
        with pytest.raises(RuntimeError, match="no result within"):
            run_spmd(_sleepy_worker, 2, comm_timeout=1.0, timeout=1.5)
        assert active_children() == []

    def test_traceback_propagated(self):
        """Failures carry the rank's full traceback, not just the repr."""
        with pytest.raises(RuntimeError) as ei:
            run_spmd(_boom_worker, 2, timeout=RUN_TIMEOUT)
        msg = str(ei.value)
        assert "rank 1: ValueError: boom-with-context" in msg
        assert "Traceback (most recent call last)" in msg
        assert "_boom_helper" in msg

    def test_outcome_traceback_nonstrict(self):
        outcomes = run_spmd(_boom_worker, 2, strict=False, timeout=RUN_TIMEOUT)
        assert outcomes[0].ok and outcomes[0].value == 0
        assert "boom-with-context" in outcomes[1].error
        assert "_boom_helper" in outcomes[1].traceback

    def test_single_proc_nonstrict(self):
        outcomes = run_spmd(lambda comm: comm.size, 1, strict=False)
        assert outcomes[0].ok and outcomes[0].value == 1


class TestRespawnRetry:
    def test_crash_then_clean_retry(self):
        """A fault confined to attempt 0 is cured by respawn-and-retry."""
        t0 = time.monotonic()
        results = run_spmd(
            _attempt_worker, 3, comm_timeout=COMM_TIMEOUT,
            timeout=RUN_TIMEOUT, max_restarts=1, restart_backoff=0.05,
            faults={1: RankFaultInjector(crash_at=(1,), on_attempts=(0,))})
        assert time.monotonic() - t0 < 15.0
        assert results == [(1, 6)] * 3  # all ranks ran on attempt 1

    def test_restart_budget_exhausted(self):
        with pytest.raises(RuntimeError, match="SPMD execution failed"):
            run_spmd(_attempt_worker, 2, comm_timeout=COMM_TIMEOUT,
                     timeout=RUN_TIMEOUT, max_restarts=1,
                     restart_backoff=0.05,
                     faults={1: RankFaultInjector(crash_at=(1, 2))})
