"""Block-structured mesh tests."""

import numpy as np
import pytest

from repro.simulations.flash import BlockGrid


class TestLayout:
    def test_block_count(self):
        grid = BlockGrid(64, 48, block=16)
        assert grid.n_blocks == 4 * 3
        assert grid.nby == 4 and grid.nbx == 3

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            BlockGrid(60, 64, block=16)

    def test_guard_bounds(self):
        with pytest.raises(ValueError):
            BlockGrid(32, 32, block=16, guard=17)
        with pytest.raises(ValueError):
            BlockGrid(32, 32, block=16, guard=-1)

    def test_paper_dimensions(self):
        """Paper: 16x16 blocks, 4 guard cells each side -> 24x24 arrays."""
        grid = BlockGrid(64, 64, block=16, guard=4)
        assert grid.blocks.shape[1:] == (24, 24)
        assert grid.interior(0).shape == (16, 16)

    def test_round_robin_ownership(self):
        grid = BlockGrid(64, 64, block=16, n_ranks=3)
        counts = np.bincount([grid.owner(b) for b in range(grid.n_blocks)],
                             minlength=3)
        assert counts.max() - counts.min() <= 1
        for rank in range(3):
            assert all(grid.owner(b) == rank for b in grid.rank_blocks(rank))

    def test_owner_out_of_range(self):
        grid = BlockGrid(32, 32)
        with pytest.raises(IndexError):
            grid.owner(99)
        with pytest.raises(IndexError):
            grid.rank_blocks(5)


class TestDataMovement:
    def test_scatter_gather_identity(self, rng):
        grid = BlockGrid(48, 32, block=16, guard=4)
        field = rng.normal(size=(48, 32))
        grid.scatter(field)
        np.testing.assert_array_equal(grid.gather(), field)

    def test_scatter_wrong_shape(self, rng):
        grid = BlockGrid(32, 32)
        with pytest.raises(ValueError):
            grid.scatter(rng.normal(size=(16, 16)))

    def test_exchange_matches_periodic_neighbourhood(self, rng):
        """After exchange, each block with guards equals the corresponding
        window of the periodically padded global field -- including
        corners (diagonal neighbour data)."""
        g = 4
        grid = BlockGrid(48, 48, block=16, guard=g)
        field = rng.normal(size=(48, 48))
        grid.scatter(field)
        grid.exchange()
        padded = np.pad(field, g, mode="wrap")
        for by in range(grid.nby):
            for bx in range(grid.nbx):
                bid = grid.block_index(by, bx)
                window = padded[by * 16 : by * 16 + 16 + 2 * g,
                                bx * 16 : bx * 16 + 16 + 2 * g]
                np.testing.assert_array_equal(grid.guard_halo(bid), window)

    def test_exchange_noop_without_guards(self, rng):
        grid = BlockGrid(32, 32, block=16, guard=0)
        field = rng.normal(size=(32, 32))
        grid.scatter(field)
        grid.exchange()
        np.testing.assert_array_equal(grid.gather(), field)

    def test_interior_is_view(self, rng):
        grid = BlockGrid(32, 32, block=16, guard=2)
        grid.interior(0)[:] = 7.0
        assert grid.gather()[0, 0] == 7.0
