"""Octree AMR tests."""

import numpy as np
import pytest

from repro.core import NumarckConfig
from repro.simulations.flash.amr import AmrCheckpointer
from repro.simulations.flash.amr3d import OctTreeMesh


def _blob(cx, cy, cz, width=0.1):
    def fn(zz, yy, xx):
        r2 = (xx - cx) ** 2 + (yy - cy) ** 2 + (zz - cz) ** 2
        return 1.0 + 4.0 * np.exp(-r2 / width**2)
    return fn


class TestOctree:
    def test_root_layout(self):
        mesh = OctTreeMesh(block_size=4, base=2)
        assert mesh.n_leaves == 8
        assert mesh.n_cells == 8 * 64

    def test_refine_makes_eight(self):
        mesh = OctTreeMesh(block_size=4, base=1)
        children = mesh.refine((0, 0, 0, 0))
        assert len(children) == 8
        assert mesh.n_leaves == 8

    def test_extents_tile_unit_cube(self):
        mesh = OctTreeMesh(block_size=4, base=1)
        mesh.refine((0, 0, 0, 0))
        mesh.refine((1, 0, 0, 0))
        vol = sum(mesh.block_extent(k)[3] ** 3 for k in mesh.leaves)
        assert vol == pytest.approx(1.0)

    def test_refine_coarsen_conserve_integral(self, rng):
        mesh = OctTreeMesh(block_size=4, base=1)
        mesh.leaves[(0, 0, 0, 0)] = rng.normal(size=(4, 4, 4))
        before = mesh.total_integral()
        mesh.refine((0, 0, 0, 0))
        assert mesh.total_integral() == pytest.approx(before, rel=1e-12)
        mesh.coarsen((0, 0, 0, 0))
        assert mesh.total_integral() == pytest.approx(before, rel=1e-12)

    def test_adapt_refines_around_blob(self):
        mesh = OctTreeMesh(block_size=8, base=1, max_level=2)
        mesh.sample(_blob(0.25, 0.25, 0.25, width=0.08))
        for _ in range(2):
            mesh.adapt(refine_above=0.4)
            mesh.sample(_blob(0.25, 0.25, 0.25, width=0.08))
        finest = max(k[0] for k in mesh.leaves)
        assert finest >= 1
        for key in mesh.leaves:
            if key[0] == finest:
                x0, y0, z0, w = mesh.block_extent(key)
                assert np.hypot(np.hypot(x0 + w / 2 - 0.25, y0 + w / 2 - 0.25),
                                z0 + w / 2 - 0.25) < 0.6

    def test_adapt_coarsens_flat_field(self):
        mesh = OctTreeMesh(block_size=4, base=1, max_level=2)
        mesh.refine((0, 0, 0, 0))
        mesh.sample(lambda zz, yy, xx: np.ones_like(xx))
        mesh.adapt()
        assert mesh.n_leaves == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            OctTreeMesh(block_size=3)  # odd
        with pytest.raises(ValueError):
            OctTreeMesh(base=0)
        mesh = OctTreeMesh(block_size=4, base=1, max_level=0)
        with pytest.raises(ValueError):
            mesh.refine((0, 0, 0, 0))
        with pytest.raises(KeyError):
            mesh.coarsen((0, 0, 0, 0))

    def test_checkpointer_works_in_3d(self):
        """AmrCheckpointer is dimension-agnostic: octree snapshots work."""
        mesh = OctTreeMesh(block_size=8, base=1, max_level=2)
        ckpt = AmrCheckpointer(NumarckConfig(error_bound=1e-3))
        for i in range(4):
            c = 0.25 + 0.15 * i
            mesh.sample(_blob(c, c, c))
            mesh.adapt(refine_above=0.4)
            mesh.sample(_blob(c, c, c))
            ckpt.record(mesh.snapshot())
        truth = mesh.snapshot()
        rec = ckpt.reconstruct()
        assert set(rec) == set(truth)
        for key in truth:
            rel = np.abs(rec[key] - truth[key]) / np.abs(truth[key])
            assert rel.max() < 2e-2
