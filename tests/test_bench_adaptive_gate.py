"""Acceptance gate for the adaptive reuse engine.

The committed baselines (``repro bench run --scenario chain_adaptive
[--scenario chain_adaptive_off]``) record the same stationary
20-iteration CMIP chain with reuse on vs off.  The gate: fit-stage self
time must drop by at least 2x with reuse on, and the improvement must be
significant under the stock MAD comparator -- not just a lucky median.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.bench.compare import Thresholds, compare_docs, load_bench

BASELINES = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"

#: Stages that make up the model-fitting work.  ``encode.fit`` is the
#: parent span; Lloyd and the strategy driver carry its heavy self time.
FIT_STAGES = ("encode.fit", "kmeans.lloyd", "strategy.clustering.fit")


@pytest.fixture(scope="module")
def docs():
    on = load_bench(BASELINES / "BENCH_chain_adaptive.json")
    off = load_bench(BASELINES / "BENCH_chain_adaptive_off.json")
    return on, off


def test_baselines_ran_the_same_chain(docs):
    on, off = docs
    assert on["attrs"]["n_pairs"] == off["attrs"]["n_pairs"] == 20
    assert on["attrs"]["n_points"] == off["attrs"]["n_points"]
    assert on["attrs"]["reuse_hits"] == 19  # one cold fit, then all hits
    assert off["attrs"]["reuse_hits"] == 0


def test_reuse_does_not_inflate_output(docs):
    on, off = docs
    # Reuse trades freshness of the table for fit time; the table-ref
    # format keeps the payload from growing more than marginally.
    assert on["attrs"]["bytes_out"] <= off["attrs"]["bytes_out"] * 1.05


def test_fit_stage_self_time_halved_and_significant(docs):
    on, off = docs
    # compare_docs refuses mismatched scenario names (by design); the
    # gate intentionally crosses the on/off pair, so align the labels.
    base = copy.deepcopy(off)
    base["scenario"] = on["scenario"]
    comparison = compare_docs(base, on, Thresholds())
    deltas = {d.metric: d for d in comparison.deltas}

    for stage in FIT_STAGES:
        d = deltas[f"stage:{stage}"]
        assert d.base_median >= 2.0 * d.cur_median, (
            f"{stage}: {d.base_median:.6f}s off vs {d.cur_median:.6f}s on "
            "-- less than the required 2x reduction")
        assert d.improved, (
            f"{stage}: improvement {-d.delta_s:.6f}s is within noise "
            f"(threshold {d.threshold_s:.6f}s)")

    # The whole-chain total must improve too, not just the fit slices.
    total = deltas["total"]
    assert total.improved and total.base_median >= 2.0 * total.cur_median


def test_baselines_are_valid_schema():
    for name in ("BENCH_chain_adaptive.json", "BENCH_chain_adaptive_off.json"):
        doc = json.loads((BASELINES / name).read_text())
        assert doc["schema"] == "numarck-bench/1"
        assert doc["repeats"] >= 3
