"""Forward predictive coding (change-ratio transform) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apply_change, change_ratios


class TestChangeRatios:
    def test_basic_ratio(self):
        field = change_ratios(np.array([10.0, 100.0]), np.array([11.0, 110.0]))
        np.testing.assert_allclose(field.ratios, [0.1, 0.1])
        assert not field.forced_exact.any()

    def test_paper_example_identical_relative_changes(self):
        """10 -> 11 and 100 -> 110 share one representable ratio."""
        field = change_ratios(np.array([10.0, 100.0]), np.array([11.0, 110.0]))
        assert field.ratios[0] == pytest.approx(field.ratios[1])

    def test_zero_base_forced_exact(self):
        field = change_ratios(np.array([0.0, 1.0]), np.array([5.0, 2.0]))
        assert field.forced_exact[0]
        assert not field.forced_exact[1]
        assert field.ratios[0] == 0.0

    def test_nan_and_inf_forced_exact(self):
        prev = np.array([1.0, np.nan, np.inf, 1.0])
        curr = np.array([np.nan, 1.0, 1.0, np.inf])
        field = change_ratios(prev, curr)
        assert field.forced_exact.all()

    def test_denormal_overflow_forced_exact(self):
        prev = np.array([5e-324])  # smallest subnormal
        curr = np.array([1.0])
        field = change_ratios(prev, curr)
        assert field.forced_exact[0] or np.isfinite(field.ratios[0])

    def test_negative_values(self):
        field = change_ratios(np.array([-10.0]), np.array([-11.0]))
        assert field.ratios[0] == pytest.approx(0.1)

    def test_sign_flip(self):
        field = change_ratios(np.array([2.0]), np.array([-2.0]))
        assert field.ratios[0] == pytest.approx(-2.0)

    def test_shape_preserved(self, rng):
        prev = rng.uniform(1, 2, (4, 5, 6))
        curr = prev * 1.01
        field = change_ratios(prev, curr)
        assert field.ratios.shape == (4, 5, 6)
        assert field.n_points == 120

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            change_ratios(np.zeros(3), np.zeros(4))

    def test_unchanged_is_zero_ratio(self, rng):
        prev = rng.uniform(1, 2, 100)
        field = change_ratios(prev, prev)
        np.testing.assert_array_equal(field.ratios, np.zeros(100))


class TestApplyChange:
    def test_inverse_of_change_ratios(self, rng):
        prev = rng.uniform(0.5, 3.0, 1000)
        curr = prev * rng.uniform(0.9, 1.1, 1000)
        field = change_ratios(prev, curr)
        rebuilt = apply_change(prev, field.ratios)
        np.testing.assert_allclose(rebuilt, curr, rtol=1e-12)

    def test_zero_ratio_carries_value(self):
        prev = np.array([3.0, -7.0])
        np.testing.assert_array_equal(apply_change(prev, np.zeros(2)), prev)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            apply_change(np.zeros(2), np.zeros(3))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(1, 300))
def test_property_roundtrip_where_defined(seed, n):
    """ratio -> apply is the identity wherever the ratio is defined."""
    rng = np.random.default_rng(seed)
    prev = rng.normal(size=n) * 10.0 ** float(rng.integers(-3, 4))
    prev[rng.random(n) < 0.1] = 0.0
    curr = rng.normal(size=n)
    field = change_ratios(prev, curr)
    rebuilt = apply_change(prev, field.ratios)
    ok = ~field.forced_exact
    np.testing.assert_allclose(rebuilt[ok], curr[ok], rtol=1e-9, atol=1e-12)
