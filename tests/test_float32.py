"""Single-precision checkpoint support (paper Section II-A: "our method
can be applied to floating point numbers of different precision")."""

import numpy as np
import pytest

from repro import Codec
from repro.core import (
    NumarckConfig,
    decode_iteration,
    encode_pair,
)
from repro.core.metrics import compression_ratio_paper, iteration_stats
from repro.io import decode_delta_bytes, encode_delta_bytes


@pytest.fixture
def f32_pair(rng):
    prev = rng.uniform(1.0, 2.0, 5000).astype(np.float32)
    curr = (prev * (1.0 + rng.normal(0.0, 0.003, 5000))).astype(np.float32)
    return prev, curr


class TestFloat32:
    def test_value_bits_detected(self, f32_pair, smooth_pair):
        prev32, curr32 = f32_pair
        assert encode_pair(prev32, curr32)[0].value_bits == 32
        prev64, curr64 = smooth_pair
        assert encode_pair(prev64, curr64)[0].value_bits == 64

    def test_guarantee_holds(self, f32_pair):
        prev, curr = f32_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        enc = encode_pair(prev, curr, cfg)[0]
        out = decode_iteration(prev, enc)
        rel = np.abs(out / curr.astype(np.float64) - 1)
        rel[enc.incompressible] = 0
        assert rel.max() < 1.2e-3

    def test_exact_values_bit_exact_in_f32(self, rng):
        prev = np.zeros(100, dtype=np.float32)
        curr = rng.normal(size=100).astype(np.float32)
        enc = encode_pair(prev, curr)[0]
        out = decode_iteration(prev, enc)
        np.testing.assert_array_equal(out.astype(np.float32), curr)

    def test_serialization_roundtrip_half_size_exact_stream(self, rng):
        prev = np.zeros(1000, dtype=np.float32)  # all incompressible
        curr = rng.normal(size=1000).astype(np.float32)
        enc = encode_pair(prev, curr)[0]
        assert enc.value_bits == 32
        blob32 = encode_delta_bytes(enc)
        back = decode_delta_bytes(blob32)
        assert back.value_bits == 32
        np.testing.assert_array_equal(
            back.exact_values.astype(np.float32),
            enc.exact_values.astype(np.float32),
        )
        # Same data as float64 must serialise a larger exact stream.
        enc64 = encode_pair(prev.astype(np.float64),
                                 curr.astype(np.float64))[0]
        assert len(encode_delta_bytes(enc64)) > len(blob32) + 1000 * 3

    def test_ratio_accounting_uses_32_bits(self, f32_pair):
        """At gamma = 0, B = 8 on 32-bit values the index costs 8/32 of the
        original instead of 8/64, so the ratio ceiling is lower."""
        prev, curr = f32_pair
        stats = iteration_stats(prev, curr,
                                encode_pair(prev, curr,
                                                 NumarckConfig(nbits=8))[0])
        r64 = compression_ratio_paper(5000, stats.n_incompressible, 8,
                                      value_bits=64)
        assert stats.ratio_paper < r64

    def test_explicit_formula(self):
        # N=1000, gamma=0, B=8, 32-bit values: compressed = 1000*8 + 255*64.
        expected = 100 * (1000 * 32 - (1000 * 8 + 255 * 64)) / (1000 * 32)
        assert compression_ratio_paper(1000, 0, 8, value_bits=32) == \
            pytest.approx(expected)

    def test_compressor_facade(self, f32_pair):
        prev, curr = f32_pair
        comp = Codec(config=NumarckConfig(error_bound=1e-3))
        out, enc, stats = comp.roundtrip(prev, curr)
        assert enc.value_bits == 32
        assert stats.max_error < 1e-3
