"""Streaming (chunked two-pass) encoder tests."""

import numpy as np
import pytest

from repro.core import (
    FormatError,
    NumarckConfig,
    decode_iteration,
    decode_stream,
    encode_pair,
)
from repro.core.streaming import _ChunkedEncoder


def _chunks(arr, n):
    return lambda: iter(np.array_split(arr, n))


class TestStreamingEncode:
    def test_roundtrip_within_bound(self, smooth_pair):
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        enc = _ChunkedEncoder(cfg, chunk_size=1000)
        streamed = enc.encode_arrays(prev, curr)
        out = np.concatenate(list(decode_stream(
            iter(np.array_split(prev, len(streamed.chunks))), streamed)))
        rel = np.abs(out / curr - 1)
        rel[np.concatenate([c.incompressible for c in streamed.chunks])] = 0
        assert rel.max() < 1.2e-3

    def test_matches_one_shot_guarantee(self, hard_pair):
        """Streamed encoding honours the same per-point invariant."""
        prev, curr = hard_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
        streamed = _ChunkedEncoder(cfg, chunk_size=500).encode_arrays(prev, curr)
        enc = streamed.as_encoded_iteration()
        out = decode_iteration(prev.ravel(), enc)
        exact = enc.incompressible
        np.testing.assert_array_equal(out[exact], curr.ravel()[exact])
        nz = (prev.ravel() != 0) & ~exact & np.isfinite(prev.ravel())
        ratio_err = np.abs((out[nz] - curr.ravel()[nz]) / prev.ravel()[nz])
        assert ratio_err.max() < 1e-3

    def test_gamma_close_to_one_shot(self, smooth_pair):
        """Sampled model fitting should cost at most a little extra gamma."""
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        one_shot = encode_pair(prev, curr, cfg)[0]
        streamed = _ChunkedEncoder(cfg, chunk_size=777,
                                    sample_size=2000).encode_arrays(prev, curr)
        gamma_stream = sum(c.exact_values.size for c in streamed.chunks) / prev.size
        assert gamma_stream <= one_shot.incompressible_ratio + 0.05

    def test_chunk_starts_contiguous(self, smooth_pair):
        prev, curr = smooth_pair
        streamed = _ChunkedEncoder(NumarckConfig(),
                                    chunk_size=999).encode_arrays(prev, curr)
        pos = 0
        for c in streamed.chunks:
            assert c.start == pos
            pos += c.n_points
        assert pos == streamed.n_points == prev.size

    def test_unchanged_stream_no_model(self, rng):
        prev = rng.uniform(1, 2, 3000)
        streamed = _ChunkedEncoder(NumarckConfig(),
                                    chunk_size=1000).encode_arrays(prev, prev)
        assert streamed.representatives.size == 0
        out = np.concatenate(list(decode_stream(
            iter(np.array_split(prev, 3)), streamed)))
        np.testing.assert_array_equal(out, prev)

    def test_zero_and_nan_handling(self):
        prev = np.array([0.0, 0.0, 1.0, 1.0] * 100)
        curr = np.array([0.0, 2.0, np.nan, 1.001] * 100)
        cfg = NumarckConfig(error_bound=1e-2)
        streamed = _ChunkedEncoder(cfg, chunk_size=64).encode_arrays(prev, curr)
        out = np.concatenate(list(decode_stream(
            iter(np.array_split(prev, len(streamed.chunks))), streamed)))
        np.testing.assert_array_equal(np.isnan(out), np.isnan(curr))
        assert np.array_equal(out[~np.isnan(out)], curr[~np.isnan(curr)],
                              equal_nan=False) or np.max(
            np.abs(out[3::4] - curr[3::4])) < 2e-2

    def test_mismatched_streams_rejected(self, rng):
        enc = _ChunkedEncoder(NumarckConfig(), chunk_size=100)
        prev = rng.uniform(1, 2, 200)
        curr = rng.uniform(1, 2, 300)
        with pytest.raises(FormatError):
            enc.encode_arrays(prev, curr)

    def test_stream_change_between_passes_detected(self, rng):
        """If the replayed stream differs in length, encoding must fail."""
        enc = _ChunkedEncoder(NumarckConfig(), chunk_size=100)
        prev = rng.uniform(1, 2, 400)
        curr = prev * 1.01
        calls = {"n": 0}

        def flaky_prev():
            calls["n"] += 1
            n_chunks = 4 if calls["n"] == 1 else 3
            return iter(np.array_split(prev[: n_chunks * 100], n_chunks))

        with pytest.raises(FormatError, match="changed between passes"):
            enc.encode(flaky_prev, lambda: iter(np.array_split(curr, 4)))

    def test_decode_wrong_chunking_rejected(self, smooth_pair):
        prev, curr = smooth_pair
        streamed = _ChunkedEncoder(NumarckConfig(),
                                    chunk_size=1000).encode_arrays(prev, curr)
        with pytest.raises(FormatError, match="reference has"):
            list(decode_stream(iter([prev]), streamed))

    def test_validation(self):
        with pytest.raises(ValueError):
            _ChunkedEncoder(chunk_size=0)
        with pytest.raises(ValueError):
            _ChunkedEncoder(sample_size=4)

    def test_single_chunk_equals_whole(self, smooth_pair):
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=1e-3)
        streamed = _ChunkedEncoder(cfg, chunk_size=10**9,
                                    sample_size=200_000).encode_arrays(prev, curr)
        assert len(streamed.chunks) == 1
        enc = streamed.as_encoded_iteration()
        out = decode_iteration(prev, enc)
        assert np.max(np.abs(out / curr - 1)) < 2e-3
