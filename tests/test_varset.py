"""VariableSet: whole-checkpoint compression and persistence."""

import numpy as np
import pytest

from repro.core import NumarckConfig, VariableSet
from repro.restart import RestartManager


def _checkpoints(rng, n_iters=3, n=1200):
    cps = []
    a, b = rng.uniform(1, 2, n), rng.uniform(10, 20, n)
    for _ in range(n_iters + 1):
        cps.append({"a": a.copy(), "b": b.copy()})
        a = a * (1 + rng.normal(0, 0.002, n))
        b = b * (1 + rng.normal(0, 0.002, n))
    return cps


class TestRecording:
    def test_first_record_is_full(self, rng):
        vs = VariableSet(("a", "b"))
        stats = vs.record(_checkpoints(rng)[0])
        assert stats is None
        assert vs.n_checkpoints == 1

    def test_deltas_return_stats(self, rng):
        cps = _checkpoints(rng)
        vs = VariableSet(("a", "b"), NumarckConfig(error_bound=1e-3))
        vs.record(cps[0])
        stats = vs.record(cps[1])
        assert set(stats) == {"a", "b"}
        assert all(s.max_error < 1e-3 for s in stats.values())

    def test_reconstruct_all_variables(self, rng):
        cps = _checkpoints(rng)
        vs = VariableSet(("a", "b"), NumarckConfig(error_bound=1e-3))
        for cp in cps:
            vs.record(cp)
        state = vs.reconstruct()
        for v in ("a", "b"):
            rel = np.abs(state[v] / cps[-1][v] - 1)
            assert rel.max() < len(cps) * 2e-3

    def test_extra_variables_ignored(self, rng):
        vs = VariableSet(("a",))
        cp = _checkpoints(rng)[0]
        vs.record(cp)  # cp also has "b"
        assert set(vs.reconstruct()) == {"a"}

    def test_missing_variable_rejected(self, rng):
        vs = VariableSet(("a", "missing"))
        with pytest.raises(KeyError):
            vs.record(_checkpoints(rng)[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            VariableSet(())
        with pytest.raises(ValueError, match="duplicate"):
            VariableSet(("a", "a"))

    def test_guards_before_first_record(self):
        vs = VariableSet(("a",))
        assert vs.n_checkpoints == 0
        with pytest.raises(RuntimeError):
            vs.reconstruct()
        with pytest.raises(RuntimeError):
            vs.chain("a")
        with pytest.raises(RuntimeError):
            vs.save("/tmp/never.nmk")


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, rng):
        cps = _checkpoints(rng)
        vs = VariableSet(("a", "b"), NumarckConfig())
        for cp in cps:
            vs.record(cp)
        path = tmp_path / "set.nmk"
        nbytes = vs.save(path)
        assert nbytes == path.stat().st_size
        loaded = VariableSet.load(path)
        assert set(loaded.variables) == {"a", "b"}
        assert loaded.n_checkpoints == len(cps)
        for v in ("a", "b"):
            np.testing.assert_array_equal(vs.reconstruct()[v],
                                          loaded.reconstruct()[v])

    def test_loaded_set_recordable(self, tmp_path, rng):
        cps = _checkpoints(rng, n_iters=1)
        vs = VariableSet(("a", "b"), NumarckConfig())
        for cp in cps:
            vs.record(cp)
        path = tmp_path / "s.nmk"
        vs.save(path)
        loaded = VariableSet.load(path, NumarckConfig())
        loaded.record({k: v * 1.001 for k, v in loaded.reconstruct().items()})
        assert loaded.n_checkpoints == 3


class TestRestartManagerIntegration:
    def test_restart_manager_is_a_variable_set(self, rng):
        mgr = RestartManager(("a", "b"), NumarckConfig())
        assert isinstance(mgr, VariableSet)
        cps = _checkpoints(rng, n_iters=1)
        for cp in cps:
            mgr.record(cp)
        np.testing.assert_array_equal(mgr.restart_state()["a"],
                                      mgr.reconstruct()["a"])

    def test_restart_manager_persistence(self, tmp_path, rng):
        mgr = RestartManager(("a",), NumarckConfig())
        cps = _checkpoints(rng, n_iters=2)
        for cp in cps:
            mgr.record(cp)
        mgr.save(tmp_path / "m.nmk")
        loaded = RestartManager.load(tmp_path / "m.nmk")
        np.testing.assert_array_equal(loaded.restart_state()["a"],
                                      mgr.restart_state()["a"])
