"""On-disk persistence of streamed (chunked) encodings."""

import numpy as np
import pytest

from repro import Codec
from repro.core import (
    FormatError,
    NumarckConfig,
    decode_stream,
)
from repro.io import (
    load_streamed,
    save_streamed,
    streamed_from_bytes,
    streamed_to_bytes,
)


@pytest.fixture
def streamed(smooth_pair):
    prev, curr = smooth_pair
    enc = Codec(config=NumarckConfig(error_bound=1e-3), chunk_size=1000)
    return prev, curr, enc.compress_stream_arrays(prev, curr)


class TestRoundtrip:
    def test_save_load(self, tmp_path, streamed):
        prev, curr, s = streamed
        path = tmp_path / "s.nms"
        nbytes = save_streamed(path, s)
        assert nbytes == path.stat().st_size
        loaded = load_streamed(path)
        assert loaded.n_points == s.n_points
        assert loaded.nbits == s.nbits
        assert loaded.strategy == s.strategy
        assert loaded.zero_reserved == s.zero_reserved
        assert loaded.error_bound == s.error_bound
        np.testing.assert_array_equal(loaded.representatives,
                                      s.representatives)
        assert len(loaded.chunks) == len(s.chunks)
        for a, b in zip(loaded.chunks, s.chunks):
            assert a.start == b.start
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.incompressible, b.incompressible)
            np.testing.assert_array_equal(a.exact_values, b.exact_values)

    def test_loaded_stream_decodes(self, tmp_path, streamed):
        prev, curr, s = streamed
        path = tmp_path / "s.nms"
        save_streamed(path, s)
        loaded = load_streamed(path)
        out = np.concatenate(list(decode_stream(
            iter(np.array_split(prev, len(loaded.chunks))), loaded)))
        rel = np.abs(out / curr - 1)
        rel[np.concatenate([c.incompressible for c in loaded.chunks])] = 0
        assert rel.max() < 1.2e-3

    def test_bytes_identical_to_file(self, tmp_path, streamed):
        _, _, s = streamed
        path = tmp_path / "s.nms"
        save_streamed(path, s)
        assert streamed_to_bytes(s) == path.read_bytes()

    def test_bytes_roundtrip(self, streamed):
        _, _, s = streamed
        loaded = streamed_from_bytes(streamed_to_bytes(s))
        assert loaded.n_points == s.n_points
        assert len(loaded.chunks) == len(s.chunks)
        np.testing.assert_array_equal(loaded.representatives,
                                      s.representatives)

    def test_bytes_truncation_detected(self, streamed):
        _, _, s = streamed
        data = streamed_to_bytes(s)
        with pytest.raises(FormatError):
            streamed_from_bytes(data[: len(data) - 5])

    def test_compressed_smaller_than_raw(self, tmp_path, streamed):
        prev, curr, s = streamed
        nbytes = save_streamed(tmp_path / "s.nms", s)
        assert nbytes < 0.4 * curr.nbytes

    def test_empty_like_stream(self, tmp_path, rng):
        prev = rng.uniform(1, 2, 100)
        s = Codec(config=NumarckConfig(),
                  chunk_size=50).compress_stream_arrays(prev, prev)
        path = tmp_path / "e.nms"
        save_streamed(path, s)
        loaded = load_streamed(path)
        assert loaded.representatives.size == 0
        assert loaded.n_points == 100


class TestCorruption:
    def test_bit_flip_detected(self, tmp_path, streamed):
        _, _, s = streamed
        path = tmp_path / "c.nms"
        save_streamed(path, s)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(FormatError):
            load_streamed(path)

    def test_missing_header(self, tmp_path):
        from repro.io.container import CheckpointFile

        p = tmp_path / "h.nms"
        CheckpointFile.create(p).close()
        with pytest.raises(FormatError, match="no stream header"):
            load_streamed(p)

    def test_chunk_order_verified(self, tmp_path, streamed):
        """Dropping a middle chunk record must be detected."""
        import struct
        import zlib

        _, _, s = streamed
        path = tmp_path / "o.nms"
        save_streamed(path, s)
        # Rewrite the file without the second CHNK record.
        from repro.io.container import CheckpointFile

        records = []
        with CheckpointFile.open(path) as f:
            records = list(f.records())
        kept = [records[0]] + [records[1]] + records[3:]
        with open(path, "wb") as fh:
            fh.write(b"NMRK" + struct.pack("<H", 1))
            for tag, payload in kept:
                frame = tag + struct.pack("<Q", len(payload)) + payload
                fh.write(frame + struct.pack("<I", zlib.crc32(frame)))
        with pytest.raises(FormatError, match="chunk at offset|cover"):
            load_streamed(path)
