"""HLL flux option tests: correctness and reduced diffusion vs Rusanov."""

import numpy as np
import pytest

from repro.simulations.flash import Euler2D, GammaLawEOS
from repro.simulations.flash.problems import kelvin_helmholtz, sedov
from repro.simulations.flash.riemann import sod_exact


def _sod_run(nx, t_end, flux):
    ny = 4
    x = (np.arange(nx) + 0.5) / nx
    left = x < 0.5
    dens = np.where(left, 1.0, 0.125)[None, :].repeat(ny, axis=0)
    pres = np.where(left, 1.0, 0.1)[None, :].repeat(ny, axis=0)
    zero = np.zeros((ny, nx))
    solver = Euler2D(dens, zero.copy(), zero.copy(), zero.copy(), pres,
                     eos=GammaLawEOS(gamma_drop=0.0),
                     dx=1.0 / nx, dy=1.0 / ny, bc="outflow", cfl=0.4,
                     flux=flux)
    while solver.time < t_end:
        smax = solver.max_signal_speed()
        dt = min(0.4 / nx / smax, t_end - solver.time)
        solver.step(dt=dt)
    return x, solver.primitives()["dens"][0]


class TestHLL:
    def test_unknown_flux_rejected(self):
        ones = np.ones((8, 8))
        with pytest.raises(ValueError, match="flux"):
            Euler2D(ones, ones, ones, ones, ones, flux="magic")

    def test_conservation(self):
        ic = sedov(24, 24)
        solver = Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"],
                         ic["pres"], dx=1 / 24, dy=1 / 24, flux="hll")
        m0, e0 = solver.total_mass(), solver.total_energy()
        for _ in range(15):
            solver.step()
        assert solver.total_mass() == pytest.approx(m0, rel=1e-12)
        assert solver.total_energy() == pytest.approx(e0, rel=1e-8)

    def test_uniform_state_steady(self):
        ones = np.ones((8, 8))
        solver = Euler2D(ones, 0 * ones, 0 * ones, 0 * ones, ones,
                         dx=1 / 8, dy=1 / 8, flux="hll")
        before = solver.u.copy()
        for _ in range(5):
            solver.step()
        np.testing.assert_allclose(solver.u, before, atol=1e-12)

    def test_converges_to_exact_sod(self):
        x, dens = _sod_run(256, 0.15, "hll")
        exact = sod_exact(x, 0.15)
        err = float(np.mean(np.abs(dens - exact["rho"])))
        assert err < 0.02

    def test_hll_sharper_than_rusanov(self):
        """HLL's tighter wave bounds must cut the Sod L1 density error."""
        t_end = 0.15
        x, d_rus = _sod_run(128, t_end, "rusanov")
        _, d_hll = _sod_run(128, t_end, "hll")
        exact = sod_exact(x, t_end)["rho"]
        err_rus = float(np.mean(np.abs(d_rus - exact)))
        err_hll = float(np.mean(np.abs(d_hll - exact)))
        assert err_hll < err_rus

    def test_positivity_under_blast(self):
        ic = sedov(16, 16, blast_pressure=500.0)
        solver = Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"],
                         ic["pres"], dx=1 / 16, dy=1 / 16, flux="hll",
                         cfl=0.3)
        for _ in range(40):
            solver.step()
        prim = solver.primitives()
        assert prim["dens"].min() > 0 and prim["pres"].min() > 0
        assert np.all(np.isfinite(solver.u))

    def test_kh_runs_with_species(self):
        ic = kelvin_helmholtz(16, 16)
        spec = np.full((1, 16, 16), 0.5)
        solver = Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"],
                         ic["pres"], dx=1 / 16, dy=1 / 16, flux="hll",
                         species=spec)
        for _ in range(10):
            solver.step()
        np.testing.assert_allclose(solver.species_fractions()[0], 0.5,
                                   atol=1e-9)