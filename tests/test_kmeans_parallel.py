"""Distributed k-means: serial equivalence, SPMD execution, degraded mode."""

import numpy as np
import pytest

from repro.kmeans import histogram_init, kmeans1d, parallel_kmeans1d
from repro.parallel import (
    RankFaultInjector,
    SerialComm,
    block_partition,
    run_spmd,
)


class TestSerialEquivalence:
    def test_identical_to_kmeans1d(self, rng):
        data = rng.normal(size=1000)
        init = histogram_init(data, 12)
        serial = kmeans1d(data, init, max_iter=30)
        para = parallel_kmeans1d(SerialComm(), data, init, max_iter=30)
        np.testing.assert_array_equal(serial.centroids, para.centroids)
        np.testing.assert_array_equal(serial.labels, para.labels)
        assert serial.inertia == pytest.approx(para.inertia)
        assert serial.n_iter == para.n_iter

    def test_none_comm_means_serial(self, rng):
        data = rng.normal(size=200)
        init = histogram_init(data, 4)
        a = parallel_kmeans1d(None, data, init)
        b = parallel_kmeans1d(SerialComm(), data, init)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_empty_global_raises(self):
        with pytest.raises(ValueError, match="empty"):
            parallel_kmeans1d(SerialComm(), np.array([]), np.array([0.0]))

    def test_no_centroids_raises(self, rng):
        with pytest.raises(ValueError):
            parallel_kmeans1d(SerialComm(), rng.normal(size=10), np.array([]))


def _spmd_kmeans(comm, shards, init):
    res = parallel_kmeans1d(comm, shards[comm.rank], init, max_iter=30)
    return res.centroids, res.inertia, res.n_iter


class TestSPMD:
    @pytest.mark.parametrize("nprocs", [2, 3])
    def test_matches_global_run(self, rng, nprocs):
        data = rng.normal(size=600)
        init = histogram_init(data, 8)
        shards = block_partition(data, nprocs)
        results = run_spmd(_spmd_kmeans, nprocs, shards, init)
        global_res = kmeans1d(data, init, max_iter=30)
        for cent, inertia, n_iter in results:
            np.testing.assert_allclose(cent, global_res.centroids, rtol=1e-12)
            assert inertia == pytest.approx(global_res.inertia, rel=1e-9)
            assert n_iter == global_res.n_iter

    def test_uneven_shards_with_empty_rank(self, rng):
        data = rng.normal(size=100)
        init = histogram_init(data, 4)
        shards = [data, np.array([])]  # rank 1 holds nothing
        results = run_spmd(_spmd_kmeans, 2, shards, init)
        ref = kmeans1d(data, init, max_iter=30)
        for cent, inertia, _ in results:
            np.testing.assert_allclose(cent, ref.centroids, rtol=1e-12)
            assert inertia == pytest.approx(ref.inertia, rel=1e-9)


def _degrade_kmeans(comm, shards, init):
    res = parallel_kmeans1d(comm, shards[comm.rank], init, max_iter=30,
                            on_rank_failure="degrade")
    return comm.rank, res.centroids, res.inertia


class TestDegradedMode:
    def test_invalid_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="on_rank_failure"):
            parallel_kmeans1d(SerialComm(), rng.normal(size=10),
                              np.array([0.0]), on_rank_failure="ignore")

    def test_survivors_agree_after_rank_loss(self, rng):
        """Crash a rank mid-iteration: survivors converge to the k-means
        of the surviving shards, with identical centroids everywhere."""
        data = rng.normal(size=600)
        init = histogram_init(data, 8)
        shards = block_partition(data, 3)
        # The 5th allreduce lands inside the Lloyd sweep loop.
        outcomes = run_spmd(
            _degrade_kmeans, 3, shards, init, strict=False,
            comm_timeout=1.5, timeout=30.0,
            faults={1: RankFaultInjector(crash_at=(5,))})
        assert not outcomes[1].ok
        survivors = [o for o in outcomes if o.rank != 1]
        assert all(o.ok for o in survivors)
        cents = [o.value[1] for o in survivors]
        np.testing.assert_array_equal(cents[0], cents[1])
        assert survivors[0].value[2] == pytest.approx(
            survivors[1].value[2], rel=1e-9)
