"""Finite-volume Euler solver tests: conservation, physics, robustness."""

import numpy as np
import pytest

from repro.simulations.flash import Euler2D
from repro.simulations.flash.problems import kelvin_helmholtz, sedov, sod


def _make_solver(problem, ny=32, nx=32, **kw):
    ic = problem(ny, nx)
    return Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"], ic["pres"],
                   dx=1.0 / nx, dy=1.0 / ny, **kw)


class TestConservation:
    def test_mass_conserved_periodic(self):
        solver = _make_solver(sedov)
        m0 = solver.total_mass()
        for _ in range(20):
            solver.step()
        assert solver.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_energy_conserved_periodic(self):
        solver = _make_solver(kelvin_helmholtz)
        e0 = solver.total_energy()
        for _ in range(20):
            solver.step()
        # Floors can inject tiny energy; conservation must hold to ~1e-10.
        assert solver.total_energy() == pytest.approx(e0, rel=1e-8)

    def test_momentum_conserved_periodic(self):
        solver = _make_solver(kelvin_helmholtz)
        p0 = solver.u[1].sum()
        for _ in range(10):
            solver.step()
        assert solver.u[1].sum() == pytest.approx(p0, abs=1e-10 * abs(p0) + 1e-12)


class TestPhysics:
    def test_uniform_state_is_steady(self):
        ny = nx = 16
        ones = np.ones((ny, nx))
        solver = Euler2D(ones, 0 * ones, 0 * ones, 0 * ones, ones,
                         dx=1 / nx, dy=1 / ny)
        before = solver.u.copy()
        for _ in range(5):
            solver.step()
        np.testing.assert_allclose(solver.u, before, atol=1e-13)

    def test_sod_shock_moves_right(self):
        solver = _make_solver(sod, ny=16, nx=128)
        for _ in range(40):
            solver.step()
        prim = solver.primitives()
        # Gas accelerates from the high-pressure left into the right half.
        mid_band = prim["velx"][:, 60:80]
        assert mid_band.mean() > 0.05

    def test_sedov_blast_expands(self):
        solver = _make_solver(sedov, ny=48, nx=48)
        d0 = solver.primitives()["dens"]
        for _ in range(30):
            solver.step()
        d1 = solver.primitives()["dens"]
        # Central density drops as the blast evacuates the centre.
        assert d1[24, 24] < d0[24, 24]
        # A dense shell forms away from the centre.
        assert d1.max() > d0.max()

    def test_velz_passive_uniform_flow(self):
        """In uniform flow, velz is advected without distortion: its range
        cannot grow (first-order upwinding only diffuses it)."""
        ny = nx = 32
        ones = np.ones((ny, nx))
        x = (np.arange(nx) + 0.5) / nx
        velz = 0.1 * np.sin(2 * np.pi * x)[None, :].repeat(ny, axis=0)
        solver = Euler2D(ones, 0.5 * ones, 0 * ones, velz, ones,
                         dx=1 / nx, dy=1 / ny)
        for _ in range(20):
            solver.step()
        w = solver.primitives()["velz"]
        assert w.max() <= velz.max() + 1e-10
        assert w.min() >= velz.min() - 1e-10

    def test_positivity_under_strong_blast(self):
        solver = _make_solver(lambda ny, nx: sedov(ny, nx, blast_pressure=1000.0))
        for _ in range(50):
            solver.step()
        prim = solver.primitives()
        assert prim["dens"].min() > 0
        assert prim["pres"].min() > 0
        assert np.all(np.isfinite(solver.u))


class TestAPI:
    def test_cfl_dt_positive(self):
        solver = _make_solver(sod)
        dt = solver.step()
        assert 0 < dt < 1.0

    def test_explicit_dt_honoured(self):
        solver = _make_solver(sod)
        t0 = solver.time
        solver.step(dt=1e-5)
        assert solver.time == pytest.approx(t0 + 1e-5)

    def test_primitives_keys(self):
        prim = _make_solver(sod).primitives()
        assert set(prim) == {"dens", "velx", "vely", "velz", "eint", "ener",
                             "pres", "temp", "gamc", "game"}

    def test_ener_is_total_specific_energy(self):
        prim = _make_solver(kelvin_helmholtz).primitives()
        kin = 0.5 * (prim["velx"] ** 2 + prim["vely"] ** 2 + prim["velz"] ** 2)
        np.testing.assert_allclose(prim["ener"], prim["eint"] + kin, rtol=1e-12)

    def test_set_state_roundtrip(self):
        solver = _make_solver(sedov)
        for _ in range(5):
            solver.step()
        prim = solver.primitives()
        other = _make_solver(sedov)
        other.set_state(prim["dens"], prim["velx"], prim["vely"],
                        prim["velz"], prim["pres"])
        for key in ("dens", "velx", "vely", "velz"):
            np.testing.assert_allclose(other.primitives()[key], prim[key],
                                       rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(other.primitives()["pres"], prim["pres"],
                                   rtol=1e-8)

    def test_set_state_shape_mismatch(self):
        solver = _make_solver(sod, ny=16, nx=16)
        bad = np.ones((8, 8))
        with pytest.raises(ValueError):
            solver.set_state(bad, bad, bad, bad, bad)

    def test_bad_bc_rejected(self):
        ones = np.ones((8, 8))
        with pytest.raises(ValueError):
            Euler2D(ones, ones, ones, ones, ones, bc="magic")

    def test_non_2d_rejected(self):
        ones = np.ones(8)
        with pytest.raises(ValueError):
            Euler2D(ones, ones, ones, ones, ones)

    def test_field_shape_mismatch_rejected(self):
        ones = np.ones((8, 8))
        with pytest.raises(ValueError, match="velx"):
            Euler2D(ones, np.ones((4, 4)), ones, ones, ones)

    def test_outflow_bc_runs(self):
        solver = _make_solver(sedov, bc="outflow")
        for _ in range(10):
            solver.step()
        assert np.all(np.isfinite(solver.u))
