"""Lossless helpers: preconditioners and the zlib wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    byte_shuffle,
    byte_unshuffle,
    compress_lossless,
    decompress_lossless,
    xor_precondition,
    xor_unprecondition,
)

MODES = ("raw", "xor", "shuffle", "xor+shuffle")


class TestPreconditioners:
    def test_xor_roundtrip(self, rng):
        arr = rng.normal(size=500)
        out = xor_unprecondition(xor_precondition(arr))
        np.testing.assert_array_equal(out, arr)

    def test_xor_zeroes_identical_neighbours(self):
        arr = np.full(10, 3.14)
        words = xor_precondition(arr)
        assert np.all(words[1:] == 0)

    def test_shuffle_roundtrip(self, rng):
        raw = rng.normal(size=300).tobytes()
        assert byte_unshuffle(byte_shuffle(raw)) == raw

    def test_shuffle_bad_length(self):
        with pytest.raises(ValueError):
            byte_shuffle(b"12345")  # not a multiple of 8

    def test_shuffle_groups_exponent_bytes(self, rng):
        """After shuffling similar doubles, the exponent byte plane is
        constant -> long runs the entropy coder can exploit."""
        arr = rng.uniform(1.0, 1.001, 100)
        shuffled = byte_shuffle(arr.tobytes())
        last_plane = np.frombuffer(shuffled, dtype=np.uint8)[-100:]
        assert np.unique(last_plane).size <= 2


class TestCompressLossless:
    @pytest.mark.parametrize("mode", MODES)
    def test_roundtrip(self, mode, rng):
        arr = rng.normal(size=400)
        out = decompress_lossless(compress_lossless(arr, mode))
        np.testing.assert_array_equal(out, arr)

    @pytest.mark.parametrize("mode", MODES)
    def test_roundtrip_special_values(self, mode):
        arr = np.array([0.0, -0.0, np.nan, np.inf, -np.inf, 1e-300, 1e300])
        out = decompress_lossless(compress_lossless(arr, mode))
        np.testing.assert_array_equal(
            np.asarray(arr).view(np.uint64), out.view(np.uint64)
        )

    def test_unknown_mode(self, rng):
        with pytest.raises(ValueError):
            compress_lossless(rng.normal(size=10), "bogus")

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            decompress_lossless(b"XXXX" + b"\x00" * 20)

    def test_xor_exploits_temporal_smoothness(self, rng):
        """XOR preconditioning compresses slowly varying data far better
        than it compresses random data: nearby doubles share exponent and
        high-mantissa bytes, so their XOR is byte-sparse."""
        smooth = 1.0 + np.cumsum(rng.uniform(0, 1e-12, 5000))
        random = rng.normal(size=5000)
        smooth_size = len(compress_lossless(smooth, "xor"))
        random_size = len(compress_lossless(random, "xor"))
        assert smooth_size < 0.5 * smooth.nbytes
        assert random_size > 0.75 * random.nbytes

    def test_random_data_barely_compresses(self, rng):
        """The paper's premise: high-entropy snapshots defeat lossless."""
        arr = rng.normal(size=5000)
        best = min(len(compress_lossless(arr, m)) for m in MODES)
        assert best > 0.75 * arr.nbytes


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(1, 300),
       mode=st.sampled_from(MODES))
def test_property_lossless_roundtrip(seed, n, mode):
    rng = np.random.default_rng(seed)
    arr = rng.normal(size=n) * 10.0 ** float(rng.integers(-10, 10))
    out = decompress_lossless(compress_lossless(arr, mode))
    np.testing.assert_array_equal(out, arr)
