"""CheckpointChain: multi-iteration encode/replay semantics."""

import numpy as np
import pytest

from repro.core import CheckpointChain, FormatError, NumarckConfig


def _trajectory(rng, n_iter=6, n=3000, step_sigma=0.002):
    data = [rng.uniform(1.0, 2.0, n)]
    for _ in range(n_iter):
        data.append(data[-1] * (1 + rng.normal(0, step_sigma, n)))
    return data


class TestBasics:
    def test_full_checkpoint_exact(self, rng):
        data = _trajectory(rng)
        chain = CheckpointChain(data[0])
        np.testing.assert_array_equal(chain.reconstruct(0), data[0])
        np.testing.assert_array_equal(chain.full_checkpoint, data[0])

    def test_length(self, rng):
        data = _trajectory(rng, n_iter=4)
        chain = CheckpointChain(data[0])
        chain.extend(data[1:])
        assert len(chain) == 5
        assert len(chain.deltas) == 4
        assert len(chain.stats) == 4

    def test_shape_mismatch_rejected(self, rng):
        chain = CheckpointChain(rng.uniform(1, 2, 10))
        with pytest.raises(FormatError):
            chain.append(rng.uniform(1, 2, 11))

    def test_reconstruct_out_of_range(self, rng):
        chain = CheckpointChain(rng.uniform(1, 2, 10))
        with pytest.raises(IndexError):
            chain.reconstruct(1)
        with pytest.raises(IndexError):
            chain.reconstruct(-1)

    def test_iter_states_matches_reconstruct(self, rng):
        data = _trajectory(rng, n_iter=3)
        chain = CheckpointChain(data[0])
        chain.extend(data[1:])
        states = list(chain.iter_states())
        assert len(states) == 4
        for i, s in enumerate(states):
            np.testing.assert_array_equal(s, chain.reconstruct(i))

    def test_full_checkpoint_isolated_from_caller(self, rng):
        d0 = rng.uniform(1, 2, 10)
        chain = CheckpointChain(d0)
        d0[:] = 0.0
        assert chain.reconstruct(0).min() > 0.0


class TestErrorBehaviour:
    def test_single_step_bounded(self, rng):
        data = _trajectory(rng, n_iter=1)
        cfg = NumarckConfig(error_bound=1e-3)
        chain = CheckpointChain(data[0], cfg)
        chain.append(data[1])
        rel = np.abs(chain.reconstruct(1) / data[1] - 1)
        # decoded = prev*(1+r'), |r'-r|<E -> rel error <= E*prev/curr ~ E.
        assert rel.max() < 1.1 * cfg.error_bound

    def test_open_loop_error_accumulates(self, rng):
        """Paper Fig. 8: error grows with distance from the full checkpoint."""
        data = _trajectory(rng, n_iter=6)
        cfg = NumarckConfig(error_bound=1e-3, strategy="equal_width")
        chain = CheckpointChain(data[0], cfg)
        chain.extend(data[1:])
        errs = [
            float(np.mean(np.abs(chain.reconstruct(i) / data[i] - 1)))
            for i in (1, 6)
        ]
        assert errs[1] > errs[0]

    def test_closed_loop_error_bounded_at_depth(self, rng):
        """The reconstructed-reference extension stops accumulation."""
        data = _trajectory(rng, n_iter=8)
        cfg = NumarckConfig(error_bound=1e-3, reference="reconstructed")
        chain = CheckpointChain(data[0], cfg)
        chain.extend(data[1:])
        rel = np.abs(chain.reconstruct(8) / data[8] - 1)
        assert rel.max() < 1.1 * cfg.error_bound

    def test_closed_loop_beats_open_loop_at_depth(self, rng):
        data = _trajectory(rng, n_iter=8)
        open_chain = CheckpointChain(data[0], NumarckConfig(reference="original"))
        closed_chain = CheckpointChain(
            data[0], NumarckConfig(reference="reconstructed")
        )
        open_chain.extend(data[1:])
        closed_chain.extend(data[1:])
        e_open = np.max(np.abs(open_chain.reconstruct() / data[-1] - 1))
        e_closed = np.max(np.abs(closed_chain.reconstruct() / data[-1] - 1))
        assert e_closed < e_open

    def test_stats_recorded_per_delta(self, rng):
        data = _trajectory(rng, n_iter=3)
        chain = CheckpointChain(data[0], NumarckConfig(error_bound=1e-3))
        stats = chain.extend(data[1:])
        assert tuple(stats) == chain.stats
        for s in stats:
            assert s.max_error < 1e-3
            assert 0.0 <= s.incompressible_ratio <= 1.0
