"""The unified error hierarchy: one tree, aliased old homes, HTTP map."""

import pytest

import repro.errors as errors
from repro.errors import (
    ChainNotFoundError,
    ConfigError,
    FormatError,
    JobCancelledError,
    JobNotFoundError,
    NumarckError,
    QueueFullError,
    RankFailureError,
    SalvageError,
    ServiceError,
    ServiceUnavailableError,
    StateError,
    http_status,
)


class TestHierarchy:
    def test_everything_is_a_numarck_error(self):
        for name in errors.__all__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, NumarckError), name

    def test_builtin_bases_preserved(self):
        # Pre-hierarchy code caught ValueError / RuntimeError / KeyError;
        # the unified tree must keep those contracts.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(FormatError, ValueError)
        assert issubclass(SalvageError, FormatError)
        assert issubclass(StateError, RuntimeError)
        assert issubclass(RankFailureError, RuntimeError)
        assert issubclass(JobNotFoundError, KeyError)
        assert issubclass(ChainNotFoundError, KeyError)

    def test_service_errors_group(self):
        for cls in (JobNotFoundError, ChainNotFoundError, QueueFullError,
                    JobCancelledError, ServiceUnavailableError):
            assert issubclass(cls, ServiceError)

    def test_key_error_str_is_clean(self):
        # KeyError.__str__ repr-quotes its argument; the service classes
        # must render their message verbatim for HTTP bodies.
        assert str(JobNotFoundError("no such job 'j1'")) == "no such job 'j1'"

    def test_queue_full_carries_retry_after(self):
        exc = QueueFullError("full", retry_after=2.5)
        assert exc.retry_after == 2.5

    def test_rank_failure_fields(self):
        exc = RankFailureError(3, "timeout", phase="reduce")
        assert exc.rank == 3
        assert exc.reason == "timeout"
        assert "rank 3" in str(exc)


class TestAliases:
    def test_core_errors_are_same_objects(self):
        from repro.core import errors as core_errors

        assert core_errors.ConfigError is ConfigError
        assert core_errors.FormatError is FormatError
        assert core_errors.SalvageError is SalvageError
        assert core_errors.StateError is StateError
        assert core_errors.SalvageReport is errors.SalvageReport

    def test_parallel_faults_alias(self):
        from repro.parallel.faults import RankFailureError as aliased

        assert aliased is RankFailureError

    def test_isinstance_across_import_paths(self):
        from repro.core.errors import ConfigError as old_config_error

        with pytest.raises(old_config_error):
            from repro.core.config import NumarckConfig
            NumarckConfig(error_bound=5.0)


class TestHttpStatus:
    @pytest.mark.parametrize("exc,status", [
        (QueueFullError("full"), 429),
        (JobNotFoundError("nope"), 404),
        (ChainNotFoundError("nope"), 404),
        (JobCancelledError("gone"), 409),
        (ServiceUnavailableError("down"), 503),
        (ConfigError("bad"), 400),
        (FormatError("torn"), 422),
        (SalvageError("torn badly"), 422),
        (StateError("not ready"), 409),
        (RankFailureError(1, "lost"), 500),
        (ServiceError("generic"), 500),
        (NumarckError("generic"), 500),
        (RuntimeError("foreign"), 500),
    ])
    def test_mapping(self, exc, status):
        assert http_status(exc) == status

    def test_table_orders_subclasses_before_bases(self):
        seen: list[type] = []
        for cls, _ in errors.HTTP_STATUS:
            for earlier in seen:
                assert not issubclass(cls, earlier), (
                    f"{cls.__name__} is shadowed by earlier "
                    f"{earlier.__name__} entry"
                )
            seen.append(cls)
