"""Tests for repro.telemetry: tracer, metrics, sink, accounting, reports."""

import json

import numpy as np
import pytest

from repro import Codec
from repro.core import CheckpointChain, NumarckConfig
from repro.io import load_chain, save_chain
from repro.io.format import encode_delta_bytes, encode_full_bytes
from repro.telemetry import (
    NULL_TELEMETRY,
    JsonlSink,
    Telemetry,
    delta_payload_nbytes,
    full_payload_nbytes,
    get_telemetry,
    metrics_table,
    read_spans,
    read_trace,
    record_nbytes,
    set_telemetry,
    stage_summary,
    stage_table,
    trace_totals,
    use,
)
from repro.telemetry.metrics import MetricsRegistry


class TestSpans:
    def test_nesting_and_timing(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                pass
        assert [s.name for s in tel.spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        assert outer.wall_s >= inner.wall_s >= 0.0
        assert outer.cpu_s >= 0.0

    def test_attributes_set_and_add(self):
        tel = Telemetry()
        with tel.span("s", n=3) as sp:
            sp.set(bytes_out=10)
            sp.add("bytes_out", 5)
        assert sp.attrs == {"n": 3, "bytes_out": 15}

    def test_exception_recorded_and_propagated(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("x")
        assert tel.spans[0].attrs["error"] == "RuntimeError"

    def test_siblings_share_parent(self):
        tel = Telemetry()
        with tel.span("root") as root:
            with tel.span("a"):
                pass
            with tel.span("b"):
                pass
        a, b = tel.spans[0], tel.spans[1]
        assert a.parent_id == b.parent_id == root.span_id

    def test_ambient_default_is_noop(self):
        tel = get_telemetry()
        assert tel is NULL_TELEMETRY
        assert not tel.enabled
        sp = tel.span("anything", n=1)
        with sp as inner:
            inner.set(x=2)
        # Shared singleton: no allocation, no state.
        assert tel.span("other") is sp
        assert tel.spans == ()

    def test_use_restores_previous(self):
        tel = Telemetry()
        with use(tel) as active:
            assert get_telemetry() is tel is active
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_telemetry_none_restores_default(self):
        prev = set_telemetry(Telemetry())
        assert prev is NULL_TELEMETRY
        set_telemetry(None)
        assert get_telemetry() is NULL_TELEMETRY


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("writes")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("writes") is c
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3.5)
        assert reg.gauge("depth").value == 3.5

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("sweeps", buckets=(1, 4, 16))
        for v in (0.5, 1, 3, 20):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(24.5)
        # per-bucket counts: <=1, <=4, <=16, overflow
        assert h.counts == [2, 1, 0, 1]

    def test_histogram_underflow_lands_in_first_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 100))
        h.observe(-5)
        h.observe(0)
        assert h.counts == [2, 0, 0]

    def test_histogram_overflow_lands_in_last_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 100))
        h.observe(100.001)
        h.observe(1e9)
        assert h.counts == [0, 0, 2]

    def test_histogram_boundary_value_is_inclusive(self):
        # Bounds are upper bounds: an observation equal to a bound
        # belongs to that bound's bucket, not the next one up.
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 100))
        h.observe(10)
        h.observe(100)
        assert h.counts == [1, 1, 0]

    def test_histogram_counts_partition_observations(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1, 4, 16))
        for v in (-2, 0.5, 1, 3, 4, 15, 16, 17, 1e6):
            h.observe(v)
        assert sum(h.counts) == h.count == 9

    def test_snapshot_round_trips_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.0)
        reg.histogram("h", buckets=(1, 2)).observe(1.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 1.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_null_registry_absorbs_everything(self):
        tel = NULL_TELEMETRY
        tel.metrics.counter("x").inc(5)
        tel.metrics.histogram("y", buckets=(1,)).observe(2)
        tel.metrics.gauge("z").set(1)


class TestSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(sink=JsonlSink(path))
        with tel.span("a", bytes_out=7):
            with tel.span("b"):
                pass
        tel.metrics.counter("c").inc()
        tel.close()
        records = read_trace(path)
        assert [r["name"] for r in records if r["type"] == "span"] == ["b", "a"]
        assert records[-1]["type"] == "metrics"
        assert records[-1]["counters"]["c"] == 1

    def test_export_rewrites(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry()
        with tel.span("only"):
            pass
        assert tel.export(path) == 1
        assert tel.export(path) == 1  # second export does not append
        assert len(read_spans(path)) == 1

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(sink=JsonlSink(path))
        with tel.span("a"):
            pass
        with tel.span("b"):
            pass
        tel.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])  # tear the final line mid-record
        names = [r["name"] for r in read_trace(path) if r.get("type") == "span"]
        assert names == ["a"]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [json.dumps({"type": "span", "name": "a"}), "garbage{{{",
                 json.dumps({"type": "span", "name": "b"})]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)

    def test_torn_tail_with_trailing_newline_dropped(self, tmp_path):
        # A crash between write() and the next append can leave a torn
        # record even when a newline made it to disk; the final line is
        # still the tear point and must be dropped, not fatal.
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"type": "span", "name": "a"}) +
                        '\n{"type": "span", "na\n')
        assert [r["name"] for r in read_trace(path)] == ["a"]

    def test_corruption_before_intact_data_is_fatal(self, tmp_path):
        # The mirror case: damage *followed by* parseable records cannot
        # be an interrupted append -- refuse to silently skip it.
        path = tmp_path / "t.jsonl"
        good = json.dumps({"type": "span", "name": "a"})
        path.write_text(good + "\n" + good[:10] + "\n" + good + "\n")
        with pytest.raises(ValueError, match="corrupt trace line 2"):
            read_trace(path)

    def test_keep_spans_false_streams_only(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(sink=JsonlSink(path), keep_spans=False)
        with tel.span("a"):
            pass
        tel.close()
        assert tel.spans == []
        assert len(read_spans(path)) == 1


class TestAccounting:
    """Computed byte counts must match the real serialiser exactly."""

    @pytest.fixture
    def encoded(self, rng):
        prev = rng.uniform(1.0, 2.0, 4000)
        curr = prev * (1 + rng.normal(0, 0.01, 4000))
        curr[::97] = np.nan  # force some incompressible points
        comp = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8))
        return comp.compress(prev, curr)

    def test_delta_matches_serialiser(self, encoded):
        assert delta_payload_nbytes(encoded) == len(encode_delta_bytes(encoded))

    def test_delta_matches_serialiser_float32(self, rng):
        prev = rng.uniform(1.0, 2.0, 1000).astype(np.float32)
        curr = (prev * (1 + rng.normal(0, 0.01, 1000))).astype(np.float32)
        enc = Codec(config=NumarckConfig(error_bound=1e-3)).compress(
            prev, curr)
        assert delta_payload_nbytes(enc) == len(encode_delta_bytes(enc))

    def test_full_matches_serialiser(self, rng):
        data = rng.normal(size=(30, 40))
        assert full_payload_nbytes(data) == len(encode_full_bytes(data))

    def test_record_overhead_matches_container(self, tmp_path, rng):
        data = rng.normal(size=500)
        chain = CheckpointChain(data, NumarckConfig())
        nbytes = save_chain(tmp_path / "c.nmk", chain)
        # header (6) + one framed FULL record
        assert nbytes == 6 + record_nbytes(full_payload_nbytes(data))


class TestIntegration:
    """The acceptance-criteria trace: compress + persist, check the tree."""

    @pytest.fixture
    def traced(self, tmp_path, rng):
        prev = rng.uniform(1.0, 2.0, 20_000)
        curr = prev * (1 + rng.normal(0, 0.02, 20_000))
        tel = Telemetry()
        with use(tel):
            comp = Codec(
                config=NumarckConfig(error_bound=1e-3, nbits=8,
                              strategy="clustering"))
            chain = CheckpointChain(prev, comp.config)
            chain.append(curr)
            save_chain(tmp_path / "c.nmk", chain)
            load_chain(tmp_path / "c.nmk")
        path = tmp_path / "trace.jsonl"
        tel.export(path)
        return tel, read_trace(path)

    def test_expected_stages_present(self, traced):
        _, records = traced
        names = {r["name"] for r in records if r["type"] == "span"}
        for stage in ("encode", "encode.change_ratios", "encode.fit",
                      "encode.assign", "strategy.clustering.fit",
                      "kmeans.lloyd", "bitpack.pack", "io.write_record",
                      "io.save_chain", "io.load_chain"):
            assert stage in names, f"missing span {stage}"

    def test_nesting_structure(self, traced):
        _, records = traced
        spans = {r["id"]: r for r in records if r["type"] == "span"}

        def ancestors(rec):
            while rec["parent"] is not None:
                rec = spans[rec["parent"]]
                yield rec["name"]

        fits = [r for r in spans.values()
                if r["name"] == "strategy.clustering.fit"]
        assert fits and all("encode.fit" in ancestors(r) and
                            "encode" in ancestors(r) for r in fits)
        lloyds = [r for r in spans.values() if r["name"] == "kmeans.lloyd"]
        assert lloyds and all(
            "strategy.clustering.fit" in ancestors(r) for r in lloyds)
        writes = [r for r in spans.values() if r["name"] == "io.write_record"]
        assert writes and all("io.save_chain" in ancestors(r) for r in writes)

    def test_byte_attributes_nonzero(self, traced):
        _, records = traced
        by_name = {}
        for r in records:
            if r["type"] == "span":
                by_name.setdefault(r["name"], []).append(r)
        assert all(r["attrs"]["bytes_in"] > 0 for r in by_name["encode"])
        assert all(r["attrs"]["bytes_out"] > 0 for r in by_name["encode"])
        assert all(r["attrs"]["bytes_out"] > 0
                   for r in by_name["bitpack.pack"])
        assert all(r["attrs"]["bytes_out"] > 0
                   for r in by_name["io.write_record"])
        assert all(r["attrs"]["bytes_out"] > 0
                   for r in by_name["io.save_chain"])

    def test_encode_bytes_out_is_exact(self, traced, tmp_path):
        _, records = traced
        enc_spans = [r for r in records
                     if r["type"] == "span" and r["name"] == "encode"]
        assert enc_spans
        for r in enc_spans:
            assert r["attrs"]["bytes_out"] > 0
            assert 0.0 <= r["attrs"]["gamma"] < 1.0

    def test_metrics_collected(self, traced):
        tel, records = traced
        snap = records[-1]
        assert snap["type"] == "metrics"
        assert snap["counters"]["io.bytes_written"] > 0
        assert snap["histograms"]["kmeans.sweeps"]["count"] >= 1
        assert snap["histograms"]["encode.incompressible_fraction"]["count"] == 1

    def test_report_tables_render(self, traced):
        _, records = traced
        spans = [r for r in records if r["type"] == "span"]
        table = stage_table(spans)
        assert "encode" in table and "wall ms" in table
        summary = stage_summary(spans)
        assert summary[0]["wall_s"] >= summary[-1]["wall_s"]
        totals = trace_totals(spans)
        assert totals["spans"] == len(spans)
        mtable = metrics_table(records[-1])
        assert "io.bytes_written" in mtable


class TestSalvageCounter:
    def test_records_salvaged_counted(self, tmp_path, rng):
        from repro.io import salvage_truncate

        data = rng.uniform(1.0, 2.0, 500)
        chain = CheckpointChain(data, NumarckConfig())
        chain.append(data * 1.001)
        path = tmp_path / "c.nmk"
        save_chain(path, chain)
        with open(path, "r+b") as fh:
            fh.seek(-3, 2)
            fh.write(b"\xff\xff\xff")
        tel = Telemetry()
        with use(tel):
            report = salvage_truncate(path)
        assert report.records_dropped == 1
        assert tel.metrics.counter("io.records_salvaged").value == \
            report.records_kept


class TestStatsCli:
    def test_stats_on_real_trace(self, tmp_path, rng, capsys):
        from repro.cli import main

        prev = rng.uniform(1.0, 2.0, 2000)
        tel = Telemetry()
        with use(tel):
            chain = CheckpointChain(prev, NumarckConfig(error_bound=1e-3))
            chain.append(prev * (1 + rng.normal(0, 0.01, 2000)))
            save_chain(tmp_path / "c.nmk", chain)
        trace = str(tmp_path / "trace.jsonl")
        tel.export(trace)
        assert main(["stats", trace]) == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out
        assert "encode" in out

    def test_stats_empty_trace_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["stats", str(trace)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_stats_missing_file_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestEnvActivation:
    def test_trace_env_var_produces_jsonl(self, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        trace = tmp_path / "env.jsonl"
        env = os.environ.copy()
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["NUMARCK_TRACE"] = str(trace)
        code = (
            "import numpy as np\n"
            "from repro import Codec, NumarckConfig\n"
            "rng = np.random.default_rng(0)\n"
            "prev = rng.uniform(1, 2, 5000)\n"
            "curr = prev * (1 + rng.normal(0, 0.01, 5000))\n"
            "Codec(config=NumarckConfig(error_bound=1e-3))"
            ".compress(prev, curr)\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=env,
                       timeout=120)
        names = {r["name"] for r in read_spans(trace)}
        assert "codec.compress" in names
        assert "encode" in names
