"""3-D block-structured mesh tests."""

import numpy as np
import pytest

from repro.simulations.flash.blocks3d import BlockGrid3D


class TestLayout:
    def test_paper_dimensions(self):
        """16^3 blocks with 4 guard cells per face -> 24^3 block arrays."""
        grid = BlockGrid3D(32, 32, 32, block=16, guard=4)
        assert grid.blocks.shape[1:] == (24, 24, 24)
        assert grid.interior(0).shape == (16, 16, 16)
        assert grid.n_blocks == 8

    def test_paper_80_blocks_per_rank(self):
        """The paper's density: ~80 blocks per MPI process."""
        grid = BlockGrid3D(80, 64, 64, block=16, guard=4, n_ranks=1)
        assert grid.n_blocks == 5 * 4 * 4  # 80 blocks on the single rank
        assert len(grid.rank_blocks(0)) == 80

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            BlockGrid3D(30, 32, 32, block=16)

    def test_round_robin(self):
        grid = BlockGrid3D(32, 32, 48, block=16, n_ranks=3)
        counts = np.bincount([grid.owner(b) for b in range(grid.n_blocks)],
                             minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockGrid3D(32, 32, 32, guard=17)
        with pytest.raises(ValueError):
            BlockGrid3D(32, 32, 32, n_ranks=0)
        grid = BlockGrid3D(32, 32, 32)
        with pytest.raises(IndexError):
            grid.owner(99)
        with pytest.raises(IndexError):
            grid.rank_blocks(5)


class TestDataMovement:
    def test_scatter_gather_identity(self, rng):
        grid = BlockGrid3D(32, 16, 48, block=16, guard=2)
        field = rng.normal(size=(32, 16, 48))
        grid.scatter(field)
        np.testing.assert_array_equal(grid.gather(), field)

    def test_scatter_wrong_shape(self, rng):
        grid = BlockGrid3D(16, 16, 16)
        with pytest.raises(ValueError):
            grid.scatter(rng.normal(size=(8, 8, 8)))

    def test_exchange_matches_periodic_window(self, rng):
        g = 3
        grid = BlockGrid3D(32, 32, 32, block=16, guard=g)
        field = rng.normal(size=(32, 32, 32))
        grid.scatter(field)
        grid.exchange()
        padded = np.pad(field, g, mode="wrap")
        for bid in range(grid.n_blocks):
            z0, y0, x0 = grid._origin(bid)
            window = padded[z0 : z0 + 16 + 2 * g, y0 : y0 + 16 + 2 * g,
                            x0 : x0 + 16 + 2 * g]
            np.testing.assert_array_equal(grid.guard_halo(bid), window)

    def test_exchange_noop_without_guards(self, rng):
        grid = BlockGrid3D(16, 16, 16, guard=0)
        field = rng.normal(size=(16, 16, 16))
        grid.scatter(field)
        grid.exchange()
        np.testing.assert_array_equal(grid.gather(), field)

    def test_block_local_compression_workflow(self, rng):
        """Paper workflow: each block's data compresses independently with
        the shared bin table (here: per-block encode against its own prev)."""
        from repro import Codec
        from repro.core import NumarckConfig

        grid = BlockGrid3D(16, 16, 32, block=16, guard=4)
        prev = rng.uniform(1, 2, (16, 16, 32))
        curr = prev * (1 + rng.normal(0, 0.002, (16, 16, 32)))
        comp = Codec(config=NumarckConfig(error_bound=1e-3))
        grid.scatter(prev)
        prev_blocks = [grid.interior(b).copy() for b in range(grid.n_blocks)]
        grid.scatter(curr)
        for bid in range(grid.n_blocks):
            out, enc, stats = comp.roundtrip(prev_blocks[bid],
                                             grid.interior(bid).copy())
            assert stats.max_error < 1e-3
            assert enc.shape == (16, 16, 16)
