"""DriftDetector and CadenceController tests."""

import numpy as np
import pytest

from repro.analysis import CadenceController, DriftDetector
from repro.core import CheckpointChain, NumarckConfig


class TestDriftDetector:
    def _calm_stream(self, rng, n=15, size=4000):
        states = [rng.uniform(1, 2, size)]
        for _ in range(n - 1):
            states.append(states[-1] * (1 + rng.normal(0, 0.002, size)))
        return states

    def test_calm_stream_not_flagged(self, rng):
        det = DriftDetector(threshold=6.0)
        for s in self._calm_stream(rng):
            det.observe(s)
        assert det.flagged == []

    def test_corruption_flagged(self, rng):
        states = self._calm_stream(rng, n=16)
        states[10] = states[10].copy()
        states[10][:1200] *= 1.05  # soft error on 30 % of the state
        det = DriftDetector(threshold=4.0)
        for s in states:
            det.observe(s)
        assert det.flagged, "corruption must be detected"
        assert any(10 <= it <= 12 for it in det.flagged)

    def test_warmup_suppresses_early_flags(self, rng):
        det = DriftDetector(warmup=5, threshold=2.0)
        states = self._calm_stream(rng, n=6)
        states[2] = states[2] * 1.5  # violent but during warmup
        for s in states:
            det.observe(s)
        assert all(r.iteration > 5 or not r.anomalous for r in det.readings)

    def test_first_observations_return_none(self, rng):
        det = DriftDetector()
        assert det.observe(rng.uniform(1, 2, 100)) is None
        assert det.observe(rng.uniform(1, 2, 100)) is None
        assert det.observe(rng.uniform(1, 2, 100)) is not None

    def test_anomaly_excluded_from_baseline(self, rng):
        """A detected event must not inflate the baseline and mask a
        second event."""
        states = self._calm_stream(rng, n=24)
        for day in (10, 16):
            states[day] = states[day].copy()
            states[day][:1500] *= 1.06
        det = DriftDetector(threshold=4.0)
        for s in states:
            det.observe(s)
        hits = det.flagged
        assert any(10 <= it <= 12 for it in hits)
        assert any(16 <= it <= 18 for it in hits)

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(bins=2)
        with pytest.raises(ValueError):
            DriftDetector(clip=0)
        with pytest.raises(ValueError):
            DriftDetector(window=1)
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.5)


class TestCadenceController:
    def _stats(self, rng, gamma=0.0, mean_error=1e-5):
        from repro.core.metrics import CompressionStats

        n = 1000
        return CompressionStats(
            n_points=n, n_incompressible=int(gamma * n), n_bins=100, nbits=8,
            mean_error=mean_error, max_error=10 * mean_error,
            ratio_paper=80.0, ratio_actual=78.0,
        )

    def test_within_budget_keeps_delta(self, rng):
        ctl = CadenceController(error_budget=1e-2, max_depth=10)
        d = ctl.observe_delta(self._stats(rng))
        assert not d.write_full
        assert d.depth == 1

    def test_gamma_triggers_full(self, rng):
        ctl = CadenceController(gamma_threshold=0.4)
        d = ctl.observe_delta(self._stats(rng, gamma=0.6))
        assert d.write_full and "incompressible" in d.reason

    def test_error_budget_triggers_full(self, rng):
        ctl = CadenceController(error_budget=2.5e-4, max_depth=100)
        decisions = [ctl.observe_delta(self._stats(rng, mean_error=1e-4))
                     for _ in range(3)]
        assert not decisions[0].write_full
        assert not decisions[1].write_full
        assert decisions[2].write_full and "accumulated" in decisions[2].reason

    def test_depth_cap_triggers_full(self, rng):
        ctl = CadenceController(error_budget=1.0, max_depth=4)
        decisions = [ctl.observe_delta(self._stats(rng)) for _ in range(4)]
        assert decisions[-1].write_full and "depth" in decisions[-1].reason

    def test_reset_after_full(self, rng):
        ctl = CadenceController(max_depth=2, error_budget=1.0)
        ctl.observe_delta(self._stats(rng))
        ctl.observe_delta(self._stats(rng))
        ctl.notify_full_checkpoint()
        assert ctl.depth == 0
        assert not ctl.observe_delta(self._stats(rng)).write_full

    def test_integration_with_chain(self, rng):
        """Drive the controller from real chain stats."""
        ctl = CadenceController(error_budget=3e-4, max_depth=50)
        data = rng.uniform(1, 2, 2000)
        chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
        full_written = 0
        for _ in range(12):
            data = data * (1 + rng.normal(0, 0.003, 2000))
            stats = chain.append(data)
            if ctl.observe_delta(stats).write_full:
                chain = CheckpointChain(data, NumarckConfig(error_bound=1e-3))
                ctl.notify_full_checkpoint()
                full_written += 1
        assert full_written >= 1, "budget must eventually force a full checkpoint"

    def test_validation(self):
        with pytest.raises(ValueError):
            CadenceController(error_budget=0)
        with pytest.raises(ValueError):
            CadenceController(gamma_threshold=0)
        with pytest.raises(ValueError):
            CadenceController(max_depth=0)
