"""Metric formula tests (paper Section III-B, Eqs. 2-4)."""

import numpy as np
import pytest

from repro.core import NumarckConfig, encode_pair, pearson_r, rmse
from repro.core.metrics import (
    compression_ratio_actual,
    compression_ratio_paper,
    error_rates,
    iteration_stats,
)


class TestErrorRates:
    def test_basic(self):
        mean_e, max_e = error_rates(np.array([0.1, 0.2]), np.array([0.1, 0.25]))
        assert mean_e == pytest.approx(0.025)
        assert max_e == pytest.approx(0.05)

    def test_exact_mask_zeroes_error(self):
        mean_e, max_e = error_rates(
            np.array([0.0, 1.0]), np.array([0.0, 0.0]),
            exact_mask=np.array([False, True]),
        )
        assert mean_e == 0.0 and max_e == 0.0

    def test_empty(self):
        assert error_rates(np.array([]), np.array([])) == (0.0, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_rates(np.zeros(2), np.zeros(3))


class TestCompressionRatioPaper:
    def test_zero_gamma_large_n(self):
        """gamma=0, B=9, huge N: R -> 1 - 9/64 ~ 85.94 %."""
        r = compression_ratio_paper(10**9, 0, 9)
        assert r == pytest.approx(100 * (1 - 9 / 64), abs=0.01)

    def test_all_incompressible_negative(self):
        """gamma=1 costs the full data plus the table: R < 0."""
        assert compression_ratio_paper(1000, 1000, 8) < 0

    def test_monotone_in_gamma(self):
        rs = [compression_ratio_paper(10_000, g, 8) for g in (0, 100, 500, 900)]
        assert all(a > b for a, b in zip(rs, rs[1:]))

    def test_monotone_in_nbits_for_zero_gamma(self):
        # Fewer index bits -> higher ratio (table shrinks too).
        assert compression_ratio_paper(10**6, 0, 8) > compression_ratio_paper(10**6, 0, 10)

    def test_explicit_value(self):
        # N=1000, gamma=0.1, B=8: compressed = 0.9*1000*8 + 0.1*1000*64 + 255*64
        n, inc, b = 1000, 100, 8
        compressed = 0.9 * n * 8 + 0.1 * n * 64 + 255 * 64
        expected = 100 * (n * 64 - compressed) / (n * 64)
        assert compression_ratio_paper(n, inc, b) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            compression_ratio_paper(0, 0, 8)
        with pytest.raises(ValueError):
            compression_ratio_paper(10, 11, 8)


class TestCompressionRatioActual:
    def test_charges_bitmap(self):
        paper = compression_ratio_paper(10**6, 0, 8, n_bins=255)
        actual = compression_ratio_actual(10**6, 0, 8, 255)
        # Bitmap costs 1 bit/point = 1/64 of the original size.
        assert paper - actual == pytest.approx(100 / 64, abs=0.01)

    def test_header_charged(self):
        a = compression_ratio_actual(1000, 0, 8, 10, header_bytes=0)
        b = compression_ratio_actual(1000, 0, 8, 10, header_bytes=100)
        assert a > b


class TestPearsonAndRmse:
    def test_perfect_correlation(self, rng):
        x = rng.normal(size=100)
        assert pearson_r(x, x) == 1.0
        assert pearson_r(x, 2 * x + 3) == pytest.approx(1.0)

    def test_anticorrelation(self, rng):
        x = rng.normal(size=100)
        assert pearson_r(x, -x) == pytest.approx(-1.0)

    def test_constant_identical_is_one(self):
        x = np.full(10, 5.0)
        assert pearson_r(x, x.copy()) == 1.0

    def test_constant_vs_varying_is_zero(self, rng):
        assert pearson_r(np.full(50, 1.0), rng.normal(size=50)) == 0.0

    def test_rmse_formula(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == \
            pytest.approx(np.sqrt(12.5))

    def test_rmse_zero_for_identical(self, rng):
        x = rng.normal(size=40)
        assert rmse(x, x) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson_r(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestIterationStats:
    def test_consistency_with_encoding(self, smooth_pair):
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        enc = encode_pair(prev, curr, cfg)[0]
        stats = iteration_stats(prev, curr, enc)
        assert stats.n_points == prev.size
        assert stats.n_incompressible == enc.n_incompressible
        assert stats.max_error < cfg.error_bound
        assert stats.mean_error <= stats.max_error
        assert stats.ratio_paper > stats.ratio_actual
        assert stats.incompressible_ratio == enc.incompressible_ratio

    def test_mean_error_well_below_bound(self, smooth_pair):
        """The paper reports mean error ~an order below the bound."""
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
        stats = iteration_stats(prev, curr, encode_pair(prev, curr, cfg)[0])
        assert stats.mean_error < cfg.error_bound / 2
