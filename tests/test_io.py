"""Serialization: payload codecs and the framed container."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CheckpointChain,
    FormatError,
    NumarckConfig,
    decode_iteration,
    encode_pair,
)
from repro.io import (
    CheckpointFile,
    decode_delta_bytes,
    decode_full_bytes,
    encode_delta_bytes,
    encode_full_bytes,
    load_chain,
    save_chain,
)


def _assert_encoded_equal(a, b):
    assert a.shape == b.shape
    assert a.nbits == b.nbits
    assert a.strategy == b.strategy
    assert a.zero_reserved == b.zero_reserved
    assert a.error_bound == b.error_bound
    np.testing.assert_array_equal(a.representatives, b.representatives)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.incompressible, b.incompressible)
    np.testing.assert_array_equal(a.exact_values, b.exact_values)


class TestFullPayload:
    def test_roundtrip_shapes(self, rng):
        for shape in [(10,), (4, 5), (2, 3, 4)]:
            arr = rng.normal(size=shape)
            out = decode_full_bytes(encode_full_bytes(arr))
            np.testing.assert_array_equal(out, arr)
            assert out.shape == shape

    def test_nan_inf_preserved(self):
        arr = np.array([np.nan, np.inf, -np.inf, 0.0])
        out = decode_full_bytes(encode_full_bytes(arr))
        assert np.isnan(out[0]) and np.isposinf(out[1]) and np.isneginf(out[2])

    def test_truncated_raises(self, rng):
        payload = encode_full_bytes(rng.normal(size=10))
        with pytest.raises(FormatError):
            decode_full_bytes(payload[:-8])


class TestDeltaPayload:
    @pytest.mark.parametrize("strategy", ["equal_width", "log_scale", "clustering"])
    def test_roundtrip(self, strategy, hard_pair):
        prev, curr = hard_pair
        enc = encode_pair(prev, curr, NumarckConfig(strategy=strategy))[0]
        out = decode_delta_bytes(encode_delta_bytes(enc))
        _assert_encoded_equal(enc, out)

    def test_decoded_delta_decodes_identically(self, smooth_pair):
        prev, curr = smooth_pair
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        enc2 = decode_delta_bytes(encode_delta_bytes(enc))
        np.testing.assert_array_equal(
            decode_iteration(prev, enc), decode_iteration(prev, enc2)
        )

    def test_roundtrip_2d_and_nbits(self, rng):
        prev = rng.uniform(1, 2, (8, 16))
        curr = prev * (1 + rng.normal(0, 0.01, (8, 16)))
        for b in (3, 9, 12):
            enc = encode_pair(prev, curr, NumarckConfig(nbits=b))[0]
            _assert_encoded_equal(enc, decode_delta_bytes(encode_delta_bytes(enc)))

    def test_unreserved_flag_roundtrips(self, rng):
        prev = rng.uniform(1, 2, 100)
        enc = encode_pair(prev, prev * 1.01,
                               NumarckConfig(reserve_zero_bin=False))[0]
        assert not decode_delta_bytes(encode_delta_bytes(enc)).zero_reserved

    def test_bitmap_population_mismatch_detected(self):
        """A bitmap inconsistent with the exact-value count must be rejected."""
        prev = np.array([0.0, 1.0, 1.0, 1.0])  # one incompressible point
        enc = encode_pair(prev, np.array([2.0, 1.0, 1.0, 1.0]),
                               NumarckConfig())[0]
        assert enc.n_incompressible == 1
        # Rebuild the payload with a second incompressible bit but the same
        # single exact value.
        import dataclasses

        bad_mask = enc.incompressible.copy()
        bad_mask[1] = True
        bad = dataclasses.replace(enc, incompressible=bad_mask)
        with pytest.raises(FormatError, match="population"):
            decode_delta_bytes(encode_delta_bytes(bad))

    def test_out_of_range_index_detected(self, rng):
        prev = rng.uniform(1, 2, 64)
        enc = encode_pair(prev, prev * 1.05, NumarckConfig(nbits=8))[0]
        assert enc.representatives.size >= 1
        import dataclasses

        bad_idx = enc.indices.copy()
        bad_idx[0] = enc.representatives.size + 5
        bad = dataclasses.replace(enc, indices=bad_idx)
        with pytest.raises(FormatError, match="exceeds"):
            decode_delta_bytes(encode_delta_bytes(bad))


class TestContainer:
    def test_save_load_chain(self, tmp_path, rng):
        data = [rng.uniform(1, 2, 2000)]
        for _ in range(4):
            data.append(data[-1] * (1 + rng.normal(0, 0.003, 2000)))
        chain = CheckpointChain(data[0], NumarckConfig())
        chain.extend(data[1:])
        path = tmp_path / "c.nmk"
        nbytes = save_chain(path, chain)
        assert nbytes == path.stat().st_size
        loaded = load_chain(path)
        for i in range(5):
            np.testing.assert_array_equal(chain.reconstruct(i),
                                          loaded.reconstruct(i))

    def test_loaded_chain_appendable(self, tmp_path, rng):
        d0 = rng.uniform(1, 2, 500)
        d1 = d0 * 1.002
        chain = CheckpointChain(d0, NumarckConfig())
        chain.append(d1)
        path = tmp_path / "c.nmk"
        save_chain(path, chain)
        loaded = load_chain(path, NumarckConfig())
        d2 = d1 * 1.002
        loaded.append(d2)
        rel = np.abs(loaded.reconstruct(2) / d2 - 1)
        assert rel.max() < 5e-3

    def test_compressed_smaller_than_raw(self, tmp_path, rng):
        data = [rng.uniform(1, 2, 20_000)]
        for _ in range(5):
            data.append(data[-1] * (1 + rng.normal(0, 0.002, 20_000)))
        chain = CheckpointChain(data[0], NumarckConfig(nbits=8))
        chain.extend(data[1:])
        nbytes = save_chain(tmp_path / "c.nmk", chain)
        raw = 6 * 20_000 * 8
        assert nbytes < 0.35 * raw, "6 iterations must compress well below raw"

    def test_magic_check(self, tmp_path):
        p = tmp_path / "bad.nmk"
        p.write_bytes(b"JUNKJUNKJUNK")
        with pytest.raises(FormatError, match="not a NUMARCK"):
            CheckpointFile.open(p)

    def test_version_check(self, tmp_path):
        p = tmp_path / "v.nmk"
        p.write_bytes(b"NMRK" + struct.pack("<H", 99))
        with pytest.raises(FormatError, match="version"):
            CheckpointFile.open(p)

    def test_crc_detects_corruption(self, tmp_path, rng):
        d0 = rng.uniform(1, 2, 1000)
        chain = CheckpointChain(d0, NumarckConfig())
        chain.append(d0 * 1.001)
        path = tmp_path / "c.nmk"
        save_chain(path, chain)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01  # single bit flip mid-file
        path.write_bytes(bytes(blob))
        with pytest.raises(FormatError):
            load_chain(path)

    def test_truncation_detected(self, tmp_path, rng):
        d0 = rng.uniform(1, 2, 1000)
        chain = CheckpointChain(d0, NumarckConfig())
        chain.append(d0 * 1.001)
        path = tmp_path / "c.nmk"
        save_chain(path, chain)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 10])
        with pytest.raises(FormatError, match="truncated|CRC|exceeds"):
            load_chain(path)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "e.nmk"
        CheckpointFile.create(p).close()
        with pytest.raises(FormatError, match="no FULL"):
            load_chain(p)

    def test_delta_before_full_rejected(self, tmp_path, rng):
        prev = rng.uniform(1, 2, 50)
        enc = encode_pair(prev, prev * 1.01, NumarckConfig())[0]
        with CheckpointFile.create(tmp_path / "d.nmk") as f:
            f.write_delta(enc)
        with pytest.raises(FormatError, match="before FULL"):
            load_chain(tmp_path / "d.nmk")

    def test_write_on_read_handle_rejected(self, tmp_path, rng):
        p = tmp_path / "c.nmk"
        with CheckpointFile.create(p) as f:
            f.write_full(rng.normal(size=10))
        with CheckpointFile.open(p) as f:
            with pytest.raises(FormatError):
                f.write_full(rng.normal(size=10))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), nbits=st.integers(2, 12))
def test_property_delta_roundtrip(seed, nbits):
    rng = np.random.default_rng(seed)
    prev = rng.normal(size=150)
    prev[rng.random(150) < 0.1] = 0.0
    curr = prev * (1 + rng.normal(0, 0.05, 150))
    enc = encode_pair(prev, curr, NumarckConfig(nbits=nbits))[0]
    out = decode_delta_bytes(encode_delta_bytes(enc))
    _assert_encoded_equal(enc, out)
