"""Tests for centroid initialisation schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmeans import histogram_init, kmeanspp_init, random_init

ALL_INITS = [histogram_init, kmeanspp_init, random_init]


@pytest.mark.parametrize("init", ALL_INITS)
class TestCommonProperties:
    def test_count_and_sorted(self, init, rng):
        data = rng.normal(size=500)
        cent = init(data, 16)
        assert cent.shape == (16,)
        assert np.all(np.diff(cent) > 0), "centroids must be distinct and sorted"

    def test_k_one(self, init, rng):
        cent = init(rng.normal(size=50), 1)
        assert cent.shape == (1,)

    def test_empty_raises(self, init):
        with pytest.raises(ValueError):
            init(np.array([]), 3)

    def test_bad_k_raises(self, init, rng):
        with pytest.raises(ValueError):
            init(rng.normal(size=10), 0)

    def test_constant_data_padded(self, init):
        cent = init(np.full(20, 7.0), 5)
        assert cent.shape == (5,)
        assert np.all(np.diff(cent) > 0)

    def test_fewer_points_than_k(self, init):
        cent = init(np.array([1.0, 2.0]), 6)
        assert cent.shape == (6,)
        assert np.all(np.diff(cent) > 0)


class TestHistogramInit:
    def test_centroids_land_in_dense_regions(self, rng):
        data = np.concatenate([
            rng.normal(-5, 0.05, 1000),
            rng.normal(5, 0.05, 1000),
            rng.uniform(-6, 6, 20),  # sparse background
        ])
        cent = histogram_init(data, 2)
        assert np.min(np.abs(cent - (-5))) < 0.5
        assert np.min(np.abs(cent - 5)) < 0.5

    def test_deterministic(self, rng):
        data = rng.normal(size=300)
        np.testing.assert_array_equal(histogram_init(data, 7),
                                      histogram_init(data, 7))


class TestKMeansPP:
    def test_seeded_reproducible(self, rng):
        data = rng.normal(size=300)
        a = kmeanspp_init(data, 5, rng=np.random.default_rng(3))
        b = kmeanspp_init(data, 5, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_spreads_over_clusters(self, rng):
        data = np.concatenate([rng.normal(c, 0.01, 100) for c in (-10, 0, 10)])
        cent = kmeanspp_init(data, 3, rng=np.random.default_rng(0))
        for c in (-10, 0, 10):
            assert np.min(np.abs(cent - c)) < 1.0


class TestRandomInit:
    def test_centroids_are_data_points_when_distinct(self, rng):
        data = rng.normal(size=100)
        cent = random_init(data, 5, rng=np.random.default_rng(1))
        for c in cent:
            assert np.min(np.abs(data - c)) < 1e-12


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), k=st.integers(1, 20), n=st.integers(1, 200))
def test_property_always_k_distinct_sorted(seed, k, n):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=n)
    for init in ALL_INITS:
        cent = init(data, k)
        assert cent.shape == (k,)
        assert np.all(np.diff(cent) > 0)
        assert np.all(np.isfinite(cent))
