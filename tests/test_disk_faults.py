"""Fault injection *inside* the persistence write path.

The acceptance scenario for crash-consistent checkpointing: a process that
dies halfway through writing a record must, on restart, recover every
checkpoint that was already durable -- losing at most the one being
written -- and leave files that verify clean afterwards.
"""

import errno

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import CheckpointChain, FormatError, NumarckConfig
from repro.io import CheckpointFile, load_chain
from repro.restart import (
    CrashDuringWrite,
    DiskFaultInjector,
    FaultSchedule,
    RestartManager,
    run_with_faults,
)

VARS = ("a", "b")


class ToySim:
    """Deterministic two-variable simulation: cheap and exactly replayable."""

    def __init__(self):
        self.state = {"a": np.linspace(1.0, 2.0, 150),
                      "b": np.linspace(2.0, 3.0, 150)}

    def advance(self):
        for k in self.state:
            self.state[k] = self.state[k] * 1.001 + 1e-4

    def checkpoint(self):
        return {k: v.copy() for k, v in self.state.items()}

    def restore(self, state):
        self.state = {k: np.asarray(v, dtype=np.float64).copy()
                      for k, v in state.items()}


@pytest.fixture
def cfg():
    return NumarckConfig(error_bound=1e-3)


class TestDiskFaultInjector:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            DiskFaultInjector(torn_fraction=0.0)
        with pytest.raises(ValueError):
            DiskFaultInjector(torn_fraction=1.0)
        with pytest.raises(ValueError):
            DiskFaultInjector(flip_bit=8)

    def test_torn_write_leaves_partial_record(self, tmp_path, rng, cfg):
        chain = CheckpointChain(rng.uniform(1, 2, 200), cfg)
        chain.append(chain.full_checkpoint * 1.001)
        path = tmp_path / "c.nmk"
        disk = DiskFaultInjector(torn_at=(2,), torn_fraction=0.4)
        writer = CheckpointFile.create(path, write_hook=disk.hook, sync=True)
        writer.write_full(chain.full_checkpoint)
        with pytest.raises(CrashDuringWrite):
            writer.write_delta(chain.deltas[0])
        writer.close()
        # Strict read fails on the torn tail; salvage keeps the FULL record.
        with pytest.raises(FormatError):
            load_chain(path)
        loaded, report = load_chain(path, recover="tail")
        assert len(loaded) == 1
        assert report.records_dropped == 1
        np.testing.assert_array_equal(loaded.reconstruct(),
                                      chain.full_checkpoint)

    def test_bit_flip_detected_on_read(self, tmp_path, rng, cfg):
        chain = CheckpointChain(rng.uniform(1, 2, 200), cfg)
        path = tmp_path / "c.nmk"
        disk = DiskFaultInjector(flip_at=(1,))
        with CheckpointFile.create(path, write_hook=disk.hook) as writer:
            writer.write_full(chain.full_checkpoint)
        with pytest.raises(FormatError):
            load_chain(path)

    def test_transient_error_fires_once(self, tmp_path, rng, cfg):
        chain = CheckpointChain(rng.uniform(1, 2, 200), cfg)
        path = tmp_path / "c.nmk"
        disk = DiskFaultInjector(error_at=(1,))
        writer = CheckpointFile.create(path, write_hook=disk.hook, sync=True)
        with pytest.raises(OSError) as excinfo:
            writer.write_full(chain.full_checkpoint)
        assert excinfo.value.errno == errno.EIO
        # The failed write rolled back; the retry succeeds and the file
        # is byte-exact.
        writer.write_full(chain.full_checkpoint)
        writer.close()
        np.testing.assert_array_equal(load_chain(path).reconstruct(),
                                      chain.full_checkpoint)


class TestPersistIncremental:
    def test_appends_match_full_save(self, tmp_path, cfg):
        sim = ToySim()
        mgr = RestartManager(VARS, cfg)
        mgr.record(sim.checkpoint())
        path_fn = lambda v: tmp_path / f"{v}.nmk"  # noqa: E731
        assert mgr.persist_incremental(path_fn) == 2
        for _ in range(3):
            sim.advance()
            mgr.record(sim.checkpoint())
            assert mgr.persist_incremental(path_fn) == 2  # one per variable
        mgr.close_writers()
        for v in VARS:
            loaded = load_chain(path_fn(v), cfg)
            assert len(loaded) == 4
            np.testing.assert_allclose(loaded.reconstruct(),
                                       mgr.chain(v).reconstruct())

    def test_persist_before_record_raises(self, cfg, tmp_path):
        mgr = RestartManager(VARS, cfg)
        with pytest.raises(RuntimeError):
            mgr.persist_incremental(lambda v: tmp_path / f"{v}.nmk")

    def test_fresh_manager_replaces_stale_file(self, tmp_path, cfg):
        path_fn = lambda v: tmp_path / f"{v}.nmk"  # noqa: E731
        sim = ToySim()
        mgr = RestartManager(VARS, cfg)
        mgr.record(sim.checkpoint())
        sim.advance()
        mgr.record(sim.checkpoint())
        mgr.persist_incremental(path_fn)
        mgr.close_writers()
        # A new, unrelated recording into the same paths must not inherit
        # the old records.
        mgr2 = RestartManager(VARS, cfg)
        mgr2.record(ToySim().checkpoint())
        mgr2.persist_incremental(path_fn)
        mgr2.close_writers()
        for v in VARS:
            assert len(load_chain(path_fn(v), cfg)) == 1

    def test_from_chains_resumes_appending(self, tmp_path, cfg):
        path_fn = lambda v: tmp_path / f"{v}.nmk"  # noqa: E731
        sim = ToySim()
        mgr = RestartManager(VARS, cfg)
        mgr.record(sim.checkpoint())
        sim.advance()
        mgr.record(sim.checkpoint())
        mgr.persist_incremental(path_fn)
        mgr.close_writers()
        del mgr  # "crash"

        chains = {v: load_chain(path_fn(v), cfg) for v in VARS}
        resumed = RestartManager.from_chains(chains, cfg)
        assert resumed.n_checkpoints == 2
        sim2 = ToySim()
        sim2.restore(resumed.restart_state())
        sim2.advance()
        resumed.record(sim2.checkpoint())
        assert resumed.persist_incremental(path_fn) == 2
        resumed.close_writers()
        for v in VARS:
            assert len(load_chain(path_fn(v), cfg)) == 3

    def test_from_chains_truncates_untrusted_disk_records(self, tmp_path,
                                                          cfg):
        """Adopting a truncated chain must cut the file back before
        appending, so recomputed records replace stale ones."""
        path_fn = lambda v: tmp_path / f"{v}.nmk"  # noqa: E731
        sim = ToySim()
        mgr = RestartManager(VARS, cfg)
        mgr.record(sim.checkpoint())
        for _ in range(2):
            sim.advance()
            mgr.record(sim.checkpoint())
        mgr.persist_incremental(path_fn)
        mgr.close_writers()

        chains = {v: load_chain(path_fn(v), cfg) for v in VARS}
        for c in chains.values():
            c.truncate(2)  # trust only the first two records
        resumed = RestartManager.from_chains(chains, cfg)
        divergent = {v: chains[v].reconstruct() * 1.01 for v in VARS}
        resumed.record(divergent)
        resumed.persist_incremental(path_fn)
        resumed.close_writers()
        for v in VARS:
            loaded = load_chain(path_fn(v), cfg)
            assert len(loaded) == 3
            np.testing.assert_allclose(loaded.reconstruct(),
                                       resumed.chain(v).reconstruct())

    def test_from_chains_rejects_empty(self, cfg):
        with pytest.raises(ValueError):
            RestartManager.from_chains({}, cfg)


class TestRunWithDiskFaults:
    def test_torn_write_recovers_via_salvage(self, tmp_path, cfg):
        """The acceptance scenario: a crash *mid-record* loses at most the
        checkpoint being written, and the files verify clean afterwards."""
        # Two variables: writes 1-2 persist checkpoint 0, writes 3-4
        # checkpoint 1, ... write 7 tears variable "a"'s record for
        # checkpoint 3.
        disk = DiskFaultInjector(torn_at=(7,))
        result = run_with_faults(ToySim, VARS, 6, FaultSchedule(crash_at=()),
                                 tmp_path, cfg, disk_faults=disk)
        assert result.completed
        assert result.n_crashes == 1
        assert result.n_salvages == 1
        assert result.checkpoints_lost == 1  # only the torn one
        assert len(result.salvage_reports) >= 1
        assert all(not r.clean for r in result.salvage_reports)
        for v in VARS:
            assert cli_main(["verify", str(tmp_path / f"{v}.nmk")]) == 0
            loaded = load_chain(tmp_path / f"{v}.nmk", cfg)
            assert len(loaded) == 7  # initial + 6 checkpoints
        # The recovered run still lands close to the fault-free reference.
        assert all(e < 0.05 for e in result.final_max_error.values())

    def test_multiple_torn_writes(self, tmp_path, cfg):
        disk = DiskFaultInjector(torn_at=(5, 13), torn_fraction=0.7)
        result = run_with_faults(ToySim, VARS, 5, FaultSchedule(crash_at=()),
                                 tmp_path, cfg, disk_faults=disk)
        assert result.completed
        assert result.n_crashes == 2
        assert result.n_salvages == 2
        for v in VARS:
            assert cli_main(["verify", str(tmp_path / f"{v}.nmk")]) == 0

    def test_transient_errors_absorbed_by_retry(self, tmp_path, cfg):
        disk = DiskFaultInjector(error_at=(2, 6))
        result = run_with_faults(ToySim, VARS, 4, FaultSchedule(crash_at=()),
                                 tmp_path, cfg, disk_faults=disk)
        assert result.completed
        assert result.n_crashes == 0
        assert result.n_salvages == 0
        for v in VARS:
            assert cli_main(["verify", str(tmp_path / f"{v}.nmk")]) == 0

    def test_combined_disk_and_schedule_crashes(self, tmp_path, cfg):
        disk = DiskFaultInjector(torn_at=(9,))
        result = run_with_faults(ToySim, VARS, 6,
                                 FaultSchedule(crash_at=(2,)), tmp_path, cfg,
                                 disk_faults=disk)
        assert result.completed
        assert result.n_crashes == 2
        assert result.n_salvages == 1
        for v in VARS:
            assert cli_main(["verify", str(tmp_path / f"{v}.nmk")]) == 0

    def test_plain_crashes_write_each_record_once(self, tmp_path, cfg):
        """Incremental persistence appends O(1) records per checkpoint:
        a fault-free run of n checkpoints writes exactly (n+1) records per
        variable, not O(n^2)."""
        result = run_with_faults(ToySim, VARS, 8, FaultSchedule(crash_at=()),
                                 tmp_path, cfg)
        assert result.completed
        assert result.records_appended == len(VARS) * 9

    def test_plain_crash_schedule_still_works(self, tmp_path, cfg):
        result = run_with_faults(ToySim, VARS, 6,
                                 FaultSchedule(crash_at=(2, 4)), tmp_path,
                                 cfg)
        assert result.completed
        assert result.n_crashes == 2
        assert result.n_salvages == 0
        assert result.checkpoints_lost == 0
        assert result.checkpoints_written == 7
