"""Joint multi-variable encoder tests."""

import numpy as np
import pytest

from repro.core import (
    FormatError,
    NumarckConfig,
    decode_joint,
    encode_pair,
    encode_joint,
)


@pytest.fixture
def correlated_pair(rng):
    """Two variables sharing (almost) the same relative changes."""
    n = 6000
    a = rng.uniform(1, 2, n)
    b = rng.uniform(100, 200, n)
    r = rng.normal(0, 0.003, n)
    prev = {"a": a, "b": b}
    curr = {"a": a * (1 + r),
            "b": b * (1 + r + rng.normal(0, 1e-4, n))}
    return prev, curr


class TestGuarantee:
    def test_per_variable_bound(self, correlated_pair):
        prev, curr = correlated_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        enc = encode_joint(prev, curr, cfg)
        out = decode_joint(prev, enc)
        for v in ("a", "b"):
            err = np.abs((out[v] - prev[v]) / prev[v]
                         - (curr[v] - prev[v]) / prev[v])
            err[enc.incompressible[v]] = 0
            assert err.max() < 1e-3

    def test_exact_values_bit_exact(self, rng):
        prev = {"a": np.zeros(50), "b": rng.uniform(1, 2, 50)}
        curr = {"a": rng.normal(size=50), "b": prev["b"] * 1.3}
        enc = encode_joint(prev, curr, NumarckConfig(error_bound=1e-4,
                                                     nbits=2))
        out = decode_joint(prev, enc)
        np.testing.assert_array_equal(out["a"], curr["a"])

    def test_uncorrelated_variables_still_bounded(self, rng):
        n = 4000
        prev = {"x": rng.uniform(1, 2, n), "y": rng.uniform(1, 2, n)}
        curr = {"x": prev["x"] * (1 + rng.normal(0, 0.004, n)),
                "y": prev["y"] * (1 + rng.normal(0, 0.004, n))}
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        enc = encode_joint(prev, curr, cfg)
        out = decode_joint(prev, enc)
        for v in ("x", "y"):
            err = np.abs((out[v] - prev[v]) / prev[v]
                         - (curr[v] - prev[v]) / prev[v])
            err[enc.incompressible[v]] = 0
            assert err.max() < 1e-3


class TestLayout:
    def test_shared_index_stream(self, correlated_pair):
        prev, curr = correlated_pair
        enc = encode_joint(prev, curr, NumarckConfig(nbits=8))
        assert enc.indices.max() < 256
        assert enc.representatives.shape[1] == 2
        assert enc.variables == ("a", "b")

    def test_all_unchanged(self, rng):
        prev = {"a": rng.uniform(1, 2, 100)}
        enc = encode_joint(prev, {"a": prev["a"].copy()}, NumarckConfig())
        assert np.all(enc.indices == 0)
        assert enc.representatives.size == 0
        out = decode_joint(prev, enc)
        np.testing.assert_array_equal(out["a"], prev["a"])

    def test_shape_preserved(self, rng):
        prev = {"a": rng.uniform(1, 2, (10, 12))}
        curr = {"a": prev["a"] * 1.01}
        enc = encode_joint(prev, curr, NumarckConfig())
        out = decode_joint(prev, enc)
        assert out["a"].shape == (10, 12)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            encode_joint({}, {}, NumarckConfig())
        with pytest.raises(KeyError):
            encode_joint({"a": rng.normal(size=5)},
                         {"a": rng.normal(size=5), "b": rng.normal(size=5)},
                         NumarckConfig())
        with pytest.raises(FormatError):
            encode_joint({"a": rng.normal(size=5), "b": rng.normal(size=6)},
                         {"a": rng.normal(size=5), "b": rng.normal(size=6)},
                         NumarckConfig())

    def test_decode_reference_shape_checked(self, correlated_pair, rng):
        prev, curr = correlated_pair
        enc = encode_joint(prev, curr, NumarckConfig())
        bad = dict(prev)
        bad["a"] = rng.normal(size=7)
        with pytest.raises(FormatError):
            decode_joint(bad, enc)


class TestSavings:
    def test_correlated_variables_beat_separate(self, correlated_pair):
        """The point of joint coding: one index stream for two variables."""
        prev, curr = correlated_pair
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        joint = encode_joint(prev, curr, cfg)
        n = prev["a"].size
        separate_bits = 0
        for v in ("a", "b"):
            enc = encode_pair(prev[v], curr[v], cfg)[0]
            separate_bits += (n * 8 + n + enc.exact_values.size * 64
                              + 255 * 64)
        assert joint.stored_bits() < 0.8 * separate_bits

    def test_gamma_small_on_correlated_data(self, correlated_pair):
        prev, curr = correlated_pair
        enc = encode_joint(prev, curr, NumarckConfig(error_bound=1e-3))
        assert enc.incompressible_ratio("a") < 0.05
        assert enc.incompressible_ratio("b") < 0.05
