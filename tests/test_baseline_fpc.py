"""FPC lossless compressor tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FpcCompressor


@pytest.fixture
def fpc() -> FpcCompressor:
    return FpcCompressor(table_bits=12)


class TestRoundtrip:
    def test_random_doubles(self, fpc, rng):
        x = rng.normal(size=2000)
        out = fpc.decompress(fpc.compress(x))
        np.testing.assert_array_equal(out, x)

    def test_special_values(self, fpc):
        x = np.array([0.0, -0.0, np.nan, np.inf, -np.inf, 1e-308, 1e308, 1.0])
        out = fpc.decompress(fpc.compress(x))
        np.testing.assert_array_equal(x.view(np.uint64), out.view(np.uint64))

    def test_empty(self, fpc):
        out = fpc.decompress(fpc.compress(np.array([])))
        assert out.size == 0

    def test_single_value(self, fpc):
        out = fpc.decompress(fpc.compress(np.array([3.14])))
        assert out[0] == 3.14

    def test_odd_and_even_lengths(self, fpc, rng):
        for n in (1, 2, 3, 17, 100, 101):
            x = rng.normal(size=n)
            np.testing.assert_array_equal(fpc.decompress(fpc.compress(x)), x)


class TestRatios:
    def test_constant_stream_compresses_hard(self, fpc):
        enc = fpc.compress(np.full(4000, 2.5))
        assert fpc.compression_ratio(enc) > 75.0

    def test_linear_ramp_predicted_by_dfcm(self, fpc):
        """A constant-delta stream is exactly what DFCM predicts."""
        enc = fpc.compress(1.0 + np.arange(4000) * 0.001)
        assert fpc.compression_ratio(enc) > 75.0

    def test_random_data_incompressible(self, fpc, rng):
        """The paper's premise, again: FPC gains nothing on snapshots."""
        enc = fpc.compress(rng.normal(size=4000))
        assert fpc.compression_ratio(enc) < 10.0

    def test_repeating_pattern_fcm(self, fpc):
        x = np.tile(np.array([1.0, 2.0, 3.0, 4.0]), 500)
        enc = fpc.compress(x)
        assert fpc.compression_ratio(enc) > 50.0

    def test_numarck_exact_stream_incompressible(self, fpc, hard_pair):
        """FPC on NUMARCK's exact-value stream: little to gain, confirming
        the paper's decision to leave the lossless pass out of scope for
        that stream."""
        from repro.core import NumarckConfig, encode_pair

        prev, curr = hard_pair
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        if enc.exact_values.size > 100:
            ratio = fpc.compression_ratio(fpc.compress(enc.exact_values))
            assert ratio < 30.0


class TestValidation:
    def test_table_bits_bounds(self):
        with pytest.raises(ValueError):
            FpcCompressor(table_bits=2)
        with pytest.raises(ValueError):
            FpcCompressor(table_bits=30)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(0, 300))
def test_property_lossless(seed, n):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n) * 10.0 ** float(rng.integers(-5, 6))
    fpc = FpcCompressor(table_bits=8)
    out = fpc.decompress(fpc.compress(x))
    np.testing.assert_array_equal(np.asarray(x).view(np.uint64),
                                  out.view(np.uint64))
