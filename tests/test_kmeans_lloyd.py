"""Tests for the from-scratch Lloyd implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmeans import assign1d, histogram_init, kmeans, kmeans1d


class TestAssign1d:
    def test_single_centroid(self):
        labels = assign1d(np.array([1.0, 5.0, -2.0]), np.array([0.0]))
        np.testing.assert_array_equal(labels, [0, 0, 0])

    def test_nearest_assignment(self):
        cent = np.array([0.0, 10.0])
        labels = assign1d(np.array([1.0, 9.0, 4.9, 5.1]), cent)
        np.testing.assert_array_equal(labels, [0, 1, 0, 1])

    def test_tie_goes_to_lower_centroid(self):
        labels = assign1d(np.array([5.0]), np.array([0.0, 10.0]))
        assert labels[0] == 0

    def test_empty_centroids_raise(self):
        with pytest.raises(ValueError):
            assign1d(np.array([1.0]), np.array([]))

    def test_matches_brute_force(self, rng):
        data = rng.normal(size=500)
        cent = np.sort(rng.normal(size=16))
        fast = assign1d(data, cent)
        brute = np.argmin(np.abs(data[:, None] - cent[None, :]), axis=1)
        # Ties may differ; distances must agree.
        np.testing.assert_allclose(
            np.abs(data - cent[fast]), np.abs(data - cent[brute])
        )


class TestKMeans1D:
    def test_separated_clusters_found(self, rng):
        data = np.concatenate([
            rng.normal(-10, 0.1, 200),
            rng.normal(0, 0.1, 200),
            rng.normal(10, 0.1, 200),
        ])
        res = kmeans1d(data, np.array([-5.0, 1.0, 5.0]))
        np.testing.assert_allclose(np.sort(res.centroids), [-10, 0, 10], atol=0.15)
        assert res.converged

    def test_labels_in_range(self, rng):
        data = rng.normal(size=300)
        res = kmeans1d(data, histogram_init(data, 8))
        assert res.labels.min() >= 0
        assert res.labels.max() < 8

    def test_inertia_not_worse_than_init(self, rng):
        data = rng.normal(size=400)
        init = histogram_init(data, 10)
        init_inertia = float(np.sum((data - init[assign1d(data, init)]) ** 2))
        res = kmeans1d(data, init)
        assert res.inertia <= init_inertia + 1e-9

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            kmeans1d(np.array([]), np.array([0.0]))

    def test_constant_data(self):
        res = kmeans1d(np.full(50, 3.0), np.array([0.0, 1.0]))
        assert np.any(np.isclose(res.centroids, 3.0))
        assert res.inertia == pytest.approx(0.0)

    def test_k_equals_n(self):
        data = np.array([1.0, 2.0, 3.0])
        res = kmeans1d(data, data.copy())
        assert res.inertia == pytest.approx(0.0)

    def test_centroids_sorted(self, rng):
        data = rng.normal(size=200)
        res = kmeans1d(data, rng.normal(size=7))
        assert np.all(np.diff(res.centroids) >= 0)

    def test_max_iter_respected(self, rng):
        data = rng.normal(size=200)
        res = kmeans1d(data, histogram_init(data, 5), max_iter=1)
        assert res.n_iter == 1


class TestKMeansND:
    def test_2d_clusters(self, rng):
        a = rng.normal([0, 0], 0.1, (100, 2))
        b = rng.normal([5, 5], 0.1, (100, 2))
        res = kmeans(np.vstack([a, b]), np.array([[1.0, 1.0], [4.0, 4.0]]))
        got = res.centroids[np.argsort(res.centroids[:, 0])]
        np.testing.assert_allclose(got, [[0, 0], [5, 5]], atol=0.2)

    def test_1d_input_promoted(self, rng):
        data = rng.normal(size=100)
        res = kmeans(data, np.array([-1.0, 1.0]))
        assert res.centroids.shape == (2, 1)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            kmeans(np.zeros((10, 3)), np.zeros((2, 2)))

    def test_agrees_with_1d_on_scalar_data(self, rng):
        data = rng.normal(size=300)
        init = histogram_init(data, 6)
        r1 = kmeans1d(data, init, max_iter=50)
        rn = kmeans(data, init, max_iter=50)
        assert rn.inertia == pytest.approx(r1.inertia, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    k=st.integers(1, 12),
    n=st.integers(12, 300),
)
def test_property_inertia_and_labels(seed, k, n):
    """Inertia equals the label-implied SSE and labels stay in range."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=n) * rng.uniform(0.1, 10)
    res = kmeans1d(data, histogram_init(data, k))
    assert 0 <= res.labels.min() and res.labels.max() < res.centroids.size
    sse = float(np.sum((data - res.centroids[res.labels]) ** 2))
    assert res.inertia == pytest.approx(sse, rel=1e-9, abs=1e-12)


class TestInertiaHistory:
    def test_length_matches_n_iter(self, rng):
        data = rng.normal(size=400)
        res = kmeans1d(data, histogram_init(data, 8))
        assert len(res.inertia_history) == res.n_iter

    def test_last_entry_is_final_inertia(self, rng):
        data = rng.normal(size=400)
        res = kmeans1d(data, histogram_init(data, 8))
        assert res.inertia_history[-1] == pytest.approx(res.inertia, rel=1e-9)

    def test_monotone_non_increasing(self, rng):
        data = rng.uniform(-5, 5, 1000)
        res = kmeans1d(data, histogram_init(data, 16), max_iter=50)
        hist = np.asarray(res.inertia_history)
        # Lloyd never increases the objective; allow float noise only.
        assert np.all(np.diff(hist) <= 1e-9 * np.maximum(hist[:-1], 1.0))

    def test_matches_direct_sse_each_sweep(self, rng):
        # Re-run Lloyd by hand and compare the moments-identity history
        # against a direct SSE at every sweep.
        data = rng.normal(size=300)
        init = histogram_init(data, 6)
        res = kmeans1d(data, init, max_iter=50)
        cent = np.sort(np.asarray(init, dtype=np.float64))
        for sweep, recorded in enumerate(res.inertia_history, start=1):
            labels = assign1d(data, cent)
            counts = np.bincount(labels, minlength=cent.size).astype(float)
            sums = np.bincount(labels, weights=data, minlength=cent.size)
            new = cent.copy()
            nonempty = counts > 0
            new[nonempty] = sums[nonempty] / counts[nonempty]
            cent = np.sort(new)
            labels = assign1d(data, cent)
            sse = float(np.sum((data - cent[labels]) ** 2))
            assert recorded == pytest.approx(sse, rel=1e-9, abs=1e-12)

    def test_weighted_history(self, rng):
        data = rng.normal(size=200)
        w = rng.uniform(0.5, 2.0, 200)
        res = kmeans1d(data, histogram_init(data, 5), weights=w)
        assert len(res.inertia_history) == res.n_iter
        assert res.inertia_history[-1] == pytest.approx(res.inertia, rel=1e-9)

    def test_nd_history(self, rng):
        data = rng.normal(size=(300, 2))
        init = data[rng.choice(300, 4, replace=False)]
        res = kmeans(data, init)
        assert len(res.inertia_history) == res.n_iter
        assert res.inertia_history[-1] == pytest.approx(res.inertia, rel=1e-9)

    def test_parallel_history_matches_serial(self, rng):
        from repro.kmeans.parallel import parallel_kmeans1d

        data = rng.normal(size=500)
        init = histogram_init(data, 7)
        serial = kmeans1d(data, init)
        par = parallel_kmeans1d(None, data, init)
        assert par.inertia_history == pytest.approx(serial.inertia_history)
