"""Entropy, distribution and report helpers."""

import numpy as np
import pytest

from repro.analysis import (
    byte_entropy,
    change_histogram,
    distribution_drift,
    format_series,
    format_table,
    histogram_entropy,
    summarize_changes,
    word_entropy,
)


class TestEntropy:
    def test_constant_bytes_zero_entropy(self):
        assert byte_entropy(b"\x00" * 100) == 0.0

    def test_uniform_bytes_max_entropy(self):
        raw = bytes(range(256)) * 8
        assert byte_entropy(raw) == pytest.approx(8.0)

    def test_random_doubles_high_entropy(self, rng):
        """The paper's premise: snapshot bytes are near-incompressible."""
        assert byte_entropy(rng.normal(size=20_000)) > 5.0

    def test_word_entropy_distinct_values(self):
        assert word_entropy(np.array([1, 2, 3, 4])) == pytest.approx(2.0)

    def test_word_entropy_constant(self):
        assert word_entropy(np.full(10, 7)) == 0.0

    def test_word_entropy_empty(self):
        assert word_entropy(np.array([])) == 0.0

    def test_index_stream_entropy_below_nbits(self, smooth_pair):
        """NUMARCK's transform concentrates the distribution: the index
        stream's entropy sits well below its B-bit width, which is the
        headroom a lossless post-pass exploits."""
        from repro.core import NumarckConfig, encode_pair

        prev, curr = smooth_pair
        enc = encode_pair(prev, curr, NumarckConfig(nbits=8))[0]
        assert word_entropy(enc.indices) < 8.0

    def test_histogram_entropy_handles_nan(self):
        arr = np.array([1.0, np.nan, 2.0, np.inf])
        assert np.isfinite(histogram_entropy(arr))

    def test_histogram_entropy_empty(self):
        assert histogram_entropy(np.array([])) == 0.0


class TestChangeSummary:
    def test_summary_fields(self, smooth_pair):
        prev, curr = smooth_pair
        s = summarize_changes(prev, curr)
        assert s.n_points == prev.size
        assert 0 <= s.median_abs <= s.p95_abs <= s.max_abs
        assert s.frac_below[0.001] <= s.frac_below[0.05]

    def test_identical_iterates(self, rng):
        x = rng.uniform(1, 2, 100)
        s = summarize_changes(x, x)
        assert s.max_abs == 0.0
        assert s.frac_unchanged() == 1.0

    def test_all_forced_exact(self):
        s = summarize_changes(np.zeros(10), np.ones(10))
        assert s.n_forced_exact == 10
        assert s.frac_unchanged() == 1.0


class TestChangeHistogram:
    def test_counts_and_edges(self, smooth_pair):
        prev, curr = smooth_pair
        counts, edges = change_histogram(prev, curr, bins=255)
        assert counts.shape == (255,)
        assert edges.shape == (256,)
        assert counts.sum() == prev.size

    def test_outliers_folded(self, rng):
        prev = rng.uniform(1, 2, 1000)
        curr = prev * (1 + rng.normal(0, 0.001, 1000))
        curr[0] = prev[0] * 1e6  # giant outlier
        counts, edges = change_histogram(prev, curr, bins=64)
        assert edges[-1] < 1e5, "clipping must bound the display range"

    def test_degenerate_pair(self):
        counts, edges = change_histogram(np.zeros(5), np.ones(5))
        assert counts.sum() == 0


class TestDrift:
    def test_identical_zero(self, rng):
        h = rng.integers(1, 100, 32)
        assert distribution_drift(h, h) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_maximal(self):
        a = np.array([10, 0, 0, 0])
        b = np.array([0, 0, 0, 10])
        assert distribution_drift(a, b) == pytest.approx(1.0)

    def test_symmetric(self, rng):
        a = rng.integers(0, 50, 16)
        b = rng.integers(0, 50, 16)
        a[0] += 1
        b[1] += 1
        assert distribution_drift(a, b) == pytest.approx(distribution_drift(b, a))

    def test_validation(self):
        with pytest.raises(ValueError):
            distribution_drift(np.ones(4), np.ones(5))
        with pytest.raises(ValueError):
            distribution_drift(np.zeros(4), np.ones(4))

    def test_detects_regime_change(self, rng):
        """Drift between consecutive iterations spikes when the change
        distribution shifts -- the paper's anomaly-detection idea."""
        prev = rng.uniform(1, 2, 5000)
        normal1 = prev * (1 + rng.normal(0, 0.001, 5000))
        normal2 = normal1 * (1 + rng.normal(0, 0.001, 5000))
        anomalous = normal2 * (1 + rng.normal(0.05, 0.02, 5000))  # regime shift
        lo, hi = -0.1, 0.1
        def hist(a, b):
            r = (b - a) / a
            return np.histogram(np.clip(r, lo, hi), bins=64, range=(lo, hi))[0]
        calm = distribution_drift(hist(prev, normal1), hist(normal1, normal2))
        spike = distribution_drift(hist(normal1, normal2), hist(normal2, anomalous))
        assert spike > 5 * calm


class TestReport:
    def test_table_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], precision=2)
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in out and "0.12" in out

    def test_table_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.startswith("Table I")

    def test_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series_wrapping(self):
        out = format_series("err", list(range(25)), per_line=10)
        assert out.count("\n") == 3  # header line + 3 wrapped rows

    def test_series_empty(self):
        assert "(empty)" in format_series("x", [])
