"""ISABELA baseline tests."""

import numpy as np
import pytest

from repro.baselines import IsabelaCompressor
from repro.core import pearson_r, rmse


class TestStorageModel:
    def test_paper_ratio_cmip_config(self, rng):
        """W0=512, P_I=30 must give the paper's 80.078 %."""
        comp = IsabelaCompressor(window_size=512, n_coef=30)
        enc = comp.compress(rng.normal(size=2048))
        assert comp.compression_ratio(enc) == pytest.approx(80.078125)

    def test_paper_ratio_flash_config(self, rng):
        """W0=256, P_I=30 must give the paper's 75.781 %."""
        comp = IsabelaCompressor(window_size=256, n_coef=30)
        enc = comp.compress(rng.normal(size=1024))
        assert comp.compression_ratio(enc) == pytest.approx(75.78125)

    def test_actual_ratio_close_to_model(self, rng):
        comp = IsabelaCompressor(window_size=512, n_coef=30)
        enc = comp.compress(rng.normal(size=5120))
        assert comp.compression_ratio_actual(enc) == pytest.approx(
            comp.compression_ratio(enc), abs=1.0
        )


class TestRoundtrip:
    def test_high_correlation_on_noise(self, rng):
        """ISABELA's claim: >= 0.99 correlation even on random data,
        because the *sorted* window is smooth."""
        y = rng.normal(100, 10, size=4096)
        comp = IsabelaCompressor(window_size=512, n_coef=30)
        out = comp.decompress(comp.compress(y))
        assert pearson_r(y, out) > 0.99

    def test_beats_bspline_on_noise(self, rng):
        from repro.baselines import BSplineCompressor

        y = rng.normal(100, 10, size=2048)
        isa_out = IsabelaCompressor(512, 30).decompress(
            IsabelaCompressor(512, 30).compress(y)
        )
        bs = BSplineCompressor(0.8)
        bs_out = bs.decompress(bs.compress(y))
        assert rmse(y, isa_out) < rmse(y, bs_out)

    def test_permutation_metadata_exact(self, rng):
        """The stored permutation must be bit-exact: unpacking each window's
        metadata recovers argsort of the original window."""
        from repro.bitpack import unpack_bits

        y = rng.normal(size=1024)
        comp = IsabelaCompressor(window_size=256, n_coef=30)
        enc = comp.compress(y)
        for i, w in enumerate(enc.windows):
            order = unpack_bits(w.packed_perm, w.length, w.perm_bits)
            np.testing.assert_array_equal(
                order, np.argsort(y[i * 256 : (i + 1) * 256], kind="stable")
            )

    def test_tail_window_handled(self, rng):
        y = rng.normal(size=700)  # 512 + 188
        comp = IsabelaCompressor(window_size=512, n_coef=30)
        out = comp.decompress(comp.compress(y))
        assert out.shape == (700,)
        assert pearson_r(y, out) > 0.99

    def test_tiny_tail_window_verbatim(self, rng):
        y = rng.normal(size=514)  # tail window of 2 < degree+1
        comp = IsabelaCompressor(window_size=512, n_coef=30)
        out = comp.decompress(comp.compress(y))
        np.testing.assert_allclose(out[512:], y[512:])

    def test_monotone_input_near_exact(self):
        y = np.linspace(0, 100, 512)
        comp = IsabelaCompressor(window_size=512, n_coef=30)
        out = comp.decompress(comp.compress(y))
        assert np.max(np.abs(out - y)) < 1e-6


class TestErrorBoundedMode:
    def test_relative_guarantee_holds(self, rng):
        """With error_bound set, every nonzero point is within tolerance."""
        y = rng.normal(100, 30, size=2048)
        comp = IsabelaCompressor(window_size=512, n_coef=10, error_bound=1e-3)
        out = comp.decompress(comp.compress(y))
        rel = np.abs((out - y) / y)
        assert rel.max() <= 1e-3 + 1e-12

    def test_unbounded_mode_can_violate(self, rng):
        """Sanity: without the bound, a 10-coefficient fit of 512 noisy
        values exceeds 0.1 % somewhere (else the guarantee test is vacuous)."""
        y = rng.normal(100, 30, size=2048)
        comp = IsabelaCompressor(window_size=512, n_coef=10)
        out = comp.decompress(comp.compress(y))
        rel = np.abs((out - y) / y)
        assert rel.max() > 1e-3

    def test_fixups_cost_charged(self, rng):
        y = rng.normal(100, 30, size=2048)
        plain = IsabelaCompressor(512, 10)
        bounded = IsabelaCompressor(512, 10, error_bound=1e-3)
        enc_plain = plain.compress(y)
        enc_bounded = bounded.compress(y)
        assert enc_bounded.n_fixups > 0
        assert enc_bounded.stored_bits > enc_plain.stored_bits
        assert bounded.compression_ratio_actual(enc_bounded) < \
            plain.compression_ratio_actual(enc_plain)

    def test_smooth_data_needs_no_fixups(self):
        y = np.linspace(1, 100, 1024)
        comp = IsabelaCompressor(512, 30, error_bound=1e-3)
        assert comp.compress(y).n_fixups == 0

    def test_tighter_bound_more_fixups(self, rng):
        y = rng.normal(100, 30, size=2048)
        loose = IsabelaCompressor(512, 10, error_bound=1e-2).compress(y)
        tight = IsabelaCompressor(512, 10, error_bound=1e-4).compress(y)
        assert tight.n_fixups >= loose.n_fixups

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            IsabelaCompressor(error_bound=0.0)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IsabelaCompressor().compress(np.array([]))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            IsabelaCompressor().compress(np.array([1.0, np.nan]))

    def test_bad_window(self):
        with pytest.raises(ValueError):
            IsabelaCompressor(window_size=4)

    def test_bad_ncoef(self):
        with pytest.raises(ValueError):
            IsabelaCompressor(n_coef=2)
