"""Codec facade tests (one-shot pair surface)."""

import numpy as np
import pytest

from repro import Codec
from repro.core import NumarckConfig


class TestCompressor:
    def test_default_config(self):
        comp = Codec()
        assert comp.config.strategy == "clustering"

    def test_compress_decompress_roundtrip(self, smooth_pair):
        prev, curr = smooth_pair
        comp = Codec(config=NumarckConfig(error_bound=1e-3))
        enc = comp.compress(prev, curr)
        out = comp.decompress(prev, enc)
        rel = np.abs(out / curr - 1)
        assert rel.max() < 2e-3

    def test_stats_with_and_without_encoded(self, smooth_pair):
        prev, curr = smooth_pair
        comp = Codec(config=NumarckConfig())
        enc = comp.compress(prev, curr)
        s1 = comp.stats(prev, curr, enc)
        s2 = comp.stats(prev, curr)
        assert s1.n_incompressible == s2.n_incompressible
        assert s1.ratio_paper == pytest.approx(s2.ratio_paper)

    def test_roundtrip_helper(self, smooth_pair):
        prev, curr = smooth_pair
        comp = Codec(config=NumarckConfig(error_bound=1e-3))
        out, enc, stats = comp.roundtrip(prev, curr)
        assert out.shape == curr.shape
        assert stats.n_points == curr.size
        assert stats.max_error < 1e-3

    def test_compression_is_order_of_magnitude(self, smooth_pair):
        """The paper's headline: ~10x reduction within bounds."""
        prev, curr = smooth_pair
        comp = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8))
        _, _, stats = comp.roundtrip(prev, curr)
        assert stats.ratio_paper > 80.0  # > 5x; 8-bit indices give ~87 % max
