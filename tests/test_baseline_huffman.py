"""Canonical Huffman coder tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    code_lengths,
    huffman_decode,
    huffman_encode,
    huffman_size_bits,
)


class TestCodeLengths:
    def test_uniform_alphabet_balanced(self):
        lengths = code_lengths(np.full(8, 10))
        np.testing.assert_array_equal(lengths, np.full(8, 3))

    def test_skewed_gets_short_code(self):
        lengths = code_lengths(np.array([1000, 1, 1, 1]))
        assert lengths[0] == 1
        assert lengths[1:].min() >= 2

    def test_absent_symbols_zero_length(self):
        lengths = code_lengths(np.array([5, 0, 5, 0]))
        assert lengths[1] == 0 and lengths[3] == 0
        assert lengths[0] == 1 and lengths[2] == 1

    def test_single_symbol(self):
        lengths = code_lengths(np.array([0, 42, 0]))
        np.testing.assert_array_equal(lengths, [0, 1, 0])

    def test_kraft_inequality(self, rng):
        counts = rng.integers(0, 1000, 64)
        counts[0] = 1  # ensure non-empty
        lengths = code_lengths(counts)
        present = lengths[lengths > 0]
        assert np.sum(2.0 ** (-present.astype(float))) <= 1.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            code_lengths(np.array([]))
        with pytest.raises(ValueError):
            code_lengths(np.array([0, 0]))
        with pytest.raises(ValueError):
            code_lengths(np.array([-1, 2]))


class TestRoundtrip:
    def test_basic(self, rng):
        vals = rng.integers(0, 16, 500).astype(np.uint32)
        out = huffman_decode(huffman_encode(vals, 16))
        np.testing.assert_array_equal(out, vals)

    def test_empty(self):
        out = huffman_decode(huffman_encode(np.array([], dtype=np.uint32), 8))
        assert out.size == 0

    def test_single_symbol_stream(self):
        vals = np.full(100, 3, dtype=np.uint32)
        out = huffman_decode(huffman_encode(vals, 8))
        np.testing.assert_array_equal(out, vals)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            huffman_encode(np.array([9], dtype=np.uint32), 8)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            huffman_decode(b"XXXX" + b"\x00" * 20)

    def test_truncated_stream_detected(self, rng):
        vals = rng.integers(0, 32, 300).astype(np.uint32)
        blob = huffman_encode(vals, 32)
        with pytest.raises(ValueError, match="truncated|corrupt"):
            huffman_decode(blob[: len(blob) - 10])


class TestCompression:
    def test_size_prediction_matches(self, rng):
        vals = rng.choice(64, 2000, p=np.r_[0.7, np.full(63, 0.3 / 63)])
        blob = huffman_encode(vals.astype(np.uint32), 64)
        payload_bits = (len(blob) - 16 - 64) * 8
        predicted = huffman_size_bits(vals, 64)
        assert predicted <= payload_bits < predicted + 8  # byte padding only

    def test_within_one_bit_of_entropy(self, rng):
        vals = rng.choice(256, 20_000,
                          p=np.r_[0.6, np.full(255, 0.4 / 255)]).astype(np.uint32)
        counts = np.bincount(vals, minlength=256)
        p = counts[counts > 0] / vals.size
        entropy_bits = float(-(p * np.log2(p)).sum()) * vals.size
        coded = huffman_size_bits(vals, 256)
        assert entropy_bits <= coded <= entropy_bits + vals.size  # +1 bit/sym

    def test_numarck_index_stream_shrinks(self, smooth_pair):
        """The motivating use: NUMARCK's 8-bit indices entropy-code well."""
        from repro.core import NumarckConfig, encode_pair

        prev, curr = smooth_pair
        enc = encode_pair(prev, curr, NumarckConfig(nbits=8))[0]
        blob = huffman_encode(enc.indices, 256)
        raw_bits = enc.indices.size * 8
        assert len(blob) * 8 < 0.9 * raw_bits
        np.testing.assert_array_equal(huffman_decode(blob), enc.indices)

    def test_uniform_data_no_gain(self, rng):
        """Huffman cannot beat the fixed-width code on uniform symbols."""
        vals = rng.integers(0, 256, 10_000).astype(np.uint32)
        assert huffman_size_bits(vals, 256) >= 8 * vals.size * 0.99


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31), alphabet=st.integers(1, 64),
       n=st.integers(0, 400))
def test_property_roundtrip(seed, alphabet, n):
    rng = np.random.default_rng(seed)
    # Zipf-ish skew to exercise unequal code lengths.
    p = 1.0 / np.arange(1, alphabet + 1)
    p /= p.sum()
    vals = rng.choice(alphabet, size=n, p=p).astype(np.uint32)
    out = huffman_decode(huffman_encode(vals, alphabet))
    np.testing.assert_array_equal(out, vals)
