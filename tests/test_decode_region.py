"""Random-access (partial-region) decode tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FormatError,
    NumarckConfig,
    decode_iteration,
    decode_region,
    encode_pair,
)


@pytest.fixture
def encoded_pair(hard_pair):
    prev, curr = hard_pair
    enc = encode_pair(prev, curr, NumarckConfig(error_bound=1e-3))[0]
    full = decode_iteration(prev, enc)
    return prev, enc, full


class TestDecodeRegion:
    def test_any_region_matches_full_decode(self, encoded_pair):
        prev, enc, full = encoded_pair
        for start, stop in ((0, 100), (37, 1234), (3999, 4000), (0, 4000)):
            region = decode_region(prev[start:stop], enc, start, stop)
            np.testing.assert_array_equal(region, full[start:stop])

    def test_exact_values_in_region(self, encoded_pair):
        """Regions containing incompressible points must splice the right
        slice of the dense exact stream."""
        prev, enc, full = encoded_pair
        exact_positions = np.flatnonzero(enc.incompressible)
        assert exact_positions.size > 0, "fixture should have exact points"
        pos = int(exact_positions[len(exact_positions) // 2])
        region = decode_region(prev[pos : pos + 1], enc, pos, pos + 1)
        np.testing.assert_array_equal(region, full[pos : pos + 1])

    def test_empty_region(self, encoded_pair):
        prev, enc, _ = encoded_pair
        assert decode_region(prev[5:5], enc, 5, 5).size == 0

    def test_region_of_2d_iteration(self, rng):
        prev = rng.uniform(1, 2, (20, 30))
        curr = prev * (1 + rng.normal(0, 0.01, (20, 30)))
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        full = decode_iteration(prev, enc)
        flat_prev = prev.ravel()
        region = decode_region(flat_prev[100:250], enc, 100, 250)
        np.testing.assert_array_equal(region, full.ravel()[100:250])

    def test_block_extraction_use_case(self, rng):
        """Pull one 16x16 block row out of a compressed 2-D checkpoint."""
        prev = rng.uniform(1, 2, (32, 32))
        curr = prev * (1 + rng.normal(0, 0.005, (32, 32)))
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        full = decode_iteration(prev, enc)
        start, stop = 16 * 32, 17 * 32  # row 16
        row = decode_region(prev.ravel()[start:stop], enc, start, stop)
        np.testing.assert_array_equal(row, full[16])

    def test_out_of_range(self, encoded_pair):
        prev, enc, _ = encoded_pair
        with pytest.raises(IndexError):
            decode_region(prev[:10], enc, -1, 9)
        with pytest.raises(IndexError):
            decode_region(prev[:10], enc, 0, enc.n_points + 1)
        with pytest.raises(IndexError):
            decode_region(prev[:0], enc, 10, 5)

    def test_wrong_reference_size(self, encoded_pair):
        prev, enc, _ = encoded_pair
        with pytest.raises(FormatError, match="region has"):
            decode_region(prev[:5], enc, 0, 10)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), data=st.data())
def test_property_region_equals_full_slice(seed, data):
    rng = np.random.default_rng(seed)
    n = 500
    prev = rng.normal(size=n) * 3
    prev[rng.random(n) < 0.1] = 0.0
    curr = prev * (1 + rng.normal(0, 0.05, n))
    enc = encode_pair(prev, curr, NumarckConfig(error_bound=1e-3))[0]
    full = decode_iteration(prev, enc)
    start = data.draw(st.integers(0, n))
    stop = data.draw(st.integers(start, n))
    region = decode_region(prev[start:stop], enc, start, stop)
    np.testing.assert_array_equal(region, full[start:stop])
