"""Smoke tests: every example script must run to completion.

Each example carries its own internal assertions (error bounds verified,
anomalies detected, controllers firing), so "exit code 0" is a meaningful
end-to-end check of the public API.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 6, f"expected at least 6 examples, found {EXAMPLES}"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
