"""Gamma-law EOS consistency tests."""

import numpy as np
import pytest

from repro.simulations.flash import GammaLawEOS


@pytest.fixture
def eos() -> GammaLawEOS:
    return GammaLawEOS()


class TestConsistency:
    def test_pressure_eint_inverse(self, eos, rng):
        dens = rng.uniform(0.1, 10, 200)
        pres = rng.uniform(0.01, 100, 200)
        eint = eos.eint_from_pressure(dens, pres)
        np.testing.assert_allclose(eos.pressure(dens, eint), pres, rtol=1e-10)

    def test_gamma_ranges(self, eos, rng):
        dens = rng.uniform(0.1, 10, 500)
        eint = rng.uniform(0.0, 1000, 500)
        game = eos.game(dens, eint)
        gamc = eos.gamc(dens, eint)
        assert np.all(game > 1.0), "gamma must exceed 1 for a physical gas"
        assert np.all(game <= eos.gamma0)
        assert np.all(gamc >= game), "gamc includes the stiffening correction"
        assert np.all(gamc < eos.gamma0 + eos.gamma_drop)

    def test_gamma_decreases_with_temperature(self, eos):
        cold = eos.game(np.array([1.0]), np.array([0.1]))
        hot = eos.game(np.array([1.0]), np.array([100.0]))
        assert hot < cold

    def test_temperature_ideal_gas(self, eos):
        t = eos.temperature(np.array([2.0]), np.array([6.0]))
        assert t[0] == pytest.approx(3.0)  # p / (rho R), R = 1

    def test_sound_speed_positive_and_scales(self, eos):
        dens = np.array([1.0, 1.0])
        pres = np.array([1.0, 4.0])
        eint = eos.eint_from_pressure(dens, pres)
        cs = eos.sound_speed(dens, pres, eint)
        assert np.all(cs > 0)
        assert cs[1] > cs[0]

    def test_pressure_nonnegative_for_negative_eint(self, eos):
        """Floors: unphysical negative eint must not give negative pressure."""
        p = eos.pressure(np.array([1.0]), np.array([-5.0]))
        assert p[0] >= 0.0

    def test_zero_density_guarded(self, eos):
        eint = eos.eint_from_pressure(np.array([0.0]), np.array([1.0]))
        assert np.isfinite(eint[0])
