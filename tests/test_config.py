"""NumarckConfig validation tests."""

import pytest

from repro.core import ConfigError, NumarckConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = NumarckConfig()
        assert cfg.error_bound == 1e-3
        assert cfg.nbits == 8
        assert cfg.strategy == "clustering"
        assert cfg.reference == "original"

    @pytest.mark.parametrize("e", [0.0, -0.1, 1.0, 2.0])
    def test_bad_error_bound(self, e):
        with pytest.raises(ConfigError):
            NumarckConfig(error_bound=e)

    @pytest.mark.parametrize("b", [0, 17, -1])
    def test_bad_nbits(self, b):
        with pytest.raises(ConfigError):
            NumarckConfig(nbits=b)

    def test_nbits_must_be_int(self):
        with pytest.raises(ConfigError):
            NumarckConfig(nbits=8.0)

    def test_bad_strategy(self):
        with pytest.raises(ConfigError):
            NumarckConfig(strategy="magic")

    def test_bad_reference(self):
        with pytest.raises(ConfigError):
            NumarckConfig(reference="future")

    def test_bad_init(self):
        with pytest.raises(ConfigError):
            NumarckConfig(kmeans_init="zeros")

    def test_bad_max_iter(self):
        with pytest.raises(ConfigError):
            NumarckConfig(kmeans_max_iter=0)


class TestDerived:
    @pytest.mark.parametrize("b,expected", [(8, 255), (9, 511), (10, 1023), (1, 1)])
    def test_n_bins_reserved(self, b, expected):
        assert NumarckConfig(nbits=b).n_bins == expected

    def test_n_bins_unreserved(self):
        assert NumarckConfig(nbits=8, reserve_zero_bin=False).n_bins == 256

    def test_with_replaces_and_revalidates(self):
        cfg = NumarckConfig()
        cfg2 = cfg.with_(nbits=9, strategy="log_scale")
        assert cfg2.nbits == 9 and cfg2.strategy == "log_scale"
        assert cfg.nbits == 8, "original must be unchanged (frozen)"
        with pytest.raises(ConfigError):
            cfg.with_(error_bound=5.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            NumarckConfig().nbits = 9  # type: ignore[misc]
