"""Keep docs/API.md in sync with the code.

The reference is generated; this test regenerates it in memory and diffs
against the committed file, so a public-API change without a doc refresh
fails CI-style.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_api_docs_up_to_date():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        from gen_api_docs import generate
    finally:
        sys.path.pop(0)
    committed = (REPO / "docs" / "API.md").read_text()
    assert committed == generate(), (
        "docs/API.md is stale; run `python tools/gen_api_docs.py`"
    )


def test_api_docs_cover_all_packages():
    text = (REPO / "docs" / "API.md").read_text()
    for pkg in ("repro.core", "repro.kmeans", "repro.io", "repro.baselines",
                "repro.parallel", "repro.restart", "repro.analysis",
                "repro.resilience", "repro.simulations.flash",
                "repro.simulations.cmip"):
        assert f"## `{pkg}`" in text, f"{pkg} missing from API reference"


def test_public_symbols_documented():
    """Every top-level export appears in the reference."""
    import repro

    text = (REPO / "docs" / "API.md").read_text()
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        assert f"`{name}" in text, f"{name} missing from API reference"
