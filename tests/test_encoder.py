"""Encoder invariants -- the heart of the error-bound guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NumarckConfig, change_ratios, encode_pair

E = 1e-3


def _ratio_errors(prev, curr, enc):
    """Absolute ratio error per point, with exact points zeroed."""
    field = change_ratios(prev, curr)
    err = np.abs(enc.decoded_ratios().reshape(enc.shape) - field.ratios)
    err[field.forced_exact | enc.incompressible.reshape(enc.shape)] = 0.0
    return err


@pytest.mark.parametrize("strategy", ["equal_width", "log_scale", "clustering"])
class TestHardGuarantee:
    def test_all_points_within_bound(self, strategy, smooth_pair):
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=E, nbits=8, strategy=strategy)
        enc = encode_pair(prev, curr, cfg)[0]
        assert _ratio_errors(prev, curr, enc).max() < E

    def test_hostile_data_within_bound(self, strategy, hard_pair):
        prev, curr = hard_pair
        cfg = NumarckConfig(error_bound=E, nbits=8, strategy=strategy)
        enc = encode_pair(prev, curr, cfg)[0]
        assert _ratio_errors(prev, curr, enc).max() < E

    def test_exact_values_are_exact(self, strategy, hard_pair):
        prev, curr = hard_pair
        cfg = NumarckConfig(error_bound=E, strategy=strategy)
        enc = encode_pair(prev, curr, cfg)[0]
        np.testing.assert_array_equal(
            enc.exact_values, curr.ravel()[enc.incompressible]
        )


class TestLayout:
    def test_small_changes_get_index_zero(self, rng):
        prev = rng.uniform(1, 2, 1000)
        bumps = rng.normal(0, E / 10, 1000)  # all well below E
        curr = prev * (1 + bumps)
        enc = encode_pair(prev, curr, NumarckConfig(error_bound=E))[0]
        small = np.abs(bumps) < E
        assert np.all(enc.indices[small & ~enc.incompressible] == 0)

    def test_indices_fit_in_nbits(self, smooth_pair):
        prev, curr = smooth_pair
        for b in (2, 4, 8, 10):
            enc = encode_pair(prev, curr, NumarckConfig(nbits=b))[0]
            assert enc.indices.max() < (1 << b)
            assert enc.representatives.size <= (1 << b) - 1

    def test_zero_base_points_incompressible(self):
        prev = np.array([0.0, 1.0, 0.0, 2.0])
        curr = np.array([5.0, 1.001, 7.0, 2.002])
        enc = encode_pair(prev, curr, NumarckConfig(error_bound=E))[0]
        assert enc.incompressible[0] and enc.incompressible[2]
        np.testing.assert_array_equal(enc.exact_values, [5.0, 7.0])

    def test_nan_points_incompressible(self):
        prev = np.array([1.0, 1.0])
        curr = np.array([np.nan, 1.0005])
        enc = encode_pair(prev, curr, NumarckConfig(error_bound=E))[0]
        assert enc.incompressible[0]
        assert np.isnan(enc.exact_values[0])

    def test_unchanged_iteration_all_index_zero(self, rng):
        prev = rng.uniform(1, 2, 500)
        enc = encode_pair(prev, prev, NumarckConfig())[0]
        assert np.all(enc.indices == 0)
        assert enc.n_incompressible == 0
        assert enc.representatives.size == 0

    def test_shape_recorded(self, rng):
        prev = rng.uniform(1, 2, (10, 20))
        enc = encode_pair(prev, prev * 1.01, NumarckConfig())[0]
        assert enc.shape == (10, 20)
        assert enc.n_points == 200

    def test_incompressible_ratio_property(self):
        prev = np.array([0.0, 1.0, 1.0, 1.0])
        curr = np.array([1.0, 1.0, 1.0, 1.0])
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        assert enc.incompressible_ratio == pytest.approx(0.25)

    def test_default_config_used_when_none(self, smooth_pair):
        prev, curr = smooth_pair
        enc = encode_pair(prev, curr)[0]
        assert enc.nbits == 8
        assert enc.strategy == "clustering"


class TestZeroBinAblation:
    def test_unreserved_mode_uses_full_table(self, rng):
        prev = rng.uniform(1, 2, 2000)
        curr = prev * (1 + rng.normal(0, 0.005, 2000))
        cfg = NumarckConfig(nbits=4, reserve_zero_bin=False, strategy="clustering")
        enc = encode_pair(prev, curr, cfg)[0]
        assert not enc.zero_reserved
        assert enc.representatives.size <= 16  # full 2^B
        # The guarantee still holds.
        assert _ratio_errors(prev, curr, enc).max() < cfg.error_bound

    def test_unreserved_roundtrip_ratios(self, rng):
        prev = rng.uniform(1, 2, 500)
        curr = prev * 1.02
        cfg = NumarckConfig(reserve_zero_bin=False)
        enc = encode_pair(prev, curr, cfg)[0]
        np.testing.assert_allclose(enc.decoded_ratios(), 0.02, atol=cfg.error_bound)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    nbits=st.integers(2, 10),
    strategy=st.sampled_from(["equal_width", "log_scale", "clustering"]),
    log_e=st.floats(-4, -1),
)
def test_property_guarantee_universal(seed, nbits, strategy, log_e):
    """For arbitrary data and parameters: every point is either exact or
    its decoded ratio is within the bound -- the paper's core promise."""
    rng = np.random.default_rng(seed)
    e = 10.0**log_e
    prev = rng.normal(size=400) * 10.0 ** float(rng.integers(-2, 3))
    prev[rng.random(400) < 0.05] = 0.0
    curr = prev * (1 + rng.normal(0, 0.05, 400)) + rng.normal(0, 1e-6, 400)
    cfg = NumarckConfig(error_bound=e, nbits=nbits, strategy=strategy)
    enc = encode_pair(prev, curr, cfg)[0]
    assert _ratio_errors(prev, curr, enc).max() < e
    assert enc.indices.max(initial=0) < (1 << nbits)
    np.testing.assert_array_equal(enc.exact_values,
                                  curr.ravel()[enc.incompressible])
