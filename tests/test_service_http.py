"""Live-server tests for the compression service HTTP surface.

Every test boots a real ``ServiceServer`` on an ephemeral port and talks
to it with ``ServiceClient`` over actual sockets -- concurrency, chunked
transfer and error mapping are exercised end to end.
"""

import threading

import numpy as np
import pytest

from repro import Codec, NumarckConfig
from repro.errors import (
    ChainNotFoundError,
    ConfigError,
    FormatError,
    JobCancelledError,
    JobNotFoundError,
    NumarckError,
    QueueFullError,
    StateError,
)
from repro.io import chain_to_bytes, load_chain
from repro.service import ServiceClient, ServiceConfig, ServiceServer

CFG = {"error_bound": 1e-3, "nbits": 8, "strategy": "equal_width"}


def make_states(seed, n=2000, iterations=3):
    rng = np.random.default_rng(seed)
    states = [rng.uniform(1.0, 2.0, n)]
    for _ in range(iterations):
        states.append(states[-1] * (1.0 + rng.normal(0.0, 2e-3, n)))
    return states


@pytest.fixture
def server():
    with ServiceServer(ServiceConfig(workers=3, capacity=16)) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


class TestRoundTrip:
    def test_compress_download_decompress(self, client):
        states = make_states(0)
        for i, state in enumerate(states):
            status = client.compress("run-a", state, CFG if i == 0 else None)
            assert status["state"] == "done"
            assert status["progress"]["spans"] > 0
        blob = client.download_chain("run-a")
        decoded = client.decompress(blob, CFG)
        assert len(decoded) == len(states)
        np.testing.assert_array_equal(decoded[0], states[0])
        codec = Codec(config=NumarckConfig.from_dict(CFG))
        for got, want in zip(decoded, codec.compress_chain(states).iter_states()):
            np.testing.assert_array_equal(got, want)

    def test_container_byte_identical_to_direct_codec(self, client):
        states = make_states(1)
        for i, state in enumerate(states):
            client.compress("run-b", state, CFG if i == 0 else None)
        blob = client.download_chain("run-b")
        direct = chain_to_bytes(
            Codec(config=NumarckConfig.from_dict(CFG)).compress_chain(states))
        assert blob == direct

    def test_eight_concurrent_clients(self, server):
        """The headline acceptance: 8 clients, each its own chain, full
        round trips, every container byte-identical to a direct Codec."""
        n_clients = 8
        states_per_client = [make_states(100 + i, n=1500, iterations=3)
                             for i in range(n_clients)]
        results: dict[int, bytes] = {}
        errors: list[BaseException] = []

        def worker(idx):
            try:
                cl = ServiceClient(port=server.port)
                chain_id = f"tenant-{idx}"
                for j, state in enumerate(states_per_client[idx]):
                    cl.compress(chain_id, state,
                                CFG if j == 0 else None,
                                retries=50)
                blob = cl.download_chain(chain_id)
                decoded = cl.decompress(blob, CFG)
                for got, want in zip(
                        decoded,
                        Codec(config=NumarckConfig.from_dict(CFG))
                        .compress_chain(states_per_client[idx]).iter_states()):
                    np.testing.assert_array_equal(got, want)
                results[idx] = blob
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert len(results) == n_clients
        for idx, blob in results.items():
            direct = chain_to_bytes(
                Codec(config=NumarckConfig.from_dict(CFG))
                .compress_chain(states_per_client[idx]))
            assert blob == direct, f"client {idx} container diverged"

    def test_adaptive_model_reuse_across_jobs(self, client):
        cfg = dict(CFG, strategy="clustering", adaptive=True)
        states = make_states(2, iterations=4)
        for i, state in enumerate(states):
            status = client.compress("adapt", state, cfg if i == 0 else None)
            assert status["state"] == "done"
        stats = client.chain_stats("adapt")
        assert stats["iterations"] == len(states)
        reuse = stats["model_reuse"]
        assert reuse["encodes"] == len(states) - 1
        assert reuse["reuse_hits"] >= 1  # the hint carried across jobs


class TestBackpressure:
    def test_429_then_drain(self, server, client):
        q = server.service.queue
        q.pause()
        states = make_states(3, n=500, iterations=0)
        accepted = []
        for i in range(16):
            accepted.append(client.submit_compress(f"bp-{i}", states[0], CFG))
        with pytest.raises(QueueFullError) as exc_info:
            client.submit_compress("bp-overflow", states[0], CFG)
        assert exc_info.value.retry_after > 0
        assert client.health()["status"] == "degraded"
        q.resume()
        # Every accepted job completes: 429 never drops accepted work.
        for job in accepted:
            status = client.wait(job["id"], timeout=60)
            assert status["state"] == "done"
        assert client.health()["status"] == "ok"

    def test_client_retries_on_429(self, server, client):
        q = server.service.queue
        q.pause()
        state = make_states(4, n=300, iterations=0)[0]
        for i in range(16):
            client.submit_compress(f"rt-{i}", state, CFG)

        def unblock():
            q.resume()

        timer = threading.Timer(0.1, unblock)
        timer.start()
        try:
            status = client.compress("rt-late", state, CFG,
                                     retries=200, timeout=60)
            assert status["state"] == "done"
        finally:
            timer.cancel()
            q.resume()


class TestJobControl:
    def test_cancel_queued_job(self, server, client):
        server.service.queue.pause()
        state = make_states(5, n=300, iterations=0)[0]
        job = client.submit_compress("cancel-me", state, CFG)
        status = client.cancel(job["id"])
        assert status["state"] == "cancelled"
        with pytest.raises(JobCancelledError):
            client.result(job["id"])
        server.service.queue.resume()

    def test_cancel_finished_is_conflict(self, client):
        state = make_states(6, n=300, iterations=0)[0]
        job = client.submit_compress("c2", state, CFG)
        client.wait(job["id"], timeout=30)
        with pytest.raises(StateError):
            client.cancel(job["id"])

    def test_failed_job_error_surfaces(self, client):
        # A corrupt container fails the *job*; fetching the result
        # re-raises the mapped error.
        job = client.submit_decompress(b"not a container at all")
        status = client.wait(job["id"], timeout=30)
        assert status["state"] == "failed"
        assert status["error"]["type"] == "FormatError"
        with pytest.raises(FormatError):
            client.result(job["id"])

    def test_job_listing(self, client):
        state = make_states(7, n=300, iterations=0)[0]
        job = client.submit_compress("list-me", state, CFG)
        client.wait(job["id"], timeout=30)
        assert any(j["id"] == job["id"] for j in client.jobs())


class TestErrorMapping:
    def test_unknown_job_404(self, client):
        with pytest.raises(JobNotFoundError):
            client.status("job-12345")

    def test_unknown_chain_404(self, client):
        with pytest.raises(ChainNotFoundError):
            client.chain_stats("ghost")

    def test_bad_config_400(self, client):
        state = make_states(8, n=300, iterations=0)[0]
        with pytest.raises(ConfigError):
            client.submit_compress("bad-cfg", state,
                                   {"error_bound": 5.0})
        with pytest.raises(ConfigError):
            client.submit_compress("bad-key", state,
                                   {"no_such_knob": 1})

    def test_bad_chain_id_400(self, client):
        state = make_states(9, n=300, iterations=0)[0]
        with pytest.raises(ConfigError):
            client.submit_compress(".hidden", state, CFG)
        # A traversal-style id never reaches the registry at all: the
        # extra path segment falls off the route table.
        with pytest.raises(NumarckError):
            client.submit_compress("../escape", state, CFG)

    def test_bad_wire_body_422(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            conn.request("POST", "/v1/chains/wire-bad/compress",
                         body=b"garbage bytes")
            resp = conn.getresponse()
            assert resp.status == 422
        finally:
            conn.close()

    def test_duplicate_chain_409(self, client):
        client.create_chain("dup", CFG)
        with pytest.raises(StateError):
            client.create_chain("dup", CFG)

    def test_conflicting_chain_config_409(self, client):
        state = make_states(10, n=300, iterations=0)[0]
        client.compress("cfg-pin", state, CFG)
        with pytest.raises(StateError):
            client.submit_compress("cfg-pin", state,
                                   dict(CFG, nbits=10))

    def test_empty_chain_download_409(self, client):
        client.create_chain("empty", CFG)
        with pytest.raises(StateError):
            client.download_chain("empty")

    def test_unknown_route_404(self, client):
        with pytest.raises(NumarckError):
            client._json("GET", "/v1/nope")


class TestPersistence:
    def test_chains_survive_restart(self, tmp_path):
        states = make_states(11)
        store = tmp_path / "chains"
        cfg = ServiceConfig(workers=2, capacity=8, store_dir=str(store),
                            codec=NumarckConfig.from_dict(CFG))
        with ServiceServer(cfg) as srv:
            cl = ServiceClient(port=srv.port)
            for state in states:
                cl.compress("persisted", state)
            blob = cl.download_chain("persisted")

        # The on-disk container is readable on its own ...
        chain = load_chain(store / "persisted.nmk")
        assert len(chain) == len(states)

        # ... and a fresh server recovers it.
        with ServiceServer(cfg) as srv2:
            cl2 = ServiceClient(port=srv2.port)
            stats = cl2.chain_stats("persisted")
            assert stats["iterations"] == len(states)
            decoded = cl2.decompress(cl2.download_chain("persisted"))
            np.testing.assert_array_equal(decoded[0], states[0])

    def test_torn_tail_recovered(self, tmp_path):
        states = make_states(12)
        store = tmp_path / "chains"
        cfg = ServiceConfig(workers=2, capacity=8, store_dir=str(store),
                            codec=NumarckConfig.from_dict(CFG))
        with ServiceServer(cfg) as srv:
            cl = ServiceClient(port=srv.port)
            for state in states:
                cl.compress("torn", state)
        path = store / "torn.nmk"
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear mid-record
        with ServiceServer(cfg) as srv2:
            cl2 = ServiceClient(port=srv2.port)
            stats = cl2.chain_stats("torn")
            assert stats["iterations"] == len(states) - 1


class TestHealth:
    def test_health_shape(self, client):
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["queue"]["capacity"] == 16
        assert doc["queue"]["workers"] == 3

    def test_chain_listing(self, client):
        state = make_states(13, n=300, iterations=0)[0]
        client.compress("listed", state, CFG)
        ids = [c["id"] for c in client.chains()]
        assert "listed" in ids
