"""Trajectory archive tests."""

import numpy as np
import pytest

from repro.simulations import TrajectoryReader, save_trajectory
from repro.simulations.cmip import CmipSimulation


@pytest.fixture
def archive(tmp_path, rng):
    cps = []
    a, b = rng.uniform(1, 2, 300), rng.uniform(5, 6, (10, 30))
    for _ in range(4):
        cps.append({"a": a.copy(), "b": b.copy()})
        a = a * 1.001
        b = b * 0.999
    path = tmp_path / "traj.npz"
    save_trajectory(path, cps)
    return path, cps


class TestSave:
    def test_iteration_count_returned(self, archive):
        path, cps = archive
        assert TrajectoryReader(path).n_iterations == 4

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no iterations"):
            save_trajectory(tmp_path / "e.npz", [])

    def test_inconsistent_variables_rejected(self, tmp_path, rng):
        cps = [{"a": rng.normal(size=5)}, {"b": rng.normal(size=5)}]
        with pytest.raises(ValueError, match="do not match"):
            save_trajectory(tmp_path / "x.npz", cps)

    def test_bad_variable_name(self, tmp_path, rng):
        with pytest.raises(ValueError, match="may not contain"):
            save_trajectory(tmp_path / "x.npz", [{"a/b": rng.normal(size=5)}])

    def test_compressed_flag(self, tmp_path, rng):
        cps = [{"a": np.zeros(10_000)}] * 3
        save_trajectory(tmp_path / "raw.npz", cps)
        save_trajectory(tmp_path / "zip.npz", cps, compressed=True)
        assert (tmp_path / "zip.npz").stat().st_size < \
            (tmp_path / "raw.npz").stat().st_size


class TestReader:
    def test_iteration_access(self, archive):
        path, cps = archive
        with TrajectoryReader(path) as reader:
            for i, cp in enumerate(cps):
                got = reader.iteration(i)
                np.testing.assert_array_equal(got["a"], cp["a"])
                np.testing.assert_array_equal(got["b"], cp["b"])

    def test_variable_iteration_order(self, archive):
        path, cps = archive
        reader = TrajectoryReader(path)
        for i, arr in enumerate(reader.variable("a")):
            np.testing.assert_array_equal(arr, cps[i]["a"])

    def test_pairs(self, archive):
        path, cps = archive
        reader = TrajectoryReader(path)
        pairs = list(reader.pairs("b"))
        assert len(pairs) == 3
        np.testing.assert_array_equal(pairs[0][0], cps[0]["b"])
        np.testing.assert_array_equal(pairs[-1][1], cps[-1]["b"])

    def test_guards(self, archive):
        path, _ = archive
        reader = TrajectoryReader(path)
        with pytest.raises(IndexError):
            reader.iteration(4)
        with pytest.raises(KeyError):
            list(reader.variable("nope"))

    def test_not_a_trajectory(self, tmp_path, rng):
        np.savez(tmp_path / "plain.npz", x=rng.normal(size=3))
        with pytest.raises(ValueError, match="not a trajectory"):
            TrajectoryReader(tmp_path / "plain.npz")


class TestIntegration:
    def test_archive_compress_workflow(self, tmp_path):
        """Paper workflow: generate -> archive -> compress from the archive."""
        from repro import Codec
        from repro.core import NumarckConfig

        sim = CmipSimulation("rlus", nlat=20, nlon=32, seed=6)
        path = tmp_path / "rlus.npz"
        save_trajectory(path, sim.run(4))

        comp = Codec(config=NumarckConfig(error_bound=1e-3))
        reader = TrajectoryReader(path)
        for prev, curr in reader.pairs("rlus"):
            _, _, stats = comp.roundtrip(prev, curr)
            assert stats.max_error < 1e-3

    def test_chunk_stream_feeds_streaming_encoder(self, tmp_path, rng):
        from repro import Codec
        from repro.core import NumarckConfig, decode_stream

        prev = rng.uniform(1, 2, 4000)
        curr = prev * (1 + rng.normal(0, 0.002, 4000))
        path = tmp_path / "t.npz"
        save_trajectory(path, [{"v": prev}, {"v": curr}])
        reader = TrajectoryReader(path)
        enc = Codec(config=NumarckConfig(error_bound=1e-3), chunk_size=512)
        streamed = enc.compress_stream(reader.chunk_stream("v", 0, 512),
                              reader.chunk_stream("v", 1, 512))
        out = np.concatenate(list(decode_stream(
            reader.chunk_stream("v", 0, 512)(), streamed)))
        rel = np.abs(out / curr - 1)
        assert rel.max() < 2e-3
