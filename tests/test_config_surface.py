"""The keyword-only config/Codec surface and its dict round trip."""

import warnings

import numpy as np
import pytest

from repro import Codec, NumarckConfig
from repro.errors import ConfigError

shims = pytest.mark.shims


class TestDictRoundTrip:
    def test_to_dict_from_dict(self):
        cfg = NumarckConfig(error_bound=5e-4, nbits=10,
                            strategy="log_scale", adaptive=True)
        data = cfg.to_dict()
        assert data["error_bound"] == 5e-4
        assert NumarckConfig.from_dict(data) == cfg

    def test_to_dict_is_json_compatible(self):
        import json

        round_tripped = json.loads(json.dumps(NumarckConfig().to_dict()))
        assert NumarckConfig.from_dict(round_tripped) == NumarckConfig()

    def test_partial_dict_uses_defaults(self):
        cfg = NumarckConfig.from_dict({"nbits": 6})
        assert cfg.nbits == 6
        assert cfg.error_bound == NumarckConfig().error_bound

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="no_such_field"):
            NumarckConfig.from_dict({"no_such_field": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError):
            NumarckConfig.from_dict([("nbits", 8)])

    def test_values_still_validated(self):
        with pytest.raises(ConfigError):
            NumarckConfig.from_dict({"error_bound": 2.0})


class TestKeywordOnly:
    def test_keyword_construction_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            NumarckConfig(error_bound=1e-3, nbits=8)
            Codec(config=NumarckConfig())
            Codec()

    @shims
    def test_positional_config_warns(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            cfg = NumarckConfig(1e-3, 8)
        assert cfg.error_bound == 1e-3 and cfg.nbits == 8

    @shims
    def test_positional_codec_warns(self):
        cfg = NumarckConfig(error_bound=1e-3)
        with pytest.warns(DeprecationWarning, match="Codec"):
            codec = Codec(cfg)
        assert codec.config is cfg

    @shims
    def test_positional_codec_still_works(self):
        rng = np.random.default_rng(0)
        prev = rng.uniform(1, 2, 500)
        curr = prev * (1 + rng.normal(0, 1e-3, 500))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            codec = Codec(NumarckConfig(error_bound=1e-3))
        out = codec.decompress(prev, codec.compress(prev, curr))
        assert np.all(np.abs(out / prev - curr / prev) < 1e-3 + 1e-12)

    @shims
    def test_positional_and_keyword_conflict(self):
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            NumarckConfig(1e-3, error_bound=1e-3)
        with pytest.raises(TypeError):
            Codec(NumarckConfig(), config=NumarckConfig())

    @shims
    def test_too_many_positionals(self):
        with pytest.raises(TypeError):
            Codec(NumarckConfig(), NumarckConfig())

    def test_replace_does_not_warn(self):
        cfg = NumarckConfig(error_bound=1e-3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cfg.with_(nbits=4).nbits == 4
