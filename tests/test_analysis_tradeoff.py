"""Rate-distortion sweep tests."""

import numpy as np
import pytest

from repro.analysis import TradeoffPoint, pareto_frontier, sweep


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(21)
    prev = rng.uniform(1, 2, 6000)
    curr = prev * (1 + rng.normal(0, 0.004, 6000))
    return sweep(prev, curr, error_bounds=(5e-4, 1e-3, 5e-3),
                 nbits=(6, 8, 10))


class TestSweep:
    def test_grid_size(self, points):
        assert len(points) == 9

    def test_guarantee_at_every_configuration(self, points):
        for p in points:
            assert p.max_error < p.error_bound
            assert p.mean_error <= p.max_error

    def test_larger_e_never_worse_ratio(self, points):
        """At fixed B, loosening the tolerance cannot shrink the ratio."""
        for b in (6, 8, 10):
            by_e = sorted((p for p in points if p.nbits == b),
                          key=lambda p: p.error_bound)
            ratios = [p.ratio for p in by_e]
            assert all(r2 >= r1 - 1e-9 for r1, r2 in zip(ratios, ratios[1:]))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sweep(rng.normal(size=5), rng.normal(size=5), error_bounds=())


class TestPareto:
    def test_frontier_subset_and_sorted(self, points):
        frontier = pareto_frontier(points)
        assert 1 <= len(frontier) <= len(points)
        errs = [p.mean_error for p in frontier]
        assert errs == sorted(errs)

    def test_no_dominated_points_survive(self, points):
        frontier = pareto_frontier(points)
        for p in frontier:
            assert not any(q.dominates(p) for q in points)

    def test_dominance_semantics(self):
        a = TradeoffPoint(1e-3, 8, ratio=80.0, mean_error=1e-4,
                          max_error=1e-3, incompressible_ratio=0.0)
        b = TradeoffPoint(1e-3, 8, ratio=70.0, mean_error=2e-4,
                          max_error=1e-3, incompressible_ratio=0.1)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([])
