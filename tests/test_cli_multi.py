"""CLI multi-variable (.npz) workflow tests."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def npz_checkpoints(tmp_path, rng):
    paths = []
    a = rng.uniform(1.0, 2.0, 2000)
    b = rng.uniform(100.0, 200.0, 2000)
    for i in range(3):
        p = tmp_path / f"step{i}.npz"
        np.savez(p, dens=a, pres=b)
        paths.append(str(p))
        a = a * (1 + rng.normal(0, 0.002, 2000))
        b = b * (1 + rng.normal(0, 0.002, 2000))
    return paths


class TestMultiWorkflow:
    def test_init_append_extract(self, tmp_path, npz_checkpoints):
        chain = str(tmp_path / "m.nmk")
        assert main(["init-multi", chain, npz_checkpoints[0],
                     "--error-bound", "1e-3"]) == 0
        assert main(["append-multi", chain, npz_checkpoints[1]]) == 0
        assert main(["append-multi", chain, npz_checkpoints[2]]) == 0
        out = str(tmp_path / "restart.npz")
        assert main(["extract-multi", chain, "-o", out]) == 0

        with np.load(out) as decoded, np.load(npz_checkpoints[2]) as truth:
            assert set(decoded.files) == {"dens", "pres"}
            for v in ("dens", "pres"):
                rel = np.abs(decoded[v] / truth[v] - 1)
                assert rel.max() < 5e-3

    def test_extract_full_checkpoint_exact(self, tmp_path, npz_checkpoints):
        chain = str(tmp_path / "m.nmk")
        main(["init-multi", chain, npz_checkpoints[0]])
        main(["append-multi", chain, npz_checkpoints[1]])
        out = str(tmp_path / "it0.npz")
        assert main(["extract-multi", chain, "-i", "0", "-o", out]) == 0
        with np.load(out) as decoded, np.load(npz_checkpoints[0]) as truth:
            for v in ("dens", "pres"):
                np.testing.assert_array_equal(decoded[v], truth[v])

    def test_inspect_multi(self, tmp_path, npz_checkpoints, capsys):
        chain = str(tmp_path / "m.nmk")
        main(["init-multi", chain, npz_checkpoints[0]])
        main(["append-multi", chain, npz_checkpoints[1]])
        capsys.readouterr()
        assert main(["inspect", chain]) == 0
        out = capsys.readouterr().out
        assert "multi-variable checkpoint" in out
        assert "dens" in out and "pres" in out
        assert out.count("delta 1") == 2

    def test_append_missing_chain(self, tmp_path, npz_checkpoints, capsys):
        rc = main(["append-multi", str(tmp_path / "nope.nmk"),
                   npz_checkpoints[0]])
        assert rc == 2

    def test_config_inherited(self, tmp_path, npz_checkpoints, capsys):
        chain = str(tmp_path / "m.nmk")
        main(["init-multi", chain, npz_checkpoints[0]])
        main(["append-multi", chain, npz_checkpoints[1],
              "--nbits", "10", "--strategy", "equal_width"])
        main(["append-multi", chain, npz_checkpoints[2]])
        capsys.readouterr()
        main(["inspect", chain])
        out = capsys.readouterr().out
        assert out.count("B=10") == 4  # 2 variables x 2 deltas
        assert out.count("equal_width") == 4

    def test_empty_npz_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.npz"
        np.savez(empty)
        rc = main(["init-multi", str(tmp_path / "c.nmk"), str(empty)])
        assert rc == 2
