"""Analytical chain-error bounds, verified against measured chains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CheckpointChain, NumarckConfig
from repro.core.theory import (
    closed_loop_error_bound,
    max_chain_depth,
    open_loop_error_bound,
)


class TestFormulas:
    def test_zero_depth(self):
        assert open_loop_error_bound(1e-3, 0) == 0.0

    def test_single_step_equals_e(self):
        assert open_loop_error_bound(1e-3, 1) == pytest.approx(1e-3)

    def test_linear_regime(self):
        assert open_loop_error_bound(1e-4, 10) == pytest.approx(1e-3, rel=1e-2)

    def test_monotone_in_depth(self):
        vals = [open_loop_error_bound(1e-3, d) for d in range(10)]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_margin_inflates_bound(self):
        assert open_loop_error_bound(1e-3, 5, margin=0.5) > \
            open_loop_error_bound(1e-3, 5, margin=1.0)

    def test_closed_loop_depth_free(self):
        assert closed_loop_error_bound(1e-3) == pytest.approx(1e-3)

    def test_max_depth_inverse(self):
        e, target = 1e-3, 1e-2
        d = max_chain_depth(e, target)
        assert open_loop_error_bound(e, d) <= target
        assert open_loop_error_bound(e, d + 1) > target

    def test_validation(self):
        with pytest.raises(ValueError):
            open_loop_error_bound(0.0, 1)
        with pytest.raises(ValueError):
            open_loop_error_bound(1e-3, -1)
        with pytest.raises(ValueError):
            open_loop_error_bound(1e-3, 1, margin=0)
        with pytest.raises(ValueError):
            max_chain_depth(1e-3, 0.0)


class TestAgainstMeasuredChains:
    @pytest.mark.parametrize("reference", ["original", "reconstructed"])
    def test_bound_holds_on_random_chains(self, rng, reference):
        e = 1e-3
        depth = 7
        data = [rng.uniform(1.0, 2.0, 2000)]
        for _ in range(depth):
            data.append(data[-1] * (1 + rng.normal(0, 0.003, 2000)))
        cfg = NumarckConfig(error_bound=e, reference=reference)
        chain = CheckpointChain(data[0], cfg)
        chain.extend(data[1:])
        measured = float(np.max(np.abs(chain.reconstruct() / data[-1] - 1)))
        if reference == "original":
            bound = open_loop_error_bound(e, depth)
        else:
            bound = closed_loop_error_bound(e)
        # Tiny float slack: the guarantee itself is strict-inequality.
        assert measured <= bound * (1 + 1e-9) + 1e-15

    def test_bound_is_not_vacuous(self, rng):
        """The open-loop bound should be within ~2 orders of the worst
        measured error on adversarially wiggly chains, not astronomically
        loose."""
        e = 5e-3
        depth = 6
        data = [rng.uniform(1.0, 2.0, 4000)]
        for _ in range(depth):
            # Changes just beyond the bound so every point is binned, with
            # coarse precision to maximise per-step approximation error.
            data.append(data[-1] * (1 + rng.choice([-1, 1], 4000) *
                                    rng.uniform(0.02, 0.06, 4000)))
        cfg = NumarckConfig(error_bound=e, nbits=3, strategy="equal_width")
        chain = CheckpointChain(data[0], cfg)
        chain.extend(data[1:])
        measured = float(np.max(np.abs(chain.reconstruct() / data[-1] - 1)))
        bound = open_loop_error_bound(e, depth, margin=0.9)
        assert measured <= bound * (1 + 1e-9)
        assert measured > bound / 300.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31), depth=st.integers(1, 6),
       log_e=st.floats(-4, -2))
def test_property_measured_within_bound(seed, depth, log_e):
    rng = np.random.default_rng(seed)
    e = 10.0**log_e
    data = [rng.uniform(0.5, 3.0, 300)]
    margin = np.inf
    for _ in range(depth):
        ratios = rng.normal(0, 2 * e, 300)
        margin = min(margin, float(np.min(np.abs(1 + ratios))))
        data.append(data[-1] * (1 + ratios))
    chain = CheckpointChain(data[0], NumarckConfig(error_bound=e))
    chain.extend(data[1:])
    measured = float(np.max(np.abs(chain.reconstruct() / data[-1] - 1)))
    bound = open_loop_error_bound(e, depth, margin=margin)
    assert measured <= bound * (1 + 1e-9) + 1e-15
