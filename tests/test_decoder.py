"""Decoder tests: reconstruction semantics."""

import numpy as np
import pytest

from repro.core import (
    FormatError,
    NumarckConfig,
    decode_iteration,
    encode_iteration,
)


class TestDecode:
    def test_value_level_guarantee(self, smooth_pair):
        """decoded = prev * (1 + ratio') with |ratio' - ratio| < E implies
        |decoded - curr| <= E * |prev| for compressible points."""
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=1e-3)
        enc = encode_iteration(prev, curr, cfg)
        out = decode_iteration(prev, enc)
        compressible = ~enc.incompressible
        bound = cfg.error_bound * np.abs(prev[compressible])
        assert np.all(np.abs(out[compressible] - curr[compressible]) <= bound + 1e-15)

    def test_incompressible_bit_exact(self, hard_pair):
        prev, curr = hard_pair
        enc = encode_iteration(prev, curr, NumarckConfig())
        out = decode_iteration(prev, enc)
        np.testing.assert_array_equal(out[enc.incompressible],
                                      curr[enc.incompressible])

    def test_unchanged_roundtrip_identity(self, rng):
        prev = rng.uniform(1, 2, 300)
        enc = encode_iteration(prev, prev, NumarckConfig())
        np.testing.assert_array_equal(decode_iteration(prev, enc), prev)

    def test_shape_restored(self, rng):
        prev = rng.uniform(1, 2, (6, 7))
        curr = prev * 1.01
        enc = encode_iteration(prev, curr, NumarckConfig())
        assert decode_iteration(prev, enc).shape == (6, 7)

    def test_wrong_reference_shape_raises(self, rng):
        prev = rng.uniform(1, 2, 100)
        enc = encode_iteration(prev, prev * 1.01, NumarckConfig())
        with pytest.raises(FormatError, match="shape"):
            decode_iteration(np.zeros(50), enc)

    def test_nan_values_survive_roundtrip(self):
        prev = np.array([1.0, 1.0, 1.0])
        curr = np.array([np.nan, np.inf, 1.0001])
        enc = encode_iteration(prev, curr, NumarckConfig())
        out = decode_iteration(prev, enc)
        assert np.isnan(out[0]) and np.isinf(out[1])

    @pytest.mark.parametrize("strategy", ["equal_width", "log_scale", "clustering"])
    def test_deterministic(self, strategy, smooth_pair):
        prev, curr = smooth_pair
        cfg = NumarckConfig(strategy=strategy)
        a = decode_iteration(prev, encode_iteration(prev, curr, cfg))
        b = decode_iteration(prev, encode_iteration(prev, curr, cfg))
        np.testing.assert_array_equal(a, b)
