"""Decoder tests: reconstruction semantics."""

import numpy as np
import pytest

from repro.core import (
    FormatError,
    NumarckConfig,
    decode_iteration,
    encode_pair,
)


class TestDecode:
    def test_value_level_guarantee(self, smooth_pair):
        """decoded = prev * (1 + ratio') with |ratio' - ratio| < E implies
        |decoded - curr| <= E * |prev| for compressible points."""
        prev, curr = smooth_pair
        cfg = NumarckConfig(error_bound=1e-3)
        enc = encode_pair(prev, curr, cfg)[0]
        out = decode_iteration(prev, enc)
        compressible = ~enc.incompressible
        bound = cfg.error_bound * np.abs(prev[compressible])
        assert np.all(np.abs(out[compressible] - curr[compressible]) <= bound + 1e-15)

    def test_incompressible_bit_exact(self, hard_pair):
        prev, curr = hard_pair
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        out = decode_iteration(prev, enc)
        np.testing.assert_array_equal(out[enc.incompressible],
                                      curr[enc.incompressible])

    def test_unchanged_roundtrip_identity(self, rng):
        prev = rng.uniform(1, 2, 300)
        enc = encode_pair(prev, prev, NumarckConfig())[0]
        np.testing.assert_array_equal(decode_iteration(prev, enc), prev)

    def test_shape_restored(self, rng):
        prev = rng.uniform(1, 2, (6, 7))
        curr = prev * 1.01
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        assert decode_iteration(prev, enc).shape == (6, 7)

    def test_wrong_reference_shape_raises(self, rng):
        prev = rng.uniform(1, 2, 100)
        enc = encode_pair(prev, prev * 1.01, NumarckConfig())[0]
        with pytest.raises(FormatError, match="shape"):
            decode_iteration(np.zeros(50), enc)

    def test_nan_values_survive_roundtrip(self):
        prev = np.array([1.0, 1.0, 1.0])
        curr = np.array([np.nan, np.inf, 1.0001])
        enc = encode_pair(prev, curr, NumarckConfig())[0]
        out = decode_iteration(prev, enc)
        assert np.isnan(out[0]) and np.isinf(out[1])

    @pytest.mark.parametrize("strategy", ["equal_width", "log_scale", "clustering"])
    def test_deterministic(self, strategy, smooth_pair):
        prev, curr = smooth_pair
        cfg = NumarckConfig(strategy=strategy)
        a = decode_iteration(prev, encode_pair(prev, curr, cfg)[0])
        b = decode_iteration(prev, encode_pair(prev, curr, cfg)[0])
        np.testing.assert_array_equal(a, b)
