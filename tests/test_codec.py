"""Codec facade and deprecated-shim equivalence tests.

Every deprecated entry point must (a) warn exactly once per call/
construction and (b) produce results identical to its Codec replacement.
Shim tests carry the ``shims`` marker so the deprecation-strict CI job
(`-W error::DeprecationWarning`) can exclude them.
"""

import warnings

import numpy as np
import pytest

from repro import Codec
from repro.core import NumarckConfig
from repro.core.encoder import encode_pair

shims = pytest.mark.shims


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


@pytest.fixture
def pair(rng):
    prev = rng.uniform(1.0, 2.0, size=4000)
    curr = prev * (1.0 + rng.normal(0.0, 0.003, size=4000))
    return prev, curr


def _assert_same_encoding(a, b):
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.representatives, b.representatives)
    np.testing.assert_array_equal(a.incompressible, b.incompressible)
    np.testing.assert_array_equal(a.exact_values, b.exact_values)
    assert a.nbits == b.nbits and a.strategy == b.strategy


class TestCodecFacade:
    def test_compress_chain(self, pair):
        prev, curr = pair
        chain = Codec(config=NumarckConfig(error_bound=1e-3)).compress_chain(
            [prev, curr])
        assert len(chain) == 2
        np.testing.assert_allclose(chain.reconstruct(1), curr,
                                   rtol=3e-3, atol=0)

    def test_compress_chain_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            Codec().compress_chain([])

    def test_reuse_stats_none_without_adaptive(self, pair):
        codec = Codec(config=NumarckConfig())
        codec.compress(*pair)
        assert codec.reuse_stats is None
        codec.reset()  # no-op without adaptive state

    def test_stream_matches_one_shot_arrays(self, pair):
        prev, curr = pair
        cfg = NumarckConfig(error_bound=1e-3)
        streamed = Codec(config=cfg, chunk_size=512).compress_stream_arrays(
            prev, curr)
        assert streamed.n_points == prev.size
        out = np.concatenate(list(Codec(config=cfg).decompress_stream(
            iter(np.array_split(prev, len(streamed.chunks))), streamed)))
        assert np.max(np.abs(out / prev - curr / prev)) < 1e-3 + 1e-12


@shims
class TestNumarckCompressorShim:
    def test_warns_exactly_once_and_matches_codec(self, pair):
        from repro.core import NumarckCompressor

        prev, curr = pair
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            comp = NumarckCompressor(NumarckConfig(error_bound=1e-3))
        assert len(_deprecations(caught)) == 1

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            enc = comp.compress(prev, curr)
        assert len(_deprecations(caught)) == 0  # only __init__ warns

        _assert_same_encoding(
            enc, Codec(config=NumarckConfig(error_bound=1e-3)).compress(prev, curr))

    def test_is_a_codec(self):
        from repro.core import NumarckCompressor

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert isinstance(NumarckCompressor(), Codec)


@shims
class TestEncodeIterationShim:
    def test_warns_exactly_once_and_matches_encode_pair(self, pair):
        from repro.core import encode_iteration

        prev, curr = pair
        cfg = NumarckConfig(error_bound=1e-3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            enc = encode_iteration(prev, curr, cfg)
        assert len(_deprecations(caught)) == 1
        _assert_same_encoding(enc, encode_pair(prev, curr, cfg)[0])


@shims
class TestStreamingEncoderShim:
    def test_warns_exactly_once_and_matches_codec(self, pair):
        from repro.core import StreamingEncoder

        prev, curr = pair
        cfg = NumarckConfig(error_bound=1e-3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            enc = StreamingEncoder(cfg, chunk_size=512)
        assert len(_deprecations(caught)) == 1

        old = enc.encode_arrays(prev, curr)
        new = Codec(config=cfg, chunk_size=512).compress_stream_arrays(prev, curr)
        assert old.n_points == new.n_points
        np.testing.assert_array_equal(old.representatives,
                                      new.representatives)
        for a, b in zip(old.chunks, new.chunks):
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.exact_values, b.exact_values)


@shims
class TestGetStrategyShim:
    def test_warns_exactly_once_and_matches_from_config(self):
        from repro.core.strategies import ClusteringStrategy, get_strategy
        from repro.core.strategies.base import ApproximationStrategy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            s = get_strategy("clustering", init="random", max_iter=3)
        assert len(_deprecations(caught)) == 1
        assert isinstance(s, ClusteringStrategy)

        cfg = NumarckConfig(strategy="clustering", kmeans_init="random",
                            kmeans_max_iter=3)
        t = ApproximationStrategy.from_config(cfg)
        assert (s.init, s.max_iter) == (t.init, t.max_iter)

    def test_unknown_name_still_raises(self):
        from repro.core.strategies import get_strategy

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ValueError, match="unknown strategy"):
                get_strategy("nope")
