"""Shared fixtures: deterministic RNG and small simulation instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulations.cmip import CmipSimulation
from repro.simulations.flash import FlashSimulation


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_pair(rng) -> tuple[np.ndarray, np.ndarray]:
    """A NUMARCK-friendly iteration pair: small concentrated changes."""
    prev = rng.uniform(1.0, 2.0, size=8000)
    curr = prev * (1.0 + rng.normal(0.0, 0.002, size=8000))
    return prev, curr


@pytest.fixture
def hard_pair(rng) -> tuple[np.ndarray, np.ndarray]:
    """A hostile pair: zeros, sign flips, wide multiplicative changes."""
    prev = rng.normal(0.0, 1.0, size=4000)
    prev[::17] = 0.0
    curr = prev * (1.0 + rng.normal(0.0, 0.2, size=4000))
    curr[::29] = -curr[::29]
    return prev, curr


@pytest.fixture(scope="session")
def flash_checkpoints() -> list[dict[str, np.ndarray]]:
    """Seven checkpoints of a small Sedov run (shared across tests)."""
    sim = FlashSimulation("sedov", ny=32, nx=32, steps_per_checkpoint=2)
    return list(sim.run(6))


@pytest.fixture(scope="session")
def cmip_rlus_checkpoints() -> list[np.ndarray]:
    """Six daily rlus iterations on a reduced grid."""
    sim = CmipSimulation("rlus", nlat=30, nlon=48, seed=11)
    return [cp["rlus"] for cp in sim.run(5)]
