"""FlashSimulation checkpoint interface tests."""

import numpy as np
import pytest

from repro.simulations.flash import FLASH_VARIABLES, FlashSimulation


class TestCheckpoints:
    def test_all_ten_variables(self, flash_checkpoints):
        for cp in flash_checkpoints:
            assert set(cp) == set(FLASH_VARIABLES)
            for v in FLASH_VARIABLES:
                assert cp[v].shape == (32, 32)
                assert cp[v].dtype == np.float64

    def test_fields_evolve(self, flash_checkpoints):
        a, b = flash_checkpoints[0], flash_checkpoints[-1]
        assert not np.array_equal(a["dens"], b["dens"])
        assert not np.array_equal(a["pres"], b["pres"])

    def test_changes_concentrated(self, flash_checkpoints):
        """The paper's premise on FLASH data: most points change little
        between consecutive checkpoints."""
        a, b = flash_checkpoints[2], flash_checkpoints[3]
        r = np.abs(b["dens"] / a["dens"] - 1)
        assert np.mean(r < 0.005) > 0.5

    def test_run_yields_n_plus_one(self):
        sim = FlashSimulation("sod", ny=16, nx=16, steps_per_checkpoint=1)
        assert len(list(sim.run(3))) == 4

    def test_checkpoints_are_copies(self):
        sim = FlashSimulation("sod", ny=16, nx=16)
        cp = sim.checkpoint()
        cp["dens"][:] = -1
        assert sim.checkpoint()["dens"].min() > 0

    def test_unknown_problem(self):
        with pytest.raises(ValueError, match="unknown problem"):
            FlashSimulation("warp_drive")

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            FlashSimulation("sod", steps_per_checkpoint=0)

    def test_grid_indivisible_rejected(self):
        with pytest.raises(ValueError):
            FlashSimulation("sod", ny=30, nx=30)


class TestRestore:
    def test_restore_exact_state_continues_identically(self):
        sim_a = FlashSimulation("sedov", ny=32, nx=32, steps_per_checkpoint=2)
        sim_a.advance()
        cp = sim_a.checkpoint()

        sim_b = FlashSimulation("sedov", ny=32, nx=32, steps_per_checkpoint=2)
        sim_b.restore(cp)
        sim_a.advance()
        sim_b.advance()
        for v in ("dens", "velx", "pres"):
            np.testing.assert_allclose(sim_b.checkpoint()[v],
                                       sim_a.checkpoint()[v], rtol=1e-7)

    def test_restore_missing_variable(self):
        sim = FlashSimulation("sod", ny=16, nx=16)
        with pytest.raises(KeyError, match="missing"):
            sim.restore({"dens": np.ones((16, 16))})


class TestRankCheckpoint:
    def test_shapes_and_content(self):
        sim = FlashSimulation("sod", ny=32, nx=32, block=16, n_ranks=2)
        rank0 = sim.rank_checkpoint(0)
        rank1 = sim.rank_checkpoint(1)
        assert rank0["dens"].shape == (2, 16, 16)
        assert rank1["dens"].shape == (2, 16, 16)
        # Together the ranks hold the full field.
        full = sim.checkpoint()["dens"]
        got = np.concatenate([rank0["dens"], rank1["dens"]]).sum()
        assert got == pytest.approx(full.sum())
