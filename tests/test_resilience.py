"""Checkpoint-economics model tests."""

import numpy as np
import pytest

from repro.resilience import (
    CheckpointCostModel,
    daly_interval,
    expected_makespan,
    expected_waste,
    simulate_makespan,
    young_interval,
)


class TestCostModel:
    def test_compression_shrinks_times(self):
        raw = CheckpointCostModel(data_bytes=1e12, write_bandwidth=1e10)
        comp = CheckpointCostModel(data_bytes=1e12, write_bandwidth=1e10,
                                   compression_ratio=85.0)
        assert comp.checkpoint_time == pytest.approx(raw.checkpoint_time * 0.15)
        assert comp.restart_time == pytest.approx(raw.restart_time * 0.15)

    def test_overheads_added(self):
        m = CheckpointCostModel(1e9, 1e9, compression_ratio=50.0,
                                compress_overhead=2.0, decompress_overhead=1.0)
        assert m.checkpoint_time == pytest.approx(0.5 + 2.0)
        assert m.restart_time == pytest.approx(0.5 + 1.0)

    def test_separate_read_bandwidth(self):
        m = CheckpointCostModel(1e9, 1e9, read_bandwidth=2e9)
        assert m.restart_time == pytest.approx(m.checkpoint_time / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointCostModel(0, 1e9)
        with pytest.raises(ValueError):
            CheckpointCostModel(1e9, 0)
        with pytest.raises(ValueError):
            CheckpointCostModel(1e9, 1e9, compression_ratio=100.0)
        with pytest.raises(ValueError):
            CheckpointCostModel(1e9, 1e9, compress_overhead=-1)


class TestIntervals:
    def test_young_formula(self):
        assert young_interval(50.0, 10_000.0) == pytest.approx(1000.0)

    def test_daly_below_young(self):
        assert daly_interval(50.0, 10_000.0) < young_interval(50.0, 10_000.0)

    def test_daly_floor(self):
        # Pathological: C comparable to M -> floor at C.
        assert daly_interval(100.0, 10.0) == pytest.approx(100.0)

    def test_cheaper_checkpoints_mean_shorter_interval(self):
        """Compression lowers C, so the optimum checkpoints *more often* --
        and each checkpoint protects more recent work."""
        assert young_interval(7.5, 1e4) < young_interval(50.0, 1e4)

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0, 100)
        with pytest.raises(ValueError):
            daly_interval(10, 0)


class TestWasteAndMakespan:
    def test_young_interval_minimises_waste(self):
        c, r, m = 50.0, 50.0, 10_000.0
        t_star = young_interval(c, m)
        w_star = expected_waste(t_star, c, r, m)
        for t in (t_star / 3, t_star * 3):
            assert expected_waste(t, c, r, m) > w_star

    def test_makespan_exceeds_work(self):
        assert expected_makespan(1e5, 1000, 50, 50, 1e4) > 1e5

    def test_infinite_when_waste_saturates(self):
        assert expected_makespan(1e5, 10.0, 50.0, 50.0, 20.0) == float("inf")

    def test_compression_reduces_makespan(self):
        """The headline: an 85 % ratio cuts the waste term root(C) ~ 2.6x."""
        m = 3600.0
        work = 1e6
        raw_c = 50.0
        comp_c = raw_c * 0.15
        raw = expected_makespan(work, young_interval(raw_c, m), raw_c, raw_c, m)
        comp = expected_makespan(work, young_interval(comp_c, m), comp_c,
                                 comp_c, m)
        assert comp < raw
        # Waste scales ~ sqrt(C): 85 % compression -> ~2.6x less waste.
        raw_waste = raw / work - 1
        comp_waste = comp / work - 1
        assert raw_waste / comp_waste > 2.0


class TestSimulator:
    def test_no_failures_limit(self):
        """With MTBF >> work the simulation is just work + checkpoints."""
        got = simulate_makespan(work=1000.0, interval=100.0,
                                checkpoint_time=5.0, restart_time=5.0,
                                mtbf=1e12, n_runs=2)
        assert got == pytest.approx(1000.0 + 9 * 5.0)  # last segment unwritten

    def test_matches_analytic_first_order(self):
        """In the T << M regime the simulator and the analytic model agree
        to within ~15 %."""
        c, r, m = 20.0, 20.0, 50_000.0
        t = young_interval(c, m)
        work = 2e5
        analytic = expected_makespan(work, t, c, r, m)
        sim = simulate_makespan(work, t, c, r, m,
                                rng=np.random.default_rng(7), n_runs=48)
        assert sim == pytest.approx(analytic, rel=0.15)

    def test_more_failures_longer_runs(self):
        kw = dict(work=1e4, interval=500.0, checkpoint_time=10.0,
                  restart_time=10.0, n_runs=16,
                  rng=np.random.default_rng(3))
        long_mtbf = simulate_makespan(mtbf=1e6, **kw)
        kw["rng"] = np.random.default_rng(3)
        short_mtbf = simulate_makespan(mtbf=3e3, **kw)
        assert short_mtbf > long_mtbf

    def test_compressed_checkpoints_win_in_simulation(self):
        """Not just analytically: simulated runs finish sooner with the
        checkpoint cost NUMARCK's ratio implies."""
        m = 5_000.0
        work = 5e4
        results = {}
        for label, c in (("raw", 60.0), ("numarck", 9.0)):
            t = young_interval(c, m)
            results[label] = simulate_makespan(
                work, t, c, c, m, rng=np.random.default_rng(11), n_runs=32)
        assert results["numarck"] < results["raw"]

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_makespan(0, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            simulate_makespan(1, 1, 1, -1, 1)
