"""Quadtree AMR mesh and AMR-aware checkpointing tests."""

import numpy as np
import pytest

from repro.core import NumarckConfig
from repro.simulations.flash.amr import AmrCheckpointer, QuadTreeMesh


def _gaussian(cx, cy, width=0.05):
    def fn(yy, xx):
        return 1.0 + 5.0 * np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / width**2)
    return fn


class TestGeometry:
    def test_root_layout(self):
        mesh = QuadTreeMesh(block_size=8, base=2)
        assert mesh.n_leaves == 4
        assert mesh.n_cells == 4 * 64

    def test_extents_tile_domain(self):
        mesh = QuadTreeMesh(block_size=8, base=2)
        mesh.refine((0, 0, 0))
        area = sum(w * h for _, _, w, h in
                   (mesh.block_extent(k) for k in mesh.leaves))
        assert area == pytest.approx(1.0)

    def test_cell_centers_inside_extent(self):
        mesh = QuadTreeMesh(block_size=4, base=1)
        mesh.refine((0, 0, 0))
        for key in mesh.leaves:
            x0, y0, w, h = mesh.block_extent(key)
            yy, xx = mesh.cell_centers(key)
            assert xx.min() > x0 and xx.max() < x0 + w
            assert yy.min() > y0 and yy.max() < y0 + h

    def test_validation(self):
        with pytest.raises(ValueError):
            QuadTreeMesh(block_size=1)
        with pytest.raises(ValueError):
            QuadTreeMesh(base=0)
        with pytest.raises(ValueError):
            QuadTreeMesh(max_level=-1)


class TestRefineCoarsen:
    def test_refine_replaces_leaf_with_four(self):
        mesh = QuadTreeMesh(block_size=8, base=2)
        children = mesh.refine((0, 1, 1))
        assert len(children) == 4
        assert (0, 1, 1) not in mesh.leaves
        assert mesh.n_leaves == 7

    def test_refine_conserves_integral(self, rng):
        mesh = QuadTreeMesh(block_size=8, base=2)
        for block in mesh.leaves.values():
            block.data = rng.normal(size=(8, 8))
        before = mesh.total_integral()
        mesh.refine((0, 0, 0))
        assert mesh.total_integral() == pytest.approx(before, rel=1e-12)

    def test_coarsen_conserves_integral(self, rng):
        mesh = QuadTreeMesh(block_size=8, base=2)
        mesh.refine((0, 0, 0))
        for block in mesh.leaves.values():
            block.data = rng.normal(size=(8, 8))
        before = mesh.total_integral()
        mesh.coarsen((0, 0, 0))
        assert mesh.total_integral() == pytest.approx(before, rel=1e-12)

    def test_refine_then_coarsen_of_smooth_field_near_identity(self):
        mesh = QuadTreeMesh(block_size=16, base=1)
        mesh.sample(lambda yy, xx: np.sin(2 * np.pi * xx))
        original = mesh.data((0, 0, 0)).copy()
        mesh.refine((0, 0, 0))
        mesh.coarsen((0, 0, 0))
        np.testing.assert_allclose(mesh.data((0, 0, 0)), original, atol=1e-12)

    def test_max_level_enforced(self):
        mesh = QuadTreeMesh(block_size=4, base=1, max_level=1)
        mesh.refine((0, 0, 0))
        with pytest.raises(ValueError, match="max level"):
            mesh.refine((1, 0, 0))

    def test_guards(self):
        mesh = QuadTreeMesh(block_size=4, base=2)
        with pytest.raises(KeyError):
            mesh.refine((3, 0, 0))
        with pytest.raises(KeyError):
            mesh.coarsen((0, 0, 0))  # children are not leaves


class TestAdaptation:
    def test_refines_around_feature(self):
        mesh = QuadTreeMesh(block_size=16, base=2, max_level=3)
        mesh.sample(_gaussian(0.3, 0.3))
        for _ in range(3):
            mesh.adapt(refine_above=0.5, coarsen_below=0.05)
            mesh.sample(_gaussian(0.3, 0.3))
        # The finest leaves must sit near the feature.
        finest = max(k[0] for k in mesh.leaves)
        assert finest >= 2
        for key in mesh.leaves:
            if key[0] == finest:
                x0, y0, w, h = mesh.block_extent(key)
                assert abs(x0 + w / 2 - 0.3) < 0.3
                assert abs(y0 + h / 2 - 0.3) < 0.3

    def test_coarsens_when_feature_leaves(self):
        mesh = QuadTreeMesh(block_size=16, base=2, max_level=3)
        mesh.sample(_gaussian(0.25, 0.25))
        for _ in range(3):
            mesh.adapt()
            mesh.sample(_gaussian(0.25, 0.25))
        peak_leaves = mesh.n_leaves
        # Flatten the field: everything should coarsen back over sweeps.
        for _ in range(6):
            mesh.sample(lambda yy, xx: np.ones_like(xx))
            mesh.adapt()
        assert mesh.n_leaves < peak_leaves
        assert mesh.n_leaves == mesh.base ** 2

    def test_two_to_one_balance(self):
        """Edge-adjacent leaves must differ by at most one level."""
        mesh = QuadTreeMesh(block_size=16, base=2, max_level=4)
        mesh.sample(_gaussian(0.3, 0.3, width=0.02))
        for _ in range(4):
            mesh.adapt(refine_above=0.3)
            mesh.sample(_gaussian(0.3, 0.3, width=0.02))

        def adjacent(a, b, eps=1e-12):
            ax, ay, aw, ah = mesh.block_extent(a)
            bx, by, bw, bh = mesh.block_extent(b)
            share_x = min(ax + aw, bx + bw) - max(ax, bx)
            share_y = min(ay + ah, by + bh) - max(ay, by)
            v_edge = (abs(ax + aw - bx) < eps or abs(bx + bw - ax) < eps) \
                and share_y > eps
            h_edge = (abs(ay + ah - by) < eps or abs(by + bh - ay) < eps) \
                and share_x > eps
            return v_edge or h_edge

        leaves = list(mesh.leaves)
        assert max(k[0] for k in leaves) >= 3, "test needs deep refinement"
        for i, a in enumerate(leaves):
            for b in leaves[i + 1:]:
                if adjacent(a, b):
                    assert abs(a[0] - b[0]) <= 1, (a, b)

    def test_threshold_validation(self):
        mesh = QuadTreeMesh()
        with pytest.raises(ValueError):
            mesh.adapt(refine_above=0.1, coarsen_below=0.2)


class TestAmrCheckpointer:
    def _moving_feature_run(self, n_iters=6):
        mesh = QuadTreeMesh(block_size=16, base=2, max_level=2)
        ckpt = AmrCheckpointer(NumarckConfig(error_bound=1e-3))
        snapshots = []
        for i in range(n_iters):
            cx = 0.25 + 0.5 * i / max(n_iters - 1, 1)
            mesh.sample(_gaussian(cx, 0.5))
            mesh.adapt()
            mesh.sample(_gaussian(cx, 0.5))
            snap = mesh.snapshot()
            snapshots.append(snap)
            ckpt.record(snap)
        return ckpt, snapshots

    def test_population_tracked_per_iteration(self):
        ckpt, snapshots = self._moving_feature_run()
        assert ckpt.n_iterations == len(snapshots)
        for i, snap in enumerate(snapshots):
            rec = ckpt.reconstruct(i)
            assert set(rec) == set(snap)

    def test_reconstruction_within_bound(self):
        ckpt, snapshots = self._moving_feature_run()
        for i, snap in enumerate(snapshots):
            rec = ckpt.reconstruct(i)
            for key, truth in snap.items():
                rel = np.abs(rec[key] - truth) / np.maximum(np.abs(truth), 1e-12)
                assert rel.max() < 2e-2, (i, key)

    def test_block_lifecycle_counts(self):
        ckpt, snapshots = self._moving_feature_run()
        # The feature moves, so blocks must be born and die along the way.
        stats = [ckpt.record(snapshots[-1])]  # one more record for the API
        assert ckpt.n_chains >= len(snapshots[0])

    def test_reborn_block_history_preserved(self):
        """A block that is refined away and later coarsened back must not
        clobber its earlier lifetime's data."""
        mesh = QuadTreeMesh(block_size=8, base=1, max_level=1)
        ckpt = AmrCheckpointer(NumarckConfig())
        mesh.sample(lambda yy, xx: 1.0 + xx)
        first = mesh.snapshot()
        ckpt.record(first)
        mesh.refine((0, 0, 0))
        mesh.sample(lambda yy, xx: 2.0 + xx)
        ckpt.record(mesh.snapshot())
        mesh.coarsen((0, 0, 0))
        mesh.sample(lambda yy, xx: 3.0 + xx)
        ckpt.record(mesh.snapshot())
        # Iteration 0's root block must decode to its original data.
        np.testing.assert_array_equal(ckpt.reconstruct(0)[(0, 0, 0)],
                                      first[(0, 0, 0)])
        assert ckpt.reconstruct(2)[(0, 0, 0)][0, 0] == pytest.approx(3.0,
                                                                     abs=0.2)

    def test_guards(self):
        ckpt = AmrCheckpointer()
        with pytest.raises(RuntimeError):
            ckpt.reconstruct()
        with pytest.raises(ValueError):
            ckpt.record({})
        ckpt.record({(0, 0, 0): np.ones((4, 4))})
        with pytest.raises(IndexError):
            ckpt.reconstruct(5)
