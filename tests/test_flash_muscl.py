"""MUSCL (second-order) reconstruction tests."""

import numpy as np
import pytest

from repro.simulations.flash import Euler2D, GammaLawEOS
from repro.simulations.flash.problems import sedov
from repro.simulations.flash.riemann import sod_exact


def _sod_run(nx, t_end, reconstruction, flux="hll"):
    ny = 4
    x = (np.arange(nx) + 0.5) / nx
    left = x < 0.5
    dens = np.where(left, 1.0, 0.125)[None, :].repeat(ny, axis=0)
    pres = np.where(left, 1.0, 0.1)[None, :].repeat(ny, axis=0)
    zero = np.zeros((ny, nx))
    solver = Euler2D(dens, zero.copy(), zero.copy(), zero.copy(), pres,
                     eos=GammaLawEOS(gamma_drop=0.0),
                     dx=1.0 / nx, dy=1.0 / ny, bc="outflow", cfl=0.4,
                     flux=flux, reconstruction=reconstruction)
    while solver.time < t_end:
        smax = solver.max_signal_speed()
        dt = min(0.4 / nx / smax, t_end - solver.time)
        solver.step(dt=dt)
    return x, solver.primitives()["dens"][0]


def _smooth_advection_error(nx, reconstruction):
    """L1 error of an advected smooth density wave after a fixed time."""
    ny = 4
    x = (np.arange(nx) + 0.5) / nx
    dens0 = 1.0 + 0.1 * np.sin(2 * np.pi * x)
    dens = dens0[None, :].repeat(ny, axis=0)
    ones = np.ones((ny, nx))
    zero = np.zeros((ny, nx))
    # Uniform velocity, uniform pressure: pure advection of the density.
    solver = Euler2D(dens, 1.0 * ones, zero.copy(), zero.copy(), 5.0 * ones,
                     eos=GammaLawEOS(gamma_drop=0.0),
                     dx=1.0 / nx, dy=1.0 / ny, bc="periodic", cfl=0.3,
                     reconstruction=reconstruction)
    t_end = 0.25  # wave moves a quarter period
    while solver.time < t_end:
        smax = solver.max_signal_speed()
        dt = min(0.3 / nx / smax, t_end - solver.time)
        solver.step(dt=dt)
    exact = 1.0 + 0.1 * np.sin(2 * np.pi * (x - t_end))
    return float(np.mean(np.abs(solver.primitives()["dens"][0] - exact)))


class TestMuscl:
    def test_unknown_reconstruction_rejected(self):
        ones = np.ones((8, 8))
        with pytest.raises(ValueError, match="reconstruction"):
            Euler2D(ones, ones, ones, ones, ones, reconstruction="weno9")

    def test_conservation(self):
        ic = sedov(24, 24)
        solver = Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"],
                         ic["pres"], dx=1 / 24, dy=1 / 24,
                         reconstruction="muscl", cfl=0.3)
        m0 = solver.total_mass()
        for _ in range(15):
            solver.step()
        assert solver.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_uniform_state_steady(self):
        ones = np.ones((8, 8))
        solver = Euler2D(ones, 0 * ones, 0 * ones, 0 * ones, ones,
                         dx=1 / 8, dy=1 / 8, reconstruction="muscl")
        before = solver.u.copy()
        for _ in range(5):
            solver.step()
        np.testing.assert_allclose(solver.u, before, atol=1e-12)

    def test_sharper_sod_than_first_order(self):
        t_end = 0.15
        x, d1 = _sod_run(128, t_end, "constant")
        _, d2 = _sod_run(128, t_end, "muscl")
        exact = sod_exact(x, t_end)["rho"]
        err1 = float(np.mean(np.abs(d1 - exact)))
        err2 = float(np.mean(np.abs(d2 - exact)))
        assert err2 < 0.8 * err1

    def test_second_order_on_smooth_flow(self):
        """Refining 2x must cut the smooth-advection error by ~4x (vs ~2x
        for the first-order scheme)."""
        e_coarse = _smooth_advection_error(32, "muscl")
        e_fine = _smooth_advection_error(64, "muscl")
        order = np.log2(e_coarse / e_fine)
        assert order > 1.5, f"observed order {order:.2f}"

    def test_first_order_is_first_order(self):
        e_coarse = _smooth_advection_error(32, "constant")
        e_fine = _smooth_advection_error(64, "constant")
        order = np.log2(e_coarse / e_fine)
        assert 0.6 < order < 1.5, f"observed order {order:.2f}"

    def test_no_new_extrema_at_shock(self):
        """The minmod limiter must keep Sod density within [0.125, 1]."""
        x, d = _sod_run(128, 0.15, "muscl")
        assert d.max() <= 1.0 + 1e-8
        assert d.min() >= 0.125 - 1e-8

    def test_positivity_under_blast(self):
        ic = sedov(16, 16, blast_pressure=300.0)
        solver = Euler2D(ic["dens"], ic["velx"], ic["vely"], ic["velz"],
                         ic["pres"], dx=1 / 16, dy=1 / 16,
                         reconstruction="muscl", cfl=0.25)
        for _ in range(40):
            solver.step()
        assert solver.primitives()["dens"].min() > 0
        assert np.all(np.isfinite(solver.u))
