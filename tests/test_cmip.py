"""CMIP5-like generator tests."""

import numpy as np
import pytest

from repro.simulations.cmip import CMIP_VARIABLES, CmipSimulation
from repro.simulations.cmip.fields import ar1_step, smooth_noise
from repro.simulations.cmip.variables import VARIABLE_SPECS, VariableSpec


class TestFields:
    def test_smooth_noise_unit_variance(self, rng):
        field = smooth_noise((60, 100), rng, sigma=4.0)
        assert field.std() == pytest.approx(1.0, rel=1e-6)

    def test_smooth_noise_is_correlated(self, rng):
        field = smooth_noise((60, 100), rng, sigma=4.0)
        # Neighbouring cells must be strongly correlated after smoothing.
        corr = np.corrcoef(field[:, :-1].ravel(), field[:, 1:].ravel())[0, 1]
        assert corr > 0.8

    def test_ar1_step_contracts_to_mean(self, rng):
        state = np.full((10, 10), 5.0)
        out = ar1_step(state, 0.0, phi=0.5, sigma=0.0, rng=rng)
        np.testing.assert_allclose(out, 2.5)

    def test_ar1_bad_phi(self, rng):
        with pytest.raises(ValueError):
            ar1_step(np.zeros((4, 4)), 0.0, phi=1.5, sigma=1.0, rng=rng)


class TestVariableSpec:
    def test_all_six_paper_variables_present(self):
        assert set(CMIP_VARIABLES) == {"rlus", "rlds", "mrsos", "mrro", "mc",
                                       "abs550aer"}

    def test_validation(self):
        with pytest.raises(ValueError):
            VariableSpec(name="x", kind="weird")
        with pytest.raises(ValueError):
            VariableSpec(name="x", kind="additive", cadence="hourly")
        with pytest.raises(ValueError):
            VariableSpec(name="x", kind="additive", phi=2.0)

    def test_mc_is_monthly_and_layered(self):
        spec = VARIABLE_SPECS["mc"]
        assert spec.cadence == "monthly"
        assert spec.levels == 8


class TestSimulation:
    def test_deterministic_by_seed(self):
        a = CmipSimulation("rlus", nlat=12, nlon=24, seed=9)
        b = CmipSimulation("rlus", nlat=12, nlon=24, seed=9)
        for _ in range(3):
            a.advance()
            b.advance()
        np.testing.assert_array_equal(a.checkpoint()["rlus"],
                                      b.checkpoint()["rlus"])

    def test_different_seeds_differ(self):
        a = CmipSimulation("rlus", nlat=12, nlon=24, seed=1).checkpoint()["rlus"]
        b = CmipSimulation("rlus", nlat=12, nlon=24, seed=2).checkpoint()["rlus"]
        assert not np.array_equal(a, b)

    def test_paper_grid_default(self):
        sim = CmipSimulation("rlds")
        assert sim.checkpoint()["rlds"].shape == (90, 144)

    def test_mc_has_levels(self):
        sim = CmipSimulation("mc", nlat=12, nlon=24)
        assert sim.checkpoint()["mc"].shape == (8, 12, 24)

    def test_radiation_positive(self):
        for var in ("rlus", "rlds"):
            sim = CmipSimulation(var, nlat=20, nlon=30, seed=4)
            for cp in sim.run(3):
                assert cp[var].min() > 0

    def test_mrsos_bounded(self):
        sim = CmipSimulation("mrsos", nlat=20, nlon=30, seed=4)
        for cp in sim.run(3):
            assert cp["mrsos"].min() >= 0.5
            assert cp["mrsos"].max() <= 45.0

    def test_mrro_sparse_nonnegative(self):
        sim = CmipSimulation("mrro", nlat=30, nlon=48, seed=4)
        field = sim.checkpoint()["mrro"]
        assert field.min() == 0.0
        assert 0.02 < np.mean(field == 0.0) < 0.9, "a real zero fraction"

    def test_abs550aer_wide_relative_changes(self):
        """The paper's hardest variable: relative changes far wider than
        the radiation fields'."""
        def median_change(var):
            sim = CmipSimulation(var, nlat=20, nlon=32, seed=5)
            a = sim.checkpoint()[var]
            sim.advance()
            b = sim.checkpoint()[var]
            nz = a != 0
            return np.median(np.abs((b[nz] - a[nz]) / a[nz]))

        assert median_change("abs550aer") > 5 * median_change("rlus")

    def test_rlus_changes_concentrated(self, cmip_rlus_checkpoints):
        """Paper Fig. 1: >75 % of rlus points change by < 0.5 % per day."""
        a, b = cmip_rlus_checkpoints[0], cmip_rlus_checkpoints[1]
        r = np.abs(b / a - 1)
        assert np.mean(r < 0.005) > 0.75

    def test_unknown_variable(self):
        with pytest.raises(ValueError, match="unknown variable"):
            CmipSimulation("temperature")

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            CmipSimulation("rlus", nlat=2, nlon=2)

    def test_variables_attribute(self):
        sim = CmipSimulation("mrro", nlat=12, nlon=24)
        assert sim.variables == ("mrro",)
