"""Restart manager, restart experiment and fault injection."""

import numpy as np
import pytest

from repro.core import NumarckConfig
from repro.restart import (
    FaultInjector,
    FaultSchedule,
    RestartExperiment,
    RestartManager,
    run_with_faults,
)
from repro.simulations.flash import FlashSimulation

PRIMS = ("dens", "velx", "vely", "velz", "pres")


def _factory():
    return FlashSimulation("sedov", ny=32, nx=32, steps_per_checkpoint=2)


class TestRestartManager:
    def test_record_and_reconstruct(self, rng):
        mgr = RestartManager(("a", "b"), NumarckConfig(error_bound=1e-3))
        a0, b0 = rng.uniform(1, 2, 100), rng.uniform(1, 2, 100)
        mgr.record({"a": a0, "b": b0})
        a1, b1 = a0 * 1.002, b0 * 0.999
        mgr.record({"a": a1, "b": b1})
        state = mgr.restart_state()
        assert np.max(np.abs(state["a"] / a1 - 1)) < 2e-3
        assert np.max(np.abs(state["b"] / b1 - 1)) < 2e-3
        state0 = mgr.restart_state(0)
        np.testing.assert_array_equal(state0["a"], a0)

    def test_missing_variable_rejected(self, rng):
        mgr = RestartManager(("a", "b"))
        with pytest.raises(KeyError):
            mgr.record({"a": rng.normal(size=10)})

    def test_empty_manager_guards(self):
        mgr = RestartManager(("a",))
        assert mgr.n_checkpoints == 0
        with pytest.raises(RuntimeError):
            mgr.restart_state()
        with pytest.raises(RuntimeError):
            mgr.chain("a")

    def test_no_variables_rejected(self):
        with pytest.raises(ValueError):
            RestartManager(())

    def test_n_checkpoints_counts(self, rng):
        mgr = RestartManager(("a",))
        for i in range(3):
            mgr.record({"a": rng.uniform(1, 2, 50)})
        assert mgr.n_checkpoints == 3


class TestRestartExperiment:
    @pytest.fixture(scope="class")
    def records(self):
        exp = RestartExperiment(
            _factory, ("dens", "pres", "temp"),
            NumarckConfig(error_bound=1e-3, strategy="clustering"),
            record_variables=PRIMS,
        )
        return exp.run(restart_points=(2, 4), n_record=4, n_continue=4)

    def test_simulation_completes_from_approximated_restart(self, records):
        """Paper III-G headline: FLASH runs successfully from reconstructed
        restart files."""
        for rec in records:
            for v in ("dens", "pres", "temp"):
                assert all(np.isfinite(e) for e in rec.mean_errors[v])

    def test_error_small_relative_to_fields(self, records):
        for rec in records:
            assert max(rec.mean_errors["dens"]) < 1e-3

    def test_trajectory_lengths(self, records):
        # restart at s: runs to checkpoint 8 -> 8 - s error samples.
        assert len(records[0].mean_errors["dens"]) == 8 - 2
        assert len(records[1].mean_errors["dens"]) == 8 - 4

    def test_deeper_restart_has_larger_initial_error(self):
        """Paper: farther restart points accumulate more chain error."""
        exp = RestartExperiment(
            _factory, ("dens",), NumarckConfig(strategy="equal_width"),
            record_variables=PRIMS,
        )
        recs = exp.run(restart_points=(1, 4), n_record=4, n_continue=1)
        assert recs[1].mean_errors["dens"][0] > recs[0].mean_errors["dens"][0]

    def test_restart_point_validation(self):
        exp = RestartExperiment(_factory, ("dens",), record_variables=PRIMS)
        with pytest.raises(ValueError):
            exp.run(restart_points=(9,), n_record=4, n_continue=1)


class TestFaultInjection:
    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule((0,))
        with pytest.raises(ValueError):
            FaultSchedule((2, 2))

    def test_injector_fires_once(self):
        inj = FaultInjector(FaultSchedule((3,)))
        assert not inj.crashes_after(2)
        assert inj.crashes_after(3)
        assert not inj.crashes_after(3)

    def test_run_with_faults_completes(self, tmp_path):
        res = run_with_faults(_factory, PRIMS, n_checkpoints=5,
                              schedule=FaultSchedule((2, 4)),
                              workdir=tmp_path,
                              config=NumarckConfig(error_bound=1e-3))
        assert res.completed
        assert res.n_crashes == 2
        assert res.checkpoints_written == 6
        # Density must track the reference closely despite two crashes.
        assert res.final_mean_error["dens"] < 1e-2

    def test_no_faults_matches_reference_closely(self, tmp_path):
        res = run_with_faults(_factory, PRIMS, n_checkpoints=3,
                              schedule=FaultSchedule((99,)),
                              workdir=tmp_path)
        assert res.n_crashes == 0
        assert res.final_mean_error["dens"] == pytest.approx(0.0, abs=1e-12)

    def test_chains_persisted(self, tmp_path):
        run_with_faults(_factory, PRIMS, n_checkpoints=2,
                        schedule=FaultSchedule((1,)), workdir=tmp_path)
        for v in PRIMS:
            assert (tmp_path / f"{v}.nmk").exists()
