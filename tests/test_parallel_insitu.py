"""Distributed in-situ encoding tests."""

import numpy as np
import pytest

from repro.core import NumarckConfig, decode_iteration
from repro.parallel import SerialComm, block_partition, parallel_encode, run_spmd


def _pair(rng, n=6000):
    prev = rng.uniform(1.0, 2.0, n)
    curr = prev * (1.0 + rng.normal(0.0, 0.003, n))
    return prev, curr


class TestSerial:
    def test_guarantee_holds(self, rng):
        prev, curr = _pair(rng)
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        enc, stats = parallel_encode(SerialComm(), prev, curr, cfg)
        out = decode_iteration(prev, enc)
        rel = np.abs(out / curr - 1)
        rel[enc.incompressible] = 0
        assert rel.max() < 1.2e-3
        assert stats.n_points == prev.size
        assert stats.n_incompressible == enc.n_incompressible

    def test_none_comm(self, rng):
        prev, curr = _pair(rng, 500)
        enc, stats = parallel_encode(None, prev, curr, NumarckConfig())
        assert stats.n_points == 500

    def test_unchanged_data(self, rng):
        prev = rng.uniform(1, 2, 1000)
        enc, stats = parallel_encode(SerialComm(), prev, prev, NumarckConfig())
        assert stats.n_incompressible == 0
        np.testing.assert_array_equal(decode_iteration(prev, enc), prev)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            parallel_encode(SerialComm(), rng.normal(size=5),
                            rng.normal(size=6), NumarckConfig())

    def test_refine_toggle(self, rng):
        prev, curr = _pair(rng)
        cfg = NumarckConfig(error_bound=1e-3, strategy="clustering")
        enc_a, _ = parallel_encode(SerialComm(), prev, curr, cfg, refine=True)
        enc_b, _ = parallel_encode(SerialComm(), prev, curr, cfg, refine=False)
        for enc in (enc_a, enc_b):
            out = decode_iteration(prev, enc)
            rel = np.abs(out / curr - 1)
            rel[enc.incompressible] = 0
            assert rel.max() < 1.2e-3


def _worker(comm, prev_shards, curr_shards, cfg):
    enc, stats = parallel_encode(comm, prev_shards[comm.rank],
                                 curr_shards[comm.rank], cfg)
    return {
        "reps": enc.representatives,
        "n_inc": enc.n_incompressible,
        "stats": (stats.n_points, stats.n_incompressible, stats.n_bins),
        "indices_max": int(enc.indices.max(initial=0)),
    }


class TestSPMD:
    @pytest.mark.parametrize("strategy", ["equal_width", "clustering"])
    def test_ranks_share_model_and_stats(self, rng, strategy):
        prev, curr = _pair(rng, 4000)
        cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy=strategy)
        prev_shards = block_partition(prev, 3)
        curr_shards = block_partition(curr, 3)
        results = run_spmd(_worker, 3, prev_shards, curr_shards, cfg)
        ref = results[0]
        for res in results[1:]:
            np.testing.assert_array_equal(res["reps"], ref["reps"])
            assert res["stats"] == ref["stats"]
        assert ref["stats"][0] == 4000
        assert ref["stats"][1] == sum(r["n_inc"] for r in results)
        assert all(r["indices_max"] < 256 for r in results)

    def test_shards_decode_to_global_within_bound(self, rng):
        prev, curr = _pair(rng, 3000)
        cfg = NumarckConfig(error_bound=1e-3, nbits=8)
        prev_shards = block_partition(prev, 2)
        curr_shards = block_partition(curr, 2)

        def worker(comm, ps, cs, cfg):
            enc, _ = parallel_encode(comm, ps[comm.rank], cs[comm.rank], cfg)
            return decode_iteration(ps[comm.rank], enc), enc.incompressible

        results = run_spmd(worker, 2, prev_shards, curr_shards, cfg)
        out = np.concatenate([r[0] for r in results])
        inc = np.concatenate([r[1] for r in results])
        rel = np.abs(out / curr - 1)
        rel[inc] = 0
        assert rel.max() < 1.2e-3
