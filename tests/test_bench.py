"""Tests for repro.bench: schema, runner, comparator, CLI."""

import copy
import json

import pytest

from repro.bench import (
    BenchSchemaError,
    Thresholds,
    bench_path,
    compare_dirs,
    compare_docs,
    comparison_table,
    env_fingerprint,
    load_bench,
    robust_stats,
    run_scenario,
    scenario_names,
    validate_bench,
    write_bench,
)

#: the cheapest real scenario -- the runner tests go through it.
FAST = "cmip_equal_width"
#: a scenario whose hottest stage is tens of ms -- comfortably above the
#: comparator's absolute noise floor, so gating tests are deterministic.
HOT = "kmeans_fit"


@pytest.fixture(scope="module")
def quick_doc():
    return run_scenario(FAST, quick=True, repeats=3)


@pytest.fixture(scope="module")
def hot_doc():
    return run_scenario(HOT, quick=True, repeats=3, memory=False)


class TestRobustStats:
    def test_median_and_mad(self):
        stats = robust_stats([1.0, 2.0, 3.0, 100.0])
        assert stats["median"] == pytest.approx(2.5)
        assert stats["mad"] == pytest.approx(1.0)
        assert stats["runs"] == [1.0, 2.0, 3.0, 100.0]

    def test_outlier_barely_moves_median(self):
        clean = robust_stats([1.0, 1.0, 1.0, 1.0, 1.0])
        noisy = robust_stats([1.0, 1.0, 1.0, 1.0, 50.0])
        assert noisy["median"] == clean["median"]


class TestRunner:
    def test_document_shape(self, quick_doc):
        validate_bench(quick_doc)  # raises on any schema violation
        assert quick_doc["scenario"] == FAST
        assert quick_doc["mode"] == "quick"
        assert quick_doc["repeats"] == 3
        assert len(quick_doc["total"]["wall_s"]["runs"]) == 3
        assert quick_doc["attrs"]["n_points"] > 0
        assert "encode" in quick_doc["stages"]
        encode = quick_doc["stages"]["encode"]
        assert encode["calls"] >= 1
        assert encode["self_s"]["median"] >= 0

    def test_env_fingerprint_complete(self, quick_doc):
        env = quick_doc["env"]
        for key in ("python", "implementation", "platform", "machine",
                    "numpy", "cpu_count"):
            assert key in env, f"missing env key {key}"
        assert env == env_fingerprint()

    def test_memory_section(self, quick_doc):
        memory = quick_doc["memory"]
        assert memory["stages"], "memory pass should cover traced stages"
        peaks = [s["mem_py_peak_kb"] for s in memory["stages"].values()]
        assert all(p >= 0 for p in peaks)
        assert max(peaks) > 0

    def test_write_and_load_round_trip(self, quick_doc, tmp_path):
        path = write_bench(quick_doc, tmp_path)
        assert path == bench_path(tmp_path, FAST)
        assert path.name == f"BENCH_{FAST}.json"
        assert load_bench(path) == json.loads(json.dumps(quick_doc))

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("nope", quick=True)

    def test_bad_repeats_raises(self):
        with pytest.raises(ValueError, match="repeats"):
            run_scenario(FAST, quick=True, repeats=0)

    def test_all_scenarios_registered(self):
        names = scenario_names()
        assert FAST in names
        assert "cmip_clustering" in names
        assert "bitpack_roundtrip" in names
        assert len(names) >= 5


class TestSchema:
    def test_rejects_non_object(self):
        with pytest.raises(BenchSchemaError, match="JSON object"):
            validate_bench([])

    def test_rejects_wrong_version(self, quick_doc):
        doc = copy.deepcopy(quick_doc)
        doc["schema"] = "numarck-bench/0"
        with pytest.raises(BenchSchemaError, match="schema"):
            validate_bench(doc)

    def test_rejects_missing_env_key(self, quick_doc):
        doc = copy.deepcopy(quick_doc)
        del doc["env"]["numpy"]
        with pytest.raises(BenchSchemaError, match="numpy"):
            validate_bench(doc)

    def test_rejects_median_outside_runs(self, quick_doc):
        doc = copy.deepcopy(quick_doc)
        doc["total"]["wall_s"]["median"] = 1e9
        with pytest.raises(BenchSchemaError, match="median"):
            validate_bench(doc)

    def test_rejects_empty_runs(self, quick_doc):
        doc = copy.deepcopy(quick_doc)
        doc["total"]["wall_s"]["runs"] = []
        with pytest.raises(BenchSchemaError, match="runs"):
            validate_bench(doc)

    def test_rejects_bad_mode(self, quick_doc):
        doc = copy.deepcopy(quick_doc)
        doc["mode"] = "fast"
        with pytest.raises(BenchSchemaError, match="mode"):
            validate_bench(doc)


def _slow_stage(doc, stage, factor):
    """A deep copy of ``doc`` with one stage's self time scaled.

    Runs are shifted rather than scaled so the sample keeps the
    baseline's dispersion -- a regression moves the centre, it does not
    multiply the jitter, and scaling the MAD would widen the very noise
    gate the slowdown must clear.
    """
    out = copy.deepcopy(doc)
    block = out["stages"][stage]["self_s"]
    shift = block["median"] * (factor - 1.0)
    block["runs"] = [v + shift for v in block["runs"]]
    block["median"] += shift
    return out


class TestCompare:
    def test_self_comparison_passes(self, quick_doc):
        comparison = compare_docs(quick_doc, quick_doc)
        assert comparison.regressions == []
        assert len(comparison.deltas) >= 2  # total + stages

    def test_two_x_stage_slowdown_flags(self, hot_doc):
        hottest = max(hot_doc["stages"],
                      key=lambda s: hot_doc["stages"][s]["self_s"]["median"])
        slowed = _slow_stage(hot_doc, hottest, 2.0)
        comparison = compare_docs(hot_doc, slowed)
        regressed = [d.metric for d in comparison.regressions]
        assert f"stage:{hottest}" in regressed

    def test_improvement_reported_not_failed(self, hot_doc):
        hottest = max(hot_doc["stages"],
                      key=lambda s: hot_doc["stages"][s]["self_s"]["median"])
        faster = _slow_stage(hot_doc, hottest, 0.25)
        comparison = compare_docs(hot_doc, faster)
        assert comparison.regressions == []
        assert any(d.metric == f"stage:{hottest}"
                   for d in comparison.improvements)

    def test_noise_threshold_scales_with_mad(self):
        th = Thresholds(k=4.0, rel_floor=0.0, abs_floor=0.0)
        quiet = th.threshold_s(1.0, 0.001, 0.001)
        noisy = th.threshold_s(1.0, 0.1, 0.1)
        assert noisy == pytest.approx(quiet * 100)

    def test_scenario_mismatch_raises(self, quick_doc):
        other = copy.deepcopy(quick_doc)
        other["scenario"] = "different"
        with pytest.raises(ValueError, match="scenario mismatch"):
            compare_docs(quick_doc, other)

    def test_vanished_stage_noted(self, quick_doc):
        cur = copy.deepcopy(quick_doc)
        stage = next(iter(cur["stages"]))
        del cur["stages"][stage]
        comparison = compare_docs(quick_doc, cur)
        assert any("vanished" in n for n in comparison.notes)

    def test_compare_dirs(self, hot_doc, tmp_path):
        base_dir = tmp_path / "base"
        cur_dir = tmp_path / "cur"
        write_bench(hot_doc, base_dir)
        hottest = max(hot_doc["stages"],
                      key=lambda s: hot_doc["stages"][s]["self_s"]["median"])
        write_bench(_slow_stage(hot_doc, hottest, 3.0), cur_dir)
        comparison = compare_dirs(base_dir, cur_dir)
        assert comparison.regressions
        table = comparison_table(comparison)
        assert "REGRESSED" in table

    def test_compare_dirs_no_common_raises(self, quick_doc, tmp_path):
        base_dir = tmp_path / "base"
        cur_dir = tmp_path / "cur"
        base_dir.mkdir()
        cur_dir.mkdir()
        with pytest.raises(ValueError, match="no common"):
            compare_dirs(base_dir, cur_dir)


class TestBenchCli:
    def test_run_compare_report(self, quick_doc, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "results"
        assert main(["bench", "run", "--quick", "--scenario", HOT,
                     "--repeats", "2", "--no-memory",
                     "--out", str(out)]) == 0
        assert (out / f"BENCH_{HOT}.json").exists()
        captured = capsys.readouterr().out
        assert HOT in captured and "median" in captured

        assert main(["bench", "report", str(out)]) == 0
        assert HOT in capsys.readouterr().out

        # Self-comparison: clean gate, exit 0.
        assert main(["bench", "compare", str(out), str(out)]) == 0
        assert "no regressions" in capsys.readouterr().out

        # Doctored 2x slowdown on the hottest stage: exit 1.
        doc = load_bench(out / f"BENCH_{HOT}.json")
        hottest = max(doc["stages"],
                      key=lambda s: doc["stages"][s]["self_s"]["median"])
        slow_dir = tmp_path / "slow"
        write_bench(_slow_stage(doc, hottest, 2.0), slow_dir)
        assert main(["bench", "compare", str(out), str(slow_dir)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "REGRESSION" in captured.err

    def test_run_unknown_scenario_exits_two(self, capsys):
        from repro.cli import main

        assert main(["bench", "run", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_report_empty_dir_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "report", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err


class TestCommittedBaseline:
    """The repo ships a seed baseline; it must stay schema-valid."""

    def test_baselines_validate(self):
        from pathlib import Path

        baseline_dir = Path(__file__).resolve().parents[1] / \
            "benchmarks" / "baselines"
        files = sorted(baseline_dir.glob("BENCH_*.json"))
        assert files, "committed baseline missing"
        for path in files:
            doc = load_bench(path)  # validates
            assert doc["mode"] == "quick"
