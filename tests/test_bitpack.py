"""Unit and property tests for repro.bitpack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack import pack_bits, packed_nbytes, unpack_bits


class TestPackedNbytes:
    def test_exact_multiples(self):
        assert packed_nbytes(8, 8) == 8
        assert packed_nbytes(8, 1) == 1
        assert packed_nbytes(16, 4) == 8

    def test_rounding_up(self):
        assert packed_nbytes(3, 3) == 2  # 9 bits -> 2 bytes
        assert packed_nbytes(1, 1) == 1
        assert packed_nbytes(5, 7) == 5  # 35 bits -> 5 bytes

    def test_zero_count(self):
        assert packed_nbytes(0, 8) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            packed_nbytes(10, 0)
        with pytest.raises(ValueError):
            packed_nbytes(10, 33)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            packed_nbytes(-1, 8)


class TestPackBits:
    def test_known_layout_width8(self):
        # width 8 is plain bytes.
        vals = np.array([0, 1, 255, 128], dtype=np.uint32)
        assert pack_bits(vals, 8) == bytes([0, 1, 255, 128])

    def test_known_layout_width1(self):
        # LSB-first within each byte.
        vals = np.array([1, 0, 1, 1, 0, 0, 0, 1], dtype=np.uint8)
        assert pack_bits(vals, 1) == bytes([0b10001101])

    def test_known_layout_width4(self):
        vals = np.array([0xA, 0xB], dtype=np.uint32)
        # 0xA in low nibble, 0xB in high nibble.
        assert pack_bits(vals, 4) == bytes([0xBA])

    def test_empty(self):
        assert pack_bits(np.array([], dtype=np.uint32), 8) == b""

    def test_value_out_of_range(self):
        with pytest.raises(ValueError, match="exceed"):
            pack_bits(np.array([256], dtype=np.uint32), 8)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            pack_bits(np.array([1.0]), 8)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((2, 2), dtype=np.uint32), 8)

    def test_length(self):
        vals = np.arange(100, dtype=np.uint32) % 8
        assert len(pack_bits(vals, 3)) == packed_nbytes(100, 3)


class TestUnpackBits:
    def test_roundtrip_simple(self):
        vals = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.uint32)
        packed = pack_bits(vals, 4)
        out = unpack_bits(packed, len(vals), 4)
        np.testing.assert_array_equal(out, vals)

    def test_short_buffer_raises(self):
        with pytest.raises(ValueError, match="need"):
            unpack_bits(b"\x00", 10, 8)

    def test_extra_bytes_ignored(self):
        vals = np.array([7, 7], dtype=np.uint32)
        packed = pack_bits(vals, 3) + b"\xff\xff"
        np.testing.assert_array_equal(unpack_bits(packed, 2, 3), vals)

    def test_zero_count(self):
        assert unpack_bits(b"", 0, 5).size == 0

    def test_negative_count(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\x00", -1, 8)

    def test_wide_values(self):
        vals = np.array([2**31 - 1, 0, 12345678], dtype=np.uint64)
        packed = pack_bits(vals, 32)
        np.testing.assert_array_equal(unpack_bits(packed, 3, 32), vals)


@settings(max_examples=60, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
def test_property_roundtrip(width, data):
    """pack -> unpack is the identity for any width and values in range."""
    n = data.draw(st.integers(min_value=0, max_value=200))
    vals = data.draw(
        st.lists(st.integers(min_value=0, max_value=2**width - 1),
                 min_size=n, max_size=n)
    )
    arr = np.array(vals, dtype=np.uint32)
    out = unpack_bits(pack_bits(arr, width), n, width)
    np.testing.assert_array_equal(out, arr)


@settings(max_examples=30, deadline=None)
@given(width=st.integers(min_value=1, max_value=16),
       n=st.integers(min_value=1, max_value=500))
def test_property_size_is_minimal(width, n):
    """The packed stream never exceeds ceil(n*width/8) bytes."""
    arr = np.full(n, (1 << width) - 1, dtype=np.uint32)
    assert len(pack_bits(arr, width)) == (n * width + 7) // 8
