"""Thin setuptools shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline machines where the ``wheel`` package
(required for PEP 660 editable wheels) is unavailable -- pip then falls
back to the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
