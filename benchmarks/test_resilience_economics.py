"""System-level payoff: what NUMARCK's measured ratio buys in wall time.

The paper's introduction argues checkpoint I/O threatens to overwhelm
exascale simulations.  This bench closes the loop: it takes the
compression ratio NUMARCK *actually achieves* on the FLASH substrate,
feeds it through the Young/Daly checkpoint-economics model at exascale-ish
parameters, and reports optimal intervals, waste fractions and makespans
for raw vs compressed checkpointing -- analytically and with the failure
simulator.
"""

import numpy as np

from benchmarks.conftest import FLASH_TABLE_VARS, series_stats
from repro.analysis import format_table
from repro.core import NumarckConfig
from repro.resilience import (
    CheckpointCostModel,
    expected_makespan,
    simulate_makespan,
    young_interval,
)

# Exascale-flavoured system parameters (order-of-magnitude realistic).
DATA_BYTES = 2e14        # 200 TB of checkpoint state
BANDWIDTH = 2e12         # 2 TB/s parallel filesystem
MTBF = 6 * 3600.0        # one failure every 6 hours
WORK = 72 * 3600.0       # 72 hours of useful compute


def _run(flash_trajectory):
    # Measured NUMARCK ratio on the FLASH variables (Table-I config).
    cfg = NumarckConfig(error_bound=5e-3, nbits=8, strategy="clustering")
    ratios = []
    for var in FLASH_TABLE_VARS:
        traj = [cp[var] for cp in flash_trajectory][:4]
        ratios.extend(s.ratio_paper for s in series_stats(traj, cfg))
    measured_ratio = float(np.mean(ratios))

    scenarios = {}
    for label, ratio in (("raw", 0.0), ("NUMARCK", measured_ratio)):
        cost = CheckpointCostModel(DATA_BYTES, BANDWIDTH,
                                   compression_ratio=ratio)
        c, r = cost.checkpoint_time, cost.restart_time
        t = young_interval(c, MTBF)
        analytic = expected_makespan(WORK, t, c, r, MTBF)
        simulated = simulate_makespan(WORK, t, c, r, MTBF,
                                      rng=np.random.default_rng(5), n_runs=24)
        scenarios[label] = dict(ratio=ratio, c=c, t=t, analytic=analytic,
                                simulated=simulated)
    return measured_ratio, scenarios


def test_resilience_economics(benchmark, report, flash_trajectory):
    measured_ratio, scenarios = benchmark.pedantic(
        _run, args=(flash_trajectory,), rounds=1, iterations=1)
    rows = []
    for label, s in scenarios.items():
        rows.append([
            label, s["ratio"], s["c"], s["t"] / 60.0,
            (s["analytic"] / WORK - 1) * 100,
            s["analytic"] / 3600.0, s["simulated"] / 3600.0,
        ])
    report(format_table(
        ["checkpointing", "ratio %", "C (s)", "T* (min)", "waste %",
         "analytic (h)", "simulated (h)"],
        rows, precision=2,
        title=f"Checkpoint economics: 200 TB state, 2 TB/s, MTBF 6 h, "
              f"72 h of work (NUMARCK ratio measured = {measured_ratio:.1f} %)",
    ))

    raw, num = scenarios["raw"], scenarios["NUMARCK"]
    assert measured_ratio > 70.0, "FLASH should compress well at E=0.5 %"
    # Compression shortens the optimal interval and cuts the waste.
    assert num["t"] < raw["t"]
    assert num["analytic"] < raw["analytic"]
    assert num["simulated"] < raw["simulated"]
    # Waste scales ~sqrt(C): >70 % ratio should roughly halve the overhead.
    raw_waste = raw["analytic"] / WORK - 1
    num_waste = num["analytic"] / WORK - 1
    assert raw_waste / num_waste > 1.5
    # Simulator and analytic model agree in this T << MTBF regime.
    for s in scenarios.values():
        assert s["simulated"] < 1.3 * s["analytic"]
