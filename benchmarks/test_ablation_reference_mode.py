"""Ablation: open-loop (paper) vs closed-loop chain references.

The paper encodes iteration i against the *original* D_{i-1} and decodes
against the approximated D'_{i-1}, so restart error accumulates with chain
depth (its Fig. 8 observation).  The closed-loop extension encodes against
the decoded state, keeping the value error bounded at any depth for the
same storage cost.  This bench quantifies both along one FLASH chain.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import CheckpointChain, NumarckConfig
from repro.simulations.flash import FlashSimulation

DEPTH = 8


def _run():
    sim = FlashSimulation("sedov", ny=48, nx=48, steps_per_checkpoint=2)
    for _ in range(3):
        sim.advance()
    traj = [cp["pres"] for cp in sim.run(DEPTH)]

    errors = {}
    for mode in ("original", "reconstructed"):
        cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering",
                            reference=mode)
        chain = CheckpointChain(traj[0], cfg)
        chain.extend(traj[1:])
        errs = []
        state = traj[0].copy()
        for i in range(1, DEPTH + 1):
            state = chain.reconstruct(i)
            errs.append(float(np.max(np.abs(state / traj[i] - 1))))
        errors[mode] = errs
    return errors


def test_ablation_reference_mode(benchmark, report):
    errors = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [i + 1, errors["original"][i] * 100, errors["reconstructed"][i] * 100]
        for i in range(DEPTH)
    ]
    report(format_table(
        ["chain depth", "open-loop max err %", "closed-loop max err %"],
        rows, precision=4,
        title="Ablation: reference mode along a FLASH pres chain (E=0.1 %)",
    ))
    # Closed loop is bounded at ~E at any depth.
    assert max(errors["reconstructed"]) < 2e-3
    # Open loop accumulates: the deep end must exceed the first step.
    assert errors["original"][-1] > errors["original"][0]
    # And closed loop must beat open loop at depth.
    assert errors["reconstructed"][-1] <= errors["original"][-1] + 1e-9
