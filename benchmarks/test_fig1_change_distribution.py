"""Fig. 1 reproduction: the change distribution of climate rlus data.

Paper claim: individual snapshots are high-entropy, but "more than 75 % of
climate rlus data remains unchanged or only changes with a percentage less
than 0.5 %" between consecutive iterations.
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory
from repro.analysis import byte_entropy, change_histogram, format_table, summarize_changes


def _run():
    traj = cmip_trajectory("rlus", n_iters=1)
    prev, curr = traj[0], traj[1]
    summary = summarize_changes(prev, curr)
    counts, edges = change_histogram(prev, curr, bins=64)
    return prev, curr, summary, counts, edges


def test_fig1_change_distribution(benchmark, report):
    prev, curr, summary, counts, edges = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    rows = [
        ["snapshot byte entropy (bits/byte, max 8)", byte_entropy(curr)],
        ["frac |change| < 0.1 %", summary.frac_below[0.001]],
        ["frac |change| < 0.5 %", summary.frac_below[0.005]],
        ["frac |change| < 1.0 %", summary.frac_below[0.01]],
        ["median |change|", summary.median_abs],
        ["p95 |change|", summary.p95_abs],
    ]
    peak = float(edges[np.argmax(counts)])
    rows.append(["histogram mode (change ratio)", peak])
    report(format_table(["quantity", "value"], rows, precision=4,
                        title="Fig. 1 (C/D): rlus change distribution"))

    # Paper shape assertions.
    assert summary.frac_below[0.005] > 0.75, \
        "paper: >75 % of rlus changes below 0.5 %"
    assert byte_entropy(curr) > 5.0, "paper: snapshots are high-entropy"
    assert abs(peak) < 0.01, "change distribution must peak near zero"
