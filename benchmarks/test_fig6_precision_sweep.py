"""Fig. 6 reproduction: effect of the approximation precision B.

Equal-width binning on rlds at E = 0.1 % with B in {8, 9, 10}.  Paper
shape: moving from 8 to 9 bits collapses the incompressible ratio and
lifts the compression ratio by tens of points; at 10 bits nearly all
points are compressible while mean error stays below half the tolerance.
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory, series_stats
from repro.analysis import format_table
from repro.core import NumarckConfig

N_ITERS = 6
BITS = (8, 9, 10)


def _run():
    traj = cmip_trajectory("rlds", N_ITERS)
    out = {}
    for b in BITS:
        cfg = NumarckConfig(error_bound=1e-3, nbits=b, strategy="equal_width")
        stats = series_stats(traj, cfg)
        out[b] = (
            float(np.mean([s.incompressible_ratio for s in stats])),
            float(np.mean([s.ratio_paper for s in stats])),
            float(np.mean([s.mean_error for s in stats])),
        )
    return out


def test_fig6_precision_sweep(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [b, g * 100, r, e * 100] for b, (g, r, e) in results.items()
    ]
    report(format_table(
        ["B (bits)", "incompressible %", "compression ratio %", "mean error %"],
        rows, precision=3,
        title=f"Fig. 6: rlds, equal-width, E=0.1 %, {N_ITERS} iterations",
    ))

    g = {b: results[b][0] for b in BITS}
    r = {b: results[b][1] for b in BITS}
    e = {b: results[b][2] for b in BITS}
    # Monotone improvements with precision.
    assert g[8] >= g[9] >= g[10]
    assert r[10] >= r[9] >= r[8]
    # Mean error always far below the user bound.
    assert all(v < 5e-4 for v in e.values()), "mean error < half the bound"
    # The paper's dramatic 8 -> 10 bit improvement in compression ratio.
    assert r[10] - r[8] > 5.0
