"""Fig. 3 reproduction: 255-bin occupancy under the three strategies.

The paper shows the histogram of the 255 bins for FLASH dens between
iterations 32 and 33 for each strategy.  The shape to reproduce: fixed
binnings leave many bins empty or overloaded on irregular distributions,
while clustering adapts bin placement to the data density, using the bin
budget more evenly (higher occupancy entropy, fewer empty bins over the
occupied range).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import NumarckConfig, change_ratios, encode_pair


def _run(flash_trajectory):
    prev = flash_trajectory[3]["dens"]
    curr = flash_trajectory[4]["dens"]
    results = {}
    for strat in ("equal_width", "log_scale", "clustering"):
        cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy=strat)
        enc, _ = encode_pair(prev, curr, cfg)
        occ = np.bincount(enc.indices[enc.indices > 0] - 1,
                          minlength=max(enc.representatives.size, 1))
        results[strat] = (enc, occ)
    true_ratios = change_ratios(prev, curr)
    return results, true_ratios


def test_fig3_bin_histograms(benchmark, report, flash_trajectory):
    results, _ = benchmark.pedantic(_run, args=(flash_trajectory,),
                                    rounds=1, iterations=1)
    rows = []
    balance = {}
    for strat, (enc, occ) in results.items():
        occupied = occ[occ > 0]
        p = occupied / occupied.sum() if occupied.size else np.array([1.0])
        entropy = float(-(p * np.log2(p)).sum())
        balance[strat] = entropy
        rows.append([
            strat,
            int(enc.representatives.size),
            int((occ > 0).sum()),
            int(occ.max()) if occ.size else 0,
            entropy,
            enc.incompressible_ratio * 100,
        ])
    report(format_table(
        ["strategy", "bins in table", "bins occupied", "max bin count",
         "occupancy entropy (bits)", "incompressible %"],
        rows, precision=3,
        title="Fig. 3: bin histograms for FLASH dens (B=8, E=0.1 %)",
    ))
    # Shape: clustering spreads points over its bins at least as evenly as
    # equal-width binning does.
    assert balance["clustering"] >= balance["equal_width"] - 0.5
    # All strategies respect the 255-bin budget.
    for _, (enc, _occ) in results.items():
        assert enc.representatives.size <= 255
