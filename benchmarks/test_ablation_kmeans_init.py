"""Ablation: k-means initialisation (paper Section II-C3 design choice).

The paper claims seeding k-means from the equal-width histogram gives
"more reliable segmentation results" than default initialisation.  This
bench compares histogram, k-means++ and random seeding on the same
iteration pairs by incompressible ratio and Lloyd convergence.
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory
from repro.analysis import format_table
from repro.core import NumarckConfig
from repro.core.change import change_ratios
from repro.core.strategies import ClusteringStrategy

INITS = ("histogram", "kmeans++", "random")
VARS = ("rlds", "abs550aer", "mrsos")


def _candidate_fail_rate(cand, model, e):
    return float(np.mean(np.abs(model.approximate(cand) - cand) >= e))


def _run():
    e = 1e-3
    out = {}
    for var in VARS:
        traj = cmip_trajectory(var, 2)
        field = change_ratios(traj[1], traj[2])
        r = field.ratios.ravel()
        cand = r[(np.abs(r) >= e) & ~field.forced_exact.ravel()]
        out[var] = {}
        for space in ("linear", "asinh"):
            for init in INITS:
                strat = ClusteringStrategy(init=init, space=space, seed=1)
                model = strat.fit(cand, 255, e)
                out[var][(space, init)] = _candidate_fail_rate(cand, model, e)
    return out


def test_ablation_kmeans_init(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for var in VARS:
        for space in ("linear", "asinh"):
            rows.append([var, space] + [
                results[var][(space, init)] * 100 for init in INITS
            ])
    report(format_table(
        ["variable", "space"] + [f"{i} fail %" for i in INITS],
        rows, precision=3,
        title="Ablation: k-means init x clustering space "
              "(candidate out-of-tolerance rate, B=8, E=0.1 %)",
    ))
    # Paper's claim holds on narrow, peaked distributions: histogram
    # seeding matches or beats the stochastic inits on rlds (linear).
    lin_rlds = {i: results["rlds"][("linear", i)] for i in INITS}
    assert lin_rlds["histogram"] <= min(lin_rlds.values()) + 0.02
    # Finding beyond the paper: on heavy-tailed data, *no* init rescues
    # linear k-means -- the space transform dominates the init choice.
    worst_asinh = max(results["abs550aer"][("asinh", i)] for i in INITS)
    assert results["abs550aer"][("linear", "histogram")] > worst_asinh
