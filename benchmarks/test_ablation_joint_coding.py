"""Ablation: joint change-vector coding vs per-variable coding.

FLASH's pres and temp "showed very similar behaviors because the
computation applied to both is actually the same" (paper III-G) -- their
change ratios are nearly identical point-by-point.  Joint vector
quantization shares one B-bit index between the pair; this bench measures
the storage saving on correlated FLASH pairs and the penalty on an
uncorrelated pairing.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import NumarckConfig, decode_joint, encode_joint, encode_pair

PAIRS = [("pres", "temp"), ("eint", "ener"), ("dens", "velz")]


def _separate_bits(prev, curr, cfg, variables):
    bits = 0
    n = prev[variables[0]].size
    for v in variables:
        enc, _ = encode_pair(prev[v], curr[v], cfg)
        bits += n * cfg.nbits + n + enc.exact_values.size * 64 + 255 * 64
    return bits


def _run(flash_trajectory):
    cfg = NumarckConfig(error_bound=1e-3, nbits=8)
    prev_cp, curr_cp = flash_trajectory[4], flash_trajectory[5]
    out = {}
    for pair in PAIRS:
        prev = {v: prev_cp[v] for v in pair}
        curr = {v: curr_cp[v] for v in pair}
        joint = encode_joint(prev, curr, cfg)
        decoded = decode_joint(prev, joint)
        worst = 0.0
        for v in pair:
            p = prev[v].ravel()
            nz = (p != 0) & ~joint.incompressible[v]
            err = np.abs((decoded[v].ravel()[nz] - p[nz]) / p[nz]
                         - (curr[v].ravel()[nz] - p[nz]) / p[nz])
            worst = max(worst, float(err.max(initial=0.0)))
        corr = float(np.corrcoef(
            (curr[pair[0]] / prev_cp[pair[0]] - 1).ravel(),
            (curr[pair[1]] / prev_cp[pair[1]] - 1).ravel())[0, 1])
        out[pair] = {
            "corr": corr,
            "joint_bits": joint.stored_bits(),
            "separate_bits": _separate_bits(prev, curr, cfg, pair),
            "worst_err": worst,
            "gammas": [joint.incompressible_ratio(v) for v in pair],
        }
    return out


def test_ablation_joint_coding(benchmark, report, flash_trajectory):
    results = benchmark.pedantic(_run, args=(flash_trajectory,),
                                 rounds=1, iterations=1)
    rows = []
    for pair, r in results.items():
        saving = 1 - r["joint_bits"] / r["separate_bits"]
        rows.append([
            "+".join(pair), r["corr"], r["joint_bits"], r["separate_bits"],
            f"{saving:+.1%}", max(r["gammas"]) * 100,
        ])
    report(format_table(
        ["pair", "ratio corr", "joint bits", "separate bits",
         "joint saving", "max gamma %"],
        rows, precision=3,
        title="Ablation: joint change-vector coding on FLASH pairs "
              "(E=0.1 %, B=8)",
    ))

    # The guarantee must hold for every pair.
    for r in results.values():
        assert r["worst_err"] < 1e-3
    # Strongly correlated pairs must save real storage.
    pt = results[("pres", "temp")]
    assert pt["corr"] > 0.9
    assert pt["joint_bits"] < 0.8 * pt["separate_bits"]
    ee = results[("eint", "ener")]
    assert ee["joint_bits"] < 0.9 * ee["separate_bits"]
