"""Persistence cost: full rewrite vs crash-consistent append.

Not a paper artefact: quantifies the tentpole fix in the restart stack.
Persisting a growing chain by rewriting the whole file costs O(n) record
writes per checkpoint -- O(n^2) over a run -- while
``RestartManager.persist_incremental`` appends exactly one fsynced record
per checkpoint, O(n) total.  Both byte and wall-clock totals should show
the rewrite strategy growing quadratically and the append strategy
linearly in the number of checkpoints.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import CheckpointChain, NumarckConfig
from repro.io import save_chain
from repro.restart import RestartManager

N_POINTS = 20_000
CFG = NumarckConfig(error_bound=1e-3, nbits=8, strategy="equal_width")


def _iterations(n_checkpoints, rng):
    data = rng.uniform(1.0, 2.0, N_POINTS)
    out = [data]
    for _ in range(n_checkpoints):
        data = data * (1.0 + rng.normal(0.0, 0.002, N_POINTS))
        out.append(data)
    return out


def _persist_by_rewrite(iterations, path):
    chain = CheckpointChain(iterations[0], CFG)
    total_bytes = 0
    t0 = time.perf_counter()
    total_bytes += save_chain(path, chain)
    for data in iterations[1:]:
        chain.append(data)
        total_bytes += save_chain(path, chain)
    return time.perf_counter() - t0, total_bytes


def _persist_by_append(iterations, path):
    manager = RestartManager(("v",), CFG)
    t0 = time.perf_counter()
    manager.record({"v": iterations[0]})
    records = manager.persist_incremental(lambda _: path)
    for data in iterations[1:]:
        manager.record({"v": data})
        records += manager.persist_incremental(lambda _: path)
    manager.close_writers()
    return time.perf_counter() - t0, records


def _run(tmpdir):
    rng = np.random.default_rng(11)
    rows = []
    for n in (10, 20, 40):
        iterations = _iterations(n, rng)
        rewrite_s, rewrite_bytes = _persist_by_rewrite(
            iterations, tmpdir / f"rw{n}.nmk")
        append_s, append_records = _persist_by_append(
            iterations, tmpdir / f"ap{n}.nmk")
        rows.append([n, rewrite_s * 1e3, rewrite_bytes / 1e6,
                     append_s * 1e3, append_records,
                     rewrite_s / append_s])
    return rows


def test_persistence_append_vs_rewrite(benchmark, report, tmp_path):
    rows = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    report(format_table(
        ["checkpoints", "rewrite ms", "rewrite MB written",
         "append ms", "append records", "speedup x"],
        rows,
        title="Persistence cost per run: full rewrite vs incremental append "
              "(1 variable, 20k points)",
    ))
    # Rewrites write O(n^2) record payloads; appends exactly n+1 records.
    ns = [r[0] for r in rows]
    assert [r[4] for r in rows] == [n + 1 for n in ns]
    # The rewrite:append advantage must grow with chain length.
    speedups = [r[5] for r in rows]
    assert speedups[-1] > speedups[0]
