"""Fig. 8 reproduction: restart error accumulation on FLASH.

Restart the simulation from reconstructed checkpoints 2, 3 and 4 and
continue 8 more checkpoints, for all three binning strategies.  Paper
shape: (1) the simulation runs successfully from approximated restarts;
(2) farther restart points accumulate more error; (3) mean error rates sit
far below the 0.1 % tolerance; (4) clustering yields the lowest maximum
error of the three strategies.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import NumarckConfig
from repro.restart import RestartExperiment
from repro.simulations.flash import FlashSimulation

PRIMS = ("dens", "velx", "vely", "velz", "pres")
TRACK = ("dens", "pres", "temp")
STRATEGIES = ("equal_width", "log_scale", "clustering")
RESTARTS = (2, 3, 4)


def _factory():
    return FlashSimulation("sedov", ny=48, nx=48, steps_per_checkpoint=2)


def _run():
    out = {}
    for strat in STRATEGIES:
        exp = RestartExperiment(
            _factory, TRACK,
            NumarckConfig(error_bound=1e-3, nbits=8, strategy=strat),
            record_variables=PRIMS,
        )
        out[strat] = exp.run(restart_points=RESTARTS, n_record=4, n_continue=8)
    return out


def test_fig8_restart_errors(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    summary = {}
    for strat, records in results.items():
        for rec in records:
            for var in TRACK:
                mean_traj = rec.mean_errors[var]
                max_traj = rec.max_errors[var]
                rows.append([
                    strat, rec.restart_point, var,
                    float(np.mean(mean_traj)) * 100,
                    float(np.max(max_traj)) * 100,
                ])
        summary[strat] = max(
            np.max(rec.max_errors["dens"]) for rec in records
        )
    report(format_table(
        ["strategy", "restart at", "variable", "mean err % (avg)",
         "max err % (peak)"],
        rows, precision=5,
        title="Fig. 8: FLASH restart from reconstructed checkpoints "
              "(8 continued checkpoints)",
    ))

    # (1) every restart run completed with finite fields.
    for strat, records in results.items():
        for rec in records:
            for var in TRACK:
                assert all(np.isfinite(e) for e in rec.mean_errors[var])

    # (2) farther restart point -> larger initial dens error.
    for strat, records in results.items():
        first_errs = [rec.mean_errors["dens"][0] for rec in records]
        assert first_errs[0] <= first_errs[-1] + 1e-6, strat

    # (3) mean error rates far below the 0.1 % threshold.
    for strat, records in results.items():
        for rec in records:
            assert np.mean(rec.mean_errors["dens"]) < 1e-3

    # (4) clustering's worst-case dens error is the best (or tied).
    assert summary["clustering"] <= min(summary.values()) * 1.5
