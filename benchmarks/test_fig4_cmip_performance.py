"""Fig. 4 reproduction: NUMARCK on CMIP5 data, three strategies.

Per variable and strategy: the incompressible ratio and mean error rate
across iterations at E = 0.1 %, B = 8.  Paper shape: clustering achieves
the lowest incompressible ratio, log-scale beats equal-width, CMIP data is
harder than FLASH, and mean error stays below 0.025 % everywhere the data
is compressible.
"""

import numpy as np

from benchmarks.conftest import CMIP_TABLE_VARS, cmip_trajectory, series_stats
from repro.analysis import format_table
from repro.core import NumarckConfig

N_ITERS = 5
STRATEGIES = ("equal_width", "log_scale", "clustering")


def _run():
    out = {}
    for var in CMIP_TABLE_VARS:
        traj = cmip_trajectory(var, N_ITERS)
        out[var] = {}
        for strat in STRATEGIES:
            cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy=strat)
            stats = series_stats(traj, cfg)
            out[var][strat] = (
                float(np.mean([s.incompressible_ratio for s in stats])),
                float(np.mean([s.mean_error for s in stats])),
            )
    return out


def test_fig4_cmip_performance(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for var in CMIP_TABLE_VARS:
        for strat in STRATEGIES:
            gamma, mean_err = results[var][strat]
            rows.append([var, strat, gamma * 100, mean_err * 100])
    headers = ["variable", "strategy", "incompressible %", "mean error %"]
    report(format_table(
        headers, rows, precision=4,
        title=f"Fig. 4: CMIP5, E=0.1 %, B=8, {N_ITERS} iterations (means)",
    ), name="fig4_cmip_performance", headers=headers, rows=rows)

    # Paper shape: clustering <= equal-width incompressible ratio on every
    # variable; mean error far below the bound.
    for var in CMIP_TABLE_VARS:
        g_cl = results[var]["clustering"][0]
        g_ew = results[var]["equal_width"][0]
        assert g_cl <= g_ew + 0.02, f"{var}: clustering should not lose badly"
        for strat in STRATEGIES:
            assert results[var][strat][1] < 1e-3, \
                f"{var}/{strat}: mean error must stay below the bound"
    # Aggregate: clustering strictly wins on average.
    mean_gamma = {
        s: np.mean([results[v][s][0] for v in CMIP_TABLE_VARS]) for s in STRATEGIES
    }
    assert mean_gamma["clustering"] <= mean_gamma["equal_width"]
    assert mean_gamma["clustering"] <= mean_gamma["log_scale"] + 0.02
