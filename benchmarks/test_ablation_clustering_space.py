"""Ablation: clustering space (this repo's documented deviation).

Plain L2 k-means on raw ratios (the paper's algorithm) vs k-means on the
variance-stabilised ``asinh(ratio / E)`` transform vs the ``auto``
selection this library defaults to.  On benign, narrow change
distributions linear clustering is fine; on heavy-tailed ones (sparse
runoff, fields crossing zero) the stabilised fit is dramatically better.
``auto`` must track the winner on every dataset.
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory
from repro.analysis import format_table
from repro.core.change import change_ratios
from repro.core.strategies import ClusteringStrategy

VARS = ("rlus", "rlds", "mc", "mrro", "abs550aer")
SPACES = ("linear", "asinh", "auto")
E = 1e-3


def _run():
    out = {}
    for var in VARS:
        traj = cmip_trajectory(var, 1)
        field = change_ratios(traj[0], traj[1])
        r = field.ratios.ravel()
        cand = r[(np.abs(r) >= E) & ~field.forced_exact.ravel()]
        out[var] = {}
        for space in SPACES:
            model = ClusteringStrategy(space=space, seed=0).fit(cand, 255, E)
            fail = float(np.mean(np.abs(model.approximate(cand) - cand) >= E))
            out[var][space] = fail
    return out


def test_ablation_clustering_space(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[var] + [results[var][s] * 100 for s in SPACES] for var in VARS]
    report(format_table(
        ["variable"] + [f"{s} fail %" for s in SPACES], rows, precision=3,
        title="Ablation: clustering space (candidate out-of-tolerance rate)",
    ))
    for var in VARS:
        best = min(results[var][s] for s in ("linear", "asinh"))
        assert results[var]["auto"] <= best + 0.02, \
            f"{var}: auto must track the better space"
    # The stabilised space must be decisively better somewhere (else the
    # deviation from the paper would be unjustified).
    gains = [results[v]["linear"] - results[v]["asinh"] for v in VARS]
    assert max(gains) > 0.2
