"""Ablation: reserving index 0 for below-tolerance changes.

The paper dedicates index 0 to points with |ratio| < E, leaving 2^B - 1
bins for the rest.  The alternative spends all 2^B indices on bins and
lets the strategy's own near-zero bins absorb small changes.  On data
whose change distributions peak at zero (every variable here), the
reservation should win or tie: the zero index costs nothing and frees the
strategy from modelling the peak.
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory, series_stats
from repro.analysis import format_table
from repro.core import NumarckConfig

VARS = ("rlus", "rlds", "abs550aer")


def _run():
    out = {}
    for var in VARS:
        traj = cmip_trajectory(var, 3)
        res = {}
        for reserved in (True, False):
            cfg = NumarckConfig(error_bound=1e-3, nbits=8,
                                strategy="clustering",
                                reserve_zero_bin=reserved)
            stats = series_stats(traj, cfg)
            res[reserved] = (
                float(np.mean([s.incompressible_ratio for s in stats])),
                float(np.mean([s.mean_error for s in stats])),
            )
        out[var] = res
    return out


def test_ablation_zero_bin(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for var in VARS:
        for reserved in (True, False):
            g, e = results[var][reserved]
            rows.append([var, "reserved" if reserved else "plain",
                         g * 100, e * 100])
    report(format_table(
        ["variable", "index-0 mode", "incompressible %", "mean error %"],
        rows, precision=4,
        title="Ablation: reserved zero index vs full-table binning "
              "(clustering, B=8, E=0.1 %)",
    ))
    for var in VARS:
        g_res, _ = results[var][True]
        g_plain, _ = results[var][False]
        assert g_res <= g_plain + 0.05, \
            f"{var}: reserving index 0 should not hurt"
