"""Rate-distortion surface: the (E, B) design space in one view.

Generalises Figs 6 and 7: sweep tolerance and index width on a CMIP
iteration pair, print the full grid and its Pareto frontier, and assert
the trade-off laws that make the knobs usable (monotone in E at fixed B;
the frontier spans multiple configurations rather than one setting
dominating everything).
"""

from benchmarks.conftest import cmip_trajectory
from repro.analysis import format_table, pareto_frontier, sweep

BOUNDS = (5e-4, 1e-3, 2e-3, 5e-3)
BITS = (6, 8, 10)


def _run():
    traj = cmip_trajectory("rlds", 1)
    points = sweep(traj[0], traj[1], error_bounds=BOUNDS, nbits=BITS)
    return points, pareto_frontier(points)


def test_rate_distortion(benchmark, report):
    points, frontier = benchmark.pedantic(_run, rounds=1, iterations=1)
    frontier_set = {(p.error_bound, p.nbits) for p in frontier}
    rows = [
        [p.error_bound * 100, p.nbits, p.ratio, p.mean_error * 100,
         p.incompressible_ratio * 100,
         "*" if (p.error_bound, p.nbits) in frontier_set else ""]
        for p in points
    ]
    report(format_table(
        ["E %", "B", "ratio %", "mean err %", "incompressible %", "pareto"],
        rows, precision=4,
        title="Rate-distortion surface on rlds (clustering); "
              "* = Pareto-optimal",
    ))

    # The hard guarantee holds across the whole grid.
    assert all(p.max_error < p.error_bound for p in points)
    # The frontier is a genuine curve: multiple non-dominated settings.
    assert len(frontier) >= 3
    # Extremes are on the frontier: the most accurate setting and the
    # best-compressing setting can't be dominated.
    best_ratio = max(points, key=lambda p: p.ratio)
    best_error = min(points, key=lambda p: p.mean_error)
    assert (best_ratio.error_bound, best_ratio.nbits) in frontier_set
    assert (best_error.error_bound, best_error.nbits) in frontier_set
