"""Ablation: distributed model-fit transports (in-situ deployment choice).

The paper's in-situ setting demands "minimal data movement".  Three ways
to learn one shared bin table across ranks:

* **sample** -- gather a bounded candidate sample to rank 0 and fit there
  (O(ranks x sample) traffic + broadcast of the table);
* **sample+refine** -- additionally run distributed Lloyd from the
  broadcast table (O(k) allreduce per iteration);
* **sketch** -- allreduce a fixed 4096-bin mergeable histogram and fit the
  identical weighted model on every rank (O(bins), rank-count independent,
  no table broadcast).

This bench compares the resulting global incompressible ratio against the
serial (all-data) fit on the same iteration pair, plus the communication
volume each transport moves.
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory
from repro.analysis import format_table
from repro.core import NumarckConfig, encode_pair
from repro.parallel import block_partition, parallel_encode, run_spmd

N_RANKS = 2
SAMPLE = 8192


def _worker(comm, prev_shards, curr_shards, cfg, mode, refine):
    enc, stats = parallel_encode(comm, prev_shards[comm.rank],
                                 curr_shards[comm.rank], cfg,
                                 sample_per_rank=SAMPLE,
                                 fit_mode=mode, refine=refine)
    return stats.incompressible_ratio


def _run():
    cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
    traj = cmip_trajectory("rlds", 1)
    prev, curr = traj[0], traj[1]
    serial = encode_pair(prev, curr, cfg)[0].incompressible_ratio

    prev_shards = block_partition(prev.ravel(), N_RANKS)
    curr_shards = block_partition(curr.ravel(), N_RANKS)
    results = {}
    for label, mode, refine in (("sample", "sample", False),
                                ("sample+refine", "sample", True),
                                ("sketch", "sketch", False)):
        gammas = run_spmd(_worker, N_RANKS, prev_shards, curr_shards, cfg,
                          mode, refine)
        results[label] = gammas[0]
    comm_bytes = {
        "sample": N_RANKS * SAMPLE * 8,
        "sample+refine": N_RANKS * SAMPLE * 8 + 25 * 255 * 16,
        "sketch": N_RANKS * 4096 * 8,
    }
    return serial, results, comm_bytes


def test_ablation_distributed_fit(benchmark, report):
    serial, results, comm_bytes = benchmark.pedantic(_run, rounds=1,
                                                     iterations=1)
    rows = [["serial (all data)", serial * 100, 0]]
    for label, gamma in results.items():
        rows.append([label, gamma * 100, comm_bytes[label]])
    report(format_table(
        ["fit transport", "incompressible %", "~bytes moved"],
        rows, precision=3,
        title=f"Ablation: distributed model fit (rlds, {N_RANKS} ranks, "
              "E=0.1 %, B=8)",
    ))
    # Every transport must stay close to the serial fit's quality.
    for label, gamma in results.items():
        assert gamma <= serial + 0.05, \
            f"{label}: distributed fit lost too much coverage"
