"""AMR + NUMARCK compound savings.

FLASH's adaptive mesh already concentrates storage where the solution has
structure; NUMARCK then compresses each block's temporal deltas.  This
bench quantifies the compounding on a moving-feature field: cells stored
by the adaptive mesh vs an equivalent uniform fine mesh, and NUMARCK's
ratio on top of the per-block chains.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import NumarckConfig
from repro.simulations.flash import AmrCheckpointer, QuadTreeMesh

N_ITERS = 8
MAX_LEVEL = 3


def _field(cx):
    def fn(yy, xx):
        return 1.0 + 5.0 * np.exp(-((xx - cx) ** 2 + (yy - 0.5) ** 2) / 0.04**2)
    return fn


def _run():
    mesh = QuadTreeMesh(block_size=16, base=2, max_level=MAX_LEVEL)
    ckpt = AmrCheckpointer(NumarckConfig(error_bound=1e-3, nbits=8,
                                         strategy="clustering"))
    amr_cells = []
    lifecycle = {"born": 0, "died": 0}
    for i in range(N_ITERS):
        cx = 0.2 + 0.6 * i / (N_ITERS - 1)
        mesh.sample(_field(cx))
        mesh.adapt(refine_above=0.5, coarsen_below=0.05)
        mesh.sample(_field(cx))
        stats = ckpt.record(mesh.snapshot())
        amr_cells.append(mesh.n_cells)
        lifecycle["born"] += stats["born"]
        lifecycle["died"] += stats["died"]

    # Equivalent uniform mesh at the finest level.
    uniform_cells = (mesh.base * (1 << MAX_LEVEL) * mesh.block_size) ** 2

    # NUMARCK bytes: full records (first iteration of each lifetime) cost
    # 64 bits/cell; deltas cost ~B bits/cell plus exact values.
    full_bits = delta_bits = raw_bits = 0
    for lifetimes in ckpt._chains.values():  # noqa: SLF001 - measurement
        for chain in lifetimes:
            n = chain.full_checkpoint.size
            full_bits += 64 * n
            raw_bits += 64 * n
            for enc in chain.deltas:
                raw_bits += 64 * n
                gamma = enc.incompressible_ratio
                delta_bits += int((1 - gamma) * n * enc.nbits
                                  + gamma * n * 64
                                  + enc.representatives.size * 64)
    numarck_bits = full_bits + delta_bits
    return amr_cells, uniform_cells, lifecycle, raw_bits, numarck_bits


def test_amr_compression(benchmark, report):
    amr_cells, uniform_cells, lifecycle, raw_bits, numarck_bits = \
        benchmark.pedantic(_run, rounds=1, iterations=1)
    mean_amr = float(np.mean(amr_cells))
    mesh_saving = 1 - mean_amr / uniform_cells
    numarck_saving = 1 - numarck_bits / raw_bits
    rows = [
        ["uniform fine-mesh cells / iteration", uniform_cells],
        ["adaptive-mesh cells / iteration (mean)", mean_amr],
        ["mesh saving", f"{mesh_saving:.1%}"],
        ["blocks born / died over the run",
         f"{lifecycle['born']} / {lifecycle['died']}"],
        ["AMR checkpoint raw bits", raw_bits],
        ["AMR + NUMARCK bits", numarck_bits],
        ["NUMARCK saving on AMR data", f"{numarck_saving:.1%}"],
        ["compound vs uniform raw",
         f"{1 - (numarck_bits / raw_bits) * (mean_amr / uniform_cells):.1%}"],
    ]
    report(format_table(["quantity", "value"], rows, precision=1,
                        title="AMR x NUMARCK compound storage savings"))

    assert mesh_saving > 0.5, "adaptivity must beat the uniform fine mesh"
    assert numarck_saving > 0.3, "NUMARCK must compress the per-block chains"
    assert lifecycle["born"] > 0 and lifecycle["died"] > 0, \
        "the moving feature must churn the block population"
