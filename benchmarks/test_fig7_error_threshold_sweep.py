"""Fig. 7 reproduction: effect of the user tolerance E.

Clustering on abs550aer (the paper's hardest dataset) with E swept from
0.1 % to 0.5 %.  Paper shape: incompressible ratio falls (40+ % -> <10 %),
compression ratio rises (<50 % -> >80 %), and the mean error, while
growing, stays well under the tolerance (e.g. < 0.1 % at E = 0.4 %).
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory, series_stats
from repro.analysis import format_table
from repro.core import NumarckConfig

N_ITERS = 5
BOUNDS = (1e-3, 2e-3, 3e-3, 4e-3, 5e-3)


def _run():
    traj = cmip_trajectory("abs550aer", N_ITERS)
    out = {}
    for e in BOUNDS:
        cfg = NumarckConfig(error_bound=e, nbits=8, strategy="clustering")
        stats = series_stats(traj, cfg)
        out[e] = (
            float(np.mean([s.incompressible_ratio for s in stats])),
            float(np.mean([s.ratio_paper for s in stats])),
            float(np.mean([s.mean_error for s in stats])),
            float(np.max([s.max_error for s in stats])),
        )
    return out


def test_fig7_error_threshold_sweep(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [e * 100, g * 100, r, me * 100, xe * 100]
        for e, (g, r, me, xe) in results.items()
    ]
    report(format_table(
        ["E %", "incompressible %", "compression ratio %",
         "mean error %", "max error %"],
        rows, precision=3,
        title=f"Fig. 7: abs550aer, clustering, B=8, {N_ITERS} iterations",
    ))

    gammas = [results[e][0] for e in BOUNDS]
    ratios = [results[e][1] for e in BOUNDS]
    # Monotone trends with growing tolerance.
    assert all(a >= b - 1e-9 for a, b in zip(gammas, gammas[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))
    # Hard guarantee at every setting; mean error well below the bound.
    for e in BOUNDS:
        _, _, mean_err, max_err = results[e]
        assert max_err < e
        assert mean_err < e / 2
