"""Table I reproduction: compression ratio vs B-Splines and ISABELA.

Ten datasets (5 CMIP5 variables + 5 FLASH variables), E = 0.5 %,
clustering, B = 9 for CMIP / 8 for FLASH; ISABELA uses W0 = 512 / 256 with
P_I = 30; B-Splines uses P_S = 0.8 n.  Paper shape: B-Splines is pinned at
20 %; ISABELA at 80.078 / 75.781 %; NUMARCK wins on most datasets (9/10 in
the paper -- mrro, whose zero-heavy base defeats the ratio transform, is
the expected exception).
"""

import numpy as np

from benchmarks.conftest import (
    CMIP_TABLE_VARS,
    FLASH_TABLE_VARS,
    cmip_trajectory,
    series_stats,
)
from repro.analysis import format_table
from repro.baselines import BSplineCompressor, IsabelaCompressor
from repro.core import NumarckConfig

N_ITERS = 4


def _run(flash_trajectory):
    rows = {}
    datasets = [("cmip", v) for v in CMIP_TABLE_VARS] + [
        ("flash", v) for v in FLASH_TABLE_VARS
    ]
    for family, var in datasets:
        if family == "cmip":
            traj = cmip_trajectory(var, N_ITERS)
            nbits, w0 = 9, 512
        else:
            traj = [cp[var] for cp in flash_trajectory][: N_ITERS + 1]
            nbits, w0 = 8, 256
        cfg = NumarckConfig(error_bound=5e-3, nbits=nbits, strategy="clustering")
        stats = series_stats(traj, cfg)
        numarck = [s.ratio_paper for s in stats]

        bs = BSplineCompressor(coef_fraction=0.8)
        isa = IsabelaCompressor(window_size=w0, n_coef=30)
        bs_r = [bs.compression_ratio(bs.compress(t)) for t in traj[1:]]
        isa_r = [isa.compression_ratio(isa.compress(t.ravel())) for t in traj[1:]]
        rows[var] = (
            (float(np.mean(bs_r)), float(np.std(bs_r))),
            (float(np.mean(isa_r)), float(np.std(isa_r))),
            (float(np.mean(numarck)), float(np.std(numarck))),
        )
    return rows


def test_table1_compression_ratio(benchmark, report, flash_trajectory):
    results = benchmark.pedantic(_run, args=(flash_trajectory,),
                                 rounds=1, iterations=1)
    table = []
    for var, (bs, isa, num) in results.items():
        table.append([
            var,
            f"{bs[0]:.3f}+-{bs[1]:.3f}",
            f"{isa[0]:.3f}+-{isa[1]:.3f}",
            f"{num[0]:.3f}+-{num[1]:.3f}",
        ])
    headers = ["dataset", "B-Splines", "ISABELA", "NUMARCK"]
    report(format_table(
        headers, table,
        title="Table I: compression ratio (%) on ten simulation datasets",
    ), name="table1_compression_ratio", headers=headers, rows=table)

    wins = 0
    for var, (bs, isa, num) in results.items():
        assert bs[0] == 20.0 or abs(bs[0] - 20.0) < 0.2, \
            "B-Splines ratio is fixed by P_S = 0.8 n"
        assert isa[0] in (80.078125, 75.78125) or 70 < isa[0] < 81
        if num[0] > isa[0]:
            wins += 1
    # Paper: NUMARCK wins 9/10; require a clear majority here.
    assert wins >= 6, f"NUMARCK should beat ISABELA on most datasets, won {wins}/10"
