"""Scaling behaviour of the encode path.

Not a paper artefact: establishes that encode cost grows linearly in the
point count and sub-linearly in the bin count (the O(n log k) assignment),
which is what makes the method viable at checkpoint scale.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import NumarckConfig, encode_pair


def _pair(n, rng):
    prev = rng.uniform(1.0, 2.0, n)
    return prev, prev * (1.0 + rng.normal(0.0, 0.003, n))


def _time_encode(prev, curr, cfg, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        encode_pair(prev, curr, cfg)
        best = min(best, time.perf_counter() - t0)
    return best


def _run():
    rng = np.random.default_rng(0)
    sizes = (50_000, 200_000, 800_000)
    cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
    by_n = {}
    for n in sizes:
        prev, curr = _pair(n, rng)
        by_n[n] = _time_encode(prev, curr, cfg)

    prev, curr = _pair(200_000, rng)
    by_k = {}
    for b in (6, 8, 10):
        by_k[b] = _time_encode(prev, curr, cfg.with_(nbits=b))
    return by_n, by_k


def test_scaling(benchmark, report):
    by_n, by_k = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[f"n={n:,}", t * 1e3, n / t / 1e6] for n, t in by_n.items()]
    rows += [[f"B={b} (n=200k)", t * 1e3, 0.2 / t] for b, t in by_k.items()]
    report(format_table(
        ["configuration", "encode ms", "Mpts/s"], rows, precision=2,
        title="Scaling: clustering encode vs point count and index width",
    ))
    sizes = sorted(by_n)
    # Growing 16x in points should grow time by < 64x (roughly linear with
    # generous slack for fixed model-fit costs and timer noise).
    assert by_n[sizes[-1]] < 64 * max(by_n[sizes[0]], 1e-4)
    # Quadrupling the bin count (B 8 -> 10) must not quadruple time:
    # assignment is O(n log k).
    assert by_k[10] < 3 * by_k[8] + 0.05
    # Throughput at the large size should be practical (hundreds of
    # kpts/s on a single modest core; C implementations would be ~100x).
    assert sizes[-1] / by_n[sizes[-1]] > 3e5
