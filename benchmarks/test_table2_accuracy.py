"""Table II reproduction: Pearson rho and RMSE xi vs the baselines.

Same configuration as Table I.  Paper shape: NUMARCK reaches rho = 0.999
on almost every dataset; B-Splines' xi runs an order of magnitude above
ISABELA's and NUMARCK's; NUMARCK's xi beats ISABELA's on (nearly) all
datasets.
"""

import numpy as np

from benchmarks.conftest import (
    CMIP_TABLE_VARS,
    FLASH_TABLE_VARS,
    cmip_trajectory,
)
from repro.analysis import format_table
from repro.baselines import BSplineCompressor, IsabelaCompressor
from repro import Codec
from repro.core import NumarckConfig, pearson_r, rmse

N_ITERS = 4


def _run(flash_trajectory):
    out = {}
    datasets = [("cmip", v) for v in CMIP_TABLE_VARS] + [
        ("flash", v) for v in FLASH_TABLE_VARS
    ]
    for family, var in datasets:
        if family == "cmip":
            traj = cmip_trajectory(var, N_ITERS)
            nbits, w0 = 9, 512
        else:
            traj = [cp[var] for cp in flash_trajectory][: N_ITERS + 1]
            nbits, w0 = 8, 256
        comp = Codec(
            config=NumarckConfig(error_bound=5e-3, nbits=nbits, strategy="clustering")
        )
        bs = BSplineCompressor(coef_fraction=0.8)
        isa = IsabelaCompressor(window_size=w0, n_coef=30)

        metrics = {"bs": [], "isa": [], "num": []}
        for prev, curr in zip(traj, traj[1:]):
            num_out = comp.decompress(prev, comp.compress(prev, curr))
            bs_out = bs.decompress(bs.compress(curr)).reshape(curr.shape)
            isa_out = isa.decompress(isa.compress(curr.ravel())).reshape(curr.shape)
            for key, dec in (("bs", bs_out), ("isa", isa_out), ("num", num_out)):
                metrics[key].append((pearson_r(curr, dec), rmse(curr, dec)))
        out[var] = {
            key: (
                float(np.mean([m[0] for m in vals])),
                float(np.mean([m[1] for m in vals])),
            )
            for key, vals in metrics.items()
        }
    return out


def test_table2_accuracy(benchmark, report, flash_trajectory):
    results = benchmark.pedantic(_run, args=(flash_trajectory,),
                                 rounds=1, iterations=1)
    table = []
    for var, m in results.items():
        table.append([
            var,
            m["bs"][0], m["isa"][0], m["num"][0],
            m["bs"][1], m["isa"][1], m["num"][1],
        ])
    report(format_table(
        ["dataset", "rho B-Spl", "rho ISA", "rho NUM",
         "xi B-Spl", "xi ISA", "xi NUM"],
        table, precision=4,
        title="Table II: accuracy (Pearson rho, RMSE xi) on ten datasets",
    ))

    high_rho = sum(1 for m in results.values() if m["num"][0] > 0.995)
    assert high_rho >= 8, "NUMARCK should reach rho ~0.999 on most datasets"

    # B-Splines' xi must be the worst by a wide margin in aggregate.
    xi_ratio = np.mean([
        m["bs"][1] / max(m["num"][1], 1e-12) for m in results.values()
    ])
    assert xi_ratio > 2.0, "paper: B-Splines xi an order of magnitude worse"

    num_beats_isa = sum(
        1 for m in results.values() if m["num"][1] <= m["isa"][1] * 1.05
    )
    assert num_beats_isa >= 6, "NUMARCK should match or beat ISABELA's xi"
