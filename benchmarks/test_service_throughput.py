"""Service-path overhead benchmarks.

Measures what the service adds on top of the raw codec: the wire framing,
the in-memory container round trip, and a full submit→wait→result cycle
through the in-process ``CompressionService`` (queue + worker handoff +
telemetry routing, no HTTP).  The HTTP layer itself is exercised by the
integration tests; its cost is dominated by the socket stack, not by
code this repo can regress.
"""

import numpy as np
import pytest

from repro import Codec
from repro.core import NumarckConfig
from repro.io import chain_from_bytes, chain_to_bytes
from repro.service import CompressionService, ServiceConfig
from repro.service.wire import pack_arrays, unpack_arrays

N = 200_000


@pytest.fixture(scope="module")
def states():
    rng = np.random.default_rng(7)
    base = rng.uniform(1.0, 2.0, N)
    return [base, base * (1.0 + rng.normal(0.0, 0.002, N))]


@pytest.fixture(scope="module")
def chain(states):
    codec = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8,
                                       strategy="equal_width"))
    return codec.compress_chain(states)


def test_wire_pack_throughput(benchmark, states):
    payload = benchmark(pack_arrays, states)
    assert len(payload) > 2 * N * 8


def test_wire_unpack_throughput(benchmark, states):
    payload = pack_arrays(states)
    arrays = benchmark(unpack_arrays, payload)
    assert len(arrays) == 2


def test_chain_to_bytes_throughput(benchmark, chain):
    blob = benchmark(chain_to_bytes, chain)
    assert blob


def test_chain_from_bytes_throughput(benchmark, chain):
    blob = chain_to_bytes(chain)
    rebuilt = benchmark(chain_from_bytes, blob)
    assert len(rebuilt) == len(chain)


def test_service_job_cycle_throughput(benchmark, states):
    """One submit→wait→result cycle per round, against a live queue."""
    cfg = {"error_bound": 1e-3, "nbits": 8, "strategy": "equal_width"}
    body = pack_arrays([states[1]])
    with CompressionService(ServiceConfig(workers=1, capacity=4)) as svc:
        counter = iter(range(10_000_000))

        def cycle():
            job = svc.submit_compress(f"bench-{next(counter)}", body, cfg)
            svc.queue.wait(job.id, timeout=60)
            return svc.job_result(job.id)

        result = benchmark(cycle)
    assert b"full" in result
