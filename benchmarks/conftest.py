"""Shared benchmark fixtures.

Each benchmark reproduces one paper table/figure: it runs the experiment
once under ``benchmark.pedantic`` (so ``pytest-benchmark`` records the
wall time of regenerating the artefact) and prints the paper-shaped rows
through the ``report`` fixture, which bypasses pytest's output capture so
the tables land in ``bench_output.txt``.

Scale note: experiments run at the paper's CMIP grid (90 x 144) but with
fewer iterations than the paper's 50-100, keeping the full bench suite in
minutes on one core.  The *shape* conclusions (who wins, monotone trends)
are iteration-count independent.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.codec import Codec
from repro.core import NumarckConfig
from repro.simulations.cmip import CmipSimulation
from repro.simulations.flash import FlashSimulation

#: variables the paper's Fig. 5 / Tables I-II use from FLASH.
FLASH_TABLE_VARS = ("dens", "pres", "temp", "ener", "eint")
#: variables the paper's Fig. 4 / Tables I-II use from CMIP5.
CMIP_TABLE_VARS = ("rlus", "mrsos", "mrro", "rlds", "mc")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="PATH",
        help="also write every table emitted through the `report` fixture "
             "as structured JSON (the observatory's trajectory format), "
             "next to bench_output.txt")


def pytest_configure(config):
    if config.getoption("--bench-json", default=None):
        config._bench_json_tables = []


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json", default=None)
    tables = getattr(session.config, "_bench_json_tables", None)
    if not path or tables is None:
        return
    from repro.bench import env_fingerprint

    doc = {
        "schema": "numarck-bench-tables/1",
        "created_unix": time.time(),
        "env": env_fingerprint(),
        "tables": tables,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _jsonable(value):
    """Plain-python copy of a table cell (numpy scalars included)."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


@pytest.fixture
def report(request, capsys):
    """Print straight to the terminal, bypassing capture.

    Benchmarks that produce paper-table data pass the raw rows alongside
    the rendered text (``report(text, name=..., headers=..., rows=...)``);
    under ``--bench-json PATH`` those rows are collected and written as
    one structured JSON document at session end.
    """
    store = getattr(request.config, "_bench_json_tables", None)

    def _report(text: str, *, name: str | None = None,
                headers: list[str] | None = None,
                rows: list[list] | None = None) -> None:
        with capsys.disabled():
            print("\n" + text)
        if store is not None:
            store.append({
                "test": request.node.nodeid,
                "name": name,
                "headers": headers,
                "rows": [[_jsonable(c) for c in row] for row in rows]
                        if rows is not None else None,
                "text": text,
            })

    return _report


@pytest.fixture(scope="session")
def flash_trajectory() -> list[dict[str, np.ndarray]]:
    """9 checkpoints of a developed Sedov run (64 x 64, shared)."""
    sim = FlashSimulation("sedov", ny=64, nx=64, steps_per_checkpoint=3)
    # Skip the initial transient (paper measures at iteration 32+): advance
    # a few checkpoints before recording.
    for _ in range(4):
        sim.advance()
    return list(sim.run(8))


def cmip_trajectory(variable: str, n_iters: int, nlat: int = 90,
                    nlon: int = 144, seed: int = 42) -> list[np.ndarray]:
    """n_iters + 1 iterations of one CMIP variable at the paper grid."""
    if variable == "mc":
        # mc is 3-D (8 levels); reduce the horizontal grid to keep the
        # point count comparable to the surface variables.
        nlat, nlon = max(nlat // 2, 8), max(nlon // 2, 8)
    sim = CmipSimulation(variable, nlat=nlat, nlon=nlon, seed=seed)
    return [cp[variable] for cp in sim.run(n_iters)]


def series_stats(trajectory: list[np.ndarray], config: NumarckConfig):
    """Per-iteration CompressionStats along a trajectory."""
    comp = Codec(config=config)
    out = []
    for prev, curr in zip(trajectory, trajectory[1:]):
        out.append(comp.stats(prev, curr))
    return out
