"""Fig. 5 reproduction: NUMARCK on FLASH data, three strategies.

Paper shape: FLASH is markedly easier than CMIP5 -- clustering stays under
a few percent incompressible on the thermodynamic variables -- and the
strategy ordering (clustering best) holds.
"""

import numpy as np

from benchmarks.conftest import FLASH_TABLE_VARS, series_stats
from repro.analysis import format_table
from repro.core import NumarckConfig

STRATEGIES = ("equal_width", "log_scale", "clustering")


def _run(flash_trajectory):
    out = {}
    for var in FLASH_TABLE_VARS:
        traj = [cp[var] for cp in flash_trajectory]
        out[var] = {}
        for strat in STRATEGIES:
            cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy=strat)
            stats = series_stats(traj, cfg)
            out[var][strat] = (
                float(np.mean([s.incompressible_ratio for s in stats])),
                float(np.mean([s.mean_error for s in stats])),
            )
    return out


def test_fig5_flash_performance(benchmark, report, flash_trajectory):
    results = benchmark.pedantic(_run, args=(flash_trajectory,),
                                 rounds=1, iterations=1)
    rows = []
    for var in FLASH_TABLE_VARS:
        for strat in STRATEGIES:
            gamma, mean_err = results[var][strat]
            rows.append([var, strat, gamma * 100, mean_err * 100])
    headers = ["variable", "strategy", "incompressible %", "mean error %"]
    report(format_table(
        headers, rows, precision=4,
        title="Fig. 5: FLASH (Sedov), E=0.1 %, B=8 (means over iterations)",
    ), name="fig5_flash_performance", headers=headers, rows=rows)

    for var in FLASH_TABLE_VARS:
        for strat in STRATEGIES:
            assert results[var][strat][1] < 1e-3
        assert results[var]["clustering"][0] <= \
            results[var]["equal_width"][0] + 0.02

    # FLASH vs CMIP: clustering's mean incompressible ratio on FLASH should
    # be small (paper: < 7 %; allow slack for the synthetic substrate).
    mean_cl = np.mean([results[v]["clustering"][0] for v in FLASH_TABLE_VARS])
    assert mean_cl < 0.15, f"FLASH should be easy for clustering, got {mean_cl:.3f}"
