"""Ablation: forward predictive coding vs binning raw values.

The paper's core transform is compressing *change ratios* rather than the
values themselves (Section II-B: repeated patterns are rare in snapshots
but common in change space).  This bench runs the same binning machinery
on (a) change ratios between consecutive iterations and (b) the raw values
of the later iteration normalised by their own mean (so both are unitless
and share the E-relative bound semantics), and compares the fraction of
points representable within tolerance.
"""

import numpy as np

from benchmarks.conftest import cmip_trajectory
from repro.analysis import format_table
from repro.core.change import change_ratios
from repro.core.strategies import ClusteringStrategy

VARS = ("rlus", "rlds", "mrsos")
E = 1e-3
K = 255


def _cover(points: np.ndarray) -> float:
    """Fraction of points within E of their representative."""
    small = np.abs(points) < E
    cand = points[~small]
    if cand.size == 0:
        return 1.0
    model = ClusteringStrategy(seed=0).fit(cand, K, E)
    ok = np.abs(model.approximate(cand) - cand) < E
    return float((small.sum() + ok.sum()) / points.size)


def _run():
    out = {}
    for var in VARS:
        traj = cmip_trajectory(var, 1)
        prev, curr = traj[0], traj[1]
        field = change_ratios(prev, curr)
        deltas = field.ratios.ravel()[~field.forced_exact.ravel()]
        # Raw values, shifted/scaled so the same E-relative machinery
        # applies: x / mean(x) - 1 measures deviation from the mean value.
        vals = curr.ravel()
        raw = vals / np.mean(np.abs(vals)) - 1.0
        out[var] = (_cover(deltas), _cover(raw))
    return out


def test_ablation_delta_vs_raw(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [var, d * 100, r * 100] for var, (d, r) in results.items()
    ]
    report(format_table(
        ["variable", "change-ratio coverage %", "raw-value coverage %"],
        rows, precision=2,
        title="Ablation: forward predictive coding vs raw-value binning "
              "(clustering, B=8, E=0.1 %)",
    ))
    for var, (delta_cov, raw_cov) in results.items():
        assert delta_cov > raw_cov, \
            f"{var}: the temporal transform must be what makes data compressible"
    # The gap should be decisive, not marginal (paper: order of magnitude).
    mean_gap = np.mean([d - r for d, r in results.values()])
    assert mean_gap > 0.2
