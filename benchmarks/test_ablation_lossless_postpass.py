"""Ablation: stacking a lossless pass on NUMARCK output.

The paper notes (Section III-B) that a lossless compressor like FPC could
be applied to NUMARCK's output for further reduction but leaves it out of
scope.  This bench measures that headroom: the B-bit index stream is far
from uniform (most points sit in a few dense bins), so zlib recovers real
space; the incompressible float64 stream stays near-incompressible.
"""

import numpy as np
import zlib

from benchmarks.conftest import cmip_trajectory
from repro.analysis import format_table, word_entropy
from repro.baselines import huffman_decode, huffman_encode
from repro.bitpack import pack_bits
from repro.core import NumarckConfig, encode_pair


def _run():
    traj = cmip_trajectory("rlds", 1)
    prev, curr = traj[0], traj[1]
    cfg = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering")
    enc, _ = encode_pair(prev, curr, cfg)

    packed = pack_bits(enc.indices, enc.nbits)
    packed_z = zlib.compress(packed, 6)
    packed_h = huffman_encode(enc.indices, 1 << enc.nbits)
    assert np.array_equal(huffman_decode(packed_h), enc.indices)
    exact = enc.exact_values.tobytes()
    exact_z = zlib.compress(exact, 6) if exact else b""
    return enc, packed, packed_z, packed_h, exact, exact_z


def test_ablation_lossless_postpass(benchmark, report):
    enc, packed, packed_z, packed_h, exact, exact_z = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    idx_entropy = word_entropy(enc.indices)
    rows = [
        ["index stream entropy (bits/idx, width 8)", idx_entropy],
        ["index stream raw (bytes)", len(packed)],
        ["index stream + zlib (bytes)", len(packed_z)],
        ["index stream + canonical Huffman (bytes)", len(packed_h)],
        ["index zlib gain (%)",
         100 * (1 - len(packed_z) / max(len(packed), 1))],
        ["index Huffman gain (%)",
         100 * (1 - len(packed_h) / max(len(packed), 1))],
        ["exact stream raw (bytes)", len(exact)],
        ["exact stream + zlib (bytes)", len(exact_z)],
    ]
    report(format_table(["quantity", "value"], rows, precision=2,
                        title="Ablation: lossless post-pass over NUMARCK output"))

    # The index stream must compress markedly (low zeroth-order entropy).
    assert idx_entropy < enc.nbits - 1
    assert len(packed_z) < 0.8 * len(packed)
    # Huffman is the optimal zeroth-order prefix code: within ~1 bit/idx of
    # the entropy (plus the code-length table).
    predicted = idx_entropy * enc.indices.size / 8
    assert len(packed_h) < predicted + enc.indices.size / 8 + 300
    # The exact stream is raw doubles: near-incompressible.
    if len(exact) > 4096:
        assert len(exact_z) > 0.7 * len(exact)
