"""Throughput benchmarks: the pure-performance side of the harness.

Not a paper artefact; tracks the cost of the kernels a production
deployment cares about -- encode/decode per point, bit packing, k-means
assignment -- so optimisation work has a regression baseline.  These use
pytest-benchmark's normal multi-round measurement (unlike the figure
benches, which run their experiment once).
"""

import numpy as np
import pytest

from repro.bitpack import pack_bits, unpack_bits
from repro import Codec
from repro.core import NumarckConfig, decode_iteration
from repro.kmeans import assign1d, histogram_init, kmeans1d

N = 200_000


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(7)
    prev = rng.uniform(1.0, 2.0, N)
    curr = prev * (1.0 + rng.normal(0.0, 0.002, N))
    return prev, curr


def test_encode_clustering_throughput(benchmark, pair):
    prev, curr = pair
    comp = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8,
                                           strategy="clustering"))
    enc = benchmark(comp.compress, prev, curr)
    assert enc.n_points == N


def test_encode_equal_width_throughput(benchmark, pair):
    prev, curr = pair
    comp = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8,
                                           strategy="equal_width"))
    enc = benchmark(comp.compress, prev, curr)
    assert enc.n_points == N


def test_decode_throughput(benchmark, pair):
    prev, curr = pair
    comp = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8))
    enc = comp.compress(prev, curr)
    out = benchmark(decode_iteration, prev, enc)
    assert out.shape == (N,)


def test_bitpack_throughput(benchmark):
    rng = np.random.default_rng(7)
    vals = rng.integers(0, 256, N).astype(np.uint32)
    packed = benchmark(pack_bits, vals, 9)
    assert len(packed) == (N * 9 + 7) // 8


def test_bitunpack_throughput(benchmark):
    rng = np.random.default_rng(7)
    vals = rng.integers(0, 256, N).astype(np.uint32)
    packed = pack_bits(vals, 9)
    out = benchmark(unpack_bits, packed, N, 9)
    np.testing.assert_array_equal(out, vals)


def test_kmeans_assign_throughput(benchmark):
    rng = np.random.default_rng(7)
    data = rng.normal(size=N)
    centroids = np.sort(rng.normal(size=255))
    labels = benchmark(assign1d, data, centroids)
    assert labels.shape == (N,)


def test_kmeans_fit_throughput(benchmark):
    rng = np.random.default_rng(7)
    data = rng.normal(size=50_000)
    init = histogram_init(data, 255)
    res = benchmark(kmeans1d, data, init, 10)
    assert res.centroids.shape == (255,)
