"""Scenario-based benchmark runner with regression gating.

The performance observatory's measurement layer: deterministic
compression workloads (:mod:`repro.bench.scenarios`) executed N times
under tracing (:mod:`repro.bench.runner`), reduced to median/MAD
statistics with per-stage self times and memory peaks, fingerprinted
with the environment that produced them, and written as schema-validated
``BENCH_<scenario>.json`` documents (:mod:`repro.bench.schema`).  The
comparator (:mod:`repro.bench.compare`) gates a run against a committed
baseline using a MAD-derived noise threshold instead of naive percent
deltas, so the gate adapts to each stage's measured jitter.

Command-line front end::

    python -m repro bench run --quick --out bench_results
    python -m repro bench compare benchmarks/baselines bench_results
    python -m repro bench report bench_results
"""

from __future__ import annotations

from repro.bench.compare import (
    Comparison,
    Delta,
    Thresholds,
    compare_dirs,
    compare_docs,
    comparison_table,
    load_bench,
)
from repro.bench.runner import (
    DEFAULT_REPEATS,
    bench_path,
    env_fingerprint,
    robust_stats,
    run_scenario,
    run_suite,
    write_bench,
)
from repro.bench.scenarios import SCENARIOS, Scenario, get_scenario, scenario_names
from repro.bench.schema import SCHEMA_VERSION, BenchSchemaError, validate_bench

__all__ = [
    "Scenario",
    "SCENARIOS",
    "scenario_names",
    "get_scenario",
    "run_scenario",
    "run_suite",
    "write_bench",
    "bench_path",
    "env_fingerprint",
    "robust_stats",
    "DEFAULT_REPEATS",
    "Thresholds",
    "Delta",
    "Comparison",
    "compare_docs",
    "compare_dirs",
    "comparison_table",
    "load_bench",
    "SCHEMA_VERSION",
    "BenchSchemaError",
    "validate_bench",
]
