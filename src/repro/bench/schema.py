"""Schema for ``BENCH_<scenario>.json`` documents.

A benchmark result is only useful as a *trajectory* -- a sequence of
comparable documents across commits -- so the on-disk format is pinned
and validated on both ends: the runner validates before writing and the
comparator validates after reading.  Validation is hand-rolled (no
``jsonschema`` dependency): :func:`validate_bench` walks the document and
raises :class:`BenchSchemaError` naming the offending path.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["SCHEMA_VERSION", "BenchSchemaError", "validate_bench",
           "validate_stats_block"]

#: bump when the document layout changes incompatibly.
SCHEMA_VERSION = "numarck-bench/1"


class BenchSchemaError(ValueError):
    """A benchmark document does not conform to :data:`SCHEMA_VERSION`."""


def _require(doc: Mapping[str, Any], key: str, types, path: str) -> Any:
    if key not in doc:
        raise BenchSchemaError(f"{path}: missing required key {key!r}")
    value = doc[key]
    if not isinstance(value, types):
        raise BenchSchemaError(
            f"{path}.{key}: expected {types}, got {type(value).__name__}")
    return value


def validate_stats_block(block: Any, path: str) -> None:
    """Validate one ``{"median": f, "mad": f, "runs": [f, ...]}`` block."""
    if not isinstance(block, Mapping):
        raise BenchSchemaError(f"{path}: expected stats object")
    median = _require(block, "median", (int, float), path)
    mad = _require(block, "mad", (int, float), path)
    runs = _require(block, "runs", list, path)
    if not runs:
        raise BenchSchemaError(f"{path}.runs: must be non-empty")
    if not all(isinstance(v, (int, float)) for v in runs):
        raise BenchSchemaError(f"{path}.runs: all entries must be numbers")
    if mad < 0:
        raise BenchSchemaError(f"{path}.mad: must be >= 0, got {mad}")
    if not (min(runs) <= median <= max(runs)):
        raise BenchSchemaError(
            f"{path}.median: {median} outside run range "
            f"[{min(runs)}, {max(runs)}]")


_ENV_KEYS = ("python", "implementation", "platform", "machine", "numpy",
             "cpu_count")


def validate_bench(doc: Any) -> None:
    """Raise :class:`BenchSchemaError` unless ``doc`` is a valid result."""
    if not isinstance(doc, Mapping):
        raise BenchSchemaError("document: expected a JSON object")
    schema = _require(doc, "schema", str, "document")
    if schema != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"document.schema: expected {SCHEMA_VERSION!r}, got {schema!r}")
    _require(doc, "scenario", str, "document")
    mode = _require(doc, "mode", str, "document")
    if mode not in ("quick", "full"):
        raise BenchSchemaError(
            f"document.mode: expected 'quick' or 'full', got {mode!r}")
    repeats = _require(doc, "repeats", int, "document")
    if repeats < 1:
        raise BenchSchemaError(f"document.repeats: must be >= 1, got {repeats}")
    _require(doc, "created_unix", (int, float), "document")

    env = _require(doc, "env", Mapping, "document")
    for key in _ENV_KEYS:
        if key not in env:
            raise BenchSchemaError(f"document.env: missing key {key!r}")

    total = _require(doc, "total", Mapping, "document")
    validate_stats_block(total.get("wall_s"), "document.total.wall_s")

    stages = _require(doc, "stages", Mapping, "document")
    for name, stage in stages.items():
        path = f"document.stages[{name!r}]"
        if not isinstance(stage, Mapping):
            raise BenchSchemaError(f"{path}: expected object")
        _require(stage, "calls", int, path)
        validate_stats_block(stage.get("self_s"), f"{path}.self_s")
        validate_stats_block(stage.get("wall_s"), f"{path}.wall_s")

    memory = doc.get("memory")
    if memory is not None:
        if not isinstance(memory, Mapping):
            raise BenchSchemaError("document.memory: expected object")
        for name, stage in (memory.get("stages") or {}).items():
            if not isinstance(stage.get("mem_py_peak_kb"), (int, float)):
                raise BenchSchemaError(
                    f"document.memory.stages[{name!r}].mem_py_peak_kb: "
                    "expected number")
