"""Regression gating: compare a benchmark run against a baseline.

Naive percent-delta gates misfire in both directions: a 3 % threshold
flags pure noise on a jittery stage and waves through a real 3 ms
regression on a quiet one.  The comparator instead derives a per-metric
noise threshold from the *measured* dispersion of both samples::

    threshold = max(k * 1.4826 * (mad_base + mad_cur),   # scaled MADs
                    rel_floor * median_base,             # scheduler jitter
                    abs_floor)                           # clock resolution

and flags a regression only when ``median_cur - median_base`` exceeds it.
1.4826 rescales a MAD to a normal-equivalent sigma, so ``k`` reads as "k
sigmas of combined noise".  Improvements (negative deltas beyond the
threshold) are reported too, but never fail the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.bench.schema import validate_bench

__all__ = ["Thresholds", "Delta", "Comparison", "compare_docs",
           "compare_dirs", "load_bench", "comparison_table"]

#: MAD-to-sigma consistency factor for normally distributed noise.
MAD_SCALE = 1.4826


@dataclass(frozen=True)
class Thresholds:
    """Noise-gate parameters (see module docstring for the formula)."""

    k: float = 4.0          # sigmas of combined noise
    rel_floor: float = 0.25  # fraction of the baseline median
    abs_floor: float = 5e-4  # seconds

    def threshold_s(self, base_median: float, base_mad: float,
                    cur_mad: float) -> float:
        return max(self.k * MAD_SCALE * (base_mad + cur_mad),
                   self.rel_floor * base_median,
                   self.abs_floor)


@dataclass(frozen=True)
class Delta:
    """One gated metric: a scenario total or a per-stage self time."""

    scenario: str
    metric: str           # "total" or "stage:<name>"
    base_median: float
    cur_median: float
    threshold_s: float

    @property
    def delta_s(self) -> float:
        return self.cur_median - self.base_median

    @property
    def regressed(self) -> bool:
        return self.delta_s > self.threshold_s

    @property
    def improved(self) -> bool:
        return -self.delta_s > self.threshold_s


@dataclass
class Comparison:
    """All deltas for one baseline/current pair, plus bookkeeping."""

    deltas: list[Delta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[Delta]:
        return [d for d in self.deltas if d.improved]

    def merge(self, other: "Comparison") -> None:
        self.deltas.extend(other.deltas)
        self.notes.extend(other.notes)


def _stats(block: Mapping[str, Any]) -> tuple[float, float]:
    return float(block["median"]), float(block["mad"])


def compare_docs(base: Mapping[str, Any], cur: Mapping[str, Any],
                 thresholds: Thresholds | None = None) -> Comparison:
    """Gate one current document against its baseline.

    Compares the scenario total and every stage's self time.  Stages
    present on only one side are noted, not gated -- a renamed span must
    not silently pass, but it is a structural change, not a timing one.
    """
    th = thresholds if thresholds is not None else Thresholds()
    validate_bench(base)
    validate_bench(cur)
    if base["scenario"] != cur["scenario"]:
        raise ValueError(f"scenario mismatch: baseline {base['scenario']!r} "
                         f"vs current {cur['scenario']!r}")
    out = Comparison()
    name = cur["scenario"]
    if base["mode"] != cur["mode"]:
        out.notes.append(f"{name}: mode mismatch (baseline {base['mode']}, "
                         f"current {cur['mode']}); deltas are not comparable")
    for key in ("platform", "machine", "python", "numpy"):
        if base["env"].get(key) != cur["env"].get(key):
            out.notes.append(
                f"{name}: env.{key} differs (baseline "
                f"{base['env'].get(key)!r}, current {cur['env'].get(key)!r})")

    b_med, b_mad = _stats(base["total"]["wall_s"])
    c_med, c_mad = _stats(cur["total"]["wall_s"])
    out.deltas.append(Delta(name, "total", b_med, c_med,
                            th.threshold_s(b_med, b_mad, c_mad)))

    base_stages = base["stages"]
    cur_stages = cur["stages"]
    for stage in sorted(set(base_stages) | set(cur_stages)):
        if stage not in cur_stages:
            out.notes.append(f"{name}: stage {stage!r} vanished from current")
            continue
        if stage not in base_stages:
            out.notes.append(f"{name}: stage {stage!r} is new (no baseline)")
            continue
        b_med, b_mad = _stats(base_stages[stage]["self_s"])
        c_med, c_mad = _stats(cur_stages[stage]["self_s"])
        out.deltas.append(Delta(name, f"stage:{stage}", b_med, c_med,
                                th.threshold_s(b_med, b_mad, c_mad)))
    return out


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read and schema-validate one ``BENCH_*.json`` document."""
    doc = json.loads(Path(path).read_text())
    validate_bench(doc)
    return doc


def _collect(path: Path) -> dict[str, Path]:
    """Map scenario name -> document path for a file or directory."""
    if path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
    else:
        files = [path]
    out = {}
    for f in files:
        out[load_bench(f)["scenario"]] = f
    return out


def compare_dirs(base: str | Path, cur: str | Path,
                 thresholds: Thresholds | None = None) -> Comparison:
    """Compare every scenario present in both trees (files or dirs)."""
    base_docs = _collect(Path(base))
    cur_docs = _collect(Path(cur))
    out = Comparison()
    for name in sorted(set(base_docs) | set(cur_docs)):
        if name not in cur_docs:
            out.notes.append(f"{name}: present in baseline only")
            continue
        if name not in base_docs:
            out.notes.append(f"{name}: present in current only (no baseline)")
            continue
        out.merge(compare_docs(load_bench(base_docs[name]),
                               load_bench(cur_docs[name]), thresholds))
    if not out.deltas:
        raise ValueError(f"no common scenarios between {base} and {cur}")
    return out


def comparison_table(comparison: Comparison, *, top: int | None = None,
                     title: str | None = "benchmark comparison") -> str:
    """Render a comparison, regressions first, by descending |delta|."""
    from repro.analysis.report import format_table

    deltas = sorted(comparison.deltas,
                    key=lambda d: (not d.regressed, -abs(d.delta_s)))
    if top is not None:
        deltas = deltas[:top]
    rows = []
    for d in deltas:
        verdict = ("REGRESSED" if d.regressed
                   else "improved" if d.improved else "ok")
        rows.append([
            d.scenario, d.metric,
            f"{d.base_median * 1e3:.2f}",
            f"{d.cur_median * 1e3:.2f}",
            f"{d.delta_s * 1e3:+.2f}",
            f"{d.threshold_s * 1e3:.2f}",
            verdict,
        ])
    return format_table(
        ["scenario", "metric", "base ms", "cur ms", "delta ms",
         "gate ms", "verdict"],
        rows, title=title,
    )
