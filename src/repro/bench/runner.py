"""Scenario execution: repeats, robust statistics, result documents.

The runner executes one scenario N times under a fresh
:class:`~repro.telemetry.Telemetry` per repeat, records the total wall
time and the per-stage *self* times of every run, and reduces them to
median/MAD -- the robust pair a noisy shared machine calls for (one
preempted run shifts a mean by its full excess but barely moves a
median).  Memory is measured in a separate single pass with
``Telemetry(memory=True)`` so ``tracemalloc`` overhead never pollutes the
timing samples.  Every document embeds an environment fingerprint, is
validated against :mod:`repro.bench.schema`, and is written as
``BENCH_<scenario>.json``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import tempfile
import time
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.bench.scenarios import Scenario, get_scenario, scenario_names
from repro.bench.schema import SCHEMA_VERSION, validate_bench
from repro.telemetry import Telemetry, use
from repro.telemetry.analysis import stage_rollup
from repro.telemetry.tracer import _rss_peak_kb

__all__ = ["env_fingerprint", "robust_stats", "run_scenario", "run_suite",
           "write_bench", "bench_path", "DEFAULT_REPEATS"]

#: timing repeats per scenario unless overridden.
DEFAULT_REPEATS = 5


def env_fingerprint() -> dict[str, Any]:
    """Where this result came from: interpreter, platform, numpy, CPUs."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def robust_stats(runs: Sequence[float]) -> dict[str, Any]:
    """``{"median", "mad", "runs"}`` for one sample set.

    MAD is the raw median absolute deviation (unscaled); comparators
    apply the 1.4826 normal-consistency factor themselves.
    """
    values = [float(v) for v in runs]
    med = statistics.median(values)
    mad = statistics.median(abs(v - med) for v in values)
    return {"median": med, "mad": mad, "runs": values}


def _timed_run(work) -> tuple[float, dict[str, Any], dict[str, Any]]:
    """One repeat: (total wall seconds, per-stage rollup, work attrs)."""
    tel = Telemetry()
    t0 = time.perf_counter()
    with use(tel):
        attrs = work() or {}
    wall = time.perf_counter() - t0
    rollup = stage_rollup([s.to_dict() for s in tel.spans])
    return wall, rollup, attrs


def _memory_run(work) -> dict[str, Any]:
    """One memory-gauged pass: per-stage python-heap peaks + RSS peak."""
    tel = Telemetry(memory=True)
    try:
        with use(tel):
            work()
        rollup = stage_rollup([s.to_dict() for s in tel.spans])
    finally:
        tel.close()
    stages = {
        name: {"mem_py_peak_kb": agg["mem_py_peak_kb"]}
        for name, agg in sorted(rollup.items())
        if "mem_py_peak_kb" in agg
    }
    out: dict[str, Any] = {"stages": stages}
    rss = _rss_peak_kb()
    if rss is not None:
        out["rss_peak_kb"] = rss
    return out


def run_scenario(scenario: Scenario | str, *, quick: bool = False,
                 repeats: int = DEFAULT_REPEATS,
                 memory: bool = True,
                 workdir: str | Path | None = None) -> dict[str, Any]:
    """Execute one scenario and return its validated result document."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="numarck_bench_")
        workdir = tmp.name
    try:
        work = scenario.build(quick, Path(workdir))
        work()  # warm-up: imports, allocator pools, CPU caches

        walls: list[float] = []
        stage_runs: dict[str, dict[str, list[float]]] = {}
        stage_calls: dict[str, int] = {}
        attrs: dict[str, Any] = {}
        for _ in range(repeats):
            wall, rollup, attrs = _timed_run(work)
            walls.append(wall)
            for name, agg in rollup.items():
                per = stage_runs.setdefault(name, {"self_s": [], "wall_s": []})
                per["self_s"].append(agg["self_s"])
                per["wall_s"].append(agg["wall_s"])
                stage_calls[name] = agg["calls"]

        doc: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "scenario": scenario.name,
            "description": scenario.description,
            "mode": "quick" if quick else "full",
            "repeats": repeats,
            "created_unix": time.time(),
            "env": env_fingerprint(),
            "attrs": attrs,
            "total": {"wall_s": robust_stats(walls)},
            "stages": {
                name: {
                    "calls": stage_calls[name],
                    "self_s": robust_stats(per["self_s"]),
                    "wall_s": robust_stats(per["wall_s"]),
                }
                for name, per in sorted(stage_runs.items())
            },
        }
        if memory:
            doc["memory"] = _memory_run(work)
    finally:
        if tmp is not None:
            tmp.cleanup()

    validate_bench(doc)
    return doc


def bench_path(out_dir: str | Path, scenario_name: str) -> Path:
    return Path(out_dir) / f"BENCH_{scenario_name}.json"


def write_bench(doc: dict[str, Any], out_dir: str | Path) -> Path:
    """Validate and write one result as ``BENCH_<scenario>.json``."""
    validate_bench(doc)
    path = bench_path(out_dir, doc["scenario"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def run_suite(names: Sequence[str] | None = None, *, quick: bool = False,
              repeats: int = DEFAULT_REPEATS, memory: bool = True,
              out_dir: str | Path | None = None,
              progress=None) -> list[dict[str, Any]]:
    """Run several scenarios (default: all), optionally writing documents.

    ``progress`` is an optional ``callable(doc)`` invoked after each
    scenario -- the CLI uses it to print one summary line per result.
    """
    docs = []
    for name in (names if names else scenario_names()):
        doc = run_scenario(name, quick=quick, repeats=repeats, memory=memory)
        if out_dir is not None:
            write_bench(doc, out_dir)
        if progress is not None:
            progress(doc)
        docs.append(doc)
    return docs
