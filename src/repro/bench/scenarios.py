"""Benchmark scenarios: the fixed workloads the observatory tracks.

Each scenario is a *deterministic* unit of work -- fixed seeds, fixed
sizes -- so two runs on the same machine differ only by machine noise and
two runs on different commits differ only by the code.  A scenario
separates *build* (generate trajectories, allocate buffers; untimed) from
*work* (the measured callable), and every ``work()`` call must redo the
full measured computation so repeats are independent samples.

Sizes come in two modes: ``quick`` keeps the whole suite in seconds for
CI and pre-commit runs; ``full`` uses paper-scale grids for nightly
trajectories.  The *shape* of the stage breakdown is mode-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = ["Scenario", "SCENARIOS", "scenario_names", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """One named benchmark workload.

    ``build(quick, workdir)`` performs untimed setup and returns the
    measured ``work()`` callable; ``work()`` returns an attrs dict
    (point/byte counts) recorded in the result document.
    """

    name: str
    description: str
    build: Callable[[bool, Path], Callable[[], dict[str, Any]]]


SCENARIOS: dict[str, Scenario] = {}


def _register(name: str, description: str):
    def deco(build):
        SCENARIOS[name] = Scenario(name, description, build)
        return build
    return deco


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"available: {scenario_names()}") from None


def _cmip_pairs(quick: bool) -> list[tuple[np.ndarray, np.ndarray]]:
    from repro.simulations.cmip import CmipSimulation

    # Quick mode keeps the paper grid (stage times must clear the
    # comparator's absolute noise floor) but fewer iterations.
    nlat, nlon, iters = (90, 144, 2) if quick else (90, 144, 6)
    sim = CmipSimulation("rlus", nlat=nlat, nlon=nlon, seed=42)
    traj = [cp["rlus"] for cp in sim.run(iters)]
    return list(zip(traj, traj[1:]))


def _compress_work(pairs, strategy: str) -> Callable[[], dict[str, Any]]:
    from repro.codec import Codec
    from repro.core import NumarckConfig

    codec = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8,
                                strategy=strategy))

    def work() -> dict[str, Any]:
        from repro.telemetry.accounting import delta_payload_nbytes

        n_points = 0
        bytes_out = 0
        for prev, curr in pairs:
            enc = codec.compress(prev, curr)
            codec.decompress(prev, enc)
            n_points += enc.n_points
            bytes_out += delta_payload_nbytes(enc)
        return {"n_points": n_points, "bytes_out": bytes_out,
                "n_pairs": len(pairs)}

    return work


@_register("cmip_equal_width",
           "compress+decompress a CMIP rlus trajectory, equal-width bins")
def _cmip_equal_width(quick: bool, workdir: Path):
    return _compress_work(_cmip_pairs(quick), "equal_width")


@_register("cmip_log_scale",
           "compress+decompress a CMIP rlus trajectory, log-scale bins")
def _cmip_log_scale(quick: bool, workdir: Path):
    return _compress_work(_cmip_pairs(quick), "log_scale")


@_register("cmip_clustering",
           "compress+decompress a CMIP rlus trajectory, k-means bins")
def _cmip_clustering(quick: bool, workdir: Path):
    return _compress_work(_cmip_pairs(quick), "clustering")


@_register("flash_clustering",
           "compress+decompress a FLASH Sedov trajectory, k-means bins")
def _flash_clustering(quick: bool, workdir: Path):
    from repro.simulations.flash import FlashSimulation

    size, n_pairs, variables = ((48, 2, ("dens", "pres", "temp"))
                                if quick else
                                (64, 3, ("dens", "pres", "temp", "ener",
                                         "eint")))
    sim = FlashSimulation("sedov", ny=size, nx=size, steps_per_checkpoint=3)
    for _ in range(2):  # skip the initial transient
        sim.advance()
    checkpoints = list(sim.run(n_pairs))
    pairs = [(a[v], b[v])
             for a, b in zip(checkpoints, checkpoints[1:])
             for v in variables]
    return _compress_work(pairs, "clustering")


@_register("chain_persist",
           "append to, save, and reload a delta chain (container I/O)")
def _chain_persist(quick: bool, workdir: Path):
    from repro.core import CheckpointChain, NumarckConfig
    from repro.io import load_chain, save_chain

    pairs = _cmip_pairs(quick)
    states = [pairs[0][0]] + [curr for _, curr in pairs]
    config = NumarckConfig(error_bound=1e-3, nbits=8, strategy="equal_width")
    path = workdir / "bench_chain.nmk"

    def work() -> dict[str, Any]:
        chain = CheckpointChain(states[0], config)
        for state in states[1:]:
            chain.append(state)
        nbytes = save_chain(path, chain)
        load_chain(path)
        return {"n_points": int(states[0].size) * len(states),
                "bytes_out": int(nbytes), "n_iterations": len(states)}

    return work


def _cmip_chain_pairs(quick: bool) -> list[tuple[np.ndarray, np.ndarray]]:
    """A *stationary* 20-iteration CMIP trajectory: the adaptive reuse
    engine's home turf (consecutive ratio distributions barely move)."""
    from repro.simulations.cmip import CmipSimulation

    nlat, nlon = (90, 144) if quick else (180, 288)
    sim = CmipSimulation("rlus", nlat=nlat, nlon=nlon, seed=42)
    traj = [cp["rlus"] for cp in sim.run(20)]
    return list(zip(traj, traj[1:]))


def _chain_codec_work(pairs, *, adaptive: bool) -> Callable[[], dict[str, Any]]:
    from repro.codec import Codec
    from repro.core import NumarckConfig

    config = NumarckConfig(error_bound=1e-3, nbits=8, strategy="clustering",
                           adaptive=adaptive)

    def work() -> dict[str, Any]:
        from repro.telemetry.accounting import delta_payload_nbytes

        codec = Codec(config=config)  # fresh model cache: repeats stay independent
        n_points = 0
        bytes_out = 0
        hits = 0
        for prev, curr in pairs:
            enc = codec.compress(prev, curr)
            n_points += enc.n_points
            bytes_out += delta_payload_nbytes(enc)
            hits += int(enc.model_reused)
        return {"n_points": n_points, "bytes_out": bytes_out,
                "n_pairs": len(pairs), "reuse_hits": hits}

    return work


@_register("chain_adaptive",
           "20-iteration stationary CMIP chain, adaptive bin-model reuse ON")
def _chain_adaptive(quick: bool, workdir: Path):
    return _chain_codec_work(_cmip_chain_pairs(quick), adaptive=True)


@_register("chain_adaptive_off",
           "same 20-iteration CMIP chain with reuse OFF (fit every step)")
def _chain_adaptive_off(quick: bool, workdir: Path):
    return _chain_codec_work(_cmip_chain_pairs(quick), adaptive=False)


@_register("bitpack_roundtrip",
           "pack and unpack 9-bit indices (the encoder's byte engine)")
def _bitpack_roundtrip(quick: bool, workdir: Path):
    from repro.bitpack import pack_bits, unpack_bits

    n = 1_000_000 if quick else 4_000_000
    width = 9
    vals = np.random.default_rng(7).integers(
        0, 1 << width, n).astype(np.uint32)

    def work() -> dict[str, Any]:
        packed = pack_bits(vals, width)
        unpack_bits(packed, n, width)
        return {"n_points": n, "bytes_out": len(packed), "width": width}

    return work


@_register("kmeans_fit",
           "1-D Lloyd fit at k=255 (the clustering strategy's kernel)")
def _kmeans_fit(quick: bool, workdir: Path):
    from repro.kmeans import histogram_init, kmeans1d

    n = 50_000 if quick else 200_000
    data = np.random.default_rng(7).normal(size=n)
    k = 255

    def work() -> dict[str, Any]:
        init = histogram_init(data, k)
        res = kmeans1d(data, init, 10)
        return {"n_points": n, "k": k,
                "sweeps": len(res.inertia_history)}

    return work
