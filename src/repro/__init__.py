"""NUMARCK: error-bounded checkpoint compression (SC'14 reproduction).

Northwestern University Machine learning Algorithm for Resiliency and
ChecKpointing -- compresses simulation checkpoints by learning the
distribution of *relative changes* between consecutive iterations and
encoding each point as a small index into a table of representative change
ratios, with a hard user-specified per-point error bound.

Quick start::

    import numpy as np
    from repro import Codec, NumarckConfig

    codec = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8,
                                strategy="clustering"))
    encoded = codec.compress(prev_iteration, curr_iteration)
    decoded = codec.decompress(prev_iteration, encoded)

For chain-shaped workloads, ``NumarckConfig(adaptive=True)`` caches the
fitted bin model across iterations and refits only on distribution drift
-- the fit stage disappears from the steady-state hot path.

Sub-packages
------------
``repro.core``
    the compression pipeline (change ratios, strategies, encoder/decoder,
    checkpoint chains, metrics).
``repro.kmeans``
    from-scratch 1-D/n-D k-means with histogram seeding.
``repro.bitpack``
    B-bit integer packing.
``repro.io``
    binary checkpoint container format.
``repro.baselines``
    B-Splines and ISABELA lossy compressors, lossless helpers.
``repro.simulations``
    FLASH-like hydrodynamics and CMIP5-like climate data generators.
``repro.parallel``
    MPI-style SPMD communicator and decompositions.
``repro.restart``
    restart manager and fault-injection harness.
``repro.analysis``
    entropy and change-distribution diagnostics.
"""

# NOTE: repro.core must be imported before repro.codec -- repro.core's
# __init__ pulls in the deprecated pipeline shim, which subclasses Codec,
# and importing repro.codec first would re-enter repro.core mid-init.
from repro.core import (
    AdaptiveEncoder,
    CheckpointChain,
    CompressionStats,
    ConfigError,
    EncodedIteration,
    FormatError,
    NumarckCompressor,
    NumarckConfig,
    NumarckError,
    apply_change,
    change_ratios,
    decode_iteration,
    encode_iteration,
    pearson_r,
    rmse,
)
from repro.codec import Codec

__version__ = "1.0.0"

__all__ = [
    "Codec",
    "AdaptiveEncoder",
    "NumarckCompressor",
    "NumarckConfig",
    "CheckpointChain",
    "CompressionStats",
    "EncodedIteration",
    "encode_iteration",
    "decode_iteration",
    "change_ratios",
    "apply_change",
    "pearson_r",
    "rmse",
    "NumarckError",
    "ConfigError",
    "FormatError",
    "__version__",
]
