"""The unified compression facade: one object, every entry point.

:class:`Codec` replaces three overlapping surfaces that had accreted over
the project's history -- :class:`~repro.core.pipeline.NumarckCompressor`
(one-shot pairs), :func:`~repro.core.encoder.encode_iteration` (functional
form) and :class:`~repro.core.streaming.StreamingEncoder` (chunked) -- with
a single configured object:

>>> import numpy as np
>>> from repro import Codec, NumarckConfig
>>> rng = np.random.default_rng(0)
>>> prev = rng.uniform(1.0, 2.0, size=1000)
>>> curr = prev * (1.0 + rng.normal(0.0, 0.002, size=1000))
>>> codec = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8))
>>> enc = codec.compress(prev, curr)
>>> out = codec.decompress(prev, enc)
>>> bool(np.all(np.abs(out / prev - curr / prev) < 1e-3 + 1e-12))
True

With ``NumarckConfig(adaptive=True)`` the codec is *stateful*: it caches
the fitted bin model across :meth:`Codec.compress` calls (and inside
:meth:`Codec.compress_chain`), validating it each timestep and refitting
only on drift -- see :mod:`repro.core.adaptive`.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Iterator

import numpy as np

from repro.core.adaptive import AdaptiveEncoder, ReuseStats
from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig
from repro.core.decoder import decode_iteration
from repro.core.encoder import EncodedIteration, encode_pair
from repro.core.metrics import CompressionStats, iteration_stats
from repro.core.streaming import StreamedIteration, _ChunkedEncoder, decode_stream
from repro.telemetry.tracer import get_telemetry

__all__ = ["Codec"]


class Codec:
    """Configured NUMARCK compressor: pairs, chains and chunked streams.

    Parameters (all keyword-only)
    -----------------------------
    config:
        Compression parameters; defaults to ``NumarckConfig()``.  Set
        ``adaptive=True`` to reuse the fitted bin model across calls.
    chunk_size / sample_size:
        Chunking parameters for :meth:`compress_stream` (points per chunk,
        reservoir size of the model-fit pass).

    .. deprecated::
        ``Codec(cfg)`` with a positional config still works but warns;
        use ``Codec(config=cfg)``.
    """

    def __init__(self, *args: NumarckConfig,
                 config: NumarckConfig | None = None,
                 chunk_size: int = 1 << 20,
                 sample_size: int = 200_000) -> None:
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"Codec() takes at most one positional argument "
                    f"({len(args)} given)"
                )
            if config is not None:
                raise TypeError(
                    "Codec() got multiple values for argument 'config'"
                )
            warnings.warn(
                "positional Codec(cfg) is deprecated; use Codec(config=cfg)",
                DeprecationWarning,
                stacklevel=2,
            )
            config = args[0]
        self.config = config if config is not None else NumarckConfig()
        self._chunked = _ChunkedEncoder(self.config, chunk_size, sample_size)
        self._adaptive = (AdaptiveEncoder(self.config)
                          if self.config.adaptive else None)

    # -- one-shot pairs ----------------------------------------------------

    def compress(self, prev: np.ndarray, curr: np.ndarray) -> EncodedIteration:
        """Encode ``curr`` against reference ``prev``.

        Adaptive codecs validate/reuse their cached bin model here; the
        decision is recorded on the result's ``model_reused`` flag.
        """
        with get_telemetry().span("codec.compress",
                                  strategy=self.config.strategy,
                                  adaptive=self._adaptive is not None):
            if self._adaptive is not None:
                return self._adaptive.encode(prev, curr)
            enc, _ = encode_pair(prev, curr, self.config)
            return enc

    def decompress(self, prev: np.ndarray,
                   encoded: EncodedIteration) -> np.ndarray:
        """Decode an iteration against the same reference it was encoded
        with."""
        with get_telemetry().span("codec.decompress"):
            return decode_iteration(prev, encoded)

    def stats(self, prev: np.ndarray, curr: np.ndarray,
              encoded: EncodedIteration | None = None) -> CompressionStats:
        """Compression statistics for a pair (encodes if not already done)."""
        enc = encoded if encoded is not None else self.compress(prev, curr)
        return iteration_stats(prev, curr, enc)

    def roundtrip(self, prev: np.ndarray, curr: np.ndarray,
                  ) -> tuple[np.ndarray, EncodedIteration, CompressionStats]:
        """Encode, decode and summarise one pair in one call."""
        enc = self.compress(prev, curr)
        out = self.decompress(prev, enc)
        return out, enc, iteration_stats(prev, curr, enc)

    # -- multi-iteration chains -------------------------------------------

    def compress_chain(self,
                       iterations: Iterable[np.ndarray]) -> CheckpointChain:
        """Build a :class:`~repro.core.checkpoint.CheckpointChain` from an
        iterable of states (first item becomes the full checkpoint).

        With ``adaptive=True`` the chain shares one cached bin model
        across its deltas, so stationary runs skip the fit stage on every
        iteration after the first.
        """
        it = iter(iterations)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("compress_chain needs at least one iteration") \
                from None
        chain = CheckpointChain(first, self.config)
        for state in it:
            chain.append(state)
        return chain

    # -- chunked streams ---------------------------------------------------

    def compress_stream(self, prev_stream_factory,
                        curr_stream_factory) -> StreamedIteration:
        """Two-pass chunked encode from replayable chunk streams (see
        :mod:`repro.core.streaming`)."""
        return self._chunked.encode(prev_stream_factory, curr_stream_factory)

    def compress_stream_arrays(self, prev: np.ndarray,
                               curr: np.ndarray) -> StreamedIteration:
        """Chunked encode of in-memory arrays (O(chunk_size) peak memory
        in the encoder itself)."""
        return self._chunked.encode_arrays(prev, curr)

    def decompress_stream(self, prev_chunks: Iterator[np.ndarray],
                          streamed: StreamedIteration) -> Iterator[np.ndarray]:
        """Decode a streamed iteration chunk by chunk."""
        return decode_stream(prev_chunks, streamed)

    # -- adaptive state ----------------------------------------------------

    @property
    def reuse_stats(self) -> ReuseStats | None:
        """Model-reuse counters (``None`` unless ``adaptive=True``)."""
        return self._adaptive.stats if self._adaptive is not None else None

    def reset(self) -> None:
        """Drop any cached bin model; the next compress fits from cold."""
        if self._adaptive is not None:
            self._adaptive.reset()
