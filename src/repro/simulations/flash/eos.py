"""Gamma-law equation of state.

FLASH checkpoints two adiabatic indices: ``gamc`` (the sound-speed gamma,
``c_s^2 = gamc * p / rho``) and ``game`` (the energy gamma,
``p = (game - 1) * rho * eint``).  For a perfect single-species gas both
equal the constant ratio of specific heats, which would make those
variables trivially compressible; real FLASH EOS calls return values that
drift slightly with the thermodynamic state.  We model that with a small
temperature-dependent departure (excitation of internal degrees of freedom
lowers gamma at high temperature), keeping the two indices consistent with
the stored pres/eint relation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GammaLawEOS"]


@dataclass(frozen=True)
class GammaLawEOS:
    """Ideal-gas EOS with weakly temperature-dependent gamma.

    Parameters
    ----------
    gamma0:
        Cold-gas adiabatic index (default 1.4, diatomic).
    gamma_drop:
        Maximum depression of gamma at high temperature.
    t_excite:
        Temperature scale of the depression.
    gas_constant:
        Specific gas constant R (J / kg / K) used for the ``temp`` field.
    """

    gamma0: float = 1.4
    gamma_drop: float = 0.06
    t_excite: float = 2.0
    gas_constant: float = 1.0

    def game(self, dens: np.ndarray, eint: np.ndarray) -> np.ndarray:
        """Energy gamma: p = (game - 1) rho eint.

        Evaluated from a proxy temperature so that ``game`` varies smoothly
        with the state; the solver then derives pressure from this value,
        keeping ``pres``/``eint``/``game`` mutually consistent.
        """
        t_proxy = np.maximum(eint, 0.0) * (self.gamma0 - 1.0) / self.gas_constant
        return self.gamma0 - self.gamma_drop * t_proxy / (t_proxy + self.t_excite)

    def gamc(self, dens: np.ndarray, eint: np.ndarray) -> np.ndarray:
        """Sound-speed gamma; for this EOS it tracks ``game`` closely."""
        return self.game(dens, eint) + 0.25 * self.gamma_drop * np.tanh(
            np.maximum(eint, 0.0) / (10.0 * self.t_excite)
        )

    def pressure(self, dens: np.ndarray, eint: np.ndarray) -> np.ndarray:
        """p = (game - 1) rho eint."""
        return (self.game(dens, eint) - 1.0) * dens * np.maximum(eint, 0.0)

    def eint_from_pressure(self, dens: np.ndarray, pres: np.ndarray) -> np.ndarray:
        """Invert ``pressure`` for initial conditions.

        ``game`` depends (mildly) on ``eint``, so a few fixed-point sweeps
        are used; convergence is fast because d(game)/d(eint) is tiny.
        """
        eint = pres / ((self.gamma0 - 1.0) * np.maximum(dens, 1e-300))
        for _ in range(8):
            eint = pres / ((self.game(dens, eint) - 1.0) * np.maximum(dens, 1e-300))
        return eint

    def temperature(self, dens: np.ndarray, pres: np.ndarray) -> np.ndarray:
        """Ideal-gas temperature T = p / (rho R)."""
        return pres / (np.maximum(dens, 1e-300) * self.gas_constant)

    def sound_speed(self, dens: np.ndarray, pres: np.ndarray,
                    eint: np.ndarray) -> np.ndarray:
        """c_s = sqrt(gamc p / rho)."""
        return np.sqrt(self.gamc(dens, eint) * np.maximum(pres, 0.0)
                       / np.maximum(dens, 1e-300))
