"""2.5-D compressible Euler finite-volume solver.

Solves the Euler equations for density, momentum and total energy on a
uniform 2-D grid, with the z velocity advected passively (the exact
reduction of 3-D Euler under translation invariance in z -- this is what
gives the checkpoint a physically meaningful ``velz`` field).

Scheme: first-order Godunov with selectable interface fluxes -- Rusanov
(local Lax-Friedrichs; maximally robust) or HLL (two-wave estimates;
noticeably sharper shocks at the same cost class) -- and Heun (RK2) time
stepping under a CFL limit.  First order is deliberate: it is
unconditionally robust across the shocks of the Sod and Sedov problems,
and NUMARCK only cares that the fields evolve smoothly in time, not about
shock sharpness.

All updates are whole-array NumPy operations; the per-step cost is a
handful of vectorised passes over ``(5, ny, nx)`` conserved arrays.
"""

from __future__ import annotations

import numpy as np

from repro.simulations.flash.eos import GammaLawEOS

__all__ = ["Euler2D"]

_DENS_FLOOR = 1e-10
_PRES_FLOOR = 1e-12


class Euler2D:
    """Finite-volume Euler solver state.

    Parameters
    ----------
    dens, velx, vely, velz, pres:
        Initial primitive fields, shape ``(ny, nx)``.
    eos:
        Equation of state.
    dx, dy:
        Cell sizes.
    bc:
        ``"periodic"`` or ``"outflow"`` (zero-gradient).
    cfl:
        Courant number for the adaptive timestep.
    flux:
        Interface flux: ``"rusanov"`` (default) or ``"hll"``.
    reconstruction:
        Interface states: ``"constant"`` (first order, default) or
        ``"muscl"`` (second order: minmod-limited linear reconstruction of
        the conserved variables).
    """

    def __init__(
        self,
        dens: np.ndarray,
        velx: np.ndarray,
        vely: np.ndarray,
        velz: np.ndarray,
        pres: np.ndarray,
        eos: GammaLawEOS | None = None,
        dx: float = 1.0,
        dy: float = 1.0,
        bc: str = "periodic",
        cfl: float = 0.4,
        species: np.ndarray | None = None,
        flux: str = "rusanov",
        reconstruction: str = "constant",
    ) -> None:
        if bc not in ("periodic", "outflow"):
            raise ValueError(f"unknown bc {bc!r}")
        if flux not in ("rusanov", "hll"):
            raise ValueError(f"unknown flux {flux!r}")
        if reconstruction not in ("constant", "muscl"):
            raise ValueError(f"unknown reconstruction {reconstruction!r}")
        self.flux = flux
        self.reconstruction = reconstruction
        self.eos = eos if eos is not None else GammaLawEOS()
        self.dx = float(dx)
        self.dy = float(dy)
        self.bc = bc
        self.cfl = float(cfl)
        self.time = 0.0
        self.n_steps = 0

        dens = np.asarray(dens, dtype=np.float64)
        shape = dens.shape
        if dens.ndim != 2:
            raise ValueError(f"fields must be 2-D, got shape {shape}")
        for name, f in (("velx", velx), ("vely", vely), ("velz", velz), ("pres", pres)):
            if np.asarray(f).shape != shape:
                raise ValueError(f"{name} shape {np.asarray(f).shape} != dens shape {shape}")
        eint = self.eos.eint_from_pressure(dens, np.asarray(pres, dtype=np.float64))
        vx = np.asarray(velx, dtype=np.float64)
        vy = np.asarray(vely, dtype=np.float64)
        vz = np.asarray(velz, dtype=np.float64)
        etot = dens * (eint + 0.5 * (vx * vx + vy * vy + vz * vz))
        # Conserved state: rho, rho*u, rho*v, rho*w, E [, rho*X_k ...].
        # Species mass fractions (FLASH carries a reaction network's worth
        # of them; the paper's "24 data variables per array element") are
        # passive: they advect with the flow and never feed back into the
        # dynamics.
        comps = [dens, dens * vx, dens * vy, dens * vz, etot]
        self.n_species = 0
        if species is not None:
            spec = np.asarray(species, dtype=np.float64)
            if spec.ndim == 2:
                spec = spec[None]
            if spec.ndim != 3 or spec.shape[1:] != shape:
                raise ValueError(
                    f"species must be (n_species, {shape[0]}, {shape[1]}), "
                    f"got {spec.shape}"
                )
            self.n_species = spec.shape[0]
            comps.extend(dens * spec[k] for k in range(self.n_species))
        self.u = np.stack(comps)

    # -- state access -------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.u.shape[1], self.u.shape[2]

    def primitives(self) -> dict[str, np.ndarray]:
        """Primitive + derived fields (fresh arrays, checkpoint-ready)."""
        rho = np.maximum(self.u[0], _DENS_FLOOR)
        vx = self.u[1] / rho
        vy = self.u[2] / rho
        vz = self.u[3] / rho
        eint = np.maximum(self.u[4] / rho - 0.5 * (vx * vx + vy * vy + vz * vz), 0.0)
        pres = np.maximum(self.eos.pressure(rho, eint), _PRES_FLOOR)
        return {
            "dens": rho.copy(),
            "velx": vx,
            "vely": vy,
            "velz": vz,
            "eint": eint,
            "ener": eint + 0.5 * (vx * vx + vy * vy + vz * vz),
            "pres": pres,
            "temp": self.eos.temperature(rho, pres),
            "gamc": self.eos.gamc(rho, eint),
            "game": self.eos.game(rho, eint),
        }

    # -- numerics -----------------------------------------------------------

    def _pad(self, u: np.ndarray, ng: int = 1) -> np.ndarray:
        """Add ``ng`` ghost layers per side according to the boundary condition."""
        mode = "wrap" if self.bc == "periodic" else "edge"
        return np.pad(u, ((0, 0), (ng, ng), (ng, ng)), mode=mode)

    @staticmethod
    def _minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """TVD minmod slope limiter."""
        return 0.5 * (np.sign(a) + np.sign(b)) * np.minimum(np.abs(a),
                                                            np.abs(b))

    def _state_flux(self, state: np.ndarray, axis: str):
        """(physical flux, normal velocity, sound speed) of conserved states."""
        rho = np.maximum(state[0], _DENS_FLOOR)
        vx = state[1] / rho
        vy = state[2] / rho
        vz = state[3] / rho
        eint = np.maximum(state[4] / rho
                          - 0.5 * (vx * vx + vy * vy + vz * vz), 0.0)
        pres = np.maximum(self.eos.pressure(rho, eint), _PRES_FLOOR)
        cs = self.eos.sound_speed(rho, pres, eint)
        vel = vx if axis == "x" else vy
        mom = 1 if axis == "x" else 2
        flux = np.empty_like(state)
        flux[0] = state[mom]
        flux[1] = state[1] * vel
        flux[2] = state[2] * vel
        flux[3] = state[3] * vel
        flux[mom] += pres
        flux[4] = (state[4] + pres) * vel
        for k in range(5, state.shape[0]):  # passive species: pure advection
            flux[k] = state[k] * vel
        return flux, vel, cs

    def _interface_states(self, u: np.ndarray):
        """(ul_x, ur_x, ul_y, ur_y): conserved states on interface sides."""
        if self.reconstruction == "constant":
            up = self._pad(u, 1)
            return (up[:, 1:-1, :-1], up[:, 1:-1, 1:],
                    up[:, :-1, 1:-1], up[:, 1:, 1:-1])
        # MUSCL: minmod-limited linear reconstruction (needs 2 ghosts).
        up = self._pad(u, 2)
        sx = self._minmod(up[:, 2:-2, 1:-1] - up[:, 2:-2, :-2],
                          up[:, 2:-2, 2:] - up[:, 2:-2, 1:-1])
        ul_x = up[:, 2:-2, 1:-2] + 0.5 * sx[:, :, :-1]
        ur_x = up[:, 2:-2, 2:-1] - 0.5 * sx[:, :, 1:]
        sy = self._minmod(up[:, 1:-1, 2:-2] - up[:, :-2, 2:-2],
                          up[:, 2:, 2:-2] - up[:, 1:-1, 2:-2])
        ul_y = up[:, 1:-2, 2:-2] + 0.5 * sy[:, :-1, :]
        ur_y = up[:, 2:-1, 2:-2] - 0.5 * sy[:, 1:, :]
        return ul_x, ur_x, ul_y, ur_y

    def _flux_divergence(self, u: np.ndarray) -> np.ndarray:
        """-(dF/dx + dG/dy) with the configured interface flux."""
        ul_x, ur_x, ul_y, ur_y = self._interface_states(u)

        fl, vl, cl = self._state_flux(ul_x, "x")
        fr, vr, cr = self._state_flux(ur_x, "x")
        f_iface = self._interface_flux(ul_x, ur_x, fl, fr, vl, vr, cl, cr)

        gl, wl, dl = self._state_flux(ul_y, "y")
        gr, wr, dr = self._state_flux(ur_y, "y")
        g_iface = self._interface_flux(ul_y, ur_y, gl, gr, wl, wr, dl, dr)

        div = (f_iface[:, :, 1:] - f_iface[:, :, :-1]) / self.dx
        div += (g_iface[:, 1:, :] - g_iface[:, :-1, :]) / self.dy
        return -div

    def _interface_flux(self, ul, ur, fl, fr, vl, vr, cl, cr):
        """Approximate Riemann flux at interfaces (Rusanov or HLL).

        ``vl``/``vr`` are the normal velocities, ``cl``/``cr`` the sound
        speeds, on the two sides of each interface.
        """
        if self.flux == "rusanov":
            smax = np.maximum(np.abs(vl) + cl, np.abs(vr) + cr)
            return 0.5 * (fl + fr) - 0.5 * smax * (ur - ul)
        # HLL with Davis wave-speed estimates.
        s_left = np.minimum(vl - cl, vr - cr)
        s_right = np.maximum(vl + cl, vr + cr)
        denom = np.where(s_right - s_left > 1e-14, s_right - s_left, 1e-14)
        middle = (s_right * fl - s_left * fr + s_left * s_right * (ur - ul)) \
            / denom
        out = np.where(s_left >= 0.0, fl, np.where(s_right <= 0.0, fr, middle))
        return out

    def max_signal_speed(self) -> float:
        """Largest |v| + c over the grid (for the CFL condition)."""
        rho = np.maximum(self.u[0], _DENS_FLOOR)
        vx = self.u[1] / rho
        vy = self.u[2] / rho
        vz = self.u[3] / rho
        eint = np.maximum(self.u[4] / rho - 0.5 * (vx * vx + vy * vy + vz * vz), 0.0)
        pres = np.maximum(self.eos.pressure(rho, eint), _PRES_FLOOR)
        cs = self.eos.sound_speed(rho, pres, eint)
        return float(np.max(np.maximum(np.abs(vx), np.abs(vy)) + cs))

    def step(self, dt: float | None = None) -> float:
        """Advance one timestep (CFL-chosen unless ``dt`` given); returns dt."""
        if dt is None:
            smax = self.max_signal_speed()
            if smax <= 0.0:
                smax = 1e-12
            dt = self.cfl * min(self.dx, self.dy) / smax
        # Heun's method (SSP-RK2).
        k1 = self._flux_divergence(self.u)
        u1 = self.u + dt * k1
        self._apply_floors(u1)
        k2 = self._flux_divergence(u1)
        self.u = 0.5 * (self.u + u1 + dt * k2)
        self._apply_floors(self.u)
        self.time += dt
        self.n_steps += 1
        return dt

    @staticmethod
    def _apply_floors(u: np.ndarray) -> None:
        """Enforce positive density, non-negative eint and species."""
        np.maximum(u[0], _DENS_FLOOR, out=u[0])
        rho = u[0]
        kin = 0.5 * (u[1] ** 2 + u[2] ** 2 + u[3] ** 2) / rho
        np.maximum(u[4], kin + rho * _PRES_FLOOR, out=u[4])
        for k in range(5, u.shape[0]):
            np.maximum(u[k], 0.0, out=u[k])

    def species_fractions(self) -> np.ndarray:
        """Mass fractions X_k, shape ``(n_species, ny, nx)``."""
        rho = np.maximum(self.u[0], _DENS_FLOOR)
        if self.n_species == 0:
            return np.empty((0,) + self.shape)
        return self.u[5:] / rho

    def set_state(self, dens: np.ndarray, velx: np.ndarray, vely: np.ndarray,
                  velz: np.ndarray, pres: np.ndarray,
                  species: np.ndarray | None = None) -> None:
        """Overwrite the conserved state from primitive fields.

        Used by checkpoint *restart*: the primitives come from a decoded
        (approximated) checkpoint, and the solver continues from them.
        When the solver carries species and none are supplied, the current
        mass fractions are kept (re-scaled by the new density).
        """
        rho = np.maximum(np.asarray(dens, dtype=np.float64), _DENS_FLOOR)
        if rho.shape != self.shape:
            raise ValueError(f"state shape {rho.shape} != solver shape {self.shape}")
        vx = np.asarray(velx, dtype=np.float64)
        vy = np.asarray(vely, dtype=np.float64)
        vz = np.asarray(velz, dtype=np.float64)
        p = np.maximum(np.asarray(pres, dtype=np.float64), _PRES_FLOOR)
        eint = self.eos.eint_from_pressure(rho, p)
        etot = rho * (eint + 0.5 * (vx * vx + vy * vy + vz * vz))
        if species is not None:
            fractions = np.asarray(species, dtype=np.float64)
            if fractions.ndim == 2:
                fractions = fractions[None]
            if fractions.shape != (self.n_species,) + self.shape:
                raise ValueError(
                    f"species shape {fractions.shape} != "
                    f"{(self.n_species,) + self.shape}"
                )
        else:
            fractions = self.species_fractions()
        comps = [rho, rho * vx, rho * vy, rho * vz, etot]
        comps.extend(rho * fractions[k] for k in range(self.n_species))
        self.u = np.stack(comps)

    def total_mass(self) -> float:
        """Domain-integrated mass (conserved under periodic BCs)."""
        return float(self.u[0].sum() * self.dx * self.dy)

    def total_energy(self) -> float:
        """Domain-integrated total energy (conserved under periodic BCs)."""
        return float(self.u[4].sum() * self.dx * self.dy)
