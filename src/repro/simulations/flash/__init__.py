"""FLASH-like block-structured compressible hydrodynamics.

FLASH (Fryxell et al. 2000) solves the compressible Euler equations on a
block-structured adaptive mesh; the NUMARCK paper checkpoints 10 of its
variables (dens, eint, ener, gamc, game, pres, temp, velx, vely, velz)
from 16 x 16 blocks with 4 guard cells per side.

This package implements the same structure at laptop scale:

* :mod:`repro.simulations.flash.eos` -- gamma-law equation of state with a
  weakly temperature-dependent adiabatic index (so ``gamc``/``game`` evolve
  but only slightly, like the real code's multi-species EOS output).
* :mod:`repro.simulations.flash.euler` -- 2.5-D finite-volume Euler solver
  (Rusanov flux, CFL-limited RK2 stepping; the z velocity is advected
  passively, which is the exact 2.5-D reduction of 3-D Euler).
* :mod:`repro.simulations.flash.blocks` -- 16 x 16 blocks with guard-cell
  exchange, distributed round-robin over simulated MPI ranks.
* :mod:`repro.simulations.flash.problems` -- Sod shock tube, Sedov blast
  and Kelvin-Helmholtz initial conditions.
* :class:`FlashSimulation` -- ties it together and emits the 10-variable
  checkpoints.
"""

from repro.simulations.flash.amr import AmrCheckpointer, QuadTreeMesh
from repro.simulations.flash.blocks import BlockGrid
from repro.simulations.flash.blocks3d import BlockGrid3D
from repro.simulations.flash.eos import GammaLawEOS
from repro.simulations.flash.euler import Euler2D
from repro.simulations.flash.euler3d import Euler3D
from repro.simulations.flash.problems import PROBLEMS, kelvin_helmholtz, sedov, sod
from repro.simulations.flash.riemann import RiemannState, exact_riemann, sod_exact
from repro.simulations.flash.simulation import FLASH_VARIABLES, FlashSimulation
from repro.simulations.flash.simulation3d import FlashSimulation3D

__all__ = [
    "FlashSimulation",
    "FlashSimulation3D",
    "FLASH_VARIABLES",
    "Euler2D",
    "Euler3D",
    "GammaLawEOS",
    "BlockGrid",
    "BlockGrid3D",
    "QuadTreeMesh",
    "AmrCheckpointer",
    "PROBLEMS",
    "sod",
    "sedov",
    "kelvin_helmholtz",
    "RiemannState",
    "exact_riemann",
    "sod_exact",
]
