"""FLASH-like simulation emitting the paper's 10 checkpoint variables."""

from __future__ import annotations

import numpy as np

from repro.simulations.base import Simulation
from repro.simulations.flash.blocks import BlockGrid
from repro.simulations.flash.eos import GammaLawEOS
from repro.simulations.flash.euler import Euler2D
from repro.simulations.flash.problems import PROBLEMS

__all__ = ["FlashSimulation", "FLASH_VARIABLES"]

#: The 10 variables FLASH writes to checkpoint files (paper Section III-A).
FLASH_VARIABLES = (
    "dens", "eint", "ener", "gamc", "game", "pres", "temp", "velx", "vely", "velz",
)


class FlashSimulation(Simulation):
    """Compressible-Euler model producing FLASH-style checkpoints.

    Parameters
    ----------
    problem:
        One of ``"sod"``, ``"sedov"``, ``"kelvin_helmholtz"``.
    ny, nx:
        Grid size; must be multiples of ``block`` (16) so the block layout
        is exact.
    steps_per_checkpoint:
        Solver steps between consecutive checkpoints.  Larger values mean
        bigger temporal changes and a harder compression problem.
    n_ranks:
        Simulated MPI process count for the block layout.

    Examples
    --------
    >>> sim = FlashSimulation("sedov", ny=32, nx=32, steps_per_checkpoint=2)
    >>> cp = sim.checkpoint()
    >>> sorted(cp) == sorted(FLASH_VARIABLES)
    True
    """

    variables = FLASH_VARIABLES

    def __init__(
        self,
        problem: str = "sedov",
        ny: int = 64,
        nx: int = 64,
        steps_per_checkpoint: int = 4,
        block: int = 16,
        guard: int = 4,
        n_ranks: int = 4,
        eos: GammaLawEOS | None = None,
        cfl: float = 0.4,
    ) -> None:
        if problem not in PROBLEMS:
            raise ValueError(f"unknown problem {problem!r}; available: {sorted(PROBLEMS)}")
        if steps_per_checkpoint < 1:
            raise ValueError("steps_per_checkpoint must be >= 1")
        self.problem = problem
        self.steps_per_checkpoint = steps_per_checkpoint
        ic = PROBLEMS[problem](ny, nx)
        self.solver = Euler2D(
            ic["dens"], ic["velx"], ic["vely"], ic["velz"], ic["pres"],
            eos=eos, dx=1.0 / nx, dy=1.0 / ny, bc="periodic", cfl=cfl,
        )
        self.grid = BlockGrid(ny, nx, block=block, guard=guard, n_ranks=n_ranks)

    def checkpoint(self) -> dict[str, np.ndarray]:
        prim = self.solver.primitives()
        return {name: prim[name] for name in FLASH_VARIABLES}

    def advance(self) -> None:
        for _ in range(self.steps_per_checkpoint):
            self.solver.step()

    def restore(self, checkpoint: dict[str, np.ndarray]) -> None:
        """Restart the solver from a (possibly approximated) checkpoint.

        Only the five independent primitives are consumed; the derived
        fields (eint, ener, pres-consistency, temp, gammas) are recomputed
        by the EOS, exactly as FLASH's restart path re-derives them.
        """
        missing = {"dens", "velx", "vely", "velz", "pres"} - set(checkpoint)
        if missing:
            raise KeyError(f"checkpoint missing variables: {sorted(missing)}")
        self.solver.set_state(
            checkpoint["dens"], checkpoint["velx"], checkpoint["vely"],
            checkpoint["velz"], checkpoint["pres"],
        )

    def rank_checkpoint(self, rank: int) -> dict[str, np.ndarray]:
        """Checkpoint restricted to the blocks owned by one simulated rank.

        Returns each variable as a ``(n_blocks, block, block)`` stack, the
        layout a per-process FLASH checkpoint write would produce.
        """
        cp = self.checkpoint()
        ids = self.grid.rank_blocks(rank)
        out: dict[str, np.ndarray] = {}
        for name, field in cp.items():
            self.grid.scatter(field)
            out[name] = np.stack([self.grid.interior(b).copy() for b in ids])
        return out
