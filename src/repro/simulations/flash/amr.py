"""Block-structured adaptive mesh refinement (AMR) and its checkpointing.

FLASH is "a block-structured adaptive mesh hydrodynamic code": the mesh is
a quadtree (octree in 3-D) of fixed-size blocks, refined where the
solution has structure.  This module provides that mesh at laptop scale
plus the piece NUMARCK actually needs: compressing checkpoints whose
*block population changes over time*.

* :class:`QuadTreeMesh` -- a quadtree of ``block_size^2`` leaf blocks over
  the unit square, with conservative restriction (children -> parent
  averaging), conservative prolongation (piecewise-constant injection),
  gradient-based :meth:`adapt`, and 2:1 level balance between neighbours.
* :class:`AmrCheckpointer` -- per-block NUMARCK chains with lifecycle
  handling: blocks born by refinement start a fresh full record, blocks
  removed by coarsening freeze their chain; any recorded iteration can be
  reconstructed with its own block population.

Block keys are ``(level, iy, ix)`` with integer block coordinates at that
level; level 0 is the ``base x base`` root layout, each refinement halves
the block's extent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig

__all__ = ["QuadTreeMesh", "AmrCheckpointer"]

BlockKey = tuple[int, int, int]


def _children(key: BlockKey) -> list[BlockKey]:
    level, iy, ix = key
    return [(level + 1, 2 * iy + dy, 2 * ix + dx)
            for dy in (0, 1) for dx in (0, 1)]


def _parent(key: BlockKey) -> BlockKey:
    level, iy, ix = key
    if level == 0:
        raise ValueError("root blocks have no parent")
    return (level - 1, iy // 2, ix // 2)


@dataclass
class _Block:
    key: BlockKey
    data: np.ndarray


class QuadTreeMesh:
    """Quadtree of fixed-size blocks over the unit square.

    Parameters
    ----------
    block_size:
        Cells per block edge (paper: 16).
    base:
        Root layout is ``base x base`` level-0 blocks.
    max_level:
        Deepest refinement level allowed.
    """

    def __init__(self, block_size: int = 16, base: int = 2,
                 max_level: int = 4) -> None:
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        if base < 1:
            raise ValueError(f"base must be >= 1, got {base}")
        if max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {max_level}")
        self.block_size = block_size
        self.base = base
        self.max_level = max_level
        self.leaves: dict[BlockKey, _Block] = {}
        for iy in range(base):
            for ix in range(base):
                key = (0, iy, ix)
                self.leaves[key] = _Block(
                    key, np.zeros((block_size, block_size))
                )

    # -- geometry -------------------------------------------------------------

    def block_extent(self, key: BlockKey) -> tuple[float, float, float, float]:
        """(x0, y0, width, height) of a block in the unit square."""
        level, iy, ix = key
        n = self.base * (1 << level)
        w = 1.0 / n
        return ix * w, iy * w, w, w

    def cell_centers(self, key: BlockKey) -> tuple[np.ndarray, np.ndarray]:
        """(yy, xx) cell-center coordinate arrays of one block."""
        x0, y0, w, h = self.block_extent(key)
        bs = self.block_size
        xs = x0 + (np.arange(bs) + 0.5) * w / bs
        ys = y0 + (np.arange(bs) + 0.5) * h / bs
        return np.meshgrid(ys, xs, indexing="ij")

    def cell_area(self, key: BlockKey) -> float:
        _, _, w, h = self.block_extent(key)
        return (w / self.block_size) * (h / self.block_size)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def n_cells(self) -> int:
        return self.n_leaves * self.block_size ** 2

    def total_integral(self) -> float:
        """Domain integral of the stored field (conservation invariant)."""
        return float(sum(b.data.sum() * self.cell_area(k)
                         for k, b in self.leaves.items()))

    # -- refinement -------------------------------------------------------------

    def refine(self, key: BlockKey) -> list[BlockKey]:
        """Split a leaf into its four children (conservative injection)."""
        if key not in self.leaves:
            raise KeyError(f"{key} is not a leaf")
        level = key[0]
        if level >= self.max_level:
            raise ValueError(f"{key} already at max level {self.max_level}")
        parent = self.leaves.pop(key)
        bs = self.block_size
        half = bs // 2
        children = _children(key)
        for child in children:
            dy = child[1] - 2 * key[1]
            dx = child[2] - 2 * key[2]
            quadrant = parent.data[dy * half : (dy + 1) * half,
                                   dx * half : (dx + 1) * half]
            # Piecewise-constant prolongation: each coarse cell fills the
            # 2x2 fine cells it covers (exactly conservative).
            self.leaves[child] = _Block(
                child, np.repeat(np.repeat(quadrant, 2, axis=0), 2, axis=1)
            )
        return children

    def coarsen(self, parent_key: BlockKey) -> BlockKey:
        """Merge four sibling leaves into their parent (averaging)."""
        children = _children(parent_key)
        if any(c not in self.leaves for c in children):
            raise KeyError(f"children of {parent_key} are not all leaves")
        bs = self.block_size
        half = bs // 2
        data = np.empty((bs, bs))
        for child in children:
            dy = child[1] - 2 * parent_key[1]
            dx = child[2] - 2 * parent_key[2]
            fine = self.leaves.pop(child).data
            # Conservative restriction: average each 2x2 fine patch.
            coarse = fine.reshape(half, 2, half, 2).mean(axis=(1, 3))
            data[dy * half : (dy + 1) * half, dx * half : (dx + 1) * half] = coarse
        self.leaves[parent_key] = _Block(parent_key, data)
        return parent_key

    # -- field handling ---------------------------------------------------------

    def sample(self, fn) -> None:
        """Fill every leaf from ``fn(yy, xx)`` at cell centers."""
        for key, block in self.leaves.items():
            yy, xx = self.cell_centers(key)
            block.data = np.asarray(fn(yy, xx), dtype=np.float64)

    def data(self, key: BlockKey) -> np.ndarray:
        return self.leaves[key].data

    def snapshot(self) -> dict[BlockKey, np.ndarray]:
        """Copies of all leaf arrays (a checkpoint of the mesh)."""
        return {k: b.data.copy() for k, b in self.leaves.items()}

    # -- adaptation ---------------------------------------------------------------

    def _indicator(self, data: np.ndarray) -> float:
        """Relative within-block variation (cheap refinement criterion)."""
        span = float(data.max() - data.min())
        scale = float(np.abs(data).mean()) + 1e-12
        return span / scale

    def adapt(self, refine_above: float = 0.5,
              coarsen_below: float = 0.05) -> tuple[int, int]:
        """One adaptation sweep; returns (n_refined, n_coarsened).

        Blocks whose relative variation exceeds ``refine_above`` split;
        complete sibling groups all below ``coarsen_below`` merge.  A 2:1
        level balance with edge neighbours is enforced after refinement.
        """
        if coarsen_below >= refine_above:
            raise ValueError("coarsen_below must be < refine_above")
        n_ref = 0
        for key in sorted(self.leaves):
            if key not in self.leaves:
                continue
            if key[0] < self.max_level and \
                    self._indicator(self.leaves[key].data) > refine_above:
                self.refine(key)
                n_ref += 1
        n_ref += self._enforce_balance()

        n_coars = 0
        parents: dict[BlockKey, list[BlockKey]] = {}
        for key in self.leaves:
            if key[0] > 0:
                parents.setdefault(_parent(key), []).append(key)
        for parent_key, kids in sorted(parents.items()):
            if len(kids) != 4:
                continue
            if all(self._indicator(self.leaves[c].data) < coarsen_below
                   for c in kids):
                if self._coarsen_keeps_balance(parent_key):
                    self.coarsen(parent_key)
                    n_coars += 1
        return n_ref, n_coars

    def _edge_neighbours(self, key: BlockKey) -> list[BlockKey]:
        level, iy, ix = key
        n = self.base * (1 << level)
        out = []
        for dy, dx in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            ny, nx = iy + dy, ix + dx
            if 0 <= ny < n and 0 <= nx < n:
                out.append((level, ny, nx))
        return out

    def _leaf_level_at(self, key: BlockKey) -> int | None:
        """Level of the *finest* leaf covering any part of ``key``'s region."""
        if key in self.leaves:
            return key[0]
        probe = key
        while probe[0] > 0:
            probe = _parent(probe)
            if probe in self.leaves:
                return probe[0]
        # Finer leaves below: balance cares about the deepest one.
        finest: int | None = None
        stack = _children(key)
        while stack:
            k = stack.pop()
            if k in self.leaves:
                finest = k[0] if finest is None else max(finest, k[0])
            elif k[0] < self.max_level:
                stack.extend(_children(k))
        return finest

    def _enforce_balance(self) -> int:
        """Refine until edge neighbours differ by at most one level."""
        n_extra = 0
        changed = True
        while changed:
            changed = False
            for key in sorted(self.leaves, key=lambda k: -k[0]):
                if key not in self.leaves:
                    continue
                for nb in self._edge_neighbours(key):
                    nb_level = self._leaf_level_at(nb)
                    if nb_level is not None and key[0] - nb_level > 1:
                        # The neighbour's covering leaf is too coarse.
                        coarse = nb
                        while coarse not in self.leaves:
                            coarse = _parent(coarse)
                        self.refine(coarse)
                        n_extra += 1
                        changed = True
                        break
        return n_extra

    def _coarsen_keeps_balance(self, parent_key: BlockKey) -> bool:
        """Would merging into ``parent_key`` violate 2:1 balance?"""
        for nb in self._edge_neighbours(parent_key):
            nb_level = self._leaf_level_at(nb)
            if nb_level is not None and nb_level - parent_key[0] > 1:
                return False
        return True


class AmrCheckpointer:
    """NUMARCK chains over an adapting block population.

    Each leaf block gets its own chain keyed by block id.  When a block
    first appears (initially, or born by refinement) its data is stored as
    a full record; while it persists, deltas accumulate; when it vanishes
    (coarsening) its chain freezes.  ``reconstruct(i)`` returns iteration
    ``i`` with exactly the block population it had.
    """

    def __init__(self, config: NumarckConfig | None = None) -> None:
        self.config = config if config is not None else NumarckConfig()
        # A block key can live several disjoint lifetimes (refined away,
        # later coarsened back); each lifetime is its own chain so earlier
        # iterations stay reconstructable.
        self._chains: dict[BlockKey, list[CheckpointChain]] = {}
        #: per recorded iteration: key -> (lifetime index, chain index)
        self._populations: list[dict[BlockKey, tuple[int, int]]] = []

    @property
    def n_iterations(self) -> int:
        return len(self._populations)

    @property
    def n_chains(self) -> int:
        """Total chains across all block lifetimes."""
        return sum(len(c) for c in self._chains.values())

    def record(self, snapshot: dict[BlockKey, np.ndarray]) -> dict[str, float]:
        """Append one mesh snapshot; returns summary stats."""
        if not snapshot:
            raise ValueError("snapshot has no blocks")
        population: dict[BlockKey, tuple[int, int]] = {}
        born = appended = 0
        alive_before = set(self._populations[-1]) if self._populations else set()
        for key, data in snapshot.items():
            lifetimes = self._chains.setdefault(key, [])
            if key not in alive_before:
                # New block (or re-born after coarsening): fresh chain.
                lifetimes.append(CheckpointChain(data, self.config))
                population[key] = (len(lifetimes) - 1, 0)
                born += 1
            else:
                chain = lifetimes[-1]
                chain.append(data)
                population[key] = (len(lifetimes) - 1, len(chain) - 1)
                appended += 1
        self._populations.append(population)
        died = len(alive_before - set(snapshot))
        return {"blocks": len(snapshot), "born": born,
                "appended": appended, "died": died}

    def reconstruct(self, iteration: int | None = None
                    ) -> dict[BlockKey, np.ndarray]:
        """Decode one recorded iteration with its own block population."""
        if not self._populations:
            raise RuntimeError("nothing recorded yet")
        it = len(self._populations) - 1 if iteration is None else iteration
        if not 0 <= it < len(self._populations):
            raise IndexError(f"iteration {it} out of range")
        population = self._populations[it]
        return {key: self._chains[key][life].reconstruct(idx)
                for key, (life, idx) in population.items()}
