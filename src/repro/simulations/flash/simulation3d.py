"""3-D FLASH-like simulation (the paper's actual geometry).

FLASH blocks are three-dimensional; this module provides the 3-D
counterpart of :class:`~repro.simulations.flash.simulation.FlashSimulation`
at laptop scale, emitting the same 10 checkpoint variables from a genuine
3-D Euler solve.
"""

from __future__ import annotations

import numpy as np

from repro.simulations.base import Simulation
from repro.simulations.flash.eos import GammaLawEOS
from repro.simulations.flash.euler3d import Euler3D
from repro.simulations.flash.simulation import FLASH_VARIABLES

__all__ = ["FlashSimulation3D", "PROBLEMS_3D", "sedov3d", "sod3d"]


def _grid3(nz: int, ny: int, nx: int):
    z = (np.arange(nz) + 0.5) / nz
    y = (np.arange(ny) + 0.5) / ny
    x = (np.arange(nx) + 0.5) / nx
    return np.meshgrid(z, y, x, indexing="ij")


def sedov3d(nz: int, ny: int, nx: int, blast_pressure: float = 100.0,
            radius: float = 0.1) -> dict[str, np.ndarray]:
    """Spherical Sedov-Taylor blast in the unit cube."""
    zz, yy, xx = _grid3(nz, ny, nx)
    r2 = (xx - 0.5) ** 2 + (yy - 0.5) ** 2 + (zz - 0.5) ** 2
    pres = np.where(r2 < radius * radius, blast_pressure, 0.1)
    dens = np.ones((nz, ny, nx))
    zero = np.zeros((nz, ny, nx))
    return {"dens": dens, "velx": zero.copy(), "vely": zero.copy(),
            "velz": zero.copy(), "pres": pres}


def sod3d(nz: int, ny: int, nx: int) -> dict[str, np.ndarray]:
    """Sod shock tube extruded in y and z."""
    _, _, xx = _grid3(nz, ny, nx)
    left = xx < 0.5
    dens = np.where(left, 1.0, 0.125)
    pres = np.where(left, 1.0, 0.1)
    zero = np.zeros((nz, ny, nx))
    return {"dens": dens, "velx": zero.copy(), "vely": zero.copy(),
            "velz": zero.copy(), "pres": pres}


PROBLEMS_3D = {"sedov": sedov3d, "sod": sod3d}


class FlashSimulation3D(Simulation):
    """3-D compressible-Euler model with FLASH-style checkpoints.

    Examples
    --------
    >>> sim = FlashSimulation3D("sedov", n=16, steps_per_checkpoint=2)
    >>> cp = sim.checkpoint()
    >>> cp["dens"].shape
    (16, 16, 16)
    """

    variables = FLASH_VARIABLES

    def __init__(self, problem: str = "sedov", n: int = 32,
                 steps_per_checkpoint: int = 2,
                 eos: GammaLawEOS | None = None, cfl: float = 0.35) -> None:
        if problem not in PROBLEMS_3D:
            raise ValueError(
                f"unknown problem {problem!r}; available: {sorted(PROBLEMS_3D)}"
            )
        if steps_per_checkpoint < 1:
            raise ValueError("steps_per_checkpoint must be >= 1")
        if n < 8:
            raise ValueError("grid must be at least 8^3")
        self.problem = problem
        self.steps_per_checkpoint = steps_per_checkpoint
        ic = PROBLEMS_3D[problem](n, n, n)
        self.solver = Euler3D(
            ic["dens"], ic["velx"], ic["vely"], ic["velz"], ic["pres"],
            eos=eos, dx=1.0 / n, dy=1.0 / n, dz=1.0 / n,
            bc="periodic", cfl=cfl,
        )

    def checkpoint(self) -> dict[str, np.ndarray]:
        prim = self.solver.primitives()
        return {name: prim[name] for name in FLASH_VARIABLES}

    def advance(self) -> None:
        for _ in range(self.steps_per_checkpoint):
            self.solver.step()

    def restore(self, checkpoint: dict[str, np.ndarray]) -> None:
        """Restart from a (possibly approximated) checkpoint."""
        missing = {"dens", "velx", "vely", "velz", "pres"} - set(checkpoint)
        if missing:
            raise KeyError(f"checkpoint missing variables: {sorted(missing)}")
        self.solver.set_state(
            checkpoint["dens"], checkpoint["velx"], checkpoint["vely"],
            checkpoint["velz"], checkpoint["pres"],
        )
