"""Octree AMR: the 3-D analogue of :mod:`repro.simulations.flash.amr`.

FLASH's mesh is an octree of 3-D blocks; this provides it at laptop scale
with the same operations as the quadtree (conservative injection /
averaging, variation-based adaptation, 2:1 edge balance).  Block keys are
``(level, iz, iy, ix)``.  :class:`~repro.simulations.flash.amr.AmrCheckpointer`
is dimension-agnostic and works unchanged over octree snapshots.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OctTreeMesh"]

BlockKey3 = tuple[int, int, int, int]


def _children(key: BlockKey3) -> list[BlockKey3]:
    level, iz, iy, ix = key
    return [(level + 1, 2 * iz + dz, 2 * iy + dy, 2 * ix + dx)
            for dz in (0, 1) for dy in (0, 1) for dx in (0, 1)]


def _parent(key: BlockKey3) -> BlockKey3:
    level, iz, iy, ix = key
    if level == 0:
        raise ValueError("root blocks have no parent")
    return (level - 1, iz // 2, iy // 2, ix // 2)


class OctTreeMesh:
    """Octree of fixed-size cubic blocks over the unit cube.

    Parameters
    ----------
    block_size:
        Cells per block edge (paper: 16).
    base:
        Root layout is ``base^3`` level-0 blocks.
    max_level:
        Deepest refinement level allowed.
    """

    def __init__(self, block_size: int = 8, base: int = 1,
                 max_level: int = 3) -> None:
        if block_size < 2 or block_size % 2:
            raise ValueError(
                f"block_size must be an even integer >= 2, got {block_size}"
            )
        if base < 1:
            raise ValueError(f"base must be >= 1, got {base}")
        if max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {max_level}")
        self.block_size = block_size
        self.base = base
        self.max_level = max_level
        self.leaves: dict[BlockKey3, np.ndarray] = {}
        bs = block_size
        for iz in range(base):
            for iy in range(base):
                for ix in range(base):
                    self.leaves[(0, iz, iy, ix)] = np.zeros((bs, bs, bs))

    # -- geometry -------------------------------------------------------------

    def block_extent(self, key: BlockKey3) -> tuple[float, float, float, float]:
        """(x0, y0, z0, width) of a cubic block in the unit cube."""
        level, iz, iy, ix = key
        n = self.base * (1 << level)
        w = 1.0 / n
        return ix * w, iy * w, iz * w, w

    def cell_centers(self, key: BlockKey3):
        """(zz, yy, xx) cell-center coordinates of one block."""
        x0, y0, z0, w = self.block_extent(key)
        bs = self.block_size
        ax = lambda o: o + (np.arange(bs) + 0.5) * w / bs  # noqa: E731
        return np.meshgrid(ax(z0), ax(y0), ax(x0), indexing="ij")

    def cell_volume(self, key: BlockKey3) -> float:
        w = self.block_extent(key)[3]
        return (w / self.block_size) ** 3

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def n_cells(self) -> int:
        return self.n_leaves * self.block_size ** 3

    def total_integral(self) -> float:
        return float(sum(d.sum() * self.cell_volume(k)
                         for k, d in self.leaves.items()))

    # -- refinement --------------------------------------------------------------

    def refine(self, key: BlockKey3) -> list[BlockKey3]:
        """Split a leaf into its eight children (conservative injection)."""
        if key not in self.leaves:
            raise KeyError(f"{key} is not a leaf")
        if key[0] >= self.max_level:
            raise ValueError(f"{key} already at max level {self.max_level}")
        data = self.leaves.pop(key)
        half = self.block_size // 2
        children = _children(key)
        for child in children:
            dz = child[1] - 2 * key[1]
            dy = child[2] - 2 * key[2]
            dx = child[3] - 2 * key[3]
            octant = data[dz * half : (dz + 1) * half,
                          dy * half : (dy + 1) * half,
                          dx * half : (dx + 1) * half]
            fine = np.repeat(np.repeat(np.repeat(octant, 2, axis=0),
                                       2, axis=1), 2, axis=2)
            self.leaves[child] = fine
        return children

    def coarsen(self, parent_key: BlockKey3) -> BlockKey3:
        """Merge eight sibling leaves into their parent (averaging)."""
        children = _children(parent_key)
        if any(c not in self.leaves for c in children):
            raise KeyError(f"children of {parent_key} are not all leaves")
        bs = self.block_size
        half = bs // 2
        data = np.empty((bs, bs, bs))
        for child in children:
            dz = child[1] - 2 * parent_key[1]
            dy = child[2] - 2 * parent_key[2]
            dx = child[3] - 2 * parent_key[3]
            fine = self.leaves.pop(child)
            coarse = fine.reshape(half, 2, half, 2, half, 2).mean(axis=(1, 3, 5))
            data[dz * half : (dz + 1) * half,
                 dy * half : (dy + 1) * half,
                 dx * half : (dx + 1) * half] = coarse
        self.leaves[parent_key] = data
        return parent_key

    # -- fields and adaptation -----------------------------------------------------

    def sample(self, fn) -> None:
        """Fill every leaf from ``fn(zz, yy, xx)`` at cell centers."""
        for key in self.leaves:
            zz, yy, xx = self.cell_centers(key)
            self.leaves[key] = np.asarray(fn(zz, yy, xx), dtype=np.float64)

    def data(self, key: BlockKey3) -> np.ndarray:
        return self.leaves[key]

    def snapshot(self) -> dict[BlockKey3, np.ndarray]:
        return {k: d.copy() for k, d in self.leaves.items()}

    def _indicator(self, data: np.ndarray) -> float:
        span = float(data.max() - data.min())
        return span / (float(np.abs(data).mean()) + 1e-12)

    def adapt(self, refine_above: float = 0.5,
              coarsen_below: float = 0.05) -> tuple[int, int]:
        """One adaptation sweep; returns (n_refined, n_coarsened)."""
        if coarsen_below >= refine_above:
            raise ValueError("coarsen_below must be < refine_above")
        n_ref = 0
        for key in sorted(self.leaves):
            if key in self.leaves and key[0] < self.max_level and \
                    self._indicator(self.leaves[key]) > refine_above:
                self.refine(key)
                n_ref += 1

        n_coars = 0
        parents: dict[BlockKey3, list[BlockKey3]] = {}
        for key in self.leaves:
            if key[0] > 0:
                parents.setdefault(_parent(key), []).append(key)
        for parent_key, kids in sorted(parents.items()):
            if len(kids) == 8 and all(
                self._indicator(self.leaves[c]) < coarsen_below for c in kids
            ):
                self.coarsen(parent_key)
                n_coars += 1
        return n_ref, n_coars
