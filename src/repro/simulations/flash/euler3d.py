"""3-D compressible Euler finite-volume solver.

The production FLASH code is three-dimensional (the paper's blocks are
3-D arrays with guard cells in every direction).  This is the full 3-D
analogue of :class:`~repro.simulations.flash.euler.Euler2D`: same Rusanov
fluxes and SSP-RK2 stepping, with all three momentum components active.

Conserved state has shape ``(5, nz, ny, nx)``; axis order is (z, y, x) so
the x direction is contiguous.
"""

from __future__ import annotations

import numpy as np

from repro.simulations.flash.eos import GammaLawEOS

__all__ = ["Euler3D"]

_DENS_FLOOR = 1e-10
_PRES_FLOOR = 1e-12


class Euler3D:
    """3-D finite-volume Euler solver.

    Parameters mirror :class:`Euler2D` with fields of shape
    ``(nz, ny, nx)`` and an extra cell size ``dz``.
    """

    def __init__(
        self,
        dens: np.ndarray,
        velx: np.ndarray,
        vely: np.ndarray,
        velz: np.ndarray,
        pres: np.ndarray,
        eos: GammaLawEOS | None = None,
        dx: float = 1.0,
        dy: float = 1.0,
        dz: float = 1.0,
        bc: str = "periodic",
        cfl: float = 0.35,
    ) -> None:
        if bc not in ("periodic", "outflow"):
            raise ValueError(f"unknown bc {bc!r}")
        self.eos = eos if eos is not None else GammaLawEOS()
        self.dx, self.dy, self.dz = float(dx), float(dy), float(dz)
        self.bc = bc
        self.cfl = float(cfl)
        self.time = 0.0
        self.n_steps = 0

        dens = np.asarray(dens, dtype=np.float64)
        if dens.ndim != 3:
            raise ValueError(f"fields must be 3-D, got shape {dens.shape}")
        shape = dens.shape
        for name, f in (("velx", velx), ("vely", vely), ("velz", velz),
                        ("pres", pres)):
            if np.asarray(f).shape != shape:
                raise ValueError(f"{name} shape mismatch")
        eint = self.eos.eint_from_pressure(dens, np.asarray(pres, dtype=np.float64))
        vx = np.asarray(velx, dtype=np.float64)
        vy = np.asarray(vely, dtype=np.float64)
        vz = np.asarray(velz, dtype=np.float64)
        etot = dens * (eint + 0.5 * (vx * vx + vy * vy + vz * vz))
        self.u = np.stack([dens, dens * vx, dens * vy, dens * vz, etot])

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.u.shape[1], self.u.shape[2], self.u.shape[3]

    # -- state access ---------------------------------------------------------

    def primitives(self) -> dict[str, np.ndarray]:
        """Same 10-variable dictionary the 2-D solver produces."""
        rho = np.maximum(self.u[0], _DENS_FLOOR)
        vx = self.u[1] / rho
        vy = self.u[2] / rho
        vz = self.u[3] / rho
        eint = np.maximum(self.u[4] / rho - 0.5 * (vx * vx + vy * vy + vz * vz),
                          0.0)
        pres = np.maximum(self.eos.pressure(rho, eint), _PRES_FLOOR)
        return {
            "dens": rho.copy(),
            "velx": vx,
            "vely": vy,
            "velz": vz,
            "eint": eint,
            "ener": eint + 0.5 * (vx * vx + vy * vy + vz * vz),
            "pres": pres,
            "temp": self.eos.temperature(rho, pres),
            "gamc": self.eos.gamc(rho, eint),
            "game": self.eos.game(rho, eint),
        }

    def set_state(self, dens, velx, vely, velz, pres) -> None:
        """Overwrite the conserved state from primitives (restart path)."""
        rho = np.maximum(np.asarray(dens, dtype=np.float64), _DENS_FLOOR)
        if rho.shape != self.shape:
            raise ValueError(f"state shape {rho.shape} != solver shape {self.shape}")
        vx = np.asarray(velx, dtype=np.float64)
        vy = np.asarray(vely, dtype=np.float64)
        vz = np.asarray(velz, dtype=np.float64)
        p = np.maximum(np.asarray(pres, dtype=np.float64), _PRES_FLOOR)
        eint = self.eos.eint_from_pressure(rho, p)
        etot = rho * (eint + 0.5 * (vx * vx + vy * vy + vz * vz))
        self.u = np.stack([rho, rho * vx, rho * vy, rho * vz, etot])

    # -- numerics -------------------------------------------------------------

    def _pad(self, u: np.ndarray) -> np.ndarray:
        mode = "wrap" if self.bc == "periodic" else "edge"
        return np.pad(u, ((0, 0), (1, 1), (1, 1), (1, 1)), mode=mode)

    def _flux_divergence(self, u: np.ndarray) -> np.ndarray:
        up = self._pad(u)
        rho = np.maximum(up[0], _DENS_FLOOR)
        vx = up[1] / rho
        vy = up[2] / rho
        vz = up[3] / rho
        eint = np.maximum(up[4] / rho - 0.5 * (vx * vx + vy * vy + vz * vz), 0.0)
        pres = np.maximum(self.eos.pressure(rho, eint), _PRES_FLOOR)
        cs = self.eos.sound_speed(rho, pres, eint)

        div = np.zeros_like(u)
        # One pass per direction: build the physical flux, form Rusanov
        # interface fluxes, accumulate the divergence.
        for axis, vel, mom, h in ((3, vx, 1, self.dx), (2, vy, 2, self.dy),
                                  (1, vz, 3, self.dz)):
            flux = np.empty_like(up)
            flux[0] = up[mom]
            flux[1] = up[1] * vel
            flux[2] = up[2] * vel
            flux[3] = up[3] * vel
            flux[mom] = flux[mom] + pres
            flux[4] = (up[4] + pres) * vel
            speed = np.abs(vel) + cs

            # Interior slices orthogonal to `axis`; interface arrays.
            def lo(a, ax=axis):
                sl = [slice(None)] * 4
                for interior_ax in (1, 2, 3):
                    if interior_ax != ax:
                        sl[interior_ax] = slice(1, -1)
                sl[ax] = slice(None, -1)
                return a[tuple(sl)]

            def hi(a, ax=axis):
                sl = [slice(None)] * 4
                for interior_ax in (1, 2, 3):
                    if interior_ax != ax:
                        sl[interior_ax] = slice(1, -1)
                sl[ax] = slice(1, None)
                return a[tuple(sl)]

            ul, ur = lo(up), hi(up)
            fl, fr = lo(flux), hi(flux)
            smax = np.maximum(lo(speed[None])[0], hi(speed[None])[0])
            f_iface = 0.5 * (fl + fr) - 0.5 * smax * (ur - ul)

            take_hi = [slice(None)] * 4
            take_lo = [slice(None)] * 4
            take_hi[axis] = slice(1, None)
            take_lo[axis] = slice(None, -1)
            div -= (f_iface[tuple(take_hi)] - f_iface[tuple(take_lo)]) / h
        return div

    def max_signal_speed(self) -> float:
        rho = np.maximum(self.u[0], _DENS_FLOOR)
        vx = self.u[1] / rho
        vy = self.u[2] / rho
        vz = self.u[3] / rho
        eint = np.maximum(self.u[4] / rho - 0.5 * (vx * vx + vy * vy + vz * vz),
                          0.0)
        pres = np.maximum(self.eos.pressure(rho, eint), _PRES_FLOOR)
        cs = self.eos.sound_speed(rho, pres, eint)
        vmax = np.maximum(np.abs(vx), np.maximum(np.abs(vy), np.abs(vz)))
        return float(np.max(vmax + cs))

    def step(self, dt: float | None = None) -> float:
        if dt is None:
            smax = max(self.max_signal_speed(), 1e-12)
            dt = self.cfl * min(self.dx, self.dy, self.dz) / smax
        k1 = self._flux_divergence(self.u)
        u1 = self.u + dt * k1
        self._apply_floors(u1)
        k2 = self._flux_divergence(u1)
        self.u = 0.5 * (self.u + u1 + dt * k2)
        self._apply_floors(self.u)
        self.time += dt
        self.n_steps += 1
        return dt

    @staticmethod
    def _apply_floors(u: np.ndarray) -> None:
        np.maximum(u[0], _DENS_FLOOR, out=u[0])
        rho = u[0]
        kin = 0.5 * (u[1] ** 2 + u[2] ** 2 + u[3] ** 2) / rho
        np.maximum(u[4], kin + rho * _PRES_FLOOR, out=u[4])

    def total_mass(self) -> float:
        return float(self.u[0].sum() * self.dx * self.dy * self.dz)

    def total_energy(self) -> float:
        return float(self.u[4].sum() * self.dx * self.dy * self.dz)
