"""Initial conditions for the FLASH-like solver.

Three classic hydro test problems, all on the unit square with periodic
boundaries (so the solver's conservation properties are exactly testable):

* :func:`sod` -- the Sod shock tube extruded in y: a left/right density and
  pressure jump launching a shock, contact and rarefaction.
* :func:`sedov` -- a Sedov-Taylor point blast: huge central pressure spike
  driving a radial blast wave.
* :func:`kelvin_helmholtz` -- a shear layer with a seeded perturbation that
  rolls up into vortices; the gentlest of the three, with the most
  NUMARCK-friendly (small, concentrated) change ratios.

Each returns the primitive dict consumed by
:class:`~repro.simulations.flash.euler.Euler2D`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sod", "sedov", "kelvin_helmholtz", "PROBLEMS"]


def _grid(ny: int, nx: int) -> tuple[np.ndarray, np.ndarray]:
    y = (np.arange(ny) + 0.5) / ny
    x = (np.arange(nx) + 0.5) / nx
    return np.meshgrid(y, x, indexing="ij")


def sod(ny: int, nx: int) -> dict[str, np.ndarray]:
    """Sod shock tube: (rho, p) = (1, 1) left, (0.125, 0.1) right."""
    _, xx = _grid(ny, nx)
    left = xx < 0.5
    dens = np.where(left, 1.0, 0.125)
    pres = np.where(left, 1.0, 0.1)
    zero = np.zeros((ny, nx))
    # A tiny smooth transverse shear gives velz a physical, evolving field.
    velz = 0.01 * np.sin(2 * np.pi * xx)
    return {"dens": dens, "velx": zero.copy(), "vely": zero.copy(),
            "velz": velz, "pres": pres}


def sedov(ny: int, nx: int, blast_pressure: float = 100.0,
          radius: float = 0.05) -> dict[str, np.ndarray]:
    """Sedov-Taylor blast: ambient (rho, p) = (1, 0.1), hot central disc."""
    yy, xx = _grid(ny, nx)
    r2 = (xx - 0.5) ** 2 + (yy - 0.5) ** 2
    pres = np.where(r2 < radius * radius, blast_pressure, 0.1)
    dens = np.ones((ny, nx))
    zero = np.zeros((ny, nx))
    velz = 0.01 * np.cos(2 * np.pi * yy)
    return {"dens": dens, "velx": zero.copy(), "vely": zero.copy(),
            "velz": velz, "pres": pres}


def kelvin_helmholtz(ny: int, nx: int, mach: float = 0.5,
                     amplitude: float = 0.01) -> dict[str, np.ndarray]:
    """Shear layer: dense fast stream in the middle band, seeded vy ripple."""
    yy, xx = _grid(ny, nx)
    band = np.abs(yy - 0.5) < 0.25
    dens = np.where(band, 2.0, 1.0)
    velx = np.where(band, mach, -mach)
    vely = amplitude * np.sin(4 * np.pi * xx) * np.exp(-((yy - 0.25) ** 2
                                                         + (yy - 0.75) ** 2) / 0.01)
    velz = amplitude * np.sin(2 * np.pi * yy)
    pres = np.full((ny, nx), 2.5)
    return {"dens": dens, "velx": velx, "vely": vely, "velz": velz, "pres": pres}


PROBLEMS = {
    "sod": sod,
    "sedov": sedov,
    "kelvin_helmholtz": kelvin_helmholtz,
}
