"""Exact Riemann solver for the 1-D Euler equations (gamma-law gas).

Used to validate the finite-volume solver: the Sod shock tube has a known
exact solution (rarefaction - contact - shock), and the test suite checks
that :class:`~repro.simulations.flash.euler.Euler2D` converges to it.

Standard Toro (Ch. 4) construction: solve the pressure equation in the
star region with Newton iterations using the two-rarefaction/two-shock
flux functions, then sample the self-similar solution at ``x / t``.
Constant ``gamma`` (the weak temperature dependence of the production EOS
is irrelevant at validation tolerances and is disabled by passing
``GammaLawEOS(gamma_drop=0)`` to the solver under test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RiemannState", "exact_riemann", "sod_exact"]


@dataclass(frozen=True)
class RiemannState:
    """Primitive state on one side of the interface."""

    rho: float
    u: float
    p: float

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.p <= 0:
            raise ValueError("density and pressure must be positive")


def _pressure_function(p: float, state: RiemannState, gamma: float
                       ) -> tuple[float, float]:
    """Toro's f(p, W) and its derivative for one side."""
    a = np.sqrt(gamma * state.p / state.rho)
    if p > state.p:
        # Shock branch.
        big_a = 2.0 / ((gamma + 1.0) * state.rho)
        big_b = (gamma - 1.0) / (gamma + 1.0) * state.p
        sqrt_term = np.sqrt(big_a / (p + big_b))
        f = (p - state.p) * sqrt_term
        df = sqrt_term * (1.0 - 0.5 * (p - state.p) / (p + big_b))
    else:
        # Rarefaction branch.
        exp = (gamma - 1.0) / (2.0 * gamma)
        f = 2.0 * a / (gamma - 1.0) * ((p / state.p) ** exp - 1.0)
        df = (p / state.p) ** (-(gamma + 1.0) / (2.0 * gamma)) / (state.rho * a)
    return f, df


def _star_pressure(left: RiemannState, right: RiemannState, gamma: float,
                   tol: float = 1e-12, max_iter: int = 100) -> float:
    """Newton solve for the star-region pressure."""
    # PVRS initial guess, floored away from vacuum.
    a_l = np.sqrt(gamma * left.p / left.rho)
    a_r = np.sqrt(gamma * right.p / right.rho)
    rho_bar = 0.5 * (left.rho + right.rho)
    a_bar = 0.5 * (a_l + a_r)
    p = max(0.5 * (left.p + right.p)
            - 0.125 * (right.u - left.u) * rho_bar * a_bar, 1e-8)
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, left, gamma)
        f_r, df_r = _pressure_function(p, right, gamma)
        g = f_l + f_r + (right.u - left.u)
        step = g / (df_l + df_r)
        p_new = max(p - step, 1e-10)
        if abs(p_new - p) < tol * p:
            return p_new
        p = p_new
    return p


def exact_riemann(left: RiemannState, right: RiemannState, xi: np.ndarray,
                  gamma: float = 1.4) -> dict[str, np.ndarray]:
    """Sample the exact solution at similarity coordinates ``xi = x / t``.

    Returns the primitive fields ``rho``, ``u``, ``p`` as arrays matching
    ``xi``.  Raises for (near-)vacuum-generating data, which the test
    problems never produce.
    """
    xi = np.asarray(xi, dtype=np.float64)
    a_l = np.sqrt(gamma * left.p / left.rho)
    a_r = np.sqrt(gamma * right.p / right.rho)
    if 2.0 * (a_l + a_r) / (gamma - 1.0) <= right.u - left.u:
        raise ValueError("initial data generates vacuum")

    p_star = _star_pressure(left, right, gamma)
    f_l, _ = _pressure_function(p_star, left, gamma)
    f_r, _ = _pressure_function(p_star, right, gamma)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)

    g1 = (gamma - 1.0) / (gamma + 1.0)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    left_side = xi <= u_star
    for side, mask in (("L", left_side), ("R", ~left_side)):
        if side == "L":
            s = left
            a = a_l
            sign = 1.0
        else:
            s = right
            a = a_r
            sign = -1.0
        if p_star > s.p:
            # Shock on this side.
            q = np.sqrt((gamma + 1.0) / (2.0 * gamma) * p_star / s.p
                        + (gamma - 1.0) / (2.0 * gamma))
            speed = s.u - sign * a * q
            rho_star = s.rho * ((p_star / s.p + g1) / (g1 * p_star / s.p + 1.0))
            ahead = (xi * sign) < (speed * sign)
            rho[mask] = np.where(ahead[mask], s.rho, rho_star)
            u[mask] = np.where(ahead[mask], s.u, u_star)
            p[mask] = np.where(ahead[mask], s.p, p_star)
        else:
            # Rarefaction fan on this side.
            a_star = a * (p_star / s.p) ** ((gamma - 1.0) / (2.0 * gamma))
            rho_star = s.rho * (p_star / s.p) ** (1.0 / gamma)
            head = s.u - sign * a
            tail = u_star - sign * a_star
            xim = xi[mask]
            in_ahead = (xim * sign) < (head * sign)
            in_fan = ~in_ahead & ((xim * sign) < (tail * sign))
            # Fan interior (Toro Eqs. 4.56 / 4.63).
            fan_u = 2.0 / (gamma + 1.0) * (sign * a + (gamma - 1.0) / 2.0 * s.u
                                           + xim)
            fan_a = 2.0 / (gamma + 1.0) * (a + sign * (gamma - 1.0) / 2.0
                                           * (s.u - xim))
            fan_rho = s.rho * (fan_a / a) ** (2.0 / (gamma - 1.0))
            fan_p = s.p * (fan_a / a) ** (2.0 * gamma / (gamma - 1.0))
            rho[mask] = np.where(in_ahead, s.rho,
                                 np.where(in_fan, fan_rho, rho_star))
            u[mask] = np.where(in_ahead, s.u, np.where(in_fan, fan_u, u_star))
            p[mask] = np.where(in_ahead, s.p, np.where(in_fan, fan_p, p_star))
    return {"rho": rho, "u": u, "p": p}


def sod_exact(x: np.ndarray, t: float, x0: float = 0.5,
              gamma: float = 1.4) -> dict[str, np.ndarray]:
    """Exact Sod shock-tube solution at time ``t`` (diaphragm at ``x0``)."""
    if t <= 0:
        raise ValueError("t must be positive")
    left = RiemannState(rho=1.0, u=0.0, p=1.0)
    right = RiemannState(rho=0.125, u=0.0, p=0.1)
    xi = (np.asarray(x, dtype=np.float64) - x0) / t
    return exact_riemann(left, right, xi, gamma=gamma)
