"""3-D block-structured mesh with guard cells.

The paper's FLASH configuration: "A block is a three-dimensional array
with an additional 4 elements as guard cells in each dimension on both
sides", 16 cells per edge, ~80 blocks per MPI process.  This is the 3-D
analogue of :class:`~repro.simulations.flash.blocks.BlockGrid` over a
periodic cubic domain.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockGrid3D"]


class BlockGrid3D:
    """Periodic 3-D domain split into fixed-size guarded cubic blocks.

    Parameters
    ----------
    nz, ny, nx:
        Global interior size; each must be divisible by ``block``.
    block:
        Interior block edge length (paper: 16).
    guard:
        Guard-cell depth on every face (paper: 4).
    n_ranks:
        Simulated MPI process count for round-robin block ownership.
    """

    def __init__(self, nz: int, ny: int, nx: int, block: int = 16,
                 guard: int = 4, n_ranks: int = 1) -> None:
        if nz % block or ny % block or nx % block:
            raise ValueError(
                f"grid {nz}x{ny}x{nx} not divisible by block size {block}"
            )
        if guard < 0 or guard > block:
            raise ValueError(f"guard must be in [0, {block}], got {guard}")
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.nz, self.ny, self.nx = nz, ny, nx
        self.block = block
        self.guard = guard
        self.n_ranks = n_ranks
        self.nbz, self.nby, self.nbx = nz // block, ny // block, nx // block
        side = block + 2 * guard
        self.blocks = np.zeros(
            (self.nbz * self.nby * self.nbx, side, side, side), dtype=np.float64
        )

    @property
    def n_blocks(self) -> int:
        return self.nbz * self.nby * self.nbx

    def block_index(self, bz: int, by: int, bx: int) -> int:
        return (bz * self.nby + by) * self.nbx + bx

    def owner(self, block_id: int) -> int:
        if not 0 <= block_id < self.n_blocks:
            raise IndexError(f"block {block_id} out of range")
        return block_id % self.n_ranks

    def rank_blocks(self, rank: int) -> list[int]:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        return list(range(rank, self.n_blocks, self.n_ranks))

    def interior(self, block_id: int) -> np.ndarray:
        g = self.guard
        b = self.blocks[block_id]
        if g == 0:
            return b
        return b[g:-g, g:-g, g:-g]

    # -- data movement --------------------------------------------------------

    def _origin(self, block_id: int) -> tuple[int, int, int]:
        bz, rem = divmod(block_id, self.nby * self.nbx)
        by, bx = divmod(rem, self.nbx)
        return bz * self.block, by * self.block, bx * self.block

    def scatter(self, global_field: np.ndarray) -> None:
        """Fill every block interior from the global array."""
        arr = np.asarray(global_field, dtype=np.float64)
        if arr.shape != (self.nz, self.ny, self.nx):
            raise ValueError(
                f"expected shape {(self.nz, self.ny, self.nx)}, got {arr.shape}"
            )
        bs = self.block
        for bid in range(self.n_blocks):
            z0, y0, x0 = self._origin(bid)
            self.interior(bid)[:] = arr[z0 : z0 + bs, y0 : y0 + bs, x0 : x0 + bs]

    def gather(self) -> np.ndarray:
        """Reassemble the global array from block interiors."""
        out = np.empty((self.nz, self.ny, self.nx), dtype=np.float64)
        bs = self.block
        for bid in range(self.n_blocks):
            z0, y0, x0 = self._origin(bid)
            out[z0 : z0 + bs, y0 : y0 + bs, x0 : x0 + bs] = self.interior(bid)
        return out

    def exchange(self) -> None:
        """Fill all guard cells from neighbour interiors (periodic wrap)."""
        g = self.guard
        if g == 0:
            return
        padded = np.pad(self.gather(), g, mode="wrap")
        bs = self.block
        for bid in range(self.n_blocks):
            z0, y0, x0 = self._origin(bid)
            self.blocks[bid][:] = padded[
                z0 : z0 + bs + 2 * g, y0 : y0 + bs + 2 * g, x0 : x0 + bs + 2 * g
            ]

    def guard_halo(self, block_id: int) -> np.ndarray:
        """Copy of a block including guards (after :meth:`exchange`)."""
        return self.blocks[block_id].copy()
