"""Block-structured mesh with guard cells.

FLASH decomposes the domain into fixed-size blocks (the paper uses 16 x 16
with 4 guard cells on every side) distributed across MPI processes; each
block computes on its interior after filling guards from its neighbours.
:class:`BlockGrid` reproduces that data layout over a periodic uniform
grid:

* ``scatter(global)`` fills every block's interior from the global array;
* ``exchange()`` fills all guard layers from neighbouring interiors
  (periodic wrap at domain edges);
* ``gather()`` reassembles the global array from the interiors;
* ``owner(block_id)`` maps blocks round-robin to simulated ranks, the
  paper's "about 80 blocks on each MPI process" layout at reduced scale.

The test suite validates ``exchange`` against a plain ``np.roll`` of the
global field, and the distributed-checkpoint example compresses per-rank
block data with NUMARCK just as an in-situ integration would.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockGrid"]


class BlockGrid:
    """Periodic 2-D domain split into fixed-size guarded blocks.

    Parameters
    ----------
    ny, nx:
        Global interior size; must be divisible by ``block``.
    block:
        Interior block edge length (paper: 16).
    guard:
        Guard-cell depth on every side (paper: 4).
    n_ranks:
        Number of simulated MPI processes blocks are distributed over.
    """

    def __init__(self, ny: int, nx: int, block: int = 16, guard: int = 4,
                 n_ranks: int = 1) -> None:
        if ny % block or nx % block:
            raise ValueError(f"grid {ny}x{nx} not divisible by block size {block}")
        if guard < 0 or guard > block:
            raise ValueError(f"guard must be in [0, {block}], got {guard}")
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.ny, self.nx = ny, nx
        self.block = block
        self.guard = guard
        self.n_ranks = n_ranks
        self.nby = ny // block
        self.nbx = nx // block
        side = block + 2 * guard
        # blocks[b] is (side, side); interior is [guard:-guard, guard:-guard].
        self.blocks = np.zeros((self.nby * self.nbx, side, side), dtype=np.float64)

    # -- identity -----------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.nby * self.nbx

    def block_index(self, by: int, bx: int) -> int:
        return by * self.nbx + bx

    def owner(self, block_id: int) -> int:
        """Round-robin rank assignment of a block."""
        if not 0 <= block_id < self.n_blocks:
            raise IndexError(f"block {block_id} out of range")
        return block_id % self.n_ranks

    def rank_blocks(self, rank: int) -> list[int]:
        """Blocks owned by ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        return list(range(rank, self.n_blocks, self.n_ranks))

    def interior(self, block_id: int) -> np.ndarray:
        """View of a block's interior cells."""
        g = self.guard
        b = self.blocks[block_id]
        return b[g : g + self.block, g : g + self.block] if g else b

    # -- data movement --------------------------------------------------------

    def scatter(self, global_field: np.ndarray) -> None:
        """Fill every block interior from the global array."""
        arr = np.asarray(global_field, dtype=np.float64)
        if arr.shape != (self.ny, self.nx):
            raise ValueError(f"expected shape {(self.ny, self.nx)}, got {arr.shape}")
        bs = self.block
        for by in range(self.nby):
            for bx in range(self.nbx):
                self.interior(self.block_index(by, bx))[:] = arr[
                    by * bs : (by + 1) * bs, bx * bs : (bx + 1) * bs
                ]

    def gather(self) -> np.ndarray:
        """Reassemble the global array from block interiors."""
        out = np.empty((self.ny, self.nx), dtype=np.float64)
        bs = self.block
        for by in range(self.nby):
            for bx in range(self.nbx):
                out[by * bs : (by + 1) * bs, bx * bs : (bx + 1) * bs] = self.interior(
                    self.block_index(by, bx)
                )
        return out

    def exchange(self) -> None:
        """Fill every block's guard cells from neighbour interiors.

        Periodic wrap in both directions.  Implemented by building the
        guard-padded window of each block from a wrapped copy of the
        gathered global field -- equivalent to (and tested against) the
        message-passing exchange a distributed run would perform, including
        the corner regions diagonal neighbours provide.
        """
        g = self.guard
        if g == 0:
            return
        glob = self.gather()
        padded = np.pad(glob, g, mode="wrap")
        bs = self.block
        for by in range(self.nby):
            for bx in range(self.nbx):
                y0 = by * bs
                x0 = bx * bs
                self.blocks[self.block_index(by, bx)][:] = padded[
                    y0 : y0 + bs + 2 * g, x0 : x0 + bs + 2 * g
                ]

    def guard_halo(self, block_id: int) -> np.ndarray:
        """Copy of a block including guards (after :meth:`exchange`)."""
        return self.blocks[block_id].copy()
