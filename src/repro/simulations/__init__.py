"""Simulation substrates that generate checkpoint data.

The paper evaluates on checkpoints from two production codes; neither the
FLASH code nor the CMIP5 netCDF archives are available here, so this
package provides faithful laptop-scale stand-ins (substitutions documented
in DESIGN.md):

* :mod:`repro.simulations.flash` -- a block-structured 2.5-D compressible
  Euler finite-volume solver emitting the paper's 10 checkpoint variables.
* :mod:`repro.simulations.cmip` -- stochastic spatiotemporal climate-field
  generators for the paper's 6 CMIP5 variables on the 2.5-degree x 2-degree
  grid.

Both expose the :class:`Simulation` protocol: ``checkpoint()`` returns a
dict of variable name -> float64 array, ``advance()`` steps the model, and
``run(n)`` yields ``n + 1`` checkpoints (the initial state plus one per
advance).
"""

from repro.simulations.base import Simulation, run_checkpoints
from repro.simulations.dataset import TrajectoryReader, save_trajectory

__all__ = ["Simulation", "run_checkpoints", "save_trajectory",
           "TrajectoryReader"]
