"""Common simulation protocol."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

__all__ = ["Simulation", "run_checkpoints"]


class Simulation(ABC):
    """A time-stepping model that emits named checkpoint variables."""

    #: names of the variables present in every checkpoint dict
    variables: tuple[str, ...] = ()

    @abstractmethod
    def checkpoint(self) -> dict[str, np.ndarray]:
        """Snapshot of all checkpoint variables (fresh float64 arrays)."""

    @abstractmethod
    def advance(self) -> None:
        """Advance the model by one checkpoint interval."""

    def run(self, n_checkpoints: int) -> Iterator[dict[str, np.ndarray]]:
        """Yield the initial checkpoint plus ``n_checkpoints`` more."""
        if n_checkpoints < 0:
            raise ValueError(f"n_checkpoints must be >= 0, got {n_checkpoints}")
        yield self.checkpoint()
        for _ in range(n_checkpoints):
            self.advance()
            yield self.checkpoint()


def run_checkpoints(sim: Simulation, variable: str,
                    n_checkpoints: int) -> list[np.ndarray]:
    """Collect one variable's trajectory across checkpoints.

    Convenience for the benches, which usually study one variable at a
    time (paper Figs 4-7).
    """
    if variable not in sim.variables:
        raise KeyError(f"{variable!r} not in {sim.variables}")
    return [cp[variable] for cp in sim.run(n_checkpoints)]
