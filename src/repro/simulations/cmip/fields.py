"""Spatiotemporal field primitives for the climate generator."""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

__all__ = ["smooth_noise", "ar1_step"]


def smooth_noise(shape: tuple[int, ...], rng: np.random.Generator,
                 sigma: float = 4.0) -> np.ndarray:
    """Unit-variance spatially correlated Gaussian noise.

    White noise smoothed with a Gaussian kernel of width ``sigma`` cells,
    wrapping in the last axis (longitude is periodic) and reflecting in the
    others, then rescaled back to unit variance.
    """
    white = rng.standard_normal(shape)
    modes = ["reflect"] * (len(shape) - 1) + ["wrap"]
    field = gaussian_filter(white, sigma=sigma, mode=modes)
    std = field.std()
    return field / std if std > 0 else field


def ar1_step(state: np.ndarray, mean: np.ndarray | float, phi: float,
             sigma: float, rng: np.random.Generator,
             noise_sigma_cells: float = 4.0) -> np.ndarray:
    """One AR(1) step with spatially correlated innovations.

    ``x' = mean + phi * (x - mean) + sigma * eta`` where ``eta`` is
    unit-variance smooth noise.  ``phi`` close to 1 gives the strong
    day-to-day persistence real climate fields show.
    """
    if not 0.0 <= phi <= 1.0:
        raise ValueError(f"phi must be in [0, 1], got {phi}")
    eta = smooth_noise(state.shape, rng, sigma=noise_sigma_cells)
    return mean + phi * (state - mean) + sigma * eta
