"""The CMIP5-like field generator."""

from __future__ import annotations

import numpy as np

from repro.simulations.base import Simulation
from repro.simulations.cmip.fields import ar1_step, smooth_noise
from repro.simulations.cmip.variables import VARIABLE_SPECS, VariableSpec

__all__ = ["CmipSimulation", "CMIP_VARIABLES"]

#: The paper's six CMIP5 variables.
CMIP_VARIABLES = tuple(VARIABLE_SPECS)

#: Paper grid: 2.5 degrees in longitude (144 points), 2 degrees in
#: latitude (90 points).
PAPER_NLAT = 90
PAPER_NLON = 144


class CmipSimulation(Simulation):
    """Generate one CMIP5-like variable's daily/monthly iterations.

    The model keeps a latent anomaly field evolving as a spatially
    correlated AR(1) process around a fixed climatology plus a seasonal
    cycle, then maps it to physical values through the variable's marginal
    transform (see :mod:`repro.simulations.cmip.variables`).

    Parameters
    ----------
    variable:
        One of :data:`CMIP_VARIABLES`.
    nlat, nlon:
        Grid size; defaults to the paper's 90 x 144.  Tests use smaller
        grids for speed -- the statistics are grid-size independent.
    seed:
        RNG seed; two simulations with equal seeds produce identical
        trajectories.

    Examples
    --------
    >>> sim = CmipSimulation("rlus", nlat=18, nlon=36, seed=7)
    >>> a = sim.checkpoint()["rlus"]
    >>> sim.advance()
    >>> b = sim.checkpoint()["rlus"]
    >>> float(np.median(np.abs((b - a) / a))) < 0.005
    True
    """

    def __init__(self, variable: str, nlat: int = PAPER_NLAT,
                 nlon: int = PAPER_NLON, seed: int = 0) -> None:
        if variable not in VARIABLE_SPECS:
            raise ValueError(
                f"unknown variable {variable!r}; available: {sorted(VARIABLE_SPECS)}"
            )
        if nlat < 4 or nlon < 4:
            raise ValueError("grid must be at least 4 x 4")
        self.spec: VariableSpec = VARIABLE_SPECS[variable]
        self.variables = (variable,)
        self.nlat = nlat
        self.nlon = nlon
        self.rng = np.random.default_rng(seed)
        self.day = 0

        shape = (self.spec.levels, nlat, nlon) if self.spec.levels else (nlat, nlon)
        # Fixed climatology: large-scale pattern plus fine-scale static
        # structure (land/sea contrasts, orography).  The fine component
        # cancels in temporal change ratios but makes individual snapshots
        # realistically rough -- real climate fields are not smooth in
        # index order, which is why spatial-fit compressors struggle
        # (paper Table II's B-Splines column).
        self._clim = self.spec.clim_amp * (
            0.75 * smooth_noise(shape, self.rng, sigma=6.0)
            + 0.35 * smooth_noise(shape, self.rng, sigma=0.7)
        )
        self._season_phase = 2 * np.pi * smooth_noise(shape, self.rng, sigma=10.0)
        if self.spec.levels:
            # Vertical structure: flux concentrated at mid levels.
            lev = np.linspace(0, 1, self.spec.levels)
            profile = np.exp(-((lev - 0.45) ** 2) / 0.08)
            self._clim = self._clim * profile[:, None, None]
        # Latent anomaly starts in statistical equilibrium.
        eq_sigma = self.spec.sigma / max(np.sqrt(1 - self.spec.phi**2), 1e-3)
        self._anom = eq_sigma * smooth_noise(shape, self.rng, sigma=4.0)
        self._shape = shape
        self._spikes = self._draw_spikes()

    # -- model ---------------------------------------------------------------

    def _draw_spikes(self) -> np.ndarray:
        """One iteration's transient events (zero field if none configured)."""
        spec = self.spec
        if spec.spike_frac <= 0.0 or spec.spike_amp <= 0.0:
            return np.zeros(self._shape)
        mask = self.rng.random(self._shape) < spec.spike_frac
        amp = np.clip(self.rng.standard_normal(self._shape), -3.0, 3.0)
        return spec.spike_amp * amp * mask

    def _season(self) -> np.ndarray:
        period = 12.0 if self.spec.cadence == "monthly" else 365.0
        return self.spec.seasonal_amp * np.sin(
            2 * np.pi * self.day / period + self._season_phase
        )

    def _latent(self) -> np.ndarray:
        return self._clim + self._season() + self._anom + self._spikes

    def _physical(self, latent: np.ndarray) -> np.ndarray:
        spec = self.spec
        if spec.kind == "additive":
            out = spec.base + latent
        elif spec.kind == "sparse":
            out = np.maximum(spec.base + latent - spec.sparse_threshold
                             - spec.clim_amp, 0.0)
        else:  # lognormal
            out = spec.base * np.exp(latent / max(spec.clim_amp, 1e-12))
        if spec.lower is not None or spec.upper is not None:
            out = np.clip(out, spec.lower, spec.upper)
        return out

    def checkpoint(self) -> dict[str, np.ndarray]:
        return {self.spec.name: self._physical(self._latent()).astype(np.float64)}

    def advance(self) -> None:
        self._anom = ar1_step(self._anom, 0.0, self.spec.phi, self.spec.sigma,
                              self.rng)
        self._spikes = self._draw_spikes()
        self.day += 1
