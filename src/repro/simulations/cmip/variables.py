"""Per-variable statistical specifications.

Each :class:`VariableSpec` describes how a variable's latent AR(1) anomaly
field maps to physical values and how strongly it varies per step.  The
``kind`` selects the marginal transform:

* ``"additive"`` -- physical = climatology + anomaly (radiation, soil
  moisture, convective flux).  Day-over-day relative changes are roughly
  ``sigma / typical magnitude``.
* ``"sparse"`` -- physical = max(latent - threshold, 0) * scale: a large
  fraction of exact zeros, like runoff, which forces those points into
  NUMARCK's exact store (ratio undefined at zero base).
* ``"lognormal"`` -- physical = base * exp(anomaly): multiplicative
  variability, so *relative* changes are order ``sigma`` regardless of
  magnitude -- the aerosol case the paper found hardest.

Parameters were tuned so the generated change-ratio distributions show the
paper's qualitative facts: >75 % of radiation points change by < 0.5 % per
day; abs550aer has the widest relative-change distribution; mc takes the
largest absolute steps (monthly cadence).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VariableSpec", "VARIABLE_SPECS"]


@dataclass(frozen=True)
class VariableSpec:
    """Statistical description of one CMIP5-like variable.

    Attributes
    ----------
    name:
        CMIP short name.
    kind:
        Marginal transform: ``"additive"``, ``"sparse"`` or ``"lognormal"``.
    cadence:
        ``"daily"`` or ``"monthly"`` (affects the seasonal phase step only).
    levels:
        Number of vertical levels (``0`` = 2-D surface field).
    base:
        Climatological magnitude (additive offset, or multiplicative base
        for ``"lognormal"``).
    clim_amp:
        Amplitude of the fixed spatial climatology pattern.
    seasonal_amp:
        Amplitude of the seasonal cycle added to the climatology.
    phi:
        AR(1) persistence of the anomaly field.
    sigma:
        Innovation standard deviation (physical units for ``additive`` /
        ``sparse``; log units for ``lognormal``).
    sparse_threshold:
        For ``"sparse"``: latent offset subtracted before clipping at 0
        (controls the zero fraction).
    lower / upper:
        Optional physical clipping bounds (e.g. soil moisture capacity).
    spike_frac / spike_amp:
        Transient local events (clouds, dust plumes): each iteration, a
        random ``spike_frac`` of cells receives an additive perturbation of
        scale ``spike_amp`` (normal, clipped at 3 sigma) that lasts one
        iteration.  Spikes produce the heavy-tailed change ratios real
        daily radiation fields show -- the regime where equal-width binning
        collapses and adaptive strategies win (paper Figs 4 and 6).
    """

    name: str
    kind: str
    cadence: str = "daily"
    levels: int = 0
    base: float = 0.0
    clim_amp: float = 1.0
    seasonal_amp: float = 0.0
    phi: float = 0.98
    sigma: float = 1.0
    sparse_threshold: float = 0.0
    lower: float | None = None
    upper: float | None = None
    spike_frac: float = 0.0
    spike_amp: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("additive", "sparse", "lognormal"):
            raise ValueError(f"unknown kind {self.kind!r}")
        if self.cadence not in ("daily", "monthly"):
            raise ValueError(f"unknown cadence {self.cadence!r}")
        if not 0.0 <= self.phi <= 1.0:
            raise ValueError(f"phi must be in [0, 1], got {self.phi}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.levels < 0:
            raise ValueError(f"levels must be >= 0, got {self.levels}")
        if not 0.0 <= self.spike_frac < 1.0:
            raise ValueError(f"spike_frac must be in [0, 1), got {self.spike_frac}")
        if self.spike_amp < 0:
            raise ValueError(f"spike_amp must be >= 0, got {self.spike_amp}")


#: Specs for the paper's six CMIP5 variables.
VARIABLE_SPECS: dict[str, VariableSpec] = {
    # Surface Upwelling Longwave Radiation (W/m^2): smooth, persistent;
    # most daily relative changes well under 0.5 %.
    "rlus": VariableSpec(
        name="rlus", kind="additive", base=390.0, clim_amp=55.0,
        seasonal_amp=12.0, phi=0.985, sigma=0.9,
    ),
    # Surface Downwelling Longwave Radiation: cloudier -- transient cloud
    # events give a heavy-tailed change distribution whose *range* defeats
    # equal-width binning at B=8 (the paper's Fig. 6 dataset).
    "rlds": VariableSpec(
        name="rlds", kind="additive", base=340.0, clim_amp=60.0,
        seasonal_amp=15.0, phi=0.975, sigma=1.6, lower=5.0,
        spike_frac=0.03, spike_amp=50.0,
    ),
    # Moisture in Upper Portion of Soil Column (kg/m^2): bounded, slow.
    "mrsos": VariableSpec(
        name="mrsos", kind="additive", base=22.0, clim_amp=9.0,
        seasonal_amp=3.0, phi=0.995, sigma=0.12, lower=0.5, upper=45.0,
    ),
    # Total Runoff (kg/m^2/s scaled): sparse non-negative with exact zeros
    # (dry cells) and violent relative changes near the dry threshold --
    # the one dataset where the paper's NUMARCK loses to ISABELA.
    "mrro": VariableSpec(
        name="mrro", kind="sparse", base=2.9, clim_amp=1.0,
        seasonal_amp=0.4, phi=0.99, sigma=0.05, sparse_threshold=0.6,
    ),
    # Convective Mass Flux (kg/m^2/s scaled): layered, monthly.  Monthly
    # means aggregate away most relative noise (paper Table I shows mc
    # compressing to 82 % -- i.e. nearly everything within bounds).
    "mc": VariableSpec(
        name="mc", kind="additive", cadence="monthly", levels=8,
        base=520.0, clim_amp=260.0, seasonal_amp=60.0, phi=0.90, sigma=4.5,
    ),
    # Ambient Aerosol Absorption Optical Thickness at 550nm: small values,
    # large *relative* day-to-day swings -- the paper's hardest dataset.
    # Plume events (dust outbreaks, fires) multiply local burdens by
    # several x from one day to the next, giving the widest relative-change
    # distribution of the six variables.
    "abs550aer": VariableSpec(
        name="abs550aer", kind="lognormal", base=0.035, clim_amp=0.9,
        seasonal_amp=0.15, phi=0.92, sigma=0.035,
        spike_frac=0.04, spike_amp=0.45,
    ),
}
