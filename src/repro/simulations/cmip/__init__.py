"""Synthetic CMIP5-like climate fields.

The paper compresses six CMIP5 variables on a 2.5-degree x 2-degree grid
(144 x 90 points): *rlus* and *rlds* (surface long-wave radiation, daily),
*mrsos* (soil moisture, daily), *mrro* (total runoff, daily), *mc*
(convective mass flux, monthly, on pressure levels) and *abs550aer*
(aerosol absorption optical thickness, the paper's hardest dataset).

The real archives are unavailable offline, so :class:`CmipSimulation`
generates fields with the statistical properties NUMARCK's behaviour
depends on (see DESIGN.md's substitution table):

* spatially correlated patterns (Gaussian-filtered noise, periodic in
  longitude) on a persistent climatology, evolving as an AR(1) process in
  time with a seasonal cycle -- so day-over-day *relative* changes are
  small and concentrated for radiation variables (the paper's Fig. 1D);
* variable-specific marginals: strictly positive radiation around
  300-450 W/m^2, bounded soil moisture, *sparse non-negative* runoff (many
  exact zeros -> forced-exact points), small log-normal aerosol burdens
  with high relative variability (hardest), and large-magnitude layered
  convective flux with monthly (bigger) steps.
"""

from repro.simulations.cmip.simulation import CMIP_VARIABLES, CmipSimulation
from repro.simulations.cmip.fields import ar1_step, smooth_noise
from repro.simulations.cmip.variables import VARIABLE_SPECS, VariableSpec

__all__ = [
    "CmipSimulation",
    "CMIP_VARIABLES",
    "VariableSpec",
    "VARIABLE_SPECS",
    "smooth_noise",
    "ar1_step",
]
