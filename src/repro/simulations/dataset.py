"""Stored simulation trajectories (the paper's actual workflow).

The paper compresses checkpoint *archives* (CMIP5 netCDF files, saved
FLASH checkpoints) rather than live simulations.  netCDF is unavailable
offline, so this module provides the equivalent workflow over ``.npz``:

* :func:`save_trajectory` -- write a sequence of multi-variable
  checkpoints into one archive;
* :class:`TrajectoryReader` -- random access by iteration or variable,
  plus :meth:`pairs` (consecutive-iteration pairs, the unit NUMARCK
  consumes) and :meth:`chunk_stream` factories that plug straight into
  :meth:`repro.Codec.compress_stream`.

Keys inside the archive are ``"{iteration:06d}/{variable}"``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

__all__ = ["save_trajectory", "TrajectoryReader"]

_KEY_SEP = "/"


def _key(iteration: int, variable: str) -> str:
    return f"{iteration:06d}{_KEY_SEP}{variable}"


def save_trajectory(path: str | Path,
                    iterations: Iterable[dict[str, np.ndarray]],
                    compressed: bool = False) -> int:
    """Write checkpoints to a ``.npz`` archive; returns the iteration count.

    All checkpoints must share the same variable set.  ``compressed``
    selects zipped storage (slower, smaller -- though raw simulation data
    barely deflates, which is the paper's Section II-A point).
    """
    arrays: dict[str, np.ndarray] = {}
    variables: set[str] | None = None
    count = 0
    for i, checkpoint in enumerate(iterations):
        if variables is None:
            variables = set(checkpoint)
            if not variables:
                raise ValueError("checkpoints must contain at least one variable")
        elif set(checkpoint) != variables:
            raise ValueError(
                f"iteration {i} variables {sorted(checkpoint)} do not match "
                f"{sorted(variables)}"
            )
        for var, data in checkpoint.items():
            if _KEY_SEP in var:
                raise ValueError(f"variable name may not contain {_KEY_SEP!r}")
            arrays[_key(i, var)] = np.asarray(data)
        count += 1
    if count == 0:
        raise ValueError("no iterations to save")
    saver = np.savez_compressed if compressed else np.savez
    saver(path, **arrays)
    return count


class TrajectoryReader:
    """Random-access reader over a saved trajectory."""

    def __init__(self, path: str | Path) -> None:
        self._npz = np.load(str(path), allow_pickle=False)
        iters: set[int] = set()
        variables: set[str] = set()
        for key in self._npz.files:
            idx, _, var = key.partition(_KEY_SEP)
            if not var:
                raise ValueError(f"{path}: not a trajectory archive (key {key!r})")
            iters.add(int(idx))
            variables.add(var)
        if not iters:
            raise ValueError(f"{path}: empty archive")
        self.n_iterations = max(iters) + 1
        if iters != set(range(self.n_iterations)):
            raise ValueError(f"{path}: missing iterations")
        self.variables = tuple(sorted(variables))

    def close(self) -> None:
        self._npz.close()

    def __enter__(self) -> "TrajectoryReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- access ---------------------------------------------------------------

    def iteration(self, i: int) -> dict[str, np.ndarray]:
        """All variables of one checkpoint."""
        if not 0 <= i < self.n_iterations:
            raise IndexError(f"iteration {i} out of range [0, {self.n_iterations})")
        return {v: self._npz[_key(i, v)] for v in self.variables}

    def variable(self, var: str) -> Iterator[np.ndarray]:
        """One variable across all iterations, in order."""
        if var not in self.variables:
            raise KeyError(f"{var!r} not in {self.variables}")
        for i in range(self.n_iterations):
            yield self._npz[_key(i, var)]

    def pairs(self, var: str) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Consecutive (prev, curr) pairs -- the unit NUMARCK encodes."""
        prev = None
        for curr in self.variable(var):
            if prev is not None:
                yield prev, curr
            prev = curr

    def chunk_stream(self, var: str, iteration: int, chunk_size: int):
        """A replayable chunk-iterator factory for the streaming encoder."""
        if not 0 <= iteration < self.n_iterations:
            raise IndexError(f"iteration {iteration} out of range")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

        def factory() -> Iterator[np.ndarray]:
            data = self._npz[_key(iteration, var)].ravel()
            nsplit = max(1, -(-data.size // chunk_size))
            return iter(np.array_split(data, nsplit))

        return factory
