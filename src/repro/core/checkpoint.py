"""Multi-iteration checkpoint chains (paper Algorithm 1 + Section II-D).

A chain starts from a full, exact checkpoint ``D_0`` and appends one
encoded delta per subsequent iteration.  Restart reads the full checkpoint
and replays deltas in order.

Two reference modes (see :class:`~repro.core.config.NumarckConfig`):

* ``"original"`` (paper): iteration ``i`` is encoded against the *true*
  ``D_{i-1}``.  Decoding applies the approximated ratio to the
  *approximated* ``D'_{i-1}``, so value error accumulates with chain depth
  -- exactly the effect the paper measures in Fig. 8.
* ``"reconstructed"``: iteration ``i`` is encoded against the decoded
  ``D'_{i-1}``, closing the loop.  The ratio-level guarantee then applies
  to the decoded base, so value error stays bounded at any depth.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.adaptive import AdaptiveEncoder
from repro.core.config import NumarckConfig
from repro.core.decoder import decode_iteration
from repro.core.encoder import EncodedIteration, encode_pair
from repro.core.errors import FormatError
from repro.core.metrics import CompressionStats, iteration_stats

__all__ = ["CheckpointChain"]


class CheckpointChain:
    """A full checkpoint followed by encoded deltas.

    Typical use::

        chain = CheckpointChain(d0, config)
        for d in simulation:         # d: ndarray per iteration
            chain.append(d)
        restart_state = chain.reconstruct()          # latest iteration
        earlier       = chain.reconstruct(3)         # iteration index 3
    """

    def __init__(self, full_checkpoint: np.ndarray,
                 config: NumarckConfig | None = None) -> None:
        self.config = config if config is not None else NumarckConfig()
        self._full = np.array(full_checkpoint, dtype=np.float64, copy=True)
        self._deltas: list[EncodedIteration] = []
        self._stats: list[CompressionStats] = []
        # Reference state for the *next* append.
        self._ref = self._full.copy()
        # With config.adaptive, appends share one stateful encoder so the
        # fitted bin model carries across iterations (drift-validated).
        self._adaptive = (AdaptiveEncoder(self.config)
                          if self.config.adaptive else None)

    # -- writing ----------------------------------------------------------

    def append(self, data: np.ndarray) -> CompressionStats:
        """Encode one more iteration; returns its compression stats."""
        arr = np.asarray(data, dtype=np.float64)
        if arr.shape != self._full.shape:
            raise FormatError(
                f"iteration shape {arr.shape} does not match chain shape {self._full.shape}"
            )
        if self._adaptive is not None:
            encoded = self._adaptive.encode(self._ref, arr)
        else:
            encoded, _ = encode_pair(self._ref, arr, self.config)
        stats = iteration_stats(self._ref, arr, encoded)
        self._deltas.append(encoded)
        self._stats.append(stats)
        if self.config.reference == "original":
            self._ref = arr.astype(np.float64, copy=True)
        else:
            self._ref = decode_iteration(self._ref, encoded)
        return stats

    def extend(self, iterations: Sequence[np.ndarray]) -> list[CompressionStats]:
        """Append several iterations; returns their stats in order."""
        return [self.append(it) for it in iterations]

    def truncate(self, n_iterations: int) -> None:
        """Drop deltas so the chain holds only its first ``n_iterations``
        states (``n_iterations >= 1``; the full checkpoint always stays).

        Used after salvaging damaged files: a multi-variable checkpoint
        torn mid-iteration leaves chains of unequal length, and resuming
        requires cutting them back to a common depth.  The running
        reference is replayed from the kept deltas, so further appends
        behave like appends to a freshly loaded chain.
        """
        if not 1 <= n_iterations <= len(self):
            raise IndexError(
                f"cannot truncate to {n_iterations} of {len(self)} iterations"
            )
        if n_iterations == len(self):
            return
        self._deltas = self._deltas[: n_iterations - 1]
        self._stats = self._stats[: n_iterations - 1]
        state = self._full.copy()
        for enc in self._deltas:
            state = decode_iteration(state, enc)
        self._ref = state
        if self._adaptive is not None:
            # The cached model may belong to a dropped suffix; refit cold.
            self._adaptive.reset()

    # -- reading ----------------------------------------------------------

    @property
    def reuse_stats(self):
        """Adaptive reuse counters (:class:`~repro.core.adaptive.ReuseStats`),
        or ``None`` when the chain is not adaptive."""
        return self._adaptive.stats if self._adaptive is not None else None

    def __len__(self) -> int:
        """Number of stored iterations including the full checkpoint."""
        return 1 + len(self._deltas)

    @property
    def full_checkpoint(self) -> np.ndarray:
        return self._full.copy()

    @property
    def deltas(self) -> tuple[EncodedIteration, ...]:
        return tuple(self._deltas)

    @property
    def stats(self) -> tuple[CompressionStats, ...]:
        """Per-delta compression stats, index 0 = first delta."""
        return tuple(self._stats)

    def reconstruct(self, iteration: int | None = None) -> np.ndarray:
        """Decode the state at ``iteration`` (0 = full checkpoint).

        ``None`` means the latest iteration.  Replays all deltas up to the
        requested point, mirroring a restart from the chain's files.
        """
        last = len(self._deltas)
        it = last if iteration is None else iteration
        if not 0 <= it <= last:
            raise IndexError(f"iteration {it} out of range [0, {last}]")
        state = self._full.copy()
        for enc in self._deltas[:it]:
            state = decode_iteration(state, enc)
        return state

    def iter_states(self) -> Iterator[np.ndarray]:
        """Yield the decoded state of every iteration, starting at 0."""
        state = self._full.copy()
        yield state.copy()
        for enc in self._deltas:
            state = decode_iteration(state, enc)
            yield state.copy()
