"""Forward predictive coding: the change-ratio transform (paper Eq. 1).

``ratio = (curr - prev) / prev`` per point.  Points where the transform is
undefined or numerically untrustworthy are *forced exact*: the encoder
stores their raw value and the decoder splices it back in.  Forced-exact
cases:

* ``prev == 0`` and ``curr != 0`` (paper: "Note that D_{i-1,j} cannot be
  zero.  If D_{i-1,j} is zero, D_{i,j} will be stored as it is." -- when
  *both* iterates are zero, ratio 0 reconstructs the point bit-exactly as
  ``0 * (1 + 0)``, so those points stay compressible; sparse fields like
  runoff, where dry cells persist, depend on this);
* non-finite ``prev`` or ``curr`` (NaN/inf in either iterate);
* a non-finite or overflowing ratio (e.g. ``prev`` denormal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChangeField", "change_ratios", "apply_change"]


@dataclass(frozen=True)
class ChangeField:
    """Change ratios of one iteration plus the forced-exact mask.

    Attributes
    ----------
    ratios:
        Float64 array, same shape as the input; entries under
        ``forced_exact`` are set to 0.0 and must be ignored.
    forced_exact:
        Boolean mask of points that cannot be expressed as a ratio and must
        be stored as raw values regardless of the error bound.
    """

    ratios: np.ndarray
    forced_exact: np.ndarray

    @property
    def n_points(self) -> int:
        return self.ratios.size


def change_ratios(prev: np.ndarray, curr: np.ndarray) -> ChangeField:
    """Compute per-point relative change ratios between two iterates.

    Parameters
    ----------
    prev, curr:
        Arrays of identical shape (any float/int dtype; computed in
        float64).  ``prev`` is iteration ``i-1``, ``curr`` is iteration
        ``i``.

    Returns
    -------
    ChangeField
    """
    p = np.asarray(prev, dtype=np.float64)
    c = np.asarray(curr, dtype=np.float64)
    if p.shape != c.shape:
        raise ValueError(f"shape mismatch: prev {p.shape} vs curr {c.shape}")

    forced = ((p == 0.0) & (c != 0.0)) | ~np.isfinite(p) | ~np.isfinite(c)
    # zero -> zero is representable as ratio 0 (decodes to exactly 0); make
    # sure the division below still skips those points.
    forced_or_zero_pair = forced | (p == 0.0)
    ratios = np.zeros_like(c)
    safe = ~forced_or_zero_pair
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        np.divide(c - p, p, out=ratios, where=safe)
    # Ratios that overflowed (denormal prev) are also forced exact.
    bad = safe & ~np.isfinite(ratios)
    if bad.any():
        forced = forced | bad
        ratios[bad] = 0.0
    return ChangeField(ratios=ratios, forced_exact=forced)


def apply_change(prev: np.ndarray, ratios: np.ndarray) -> np.ndarray:
    """Rebuild the next iterate from a base and change ratios.

    Implements the compressible branch of the paper's restart equation:
    ``D'_i = D'_{i-1} * (1 + ratio')``.  Forced-exact points must be
    overwritten by the caller (see :func:`repro.core.decoder.decode_iteration`).
    """
    p = np.asarray(prev, dtype=np.float64)
    r = np.asarray(ratios, dtype=np.float64)
    if p.shape != r.shape:
        raise ValueError(f"shape mismatch: prev {p.shape} vs ratios {r.shape}")
    return p * (1.0 + r)
