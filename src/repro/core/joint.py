"""Joint (multi-variable) change-vector quantization.

The paper encodes each variable independently, but checkpoint variables
are often strongly correlated -- FLASH's ``pres`` and ``temp`` "showed
very similar behaviors because the computation applied to both is
actually the same" (Section III-G).  Joint coding exploits that: the
*change vector* ``(dP/P, dT/T, ...)`` of each point is quantized with
n-dimensional k-means, so ``d`` correlated variables share **one** B-bit
index per point instead of ``d`` of them.

The per-variable guarantee is unchanged: a point's component is decoded
from the shared representative only if that component is within ``E`` of
the true ratio; otherwise that variable's raw value is stored exactly
(per-variable bitmaps + exact streams, as in the scalar encoder).

Storage per point: ``B`` bits (shared) + per-variable exact fallbacks,
versus ``d * B`` bits for separate encoding -- the ablation bench
measures when the shared table's coarser per-component resolution is
worth it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.change import change_ratios
from repro.core.config import NumarckConfig
from repro.core.errors import FormatError
from repro.kmeans import kmeans

__all__ = ["JointEncodedIteration", "encode_joint", "decode_joint"]


@dataclass(frozen=True)
class JointEncodedIteration:
    """Compressed form of one multi-variable iteration with shared indices.

    ``representatives`` is ``(m, d)``: representative change-ratio vectors.
    Index 0 is reserved for "all components below tolerance"; ``j >= 1``
    selects ``representatives[j - 1]``.  ``incompressible[v]`` flags the
    points whose variable ``v`` is stored exactly in ``exact_values[v]``.
    """

    shape: tuple[int, ...]
    nbits: int
    variables: tuple[str, ...]
    representatives: np.ndarray
    indices: np.ndarray
    incompressible: dict[str, np.ndarray]
    exact_values: dict[str, np.ndarray]
    error_bound: float

    @property
    def n_points(self) -> int:
        return int(self.indices.size)

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    def incompressible_ratio(self, variable: str) -> float:
        mask = self.incompressible[variable]
        return float(mask.sum()) / self.n_points if self.n_points else 0.0

    def stored_bits(self) -> int:
        """Index stream + bitmaps + exact values + table (bits)."""
        bits = self.n_points * self.nbits            # one shared index/point
        for v in self.variables:
            bits += self.n_points                    # per-variable bitmap
            bits += self.exact_values[v].size * 64
        bits += self.representatives.size * 64
        return bits


def encode_joint(prev: dict[str, np.ndarray], curr: dict[str, np.ndarray],
                 config: NumarckConfig | None = None,
                 sample_limit: int = 100_000) -> JointEncodedIteration:
    """Encode several same-shaped variables with one shared index stream."""
    cfg = config if config is not None else NumarckConfig()
    variables = tuple(sorted(curr))
    if not variables:
        raise ValueError("need at least one variable")
    missing = set(variables) - set(prev)
    if missing:
        raise KeyError(f"prev missing variables: {sorted(missing)}")
    shape = np.asarray(curr[variables[0]]).shape
    for v in variables:
        if np.asarray(curr[v]).shape != shape or \
                np.asarray(prev[v]).shape != shape:
            raise FormatError(f"variable {v!r} shape mismatch")

    e = cfg.error_bound
    d = len(variables)
    n = int(np.prod(shape)) if shape else 1

    ratios = np.empty((d, n))
    forced = np.zeros((d, n), dtype=bool)
    for i, v in enumerate(variables):
        field = change_ratios(prev[v], curr[v])
        ratios[i] = field.ratios.ravel()
        forced[i] = field.forced_exact.ravel()

    small = np.all((np.abs(ratios) < e) & ~forced, axis=0)
    cand_mask = ~small
    cand_idx = np.flatnonzero(cand_mask)

    indices = np.zeros(n, dtype=np.uint32)
    incompressible = {v: forced[i].copy() for i, v in enumerate(variables)}
    reps = np.empty((0, d))

    if cand_idx.size:
        # Fit n-D k-means in per-component asinh space (heavy-tail safety,
        # matching the scalar strategy's stabilised variant).
        vectors = np.arcsinh(ratios[:, cand_idx].T / e)  # (n_cand, d)
        k = min(cfg.n_bins, cand_idx.size)
        rng = np.random.default_rng(cfg.seed)
        sample = vectors
        if sample.shape[0] > sample_limit:
            pick = rng.choice(sample.shape[0], sample_limit, replace=False)
            sample = sample[pick]
        uniq = np.unique(sample, axis=0)
        if uniq.shape[0] <= k:
            centroids = uniq
        else:
            init = uniq[rng.choice(uniq.shape[0], k, replace=False)]
            centroids = kmeans(sample, init,
                               max_iter=cfg.kmeans_max_iter).centroids
        reps = np.sinh(centroids) * e  # (m, d) back in ratio space

        # Assign every candidate to its nearest centroid (in fit space).
        d2 = (-2.0 * vectors @ centroids.T
              + np.sum(centroids * centroids, axis=1)[None, :])
        labels = np.argmin(d2, axis=1).astype(np.uint32)
        indices[cand_idx] = labels + 1

        # Per-variable exactness check against the shared representative.
        approx = reps[labels]                         # (n_cand, d)
        true = ratios[:, cand_idx].T
        fail = np.abs(approx - true) >= e             # (n_cand, d)
        for i, v in enumerate(variables):
            incompressible[v][cand_idx[fail[:, i]]] = True

    exact_values = {
        v: np.asarray(curr[v], dtype=np.float64).ravel()[incompressible[v]].copy()
        for v in variables
    }
    return JointEncodedIteration(
        shape=tuple(shape),
        nbits=cfg.nbits,
        variables=variables,
        representatives=reps,
        indices=indices,
        incompressible=incompressible,
        exact_values=exact_values,
        error_bound=e,
    )


def decode_joint(prev: dict[str, np.ndarray],
                 encoded: JointEncodedIteration) -> dict[str, np.ndarray]:
    """Rebuild every variable from the shared index stream."""
    out: dict[str, np.ndarray] = {}
    m = encoded.representatives.shape[0] if encoded.representatives.size else 0
    for i, v in enumerate(encoded.variables):
        p = np.asarray(prev[v], dtype=np.float64)
        if p.shape != encoded.shape:
            raise FormatError(f"variable {v!r}: reference shape mismatch")
        if m:
            table = np.concatenate([[0.0], encoded.representatives[:, i]])
            ratios = table[encoded.indices]
        else:
            ratios = np.zeros(encoded.n_points)
        mask = encoded.incompressible[v]
        values = p.ravel() * (1.0 + np.where(mask, 0.0, ratios))
        values[mask] = encoded.exact_values[v]
        out[v] = values.reshape(encoded.shape)
    return out
