"""Compression configuration.

All tunables of the paper's Algorithm 1 live here:

* ``error_bound`` -- the user tolerance ``E`` on the *change ratio*
  (0.001 == the paper's 0.1 %).  Hard per-point guarantee: the decoded
  change ratio of every compressible point differs from the true ratio by
  less than ``E``.
* ``nbits`` -- approximation precision ``B``; indices take ``B`` bits and
  the bin table holds ``2**B - 1`` representatives (index 0 is reserved for
  "change below tolerance").
* ``strategy`` -- ``"equal_width"``, ``"log_scale"`` or ``"clustering"``.
* ``reference`` -- what the change ratio is computed against.
  ``"original"`` is the paper's open-loop scheme (ratio between true
  iterates; restart error accumulates along the chain).
  ``"reconstructed"`` is a closed-loop extension (ratio against the decoded
  previous state, as an MPEG encoder would do) that stops accumulation; it
  is measured by the delta-reference ablation bench.
* ``adaptive`` -- reuse the fitted bin model across a chain's iterations
  (see :mod:`repro.core.adaptive`): each timestep first validates the
  cached table against the new ratios and refits only when the
  incompressible fraction drifts past ``drift_threshold``.  The hard
  per-point guarantee E is unaffected -- reuse only steers bin placement,
  the exactness check always runs.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Literal

from repro.core.errors import ConfigError

__all__ = ["NumarckConfig"]


class _KwOnlyMeta(type):
    """Keyword-only construction with a deprecation shim for positional calls.

    The public config surface is keyword-only (positional slots would turn
    every field reorder into a silent behaviour change); legacy positional
    calls still work but emit a once-per-callsite ``DeprecationWarning``,
    mirroring the PR-5 facade shims.
    """

    def __call__(cls, *args: Any, **kwargs: Any):
        if args:
            names = [f.name for f in fields(cls)]
            if len(args) > len(names):
                raise TypeError(
                    f"{cls.__name__}() takes at most {len(names)} "
                    f"arguments ({len(args)} given)"
                )
            warnings.warn(
                f"positional {cls.__name__}(...) arguments are deprecated; "
                f"pass fields by keyword "
                f"(e.g. {cls.__name__}({names[0]}=...))",
                DeprecationWarning,
                stacklevel=2,
            )
            for name, value in zip(names, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls.__name__}() got multiple values for "
                        f"argument {name!r}"
                    )
                kwargs[name] = value
        return super().__call__(**kwargs)

StrategyName = Literal["equal_width", "log_scale", "clustering"]
ReferenceMode = Literal["original", "reconstructed"]
InitName = Literal["histogram", "kmeans++", "random"]

_MAX_NBITS = 16


@dataclass(frozen=True)
class NumarckConfig(metaclass=_KwOnlyMeta):
    """Validated bundle of NUMARCK parameters (keyword-only construction).

    Raises :class:`~repro.core.errors.ConfigError` on construction for any
    out-of-range value, so a config object is always safe to use.
    ``to_dict()`` / ``from_dict()`` round-trip the config through plain
    JSON-compatible dicts -- the wire form used by the compression
    service's job-submit body (:mod:`repro.service`).
    """

    error_bound: float = 1e-3
    nbits: int = 8
    strategy: StrategyName = "clustering"
    reference: ReferenceMode = "original"
    kmeans_init: InitName = "histogram"
    kmeans_max_iter: int = 25
    reserve_zero_bin: bool = True
    seed: int = field(default=0)
    #: reuse the fitted bin model across chain iterations (drift-validated).
    adaptive: bool = False
    #: refit trigger: cached model is dropped when the incompressible
    #: fraction exceeds ``baseline + drift_threshold`` (absolute drift).
    drift_threshold: float = 0.05
    #: warm-start Lloyd from the cached centers when a refit is triggered.
    warm_start: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.error_bound < 1.0):
            raise ConfigError(
                f"error_bound must be in (0, 1), got {self.error_bound!r}"
            )
        if not isinstance(self.nbits, int) or not (1 <= self.nbits <= _MAX_NBITS):
            raise ConfigError(f"nbits must be an int in [1, {_MAX_NBITS}], got {self.nbits!r}")
        if self.strategy not in ("equal_width", "log_scale", "clustering"):
            raise ConfigError(f"unknown strategy {self.strategy!r}")
        if self.reference not in ("original", "reconstructed"):
            raise ConfigError(f"unknown reference mode {self.reference!r}")
        if self.kmeans_init not in ("histogram", "kmeans++", "random"):
            raise ConfigError(f"unknown kmeans_init {self.kmeans_init!r}")
        if self.kmeans_max_iter < 1:
            raise ConfigError(f"kmeans_max_iter must be >= 1, got {self.kmeans_max_iter}")
        if not (0.0 < self.drift_threshold <= 1.0):
            raise ConfigError(
                f"drift_threshold must be in (0, 1], got {self.drift_threshold!r}"
            )

    @property
    def n_bins(self) -> int:
        """Number of representative bins (2^B - 1 when index 0 is reserved)."""
        total = 1 << self.nbits
        return total - 1 if self.reserve_zero_bin else total

    def with_(self, **kwargs) -> "NumarckConfig":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict of every field (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NumarckConfig":
        """Rebuild a validated config from :meth:`to_dict` output.

        Unknown keys raise :class:`~repro.core.errors.ConfigError` (typos
        in a job-submit body must not silently fall back to defaults);
        missing keys take their defaults, so partial dicts work as
        overrides.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"config must be a dict of fields, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown config keys {unknown}; valid keys: {sorted(known)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(str(exc)) from exc
