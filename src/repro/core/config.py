"""Compression configuration.

All tunables of the paper's Algorithm 1 live here:

* ``error_bound`` -- the user tolerance ``E`` on the *change ratio*
  (0.001 == the paper's 0.1 %).  Hard per-point guarantee: the decoded
  change ratio of every compressible point differs from the true ratio by
  less than ``E``.
* ``nbits`` -- approximation precision ``B``; indices take ``B`` bits and
  the bin table holds ``2**B - 1`` representatives (index 0 is reserved for
  "change below tolerance").
* ``strategy`` -- ``"equal_width"``, ``"log_scale"`` or ``"clustering"``.
* ``reference`` -- what the change ratio is computed against.
  ``"original"`` is the paper's open-loop scheme (ratio between true
  iterates; restart error accumulates along the chain).
  ``"reconstructed"`` is a closed-loop extension (ratio against the decoded
  previous state, as an MPEG encoder would do) that stops accumulation; it
  is measured by the delta-reference ablation bench.
* ``adaptive`` -- reuse the fitted bin model across a chain's iterations
  (see :mod:`repro.core.adaptive`): each timestep first validates the
  cached table against the new ratios and refits only when the
  incompressible fraction drifts past ``drift_threshold``.  The hard
  per-point guarantee E is unaffected -- reuse only steers bin placement,
  the exactness check always runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.core.errors import ConfigError

__all__ = ["NumarckConfig"]

StrategyName = Literal["equal_width", "log_scale", "clustering"]
ReferenceMode = Literal["original", "reconstructed"]
InitName = Literal["histogram", "kmeans++", "random"]

_MAX_NBITS = 16


@dataclass(frozen=True)
class NumarckConfig:
    """Validated bundle of NUMARCK parameters.

    Raises :class:`~repro.core.errors.ConfigError` on construction for any
    out-of-range value, so a config object is always safe to use.
    """

    error_bound: float = 1e-3
    nbits: int = 8
    strategy: StrategyName = "clustering"
    reference: ReferenceMode = "original"
    kmeans_init: InitName = "histogram"
    kmeans_max_iter: int = 25
    reserve_zero_bin: bool = True
    seed: int = field(default=0)
    #: reuse the fitted bin model across chain iterations (drift-validated).
    adaptive: bool = False
    #: refit trigger: cached model is dropped when the incompressible
    #: fraction exceeds ``baseline + drift_threshold`` (absolute drift).
    drift_threshold: float = 0.05
    #: warm-start Lloyd from the cached centers when a refit is triggered.
    warm_start: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.error_bound < 1.0):
            raise ConfigError(
                f"error_bound must be in (0, 1), got {self.error_bound!r}"
            )
        if not isinstance(self.nbits, int) or not (1 <= self.nbits <= _MAX_NBITS):
            raise ConfigError(f"nbits must be an int in [1, {_MAX_NBITS}], got {self.nbits!r}")
        if self.strategy not in ("equal_width", "log_scale", "clustering"):
            raise ConfigError(f"unknown strategy {self.strategy!r}")
        if self.reference not in ("original", "reconstructed"):
            raise ConfigError(f"unknown reference mode {self.reference!r}")
        if self.kmeans_init not in ("histogram", "kmeans++", "random"):
            raise ConfigError(f"unknown kmeans_init {self.kmeans_init!r}")
        if self.kmeans_max_iter < 1:
            raise ConfigError(f"kmeans_max_iter must be >= 1, got {self.kmeans_max_iter}")
        if not (0.0 < self.drift_threshold <= 1.0):
            raise ConfigError(
                f"drift_threshold must be in (0, 1], got {self.drift_threshold!r}"
            )

    @property
    def n_bins(self) -> int:
        """Number of representative bins (2^B - 1 when index 0 is reserved)."""
        total = 1 << self.nbits
        return total - 1 if self.reserve_zero_bin else total

    def with_(self, **kwargs) -> "NumarckConfig":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)
