"""Analytical error bounds for NUMARCK chains.

The paper states the per-iteration guarantee and *observes* accumulation
across restarts (Fig. 8); this module makes the growth law explicit so
users can budget chain depth a priori (it also drives
:class:`repro.analysis.adaptive.CadenceController`'s depth heuristics and
is verified against measured chains by the test suite).

Derivation (open-loop chains, the paper's scheme)
-------------------------------------------------
Let ``r_i`` be the true change ratio at step ``i`` and ``r'_i`` the decoded
one with ``|r'_i - r_i| < E``.  The decoded state after ``d`` steps is
``D'_d = D_0 * prod(1 + r'_i)`` while the truth is
``D_d = D_0 * prod(1 + r_i)``.  With ``|1 + r_i| >= m > 0`` (no
sign-crossing through zero, which would have been forced exact anyway),
the relative value error satisfies::

    |D'_d / D_d - 1| <= (1 + E/m)^d - 1

For the common case of small ratios (``m ~ 1``) this is
``(1+E)^d - 1 ~ d*E`` -- the linear accumulation Fig. 8 shows.  Closed-loop
chains (``reference="reconstructed"``) re-anchor every step, so their bound
is depth-independent: ``E / m``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "open_loop_error_bound",
    "closed_loop_error_bound",
    "max_chain_depth",
]


def _check(error_bound: float, depth: int, margin: float) -> None:
    if error_bound <= 0:
        raise ValueError(f"error_bound must be positive, got {error_bound}")
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin}")


def open_loop_error_bound(error_bound: float, depth: int,
                          margin: float = 1.0) -> float:
    """Worst-case relative value error after ``depth`` open-loop deltas.

    ``margin`` is a lower bound on ``|1 + r_i|`` along the chain (1.0 when
    ratios are small, which the zero-index reservation makes typical).
    """
    _check(error_bound, depth, margin)
    return float((1.0 + error_bound / margin) ** depth - 1.0)


def closed_loop_error_bound(error_bound: float, margin: float = 1.0) -> float:
    """Depth-independent bound for closed-loop chains."""
    _check(error_bound, 1, margin)
    return float(error_bound / margin)


def max_chain_depth(error_bound: float, target_error: float,
                    margin: float = 1.0) -> int:
    """Largest open-loop depth whose worst case stays within ``target_error``.

    Inverse of :func:`open_loop_error_bound`; returns at least 0.
    """
    _check(error_bound, 0, margin)
    if target_error <= 0:
        raise ValueError(f"target_error must be positive, got {target_error}")
    depth = np.log1p(target_error) / np.log1p(error_bound / margin)
    return int(np.floor(depth))
