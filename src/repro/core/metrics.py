"""Evaluation metrics (paper Section III-B).

* mean / maximum error rate on the change ratios,
* incompressible ratio gamma,
* compression ratio R (paper Eq. 3, plus an honest variant that charges
  the incompressibility bitmap and table against the output),
* Pearson correlation rho and RMSE xi between original and decompressed
  values (paper Section III-F, Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.change import change_ratios
from repro.core.encoder import EncodedIteration

__all__ = [
    "CompressionStats",
    "error_rates",
    "compression_ratio_paper",
    "compression_ratio_actual",
    "pearson_r",
    "rmse",
    "iteration_stats",
]

_VALUE_BITS = 64  # the paper assumes double-precision checkpoints


@dataclass(frozen=True)
class CompressionStats:
    """Per-iteration evaluation summary.

    ``ratio_paper`` follows Eq. 3 exactly (index bits + exact values + bin
    table; the per-point incompressibility bitmap is *not* charged, matching
    the numbers the paper reports).  ``ratio_actual`` additionally charges
    the bitmap (1 bit/point), i.e. what a real container must store.
    Both are percentages: 80.0 means the output is 5x smaller.
    """

    n_points: int
    n_incompressible: int
    n_bins: int
    nbits: int
    mean_error: float
    max_error: float
    ratio_paper: float
    ratio_actual: float

    @property
    def incompressible_ratio(self) -> float:
        return self.n_incompressible / self.n_points if self.n_points else 0.0


def error_rates(true_ratios: np.ndarray, approx_ratios: np.ndarray,
                exact_mask: np.ndarray | None = None) -> tuple[float, float]:
    """Mean and max absolute difference between true and approximated ratios.

    Exactly stored points contribute zero error (their decoded value is
    bit-identical), which matches the paper's averaging over *all* points.
    """
    t = np.asarray(true_ratios, dtype=np.float64).ravel()
    a = np.asarray(approx_ratios, dtype=np.float64).ravel()
    if t.shape != a.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {a.shape}")
    if t.size == 0:
        return 0.0, 0.0
    err = np.abs(a - t)
    if exact_mask is not None:
        err = np.where(np.asarray(exact_mask, dtype=bool).ravel(), 0.0, err)
    return float(err.mean()), float(err.max())


def compression_ratio_paper(n_points: int, n_incompressible: int, nbits: int,
                            n_bins: int | None = None,
                            value_bits: int = _VALUE_BITS) -> float:
    """Compression ratio per the paper's Eq. 3, as a percentage.

    With N points of 64 bits, gamma = incompressible fraction, B index
    bits and a table of ``n_bins`` 64-bit representatives::

        R = 100 * (1 - ((1-gamma)*B/64 + gamma + table_bits/(64*N)))

    (Eq. 3 as printed omits the |D| factor on the index term and mixes
    units; this is the standard reading that reproduces the paper's
    numbers, e.g. gamma ~ 0 and B = 9 gives R slightly under 85.9 %.)

    ``n_bins`` defaults to the full table of ``2**B - 1`` entries, as Eq. 3
    charges, even if fewer bins were occupied.
    """
    if n_points <= 0:
        raise ValueError("n_points must be positive")
    if not 0 <= n_incompressible <= n_points:
        raise ValueError("n_incompressible out of range")
    gamma = n_incompressible / n_points
    table = ((1 << nbits) - 1) if n_bins is None else n_bins
    compressed_bits = (
        (1.0 - gamma) * n_points * nbits
        + gamma * n_points * value_bits
        + table * 64  # the table always stores float64 representatives
    )
    original_bits = n_points * value_bits
    return 100.0 * (original_bits - compressed_bits) / original_bits


def compression_ratio_actual(n_points: int, n_incompressible: int, nbits: int,
                             n_bins: int, header_bytes: int = 0,
                             value_bits: int = _VALUE_BITS) -> float:
    """Compression ratio charging everything a container stores.

    Adds the 1-bit-per-point incompressibility bitmap, the *actual* table
    size and optional header bytes on top of Eq. 3's accounting.  Can be
    negative for tiny arrays where the table dominates.
    """
    if n_points <= 0:
        raise ValueError("n_points must be positive")
    gamma = n_incompressible / n_points
    compressed_bits = (
        (1.0 - gamma) * n_points * nbits
        + gamma * n_points * value_bits
        + n_bins * 64
        + n_points  # bitmap
        + 8 * header_bytes
    )
    original_bits = n_points * value_bits
    return 100.0 * (original_bits - compressed_bits) / original_bits


def pearson_r(original: np.ndarray, decoded: np.ndarray) -> float:
    """Pearson correlation between original and decompressed values.

    Returns 1.0 for bit-identical inputs even when one array is constant
    (where the textbook formula is 0/0).
    """
    x = np.asarray(original, dtype=np.float64).ravel()
    y = np.asarray(decoded, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size == 0:
        raise ValueError("cannot correlate empty arrays")
    if np.array_equal(x, y):
        return 1.0
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.0
    return float((xc * yc).sum() / denom)


def rmse(original: np.ndarray, decoded: np.ndarray) -> float:
    """Root mean square error (paper Eq. 4, the xi metric)."""
    x = np.asarray(original, dtype=np.float64).ravel()
    y = np.asarray(decoded, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size == 0:
        raise ValueError("cannot compute RMSE of empty arrays")
    d = x - y
    return float(np.sqrt(np.mean(d * d)))


def iteration_stats(prev: np.ndarray, curr: np.ndarray,
                    encoded: EncodedIteration) -> CompressionStats:
    """Full per-iteration summary for an encoded pair."""
    field = change_ratios(prev, curr)
    mean_err, max_err = error_rates(
        field.ratios, encoded.decoded_ratios().reshape(encoded.shape),
        exact_mask=encoded.incompressible.reshape(encoded.shape) | field.forced_exact,
    )
    n = encoded.n_points
    n_inc = encoded.n_incompressible
    n_bins = int(encoded.representatives.size)
    return CompressionStats(
        n_points=n,
        n_incompressible=n_inc,
        n_bins=n_bins,
        nbits=encoded.nbits,
        mean_error=mean_err,
        max_error=max_err,
        ratio_paper=compression_ratio_paper(n, n_inc, encoded.nbits,
                                            value_bits=encoded.value_bits),
        ratio_actual=compression_ratio_actual(n, n_inc, encoded.nbits, n_bins,
                                              value_bits=encoded.value_bits),
    )
