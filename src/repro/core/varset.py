"""Named sets of checkpoint chains (whole-checkpoint compression).

A simulation checkpoint is a *dict* of variables; :class:`VariableSet`
compresses the whole dict per iteration, one
:class:`~repro.core.checkpoint.CheckpointChain` per variable, and
round-trips through the multi-variable container in one call::

    vs = VariableSet(("dens", "pres"), config)
    vs.record(sim.checkpoint())        # full checkpoints on first call
    ...
    vs.record(sim.checkpoint())        # deltas afterwards
    vs.save("step0400.nmk")            # one file, all variables
    state = VariableSet.load("step0400.nmk").reconstruct()

:class:`repro.restart.RestartManager` builds on this class and adds the
restart vocabulary.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.errors import StateError
from repro.core.config import NumarckConfig
from repro.core.metrics import CompressionStats

__all__ = ["VariableSet"]


class VariableSet:
    """Per-variable chains over a fixed set of checkpoint variables."""

    def __init__(self, variables: tuple[str, ...],
                 config: NumarckConfig | None = None) -> None:
        if not variables:
            raise ValueError("need at least one variable")
        if len(set(variables)) != len(variables):
            raise ValueError("duplicate variable names")
        self.variables = tuple(variables)
        self.config = config if config is not None else NumarckConfig()
        self._chains: dict[str, CheckpointChain] | None = None

    # -- recording ----------------------------------------------------------

    @property
    def n_checkpoints(self) -> int:
        """Checkpoints present for *every* variable (including the initial
        full one).  Chains normally share a depth; after torn-tail salvage
        of a multi-variable file they may differ by one, and only the
        common prefix counts."""
        if self._chains is None:
            return 0
        return min(len(c) for c in self._chains.values())

    def record(self, checkpoint: dict[str, np.ndarray]
               ) -> dict[str, CompressionStats] | None:
        """Append one checkpoint; returns per-variable stats (None for the
        first, full checkpoint, which is stored exactly)."""
        missing = set(self.variables) - set(checkpoint)
        if missing:
            raise KeyError(f"checkpoint missing variables: {sorted(missing)}")
        if self._chains is None:
            self._chains = {
                v: CheckpointChain(checkpoint[v], self.config)
                for v in self.variables
            }
            return None
        return {v: self._chains[v].append(checkpoint[v]) for v in self.variables}

    def chain(self, variable: str) -> CheckpointChain:
        if self._chains is None:
            raise StateError("no checkpoints recorded yet")
        return self._chains[variable]

    def reconstruct(self, iteration: int | None = None
                    ) -> dict[str, np.ndarray]:
        """Decode every variable at ``iteration`` (None = latest *common*
        iteration, so salvaged sets never mix iterations across
        variables)."""
        if self._chains is None:
            raise StateError("no checkpoints recorded yet")
        if iteration is None:
            iteration = self.n_checkpoints - 1
        return {v: c.reconstruct(iteration) for v, c in self._chains.items()}

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Write all chains into one multi-variable container file."""
        from repro.io.multichain import save_chains

        if self._chains is None:
            raise StateError("no checkpoints recorded yet")
        return save_chains(path, self._chains)

    @classmethod
    def load(cls, path: str | Path,
             config: NumarckConfig | None = None) -> "VariableSet":
        """Rebuild a variable set from a container file."""
        from repro.io.multichain import load_chains

        chains = load_chains(path, config)
        out = cls(tuple(chains), config)
        out._chains = chains
        return out
