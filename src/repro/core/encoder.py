"""Encode one iteration into the NUMARCK representation.

Per-point layout (paper Algorithm 1 plus the layout decision documented in
DESIGN.md):

* index ``0`` -- change ratio below tolerance (``|ratio| < E``): decode as
  "carry the previous value" (approximated ratio 0);
* index ``1 .. 2**B - 1`` -- bin id; decode ratio = table[index - 1];
* incompressible points -- flagged in a 1-bit-per-point bitmap; their raw
  float64 values are stored densely in flat (C-order) index order, and
  their B-bit index is set to 0 and ignored on decode.

A point is incompressible when (a) the change ratio is undefined
(``prev == 0`` or non-finite data), or (b) its assigned bin representative
misses the true ratio by ``>= E``.  Consequently every decoded point
satisfies the hard guarantee ``|decoded_ratio - true_ratio| < E`` or is
bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.change import change_ratios
from repro.core.config import NumarckConfig
from repro.core.strategies import get_strategy
from repro.core.strategies.base import BinModel
from repro.telemetry.accounting import delta_payload_nbytes
from repro.telemetry.tracer import get_telemetry

__all__ = ["EncodedIteration", "encode_iteration"]


@dataclass(frozen=True)
class EncodedIteration:
    """Compressed form of one checkpoint iteration.

    Attributes
    ----------
    shape:
        Original array shape.
    nbits:
        Index width ``B``.
    representatives:
        Sorted table of at most ``2**B - 1`` representative ratios
        (possibly empty when every point was unchanged or exact).
    indices:
        Flat uint32 array of per-point indices (0 = below tolerance or
        incompressible; ``j >= 1`` = ``representatives[j - 1]``).
    incompressible:
        Flat boolean mask of exactly stored points.
    exact_values:
        Raw float64 values of the incompressible points, in flat order.
    error_bound / strategy:
        The configuration the iteration was encoded with, kept for
        self-description and format headers.
    """

    shape: tuple[int, ...]
    nbits: int
    representatives: np.ndarray
    indices: np.ndarray
    incompressible: np.ndarray
    exact_values: np.ndarray
    error_bound: float
    strategy: str
    zero_reserved: bool = True
    #: bits per raw value of the *source* data (64 for float64 checkpoints,
    #: 32 for float32 -- affects Eq.-3 accounting and how exact values are
    #: serialised; in memory they are always held as float64).
    value_bits: int = 64

    @property
    def n_points(self) -> int:
        return int(self.indices.size)

    @property
    def n_incompressible(self) -> int:
        return int(self.exact_values.size)

    @property
    def incompressible_ratio(self) -> float:
        """The paper's gamma: fraction of points stored exactly."""
        return self.n_incompressible / self.n_points if self.n_points else 0.0

    def decoded_ratios(self) -> np.ndarray:
        """Approximated change ratio per point (flat; 0 where incompressible)."""
        if self.representatives.size == 0:
            return np.zeros(self.n_points, dtype=np.float64)
        if self.zero_reserved:
            table = np.concatenate([[0.0], self.representatives])
        else:
            table = self.representatives
        ratios = table[self.indices]
        ratios[self.incompressible] = 0.0
        return ratios


def _fit_model(candidates: np.ndarray, config: NumarckConfig) -> BinModel:
    if config.strategy == "clustering":
        strategy = get_strategy(
            "clustering",
            init=config.kmeans_init,
            max_iter=config.kmeans_max_iter,
            seed=config.seed,
        )
    else:
        strategy = get_strategy(config.strategy)
    return strategy.fit(candidates, config.n_bins, config.error_bound)


def encode_iteration(
    prev: np.ndarray,
    curr: np.ndarray,
    config: NumarckConfig | None = None,
) -> EncodedIteration:
    """Compress iteration ``curr`` as change ratios against ``prev``.

    Parameters
    ----------
    prev:
        The reference iterate.  Under the paper's open-loop scheme this is
        the *original* previous iteration; callers running closed-loop pass
        the previously *decoded* state (see
        :class:`~repro.core.checkpoint.CheckpointChain`).
    curr:
        The iterate to compress.
    config:
        Compression parameters; defaults to ``NumarckConfig()``.
    """
    cfg = config if config is not None else NumarckConfig()
    curr_dtype = np.asarray(curr).dtype
    value_bits = 32 if curr_dtype == np.float32 else 64
    tel = get_telemetry()
    with tel.span("encode", n_points=int(np.asarray(curr).size),
                  strategy=cfg.strategy,
                  bytes_in=int(np.asarray(curr).nbytes)) as tspan:
        with tel.span("encode.change_ratios"):
            field = change_ratios(prev, curr)
        ratios = field.ratios.ravel()
        forced = field.forced_exact.ravel()
        n = ratios.size
        shape = np.asarray(curr).shape

        e = cfg.error_bound
        indices = np.zeros(n, dtype=np.uint32)
        incompressible = forced.copy()

        if cfg.reserve_zero_bin:
            small = (np.abs(ratios) < e) & ~forced
            candidate_mask = ~small & ~forced
        else:
            # Ablation mode: no reserved zero index; all defined ratios are
            # candidates and the table must carry a near-zero bin itself.
            candidate_mask = ~forced

        cand_idx = np.flatnonzero(candidate_mask)
        representatives = np.empty(0, dtype=np.float64)
        if cand_idx.size:
            candidates = ratios[cand_idx]
            with tel.span("encode.fit", n_candidates=int(cand_idx.size)):
                model = _fit_model(candidates, cfg)
            representatives = model.representatives
            with tel.span("encode.assign", n_candidates=int(cand_idx.size)):
                labels = model.assign(candidates)
                approx = representatives[labels]
                fail = np.abs(approx - candidates) >= e
                ok = ~fail
                if cfg.reserve_zero_bin:
                    indices[cand_idx[ok]] = labels[ok].astype(np.uint32) + 1
                else:
                    indices[cand_idx[ok]] = labels[ok].astype(np.uint32)
                incompressible[cand_idx[fail]] = True

        exact_values = np.asarray(curr, dtype=np.float64).ravel()[incompressible].copy()
        indices[incompressible] = 0

        max_index = (1 << cfg.nbits) - 1
        if representatives.size > (max_index if cfg.reserve_zero_bin else max_index + 1):
            raise AssertionError(
                "strategy produced more representatives than the index width allows"
            )

        enc = EncodedIteration(
            shape=tuple(shape),
            nbits=cfg.nbits,
            representatives=representatives,
            indices=indices,
            incompressible=incompressible,
            exact_values=exact_values,
            error_bound=e,
            strategy=cfg.strategy,
            zero_reserved=cfg.reserve_zero_bin,
            value_bits=value_bits,
        )
        tspan.set(bytes_out=delta_payload_nbytes(enc),
                  gamma=enc.incompressible_ratio,
                  n_bins=int(representatives.size))
    tel.metrics.histogram(
        "encode.incompressible_fraction",
        buckets=(0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
    ).observe(enc.incompressible_ratio)
    return enc
