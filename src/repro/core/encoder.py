"""Encode one iteration into the NUMARCK representation.

Per-point layout (paper Algorithm 1 plus the layout decision documented in
DESIGN.md):

* index ``0`` -- change ratio below tolerance (``|ratio| < E``): decode as
  "carry the previous value" (approximated ratio 0);
* index ``1 .. 2**B - 1`` -- bin id; decode ratio = table[index - 1];
* incompressible points -- flagged in a 1-bit-per-point bitmap; their raw
  float64 values are stored densely in flat (C-order) index order, and
  their B-bit index is set to 0 and ignored on decode.

A point is incompressible when (a) the change ratio is undefined
(``prev == 0`` or non-finite data), or (b) its assigned bin representative
misses the true ratio by ``>= E``.  Consequently every decoded point
satisfies the hard guarantee ``|decoded_ratio - true_ratio| < E`` or is
bit-exact.

**Model reuse** (the adaptive engine's hot path): :func:`encode_pair`
accepts a ``model_hint`` -- a previously fitted
:class:`~repro.core.strategies.base.BinModel`.  The hinted table is first
*validated* against the new candidates (one vectorised assign + bound
check); when the incompressible fraction has not drifted past
``hint_drift`` over ``hint_baseline``, the fit stage is skipped entirely
and the validation labels double as the encode assignment -- reuse costs
nothing beyond the assign every encode performs anyway.  On drift the
model is refitted (warm-starting from the cached centers when the
strategy supports it).  Either way the per-point exactness check runs in
full, so E holds identically in both paths.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.change import change_ratios
from repro.core.config import NumarckConfig
from repro.core.strategies.base import ApproximationStrategy, BinModel
from repro.telemetry.accounting import delta_payload_nbytes
from repro.telemetry.tracer import get_telemetry

__all__ = ["EncodedIteration", "EncodeReport", "encode_pair", "encode_iteration"]


@dataclass(frozen=True)
class EncodedIteration:
    """Compressed form of one checkpoint iteration.

    Attributes
    ----------
    shape:
        Original array shape.
    nbits:
        Index width ``B``.
    representatives:
        Sorted table of at most ``2**B - 1`` representative ratios
        (possibly empty when every point was unchanged or exact).
    indices:
        Flat uint32 array of per-point indices (0 = below tolerance or
        incompressible; ``j >= 1`` = ``representatives[j - 1]``).
    incompressible:
        Flat boolean mask of exactly stored points.
    exact_values:
        Raw float64 values of the incompressible points, in flat order.
    error_bound / strategy:
        The configuration the iteration was encoded with, kept for
        self-description and format headers.
    """

    shape: tuple[int, ...]
    nbits: int
    representatives: np.ndarray
    indices: np.ndarray
    incompressible: np.ndarray
    exact_values: np.ndarray
    error_bound: float
    strategy: str
    zero_reserved: bool = True
    #: bits per raw value of the *source* data (64 for float64 checkpoints,
    #: 32 for float32 -- affects Eq.-3 accounting and how exact values are
    #: serialised; in memory they are always held as float64).
    value_bits: int = 64
    #: True when this iteration reused the previous iteration's bin table
    #: instead of fitting a fresh one (adaptive reuse hit).  The container
    #: format stores such tables once per run of reuse hits.
    model_reused: bool = False

    @property
    def n_points(self) -> int:
        return int(self.indices.size)

    @property
    def n_incompressible(self) -> int:
        return int(self.exact_values.size)

    @property
    def incompressible_ratio(self) -> float:
        """The paper's gamma: fraction of points stored exactly."""
        return self.n_incompressible / self.n_points if self.n_points else 0.0

    def decoded_ratios(self) -> np.ndarray:
        """Approximated change ratio per point (flat; 0 where incompressible)."""
        if self.representatives.size == 0:
            return np.zeros(self.n_points, dtype=np.float64)
        if self.zero_reserved:
            table = np.concatenate([[0.0], self.representatives])
        else:
            table = self.representatives
        ratios = table[self.indices]
        ratios[self.incompressible] = 0.0
        return ratios


@dataclass(frozen=True)
class EncodeReport:
    """What the model-reuse gate decided for one encode.

    Attributes
    ----------
    model_reused:
        True when the hinted table was validated and reused (fit skipped).
    refitted:
        True when a hint was provided but drifted past the trigger, so a
        fresh model was fitted.
    drift:
        Observed drift of the hinted table: the candidate fail fraction
        under the hint minus ``hint_baseline``, floored at 0.  Zero when
        no hint was given.
    fit_fail_fraction:
        Candidate fail fraction under the *final* table -- the baseline a
        stateful caller should carry to the next iteration.
    n_candidates:
        Number of compressible candidates this encode considered.
    """

    model_reused: bool = False
    refitted: bool = False
    drift: float = 0.0
    fit_fail_fraction: float = 0.0
    n_candidates: int = 0


def _fit_model(candidates: np.ndarray, config: NumarckConfig,
               warm_start: np.ndarray | None = None) -> BinModel:
    strategy = ApproximationStrategy.from_config(config)
    return strategy.fit(candidates, config.n_bins, config.error_bound,
                        warm_start=warm_start)


def encode_pair(
    prev: np.ndarray,
    curr: np.ndarray,
    config: NumarckConfig | None = None,
    *,
    model_hint: BinModel | None = None,
    hint_baseline: float = 0.0,
    hint_drift: float | None = None,
    warm_start: bool = True,
) -> tuple[EncodedIteration, EncodeReport]:
    """Compress iteration ``curr`` against ``prev``; return the encoding
    plus an :class:`EncodeReport` describing the model-reuse decision.

    Parameters
    ----------
    prev:
        The reference iterate.  Under the paper's open-loop scheme this is
        the *original* previous iteration; callers running closed-loop pass
        the previously *decoded* state (see
        :class:`~repro.core.checkpoint.CheckpointChain`).
    curr:
        The iterate to compress.
    config:
        Compression parameters; defaults to ``NumarckConfig()``.
    model_hint:
        A previously fitted bin table to try first.  With ``hint_drift``
        set, the hint is validated and dropped on drift; with
        ``hint_drift=None`` it is used unconditionally (the distributed
        encoder's broadcast-table path).
    hint_baseline:
        Candidate fail fraction when the hint was last accepted; drift is
        measured relative to this.
    hint_drift:
        Maximum tolerated drift before a refit (absolute increase of the
        fail fraction).  ``None`` disables the gate.
    warm_start:
        On refit, seed the strategy from the hint's representatives.
    """
    cfg = config if config is not None else NumarckConfig()
    curr_dtype = np.asarray(curr).dtype
    value_bits = 32 if curr_dtype == np.float32 else 64
    tel = get_telemetry()
    with tel.span("encode", n_points=int(np.asarray(curr).size),
                  strategy=cfg.strategy,
                  bytes_in=int(np.asarray(curr).nbytes)) as tspan:
        with tel.span("encode.change_ratios"):
            field = change_ratios(prev, curr)
        ratios = field.ratios.ravel()
        forced = field.forced_exact.ravel()
        n = ratios.size
        shape = np.asarray(curr).shape

        e = cfg.error_bound
        indices = np.zeros(n, dtype=np.uint32)
        incompressible = forced.copy()

        if cfg.reserve_zero_bin:
            small = (np.abs(ratios) < e) & ~forced
            candidate_mask = ~small & ~forced
        else:
            # Ablation mode: no reserved zero index; all defined ratios are
            # candidates and the table must carry a near-zero bin itself.
            candidate_mask = ~forced

        cand_idx = np.flatnonzero(candidate_mask)
        representatives = np.empty(0, dtype=np.float64)
        reused = False
        refitted = False
        drift = 0.0
        fail_fraction = 0.0
        if cand_idx.size:
            candidates = ratios[cand_idx]
            model: BinModel | None = None
            labels = approx = fail = None
            if model_hint is not None and model_hint.n_bins:
                # Validate the cached table: one assign + bound check.  On
                # a reuse hit these labels ARE the encode assignment, so
                # validation costs nothing extra.
                with tel.span("adaptive.validate",
                              n_candidates=int(cand_idx.size)) as vspan:
                    labels = model_hint.assign(candidates)
                    approx = model_hint.representatives[labels]
                    fail = np.abs(approx - candidates) >= e
                    fail_fraction = float(fail.mean())
                    drift = max(0.0, fail_fraction - hint_baseline)
                    reused = hint_drift is None or drift <= hint_drift
                    vspan.set(drift=drift, reused=reused)
                tel.metrics.gauge("adaptive.drift").set(drift)
                if reused:
                    model = model_hint
                    tel.metrics.counter("adaptive.reuse_hits").inc()
            if model is None:
                with tel.span("encode.fit", n_candidates=int(cand_idx.size)):
                    ws = (model_hint.representatives
                          if model_hint is not None and warm_start else None)
                    model = _fit_model(candidates, cfg, warm_start=ws)
                if model_hint is not None:
                    refitted = True
                    tel.metrics.counter("adaptive.refits").inc()
                with tel.span("encode.assign", n_candidates=int(cand_idx.size)):
                    labels = model.assign(candidates)
                    approx = model.representatives[labels]
                    fail = np.abs(approx - candidates) >= e
                fail_fraction = float(fail.mean())
            representatives = model.representatives
            ok = ~fail
            if cfg.reserve_zero_bin:
                indices[cand_idx[ok]] = labels[ok].astype(np.uint32) + 1
            else:
                indices[cand_idx[ok]] = labels[ok].astype(np.uint32)
            incompressible[cand_idx[fail]] = True
        elif model_hint is not None and model_hint.n_bins:
            # Nothing to fit: trivially a reuse hit (all points unchanged
            # or exact), and the cached table stays live for the chain.
            representatives = model_hint.representatives
            reused = True
            tel.metrics.counter("adaptive.reuse_hits").inc()

        exact_values = np.asarray(curr, dtype=np.float64).ravel()[incompressible].copy()
        indices[incompressible] = 0

        max_index = (1 << cfg.nbits) - 1
        if representatives.size > (max_index if cfg.reserve_zero_bin else max_index + 1):
            raise AssertionError(
                "strategy produced more representatives than the index width allows"
            )

        enc = EncodedIteration(
            shape=tuple(shape),
            nbits=cfg.nbits,
            representatives=representatives,
            indices=indices,
            incompressible=incompressible,
            exact_values=exact_values,
            error_bound=e,
            strategy=cfg.strategy,
            zero_reserved=cfg.reserve_zero_bin,
            value_bits=value_bits,
            model_reused=reused,
        )
        tspan.set(bytes_out=delta_payload_nbytes(enc),
                  gamma=enc.incompressible_ratio,
                  n_bins=int(representatives.size),
                  model_reused=reused)
    tel.metrics.histogram(
        "encode.incompressible_fraction",
        buckets=(0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
    ).observe(enc.incompressible_ratio)
    report = EncodeReport(
        model_reused=reused,
        refitted=refitted,
        drift=drift,
        fit_fail_fraction=fail_fraction,
        n_candidates=int(cand_idx.size),
    )
    return enc, report


def encode_iteration(
    prev: np.ndarray,
    curr: np.ndarray,
    config: NumarckConfig | None = None,
    *,
    model_hint: BinModel | None = None,
) -> EncodedIteration:
    """Compress iteration ``curr`` as change ratios against ``prev``.

    .. deprecated::
        Use :class:`repro.Codec` (``Codec(config=config).compress(prev, curr)``)
        or :func:`encode_pair` when the reuse report is needed.

    ``model_hint`` forwards to :func:`encode_pair`; without a drift gate
    the hinted table is used unconditionally.
    """
    warnings.warn(
        "encode_iteration() is deprecated; use repro.Codec(config=config)"
        ".compress(prev, curr) or repro.core.encoder.encode_pair()",
        DeprecationWarning,
        stacklevel=2,
    )
    enc, _ = encode_pair(prev, curr, config, model_hint=model_hint)
    return enc
