"""Chunked (out-of-core-shaped) encoding for very large iterations.

Exascale checkpoints do not fit in one allocation.  The streaming encoder
processes an iteration pair in fixed-size chunks with the classic two-pass
structure the paper's in-situ setting implies:

* **pass 1 (model):** stream over chunks, computing change ratios and
  feeding a bounded reservoir sample of the compressible candidates (plus
  their running extremes) into the strategy fit -- O(chunk) peak memory;
* **pass 2 (encode):** stream again, assigning every point against the
  shared :class:`~repro.core.strategies.base.BinModel` and emitting one
  :class:`ChunkRecord` (indices, bitmap, exact values) per chunk.

The per-point guarantee is identical to the one-shot encoder: assignment
and the exactness check are exhaustive; only *bin placement* is estimated
from the sample.  ``decode_stream`` reverses chunk by chunk.

The chunk records concatenate to exactly the arrays a one-shot
:class:`~repro.core.encoder.EncodedIteration` would hold, and
``as_encoded_iteration`` performs that concatenation (useful for tests and
for writing a streamed result into the standard container format).

The public entry point is :meth:`repro.Codec.compress_stream`:

>>> import numpy as np
>>> from repro import Codec
>>> codec = Codec(chunk_size=1000)
>>> prev = np.linspace(1, 2, 5000)
>>> curr = prev * 1.002
>>> streamed = codec.compress_stream(
...     lambda: iter(np.array_split(prev, 5)),
...     lambda: iter(np.array_split(curr, 5)),
... )
>>> out = np.concatenate(list(codec.decompress_stream(
...     iter(np.array_split(prev, 5)), streamed)))
>>> bool(np.max(np.abs(out / curr - 1)) < 2e-3)
True

(The old :class:`StreamingEncoder` name remains as a deprecated shim.)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core.change import change_ratios
from repro.core.config import NumarckConfig
from repro.core.encoder import EncodedIteration, _fit_model
from repro.core.errors import FormatError
from repro.core.strategies.base import BinModel

__all__ = ["ChunkRecord", "StreamingEncoder", "decode_stream"]


@dataclass(frozen=True)
class ChunkRecord:
    """Encoded form of one chunk (flat, in stream order)."""

    start: int
    indices: np.ndarray
    incompressible: np.ndarray
    exact_values: np.ndarray

    @property
    def n_points(self) -> int:
        return int(self.indices.size)


@dataclass(frozen=True)
class StreamedIteration:
    """A streamed encoding: the shared model plus per-chunk records."""

    n_points: int
    nbits: int
    error_bound: float
    strategy: str
    zero_reserved: bool
    representatives: np.ndarray
    chunks: tuple[ChunkRecord, ...]

    def as_encoded_iteration(self) -> EncodedIteration:
        """Concatenate the chunks into a one-shot-equivalent encoding."""
        indices = np.concatenate([c.indices for c in self.chunks]) \
            if self.chunks else np.empty(0, dtype=np.uint32)
        bitmap = np.concatenate([c.incompressible for c in self.chunks]) \
            if self.chunks else np.empty(0, dtype=bool)
        exact = np.concatenate([c.exact_values for c in self.chunks]) \
            if self.chunks else np.empty(0, dtype=np.float64)
        return EncodedIteration(
            shape=(self.n_points,),
            nbits=self.nbits,
            representatives=self.representatives,
            indices=indices,
            incompressible=bitmap,
            exact_values=exact,
            error_bound=self.error_bound,
            strategy=self.strategy,
            zero_reserved=self.zero_reserved,
        )


class _ChunkedEncoder:
    """Two-pass chunked encoder (implementation behind
    :meth:`repro.Codec.compress_stream`).

    Parameters
    ----------
    config:
        Compression parameters (as for the one-shot encoder).
    chunk_size:
        Points per chunk; peak memory is O(chunk_size).
    sample_size:
        Reservoir size for the model-fit pass.
    """

    def __init__(self, config: NumarckConfig | None = None,
                 chunk_size: int = 1 << 20, sample_size: int = 200_000) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if sample_size < 16:
            raise ValueError(f"sample_size must be >= 16, got {sample_size}")
        self.config = config if config is not None else NumarckConfig()
        self.chunk_size = chunk_size
        self.sample_size = sample_size

    # -- pass 1 -------------------------------------------------------------

    def _fit_from_stream(self, prev_chunks: Iterable[np.ndarray],
                         curr_chunks: Iterable[np.ndarray]) -> tuple[BinModel | None, int]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        reservoir = np.empty(self.sample_size, dtype=np.float64)
        filled = 0
        seen = 0
        lo, hi = np.inf, -np.inf
        n_points = 0
        for prev, curr in zip(prev_chunks, curr_chunks):
            prev = np.asarray(prev, dtype=np.float64).ravel()
            curr = np.asarray(curr, dtype=np.float64).ravel()
            if prev.shape != curr.shape:
                raise FormatError("chunk shape mismatch between streams")
            n_points += prev.size
            field = change_ratios(prev, curr)
            r = field.ratios
            if cfg.reserve_zero_bin:
                cand = r[(np.abs(r) >= cfg.error_bound) & ~field.forced_exact]
            else:
                cand = r[~field.forced_exact]
            if cand.size == 0:
                continue
            lo = min(lo, float(cand.min()))
            hi = max(hi, float(cand.max()))
            # Vectorised approximate reservoir sampling: fill first, then
            # accept later candidates with the algorithm-R probability
            # (batched per chunk -- unbiased enough for model fitting).
            if filled < self.sample_size:
                take = min(self.sample_size - filled, cand.size)
                reservoir[filled : filled + take] = cand[:take]
                filled += take
                rest = cand[take:]
            else:
                rest = cand
            if rest.size:
                # Each remaining candidate replaces a random slot with
                # probability sample_size / (seen so far + position).
                positions = seen + np.arange(rest.size) + 1
                probs = self.sample_size / np.maximum(positions, self.sample_size)
                accept = rng.random(rest.size) < probs
                slots = rng.integers(0, self.sample_size, int(accept.sum()))
                reservoir[slots] = rest[accept]
            seen += cand.size
        if seen == 0:
            return None, n_points
        sample = reservoir[:filled] if filled < self.sample_size else reservoir
        # Pin the extremes so the model spans the full candidate range.
        sample = np.concatenate([sample, [lo, hi]])
        return _fit_model(sample, cfg), n_points

    # -- pass 2 -------------------------------------------------------------

    def _encode_chunk(self, start: int, prev: np.ndarray, curr: np.ndarray,
                      model: BinModel | None) -> ChunkRecord:
        cfg = self.config
        prev = np.asarray(prev, dtype=np.float64).ravel()
        curr = np.asarray(curr, dtype=np.float64).ravel()
        field = change_ratios(prev, curr)
        r = field.ratios
        n = r.size
        indices = np.zeros(n, dtype=np.uint32)
        incompressible = field.forced_exact.copy()
        if cfg.reserve_zero_bin:
            cand_mask = (np.abs(r) >= cfg.error_bound) & ~field.forced_exact
        else:
            cand_mask = ~field.forced_exact
        cand_idx = np.flatnonzero(cand_mask)
        if cand_idx.size:
            if model is None:
                incompressible[cand_idx] = True
            else:
                cand = r[cand_idx]
                labels = model.assign(cand)
                approx = model.representatives[labels]
                ok = np.abs(approx - cand) < cfg.error_bound
                offset = 1 if cfg.reserve_zero_bin else 0
                indices[cand_idx[ok]] = labels[ok].astype(np.uint32) + offset
                incompressible[cand_idx[~ok]] = True
        return ChunkRecord(
            start=start,
            indices=indices,
            incompressible=incompressible,
            exact_values=curr[incompressible].copy(),
        )

    def encode(self, prev_stream_factory, curr_stream_factory) -> StreamedIteration:
        """Encode from two replayable chunk streams.

        Both arguments are zero-argument callables returning a fresh
        iterator of chunks (the streams are consumed twice: model pass and
        encode pass).  Corresponding chunks must have equal sizes.
        """
        cfg = self.config
        model, n_points = self._fit_from_stream(prev_stream_factory(),
                                                curr_stream_factory())
        chunks: list[ChunkRecord] = []
        start = 0
        for prev, curr in zip(prev_stream_factory(), curr_stream_factory()):
            record = self._encode_chunk(start, prev, curr, model)
            chunks.append(record)
            start += record.n_points
        if start != n_points:
            raise FormatError(
                f"streams changed between passes: pass 1 saw {n_points} points, "
                f"pass 2 saw {start}"
            )
        reps = model.representatives if model is not None else np.empty(0)
        return StreamedIteration(
            n_points=n_points,
            nbits=cfg.nbits,
            error_bound=cfg.error_bound,
            strategy=cfg.strategy,
            zero_reserved=cfg.reserve_zero_bin,
            representatives=reps,
            chunks=tuple(chunks),
        )

    def encode_arrays(self, prev: np.ndarray, curr: np.ndarray) -> StreamedIteration:
        """Convenience: encode in-memory arrays through the chunked path."""
        p = np.asarray(prev, dtype=np.float64).ravel()
        c = np.asarray(curr, dtype=np.float64).ravel()
        if p.shape != c.shape:
            raise FormatError(f"shape mismatch: {p.shape} vs {c.shape}")
        nsplit = max(1, -(-p.size // self.chunk_size))

        def chunks(arr):
            return lambda: iter(np.array_split(arr, nsplit))

        return self.encode(chunks(p), chunks(c))


class StreamingEncoder(_ChunkedEncoder):
    """Two-pass chunked encoder.

    .. deprecated::
        Use :class:`repro.Codec` -- ``Codec(config=config, chunk_size=...)``
        with :meth:`~repro.Codec.compress_stream` /
        :meth:`~repro.Codec.decompress_stream`.
    """

    def __init__(self, config: NumarckConfig | None = None,
                 chunk_size: int = 1 << 20, sample_size: int = 200_000) -> None:
        warnings.warn(
            "StreamingEncoder is deprecated; use repro.Codec(config=config, "
            "chunk_size=...).compress_stream(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(config, chunk_size, sample_size)


def decode_stream(prev_chunks: Iterator[np.ndarray],
                  streamed: StreamedIteration) -> Iterator[np.ndarray]:
    """Decode chunk by chunk against the reference stream.

    Yields one decoded array per stored chunk; chunk boundaries must match
    the encode pass (they do when the same chunking is replayed).
    """
    if streamed.representatives.size:
        if streamed.zero_reserved:
            table = np.concatenate([[0.0], streamed.representatives])
        else:
            table = streamed.representatives
    else:
        table = np.zeros(1)
    for record, prev in zip(streamed.chunks, prev_chunks):
        prev = np.asarray(prev, dtype=np.float64).ravel()
        if prev.size != record.n_points:
            raise FormatError(
                f"chunk at {record.start}: reference has {prev.size} points, "
                f"record has {record.n_points}"
            )
        ratios = table[record.indices]
        out = prev * (1.0 + ratios)
        out[record.incompressible] = record.exact_values
        yield out
