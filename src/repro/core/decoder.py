"""Decode one iteration (paper Section II-D, restart equation).

``decoded = prev * (1 + ratio')`` for compressible points, raw stored
values for incompressible ones.

Because every point costs exactly ``B`` bits plus one bitmap bit, the
encoding supports **random access**: :func:`decode_region` reconstructs an
arbitrary flat slice without touching the rest of the iteration (the only
non-local information is the rank of the first incompressible point, a
single prefix ``count_nonzero``).  Analysis jobs can therefore pull one
block or sub-domain out of a compressed checkpoint.
"""

from __future__ import annotations

import numpy as np

from repro.core.change import apply_change
from repro.core.encoder import EncodedIteration
from repro.core.errors import FormatError
from repro.telemetry.tracer import get_telemetry

__all__ = ["decode_iteration", "decode_region"]


def decode_iteration(prev: np.ndarray, encoded: EncodedIteration) -> np.ndarray:
    """Rebuild an iterate from its reference and its encoded form.

    Parameters
    ----------
    prev:
        The same reference array that was passed to
        :func:`~repro.core.encoder.encode_pair` (original previous
        iterate for open-loop chains, previously decoded state for
        closed-loop or restart).
    encoded:
        The compressed iteration.

    Returns
    -------
    numpy.ndarray
        Float64 array of ``encoded.shape``.
    """
    p = np.asarray(prev, dtype=np.float64)
    if p.shape != encoded.shape:
        raise FormatError(
            f"reference shape {p.shape} does not match encoded shape {encoded.shape}"
        )
    with get_telemetry().span("decode", n_points=encoded.n_points,
                              bytes_out=encoded.n_points * 8) as sp:
        sp.set(gamma=encoded.incompressible_ratio)
        ratios = encoded.decoded_ratios()
        out = apply_change(p.ravel(), ratios)
        out[encoded.incompressible] = encoded.exact_values
        return out.reshape(encoded.shape)


def decode_region(prev_region: np.ndarray, encoded: EncodedIteration,
                  start: int, stop: int) -> np.ndarray:
    """Decode only the flat index range ``[start, stop)``.

    Parameters
    ----------
    prev_region:
        The reference values for exactly that range (``stop - start``
        elements, any shape -- it is flattened).
    encoded:
        The compressed iteration.
    start, stop:
        Flat (C-order) point range within the iteration.

    Returns
    -------
    numpy.ndarray
        1-D array of ``stop - start`` decoded values.
    """
    n = encoded.n_points
    if not 0 <= start <= stop <= n:
        raise IndexError(f"region [{start}, {stop}) out of range [0, {n})")
    p = np.asarray(prev_region, dtype=np.float64).ravel()
    if p.size != stop - start:
        raise FormatError(
            f"reference region has {p.size} points, expected {stop - start}"
        )
    if start == stop:
        return np.empty(0, dtype=np.float64)

    indices = encoded.indices[start:stop]
    mask = encoded.incompressible[start:stop]
    if encoded.representatives.size == 0:
        ratios = np.zeros(stop - start)
    else:
        if encoded.zero_reserved:
            table = np.concatenate([[0.0], encoded.representatives])
        else:
            table = encoded.representatives
        ratios = table[indices]
    ratios = np.where(mask, 0.0, ratios)
    out = p * (1.0 + ratios)
    if mask.any():
        # Rank of the region's first exact value in the dense exact stream.
        first = int(np.count_nonzero(encoded.incompressible[:start]))
        count = int(mask.sum())
        out[mask] = encoded.exact_values[first : first + count]
    return out
