"""Clustering-based approximation (paper Section II-C3).

1-D k-means on the candidate change ratios, with centroids seeded from the
equal-width histogram (the paper's initialisation prior).  The fitted
cluster centroids become the representative ratios; nearest-centroid
assignment is exactly the :class:`~repro.core.strategies.base.BinModel`
rule, so the model round-trips through serialization as a plain sorted
float array like the other strategies.

Clustering adapts bin placement to multi-modal, unevenly dense change
distributions where fixed-width schemes waste bins on empty ranges -- the
reason it achieves the lowest incompressible ratio in the paper's Figs 4/5.

Deviation from the paper, documented in DESIGN.md: plain L2 k-means is
fragile on *heavy-tailed* ratio distributions (sparse runoff, fields whose
values cross zero) -- extreme outliers either capture clusters or are
hopeless anyway, and the dense mid-range loses coverage.  ``space="auto"``
therefore fits k-means twice, once on the raw ratios and once on the
variance-stabilised transform ``asinh(ratio / E)`` (equal k-means
resolution per *relative* scale, like log-scale binning but density
adaptive), and keeps whichever model leaves fewer candidates outside the
tolerance.  On benign distributions this reduces to the paper's algorithm.

For very large iterations the fit subsamples the candidates (keeping the
extremes) before running Lloyd; assignment still covers every point, so the
error guarantee is unaffected -- only bin placement is approximated, which
matches how the paper's distributed k-means operates on local shards.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies.base import ApproximationStrategy, BinModel
from repro.kmeans import histogram_init, kmeans1d, kmeanspp_init, random_init
from repro.telemetry.tracer import get_telemetry

__all__ = ["ClusteringStrategy"]

_INITS = {
    "histogram": histogram_init,
    "kmeans++": kmeanspp_init,
    "random": random_init,
}

_SPACES = ("auto", "linear", "asinh")


class ClusteringStrategy(ApproximationStrategy):
    """k-means-derived representatives.

    Parameters
    ----------
    init:
        Centroid seeding scheme: ``"histogram"`` (paper default),
        ``"kmeans++"`` or ``"random"``.
    max_iter:
        Lloyd iteration cap.
    space:
        Clustering space: ``"linear"`` (the paper's raw ratios),
        ``"asinh"`` (variance stabilised), or ``"auto"`` (fit both, keep
        the better-covering model; the default).
    sample_limit:
        Fit on at most this many candidates (subsampled deterministically
        from ``seed``); ``None`` disables subsampling.
    seed:
        RNG seed for subsampling and the stochastic initialisers.
    """

    name = "clustering"

    def __init__(
        self,
        init: str = "histogram",
        max_iter: int = 25,
        space: str = "auto",
        sample_limit: int | None = 200_000,
        seed: int = 0,
    ) -> None:
        if init not in _INITS:
            raise ValueError(f"unknown init {init!r}; available: {sorted(_INITS)}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if space not in _SPACES:
            raise ValueError(f"unknown space {space!r}; available: {_SPACES}")
        if sample_limit is not None and sample_limit < 2:
            raise ValueError(f"sample_limit must be >= 2, got {sample_limit}")
        self.init = init
        self.max_iter = max_iter
        self.space = space
        self.sample_limit = sample_limit
        self.seed = seed

    @classmethod
    def from_config(cls, config) -> "ClusteringStrategy":
        return cls(init=config.kmeans_init, max_iter=config.kmeans_max_iter,
                   seed=config.seed)

    def _sample(self, arr: np.ndarray) -> np.ndarray:
        limit = self.sample_limit
        if limit is None or arr.size <= limit:
            return arr
        rng = np.random.default_rng(self.seed)
        idx = rng.choice(arr.size, size=limit - 2, replace=False)
        # Keep the extremes so the centroid span covers the full range.
        return np.concatenate([arr[idx], [arr.min(), arr.max()]])

    def _fit_space(self, sample: np.ndarray, k: int, error_bound: float,
                   space: str, warm: np.ndarray | None = None) -> BinModel:
        if space == "asinh":
            points = np.arcsinh(sample / error_bound)
        else:
            points = sample
        if warm is not None and warm.size:
            # Warm start: restart Lloyd from the cached representatives,
            # transformed into the clustering space.
            seeds = np.arcsinh(warm / error_bound) if space == "asinh" else warm
            result = kmeans1d(points, max_iter=self.max_iter,
                              warm_start=seeds, k=k)
        else:
            init_fn = _INITS[self.init]
            if self.init == "histogram":
                centroids = init_fn(points, k)
            else:
                centroids = init_fn(points, k, rng=np.random.default_rng(self.seed))
            result = kmeans1d(points, centroids, max_iter=self.max_iter)
        reps = result.centroids
        if space == "asinh":
            reps = np.sinh(reps) * error_bound
        return BinModel(np.unique(reps))

    def fit(self, ratios: np.ndarray, k: int, error_bound: float, *,
            warm_start: np.ndarray | None = None) -> BinModel:
        arr = self._validate(ratios, k, error_bound)
        warm = None
        if warm_start is not None:
            warm = np.asarray(warm_start, dtype=np.float64).ravel()
            warm = warm[np.isfinite(warm)]
        with get_telemetry().span("strategy.clustering.fit",
                                  n_ratios=arr.size, k=k,
                                  bytes_in=arr.nbytes) as sp:
            uniq = np.unique(arr)
            if uniq.size <= k:
                # Fewer distinct ratios than bins: every point is representable
                # exactly, no clustering needed.
                sp.set(n_bins=int(uniq.size), space="exact")
                return BinModel(uniq)
            sample = self._sample(arr)
            sp.set(n_sampled=int(sample.size), warm_started=warm is not None)
            if self.space != "auto":
                model = self._fit_space(sample, k, error_bound, self.space, warm)
                sp.set(n_bins=int(model.representatives.size), space=self.space)
                return model
            # Safeguarded selection: Lloyd minimises L2 inertia, not coverage,
            # so never accept a clustering that covers fewer candidates than
            # the equal-width prior it was seeded from.
            from repro.core.strategies.equal_width import EqualWidthStrategy

            def fails(model: BinModel) -> int:
                return int(np.count_nonzero(
                    np.abs(model.approximate(sample) - sample) >= error_bound
                ))

            linear = self._fit_space(sample, k, error_bound, "linear", warm)
            fails_linear = fails(linear)
            if fails_linear == 0:
                # Full coverage already -- the common benign case; skip the
                # variance-stabilised refit entirely.
                sp.set(n_bins=int(linear.representatives.size), space="linear")
                return linear
            candidates = [linear,
                          self._fit_space(sample, k, error_bound, "asinh", warm),
                          EqualWidthStrategy().fit(sample, k, error_bound)]
            counts = [fails_linear, fails(candidates[1]), fails(candidates[2])]
            pick = int(np.argmin(counts))
            model = candidates[pick]
            sp.set(n_bins=int(model.representatives.size),
                   space=("linear", "asinh", "equal_width")[pick])
            return model
