"""Strategy protocol and the fitted bin model."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import NumarckConfig

__all__ = ["BinModel", "ApproximationStrategy"]


@dataclass(frozen=True)
class BinModel:
    """A fitted set of representative change ratios.

    Attributes
    ----------
    representatives:
        ``(m,)`` float64 array with ``m <= k`` distinct representative
        ratios, sorted ascending.  Bin ``j`` approximates every ratio
        assigned to it by ``representatives[j]``.
    """

    representatives: np.ndarray

    def __post_init__(self) -> None:
        reps = np.asarray(self.representatives, dtype=np.float64).ravel()
        if reps.size == 0:
            raise ValueError("BinModel needs at least one representative")
        if not np.all(np.isfinite(reps)):
            raise ValueError("representatives must be finite")
        if np.any(np.diff(reps) < 0):
            raise ValueError("representatives must be sorted ascending")
        object.__setattr__(self, "representatives", reps)

    @property
    def n_bins(self) -> int:
        return int(self.representatives.size)

    def assign(self, ratios: np.ndarray) -> np.ndarray:
        """Nearest-representative bin index (int32, in ``[0, n_bins)``).

        Because representatives are sorted, nearest-neighbour assignment is
        a binary search against adjacent midpoints -- O(n log m).
        """
        reps = self.representatives
        if reps.size == 1:
            return np.zeros(np.asarray(ratios).shape, dtype=np.int32)
        mids = 0.5 * (reps[:-1] + reps[1:])
        return np.searchsorted(mids, np.asarray(ratios, dtype=np.float64),
                               side="left").astype(np.int32)

    def approximate(self, ratios: np.ndarray) -> np.ndarray:
        """Representative ratio of each point's assigned bin."""
        return self.representatives[self.assign(ratios)]


class ApproximationStrategy(ABC):
    """Learns a :class:`BinModel` from one iteration's compressible ratios."""

    #: registry name, set by subclasses
    name: str = ""

    @classmethod
    def from_config(cls, config: "NumarckConfig") -> "ApproximationStrategy":
        """Build the strategy a :class:`~repro.core.config.NumarckConfig`
        describes -- the one construction path, so strategy kwargs cannot
        silently diverge from config fields.

        Called on the ABC, dispatches on ``config.strategy`` through the
        registry; called on a concrete subclass, constructs that subclass
        from its matching config fields (the base implementation takes no
        parameters -- subclasses with tunables override).
        """
        if cls is ApproximationStrategy:
            from repro.core.strategies import STRATEGIES

            try:
                sub = STRATEGIES[config.strategy]
            except KeyError:
                raise ValueError(
                    f"unknown strategy {config.strategy!r}; "
                    f"available: {sorted(STRATEGIES)}"
                ) from None
            return sub.from_config(config)
        return cls()

    @abstractmethod
    def fit(self, ratios: np.ndarray, k: int, error_bound: float, *,
            warm_start: np.ndarray | None = None) -> BinModel:
        """Fit at most ``k`` representatives to the candidate ratios.

        Parameters
        ----------
        ratios:
            1-D array of change ratios to be binned (non-empty; the encoder
            never calls ``fit`` with nothing to compress).
        k:
            Maximum number of bins (``2**B - 1`` for the paper's layout).
        error_bound:
            The user tolerance ``E``; strategies may use it to place bin
            boundaries (e.g. log-scale bins start at ``E``) but the hard
            guarantee is enforced by the encoder, not here.
        warm_start:
            Representatives of a previously fitted model of the *same
            chain* to restart from (adaptive refits).  Deterministic
            strategies may ignore it; iterative ones (clustering) use it
            in place of their cold initialiser.
        """

    @staticmethod
    def _validate(ratios: np.ndarray, k: int, error_bound: float) -> np.ndarray:
        arr = np.asarray(ratios, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValueError("cannot fit a strategy on empty ratios")
        if not np.all(np.isfinite(arr)):
            raise ValueError("ratios must be finite (encoder filters non-finite)")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if error_bound <= 0:
            raise ValueError(f"error_bound must be positive, got {error_bound}")
        return arr
