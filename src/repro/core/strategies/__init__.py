"""Approximation strategies: learn the change-ratio distribution.

Each strategy fits a :class:`BinModel` -- at most ``k`` representative
change ratios plus an assignment rule -- on the compressible candidates of
one iteration:

* :class:`EqualWidthStrategy` (paper II-C1): ``k`` equal-width histogram
  bins over the ratio range, represented by bin centers.
* :class:`LogScaleStrategy` (paper II-C2): bin widths grow geometrically
  with ``|ratio|`` (finer bins for small changes), sign-aware.
* :class:`ClusteringStrategy` (paper II-C3): 1-D k-means seeded from the
  equal-width histogram; cluster centroids become the representatives.

Strategies are selected from a :class:`~repro.core.config.NumarckConfig`
through :meth:`ApproximationStrategy.from_config`, the one construction
path (the old :func:`get_strategy` name/kwargs helper is a deprecated
shim over it).
"""

import warnings

from repro.core.strategies.base import ApproximationStrategy, BinModel
from repro.core.strategies.clustering import ClusteringStrategy
from repro.core.strategies.equal_width import EqualWidthStrategy
from repro.core.strategies.log_scale import LogScaleStrategy

__all__ = [
    "ApproximationStrategy",
    "BinModel",
    "EqualWidthStrategy",
    "LogScaleStrategy",
    "ClusteringStrategy",
    "get_strategy",
    "STRATEGIES",
]

STRATEGIES: dict[str, type[ApproximationStrategy]] = {
    "equal_width": EqualWidthStrategy,
    "log_scale": LogScaleStrategy,
    "clustering": ClusteringStrategy,
}


def get_strategy(name: str, **kwargs) -> ApproximationStrategy:
    """Instantiate a strategy by registry name.

    .. deprecated::
        Use :meth:`ApproximationStrategy.from_config` (or construct the
        strategy class directly); ad-hoc kwargs can silently diverge from
        the config fields the rest of the pipeline uses.
    """
    warnings.warn(
        "get_strategy() is deprecated; use "
        "ApproximationStrategy.from_config(config) or construct the "
        "strategy class directly",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    return cls(**kwargs)
