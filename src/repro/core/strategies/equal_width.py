"""Equal-width binning (paper Section II-C1).

Partition ``[min, max]`` of the candidate ratios into ``k`` equal-width
bins; each ratio is approximated by its bin center.  As the paper notes,
coverage is bounded: the bound is met for every point only when the bin
width ``W <= 2E``, i.e. when the ratio range is at most ``2 E k``.  Wider
ranges push edge-of-bin points past the tolerance and the encoder stores
them exactly, which is why this strategy has the worst incompressible
ratio on wide or irregular distributions.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies.base import ApproximationStrategy, BinModel
from repro.telemetry.tracer import get_telemetry

__all__ = ["EqualWidthStrategy"]


class EqualWidthStrategy(ApproximationStrategy):
    """``k`` equal-width bins over the ratio range, centers as representatives."""

    name = "equal_width"

    def fit(self, ratios: np.ndarray, k: int, error_bound: float, *,
            warm_start: np.ndarray | None = None) -> BinModel:
        arr = self._validate(ratios, k, error_bound)
        with get_telemetry().span("strategy.equal_width.fit",
                                  n_ratios=arr.size, k=k,
                                  bytes_in=arr.nbytes) as sp:
            lo = float(arr.min())
            hi = float(arr.max())
            if lo == hi:
                sp.set(n_bins=1)
                return BinModel(np.array([lo]))
            edges = np.linspace(lo, hi, num=k + 1)
            centers = 0.5 * (edges[:-1] + edges[1:])
            # Drop empty bins: they would waste table entries and nearest-
            # representative assignment is unchanged for occupied regions only
            # when representatives are exactly the occupied-bin centers.
            idx = np.clip(((arr - lo) / (hi - lo) * k).astype(np.int64), 0, k - 1)
            occupied = np.unique(idx)
            sp.set(n_bins=int(occupied.size))
            return BinModel(centers[occupied])
