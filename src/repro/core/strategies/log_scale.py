"""Log-scale binning (paper Section II-C2).

Bins are equal-width in ``log |ratio|``, separately for negative and
positive ratios, so small changes get narrow bins and large changes get
wide ones.  The budget of ``k`` bins is split between the two signs in
proportion to their candidate counts.

A log-scale bin ``[a, b]`` (``0 < a <= b``) represented by its geometric
midpoint ``sqrt(a*b)`` keeps every member within the tolerance ``E``
whenever ``b / a <= ((1 + E/a) / (1 - E/b))`` -- in particular, bins whose
absolute half-width stays under ``E``.  The encoder still enforces the hard
bound point-wise, so the strategy only has to *aim* bins well.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies.base import ApproximationStrategy, BinModel
from repro.telemetry.tracer import get_telemetry

__all__ = ["LogScaleStrategy"]

_TINY = 1e-300


def _log_edges(lo: float, hi: float, nbins: int) -> np.ndarray:
    """Geometric bin edges covering ``[lo, hi]`` (``0 < lo <= hi``)."""
    lo = max(lo, _TINY)
    hi = max(hi, lo)
    if lo == hi or nbins <= 1:
        return np.array([lo, hi])
    return np.exp(np.linspace(np.log(lo), np.log(hi), num=nbins + 1))


def _side_representatives(mags: np.ndarray, nbins: int, error_bound: float) -> np.ndarray:
    """Representatives (positive magnitudes) for one sign's candidates."""
    lo = float(mags.min())
    hi = float(mags.max())
    # Anchor the lowest edge at E when the data allows: ratios below E are
    # already swallowed by the reserved zero index, so bins [E, hi] spend
    # the budget only where it matters (paper: "more finer bins ... for
    # smaller changes").
    lo = max(min(lo, hi), min(error_bound, lo))
    edges = _log_edges(lo, hi, nbins)
    # Geometric midpoints; dedupe occupied bins like equal-width does.
    idx = np.clip(np.searchsorted(edges, mags, side="right") - 1, 0, len(edges) - 2)
    occupied = np.unique(idx)
    reps = np.sqrt(edges[occupied] * edges[occupied + 1])
    return reps


class LogScaleStrategy(ApproximationStrategy):
    """Sign-aware geometric binning of ``|ratio|``."""

    name = "log_scale"

    def fit(self, ratios: np.ndarray, k: int, error_bound: float, *,
            warm_start: np.ndarray | None = None) -> BinModel:
        arr = self._validate(ratios, k, error_bound)
        with get_telemetry().span("strategy.log_scale.fit",
                                  n_ratios=arr.size, k=k,
                                  bytes_in=arr.nbytes) as sp:
            neg = arr[arr < 0]
            pos = arr[arr > 0]
            zero_present = bool((arr == 0).any())

            reps_parts: list[np.ndarray] = []
            budget = k - (1 if zero_present else 0)
            if budget < 1:
                budget = 1
            n_sides = (neg.size > 0) + (pos.size > 0)
            if n_sides == 0:
                # All candidates are exactly zero.
                sp.set(n_bins=1)
                return BinModel(np.array([0.0]))

            if neg.size and pos.size:
                k_neg = max(1, int(round(budget * neg.size / arr.size)))
                k_neg = min(k_neg, budget - 1)
                k_pos = budget - k_neg
            elif neg.size:
                k_neg, k_pos = budget, 0
            else:
                k_neg, k_pos = 0, budget

            if neg.size:
                reps_parts.append(-_side_representatives(-neg, k_neg, error_bound)[::-1])
            if zero_present:
                reps_parts.append(np.array([0.0]))
            if pos.size:
                reps_parts.append(_side_representatives(pos, k_pos, error_bound))

            reps = np.unique(np.concatenate(reps_parts))
            model = BinModel(reps[: k] if reps.size > k else reps)
            sp.set(n_bins=int(model.representatives.size))
            return model
