"""Exception hierarchy and damage reports for the NUMARCK library."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NumarckError", "ConfigError", "FormatError", "SalvageError",
           "SalvageReport"]


class NumarckError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(NumarckError, ValueError):
    """Invalid compression configuration (bad error bound, bit width, ...)."""


class FormatError(NumarckError, ValueError):
    """Corrupt or incompatible serialized checkpoint data."""


class SalvageError(FormatError):
    """A salvage-mode read found nothing recoverable.

    Raised by ``load_chain(..., recover="tail")`` and friends when the
    file's header is invalid or no complete record survives -- there is no
    valid prefix to return.  Subclasses :class:`FormatError`, so strict
    callers keep working unchanged.
    """


@dataclass(frozen=True)
class SalvageReport:
    """Outcome of a salvage-mode read or an on-disk repair.

    A *torn tail* (the damage crash-consistent appends can leave behind)
    loses at most the record being written when the crash hit; the report
    records exactly what was kept and what was cut.  Framing is lost at the
    first bad byte, so ``records_dropped`` is 0 for a clean file and 1 when
    a damaged trailing region was discarded -- the region may have held a
    partial record or one whole corrupt record, never more that could be
    counted.
    """

    path: str
    records_kept: int
    records_dropped: int
    bytes_truncated: int
    reason: str | None = None

    @property
    def clean(self) -> bool:
        """True when the file needed no salvage at all."""
        return self.reason is None

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.clean:
            return f"{self.path}: clean ({self.records_kept} records)"
        return (f"{self.path}: kept {self.records_kept} records, dropped "
                f"{self.records_dropped} damaged trailing region "
                f"({self.bytes_truncated} bytes): {self.reason}")
