"""Exception hierarchy and damage reports (back-compat aliases).

The canonical definitions moved to :mod:`repro.errors`, the library-wide
public error module; everything re-exported here is the *same object*, so
``except repro.core.errors.FormatError`` and ``isinstance`` checks keep
working unchanged.
"""

from __future__ import annotations

from repro.errors import (
    ConfigError,
    FormatError,
    NumarckError,
    SalvageError,
    SalvageReport,
    StateError,
)

__all__ = ["NumarckError", "ConfigError", "FormatError", "SalvageError",
           "SalvageReport", "StateError"]
