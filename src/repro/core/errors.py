"""Exception hierarchy for the NUMARCK library."""

__all__ = ["NumarckError", "ConfigError", "FormatError"]


class NumarckError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(NumarckError, ValueError):
    """Invalid compression configuration (bad error bound, bit width, ...)."""


class FormatError(NumarckError, ValueError):
    """Corrupt or incompatible serialized checkpoint data."""
