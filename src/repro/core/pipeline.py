"""High-level one-shot compression API.

:class:`NumarckCompressor` wraps encode/decode/stats for a single pair of
iterations -- the unit of work the paper's evaluation (Figs 3-7, Tables
I-II) measures -- and offers an optional data-parallel encode path that
partitions the points across a :class:`repro.parallel.Comm`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NumarckConfig
from repro.core.decoder import decode_iteration
from repro.core.encoder import EncodedIteration, encode_iteration
from repro.core.metrics import CompressionStats, iteration_stats
from repro.telemetry.tracer import get_telemetry

__all__ = ["NumarckCompressor"]


class NumarckCompressor:
    """Stateless facade over the NUMARCK pipeline.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import NumarckCompressor, NumarckConfig
    >>> rng = np.random.default_rng(0)
    >>> prev = rng.uniform(1.0, 2.0, size=1000)
    >>> curr = prev * (1.0 + rng.normal(0.0, 0.002, size=1000))
    >>> comp = NumarckCompressor(NumarckConfig(error_bound=1e-3, nbits=8))
    >>> enc = comp.compress(prev, curr)
    >>> out = comp.decompress(prev, enc)
    >>> bool(np.all(np.abs(out / prev - curr / prev) < 1e-3 + 1e-12))
    True
    """

    def __init__(self, config: NumarckConfig | None = None) -> None:
        self.config = config if config is not None else NumarckConfig()

    def compress(self, prev: np.ndarray, curr: np.ndarray) -> EncodedIteration:
        """Encode ``curr`` against reference ``prev``."""
        with get_telemetry().span("pipeline.compress",
                                  strategy=self.config.strategy):
            return encode_iteration(prev, curr, self.config)

    def decompress(self, prev: np.ndarray, encoded: EncodedIteration) -> np.ndarray:
        """Decode an iteration against the same reference it was encoded with."""
        with get_telemetry().span("pipeline.decompress"):
            return decode_iteration(prev, encoded)

    def stats(self, prev: np.ndarray, curr: np.ndarray,
              encoded: EncodedIteration | None = None) -> CompressionStats:
        """Compression statistics for a pair (encodes if not already done)."""
        enc = encoded if encoded is not None else self.compress(prev, curr)
        return iteration_stats(prev, curr, enc)

    def roundtrip(self, prev: np.ndarray, curr: np.ndarray,
                  ) -> tuple[np.ndarray, EncodedIteration, CompressionStats]:
        """Encode, decode and summarise one pair in one call."""
        enc = self.compress(prev, curr)
        out = self.decompress(prev, enc)
        return out, enc, iteration_stats(prev, curr, enc)
