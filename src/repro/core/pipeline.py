"""High-level one-shot compression API (deprecated shim).

:class:`NumarckCompressor` was the original facade over encode/decode/
stats for a single pair of iterations.  It is now a thin deprecated shim
over :class:`repro.Codec`, which unifies pairs, chains and chunked streams
behind one configured object:

>>> import numpy as np
>>> from repro import Codec, NumarckConfig
>>> rng = np.random.default_rng(0)
>>> prev = rng.uniform(1.0, 2.0, size=1000)
>>> curr = prev * (1.0 + rng.normal(0.0, 0.002, size=1000))
>>> codec = Codec(config=NumarckConfig(error_bound=1e-3, nbits=8))
>>> enc = codec.compress(prev, curr)
>>> out = codec.decompress(prev, enc)
>>> bool(np.all(np.abs(out / prev - curr / prev) < 1e-3 + 1e-12))
True
"""

from __future__ import annotations

import warnings

from repro.codec import Codec
from repro.core.config import NumarckConfig

__all__ = ["NumarckCompressor"]


class NumarckCompressor(Codec):
    """Stateless facade over the NUMARCK pipeline.

    .. deprecated::
        Use :class:`repro.Codec`; the method names are unchanged
        (``compress`` / ``decompress`` / ``stats`` / ``roundtrip``), so
        migration is the constructor swap.
    """

    def __init__(self, config: NumarckConfig | None = None) -> None:
        warnings.warn(
            "NumarckCompressor is deprecated; use repro.Codec(config=config) "
            "(same compress/decompress/stats/roundtrip methods)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(config=config)
