"""NUMARCK core: error-bounded checkpoint compression.

The pipeline implements the paper's three stages:

1. **Forward predictive coding** (:mod:`repro.core.change`): the relative
   change ratio ``(D_i - D_{i-1}) / D_{i-1}`` of every point between two
   consecutive checkpoint iterations.
2. **Data approximation** (:mod:`repro.core.strategies`,
   :mod:`repro.core.encoder`): learn the distribution of change ratios with
   equal-width binning, log-scale binning, or k-means clustering; represent
   every compressible point by a B-bit index into a table of 2^B - 1
   representative ratios; points whose approximation error would exceed the
   user tolerance ``E`` are stored exactly.
3. **Restart** (:mod:`repro.core.decoder`, :mod:`repro.core.checkpoint`):
   rebuild iteration ``i`` as ``D'_{i-1} * (1 + ratio')`` with exact values
   spliced in, chaining deltas from the last full checkpoint.

Entry points: :class:`repro.Codec` for pair/chain/stream compression and
:class:`CheckpointChain` for multi-iteration streams.  With
``NumarckConfig(adaptive=True)`` the fitted bin model is cached across a
chain's iterations and refitted only on distribution drift
(:mod:`repro.core.adaptive`).
"""

from repro.core.adaptive import AdaptiveEncoder, ReuseStats
from repro.core.change import ChangeField, apply_change, change_ratios
from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig
from repro.core.decoder import decode_iteration, decode_region
from repro.core.encoder import (EncodedIteration, EncodeReport,
                                encode_iteration, encode_pair)
from repro.core.errors import (
    ConfigError,
    FormatError,
    NumarckError,
    SalvageError,
    SalvageReport,
)
from repro.core.joint import JointEncodedIteration, decode_joint, encode_joint
from repro.core.metrics import (
    CompressionStats,
    compression_ratio_actual,
    compression_ratio_paper,
    error_rates,
    pearson_r,
    rmse,
)
from repro.core.pipeline import NumarckCompressor
from repro.core.varset import VariableSet
from repro.core.theory import (
    closed_loop_error_bound,
    max_chain_depth,
    open_loop_error_bound,
)
from repro.core.streaming import (
    ChunkRecord,
    StreamedIteration,
    StreamingEncoder,
    decode_stream,
)
from repro.core.strategies import (
    ApproximationStrategy,
    BinModel,
    ClusteringStrategy,
    EqualWidthStrategy,
    LogScaleStrategy,
    get_strategy,
)

__all__ = [
    "NumarckConfig",
    "NumarckCompressor",
    "VariableSet",
    "CheckpointChain",
    "ChangeField",
    "change_ratios",
    "apply_change",
    "EncodedIteration",
    "EncodeReport",
    "encode_pair",
    "encode_iteration",
    "AdaptiveEncoder",
    "ReuseStats",
    "decode_iteration",
    "decode_region",
    "encode_joint",
    "decode_joint",
    "JointEncodedIteration",
    "ApproximationStrategy",
    "BinModel",
    "EqualWidthStrategy",
    "LogScaleStrategy",
    "ClusteringStrategy",
    "get_strategy",
    "StreamingEncoder",
    "StreamedIteration",
    "ChunkRecord",
    "decode_stream",
    "open_loop_error_bound",
    "closed_loop_error_bound",
    "max_chain_depth",
    "CompressionStats",
    "error_rates",
    "compression_ratio_paper",
    "compression_ratio_actual",
    "pearson_r",
    "rmse",
    "NumarckError",
    "ConfigError",
    "FormatError",
    "SalvageError",
    "SalvageReport",
]
