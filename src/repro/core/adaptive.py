"""Adaptive bin-model reuse across chain iterations (the encode hot path).

Profiling shows per-iteration NUMARCK cost is dominated by re-learning the
change-ratio distribution every timestep.  But consecutive timesteps of a
stationary simulation produce near-identical ratio distributions, so the
follow-up parallel NUMARCK work (Yuan, Hendrix, Son et al.) reuses cluster
centers across timesteps.  :class:`AdaptiveEncoder` implements that idea
with a hard safety net:

1. each timestep, the cached :class:`~repro.core.strategies.base.BinModel`
   is *validated* against the new candidates -- one vectorised assign plus
   bound check, work the encoder performs anyway;
2. if the incompressible fraction has not drifted more than
   ``config.drift_threshold`` above the fraction observed when the model
   was last fitted, the fit stage is skipped (a *reuse hit*) and the
   validation labels double as the encode assignment;
3. on drift the model is refitted, warm-starting Lloyd from the cached
   centers (``config.warm_start``), and the baseline resets.

The per-point guarantee is untouched in both paths: reuse only steers bin
placement, and every point is still error-checked exhaustively against E.
The observable effect of a worse-placed table is a slightly higher
incompressible fraction -- which is exactly the quantity the drift gate
watches.

Telemetry: counters ``adaptive.reuse_hits`` / ``adaptive.refits``, gauge
``adaptive.drift``, and an ``adaptive.validate`` span inside each encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import NumarckConfig
from repro.core.encoder import EncodedIteration, EncodeReport, encode_pair
from repro.core.strategies.base import BinModel

__all__ = ["AdaptiveEncoder", "ReuseStats"]


@dataclass
class ReuseStats:
    """Running reuse counters of one :class:`AdaptiveEncoder`."""

    encodes: int = 0
    reuse_hits: int = 0
    refits: int = 0
    #: drift observed at each encode that had a cached model to validate.
    drift_history: list[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.reuse_hits / self.encodes if self.encodes else 0.0


class AdaptiveEncoder:
    """Stateful encoder that caches the fitted bin model across iterations.

    Typical use::

        enc = AdaptiveEncoder(NumarckConfig(adaptive=True))
        for prev, curr in pairs(simulation):
            iteration = enc.encode(prev, curr)   # EncodedIteration

    The first encode always fits; later encodes reuse the cached table
    until the drift trigger fires.  ``iteration.model_reused`` records the
    decision per iteration, which :mod:`repro.io` uses to store repeated
    tables once per chain.
    """

    def __init__(self, config: NumarckConfig | None = None) -> None:
        self.config = config if config is not None else NumarckConfig()
        self._model: BinModel | None = None
        self._baseline = 0.0
        self.stats = ReuseStats()
        self.last_report: EncodeReport | None = None

    @property
    def cached_model(self) -> BinModel | None:
        """The bin model the next encode will validate (None before the
        first fit)."""
        return self._model

    def reset(self) -> None:
        """Drop the cached model; the next encode fits from cold."""
        self._model = None
        self._baseline = 0.0

    def seed(self, model: BinModel, baseline: float = 0.0) -> None:
        """Prime the cache with a known-good model (e.g. the last delta's
        table when resuming a chain loaded from disk).  ``baseline`` is
        the fail fraction to measure drift against; 0 is conservative --
        any observed failure counts as drift."""
        self._model = model
        self._baseline = float(baseline)

    def encode(self, prev: np.ndarray, curr: np.ndarray) -> EncodedIteration:
        """Encode one iteration, reusing the cached model when it still
        covers the new ratio distribution."""
        enc, report = encode_pair(
            prev, curr, self.config,
            model_hint=self._model,
            hint_baseline=self._baseline,
            hint_drift=self.config.drift_threshold,
            warm_start=self.config.warm_start,
        )
        self.last_report = report
        self.stats.encodes += 1
        if report.model_reused:
            self.stats.reuse_hits += 1
        if report.refitted:
            self.stats.refits += 1
        if self._model is not None:
            self.stats.drift_history.append(report.drift)
        if report.n_candidates and not report.model_reused:
            # A fresh fit (cold or refit): cache its table and anchor the
            # drift baseline at the fail fraction it achieved.  Reuse hits
            # deliberately do NOT move the baseline -- updating it every
            # hit would let slow drift ratchet past the trigger unnoticed.
            if enc.representatives.size:
                self._model = BinModel(enc.representatives)
                self._baseline = report.fit_fail_fraction
            else:
                self.reset()
        return enc
