"""FPC: fast lossless compression of double-precision data.

Reimplementation of Burtscher & Ratanaworabhan's FPC (IEEE Trans.
Computers 2009, the paper's reference [4]) -- the lossless compressor the
paper suggests stacking on NUMARCK's output.

Per value, two table-based predictors guess the next 64-bit word:

* **FCM** (finite context method): a hash of recent values indexes a table
  of "what followed this context last time";
* **DFCM** (differential FCM): the same idea on value *deltas*.

The actual word is XORed with both predictions; the residual with more
leading zero bytes wins.  A 4-bit header per value records the chosen
predictor (1 bit) and the number of leading zero bytes (3 bits, capped at
7); the remaining significant bytes follow verbatim.  Well-predicted
streams cost little more than 0.5 byte/value; random doubles cost ~8.5 --
which is exactly the paper's point about snapshot data.

This is a clear-Python reference implementation (a per-value loop), meant
for correctness and comparative ratios at test scale, not for bandwidth.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["FpcCompressor", "FpcEncoded"]

_MASK64 = (1 << 64) - 1


def _leading_zero_bytes(x: int) -> int:
    if x == 0:
        return 8
    n = 0
    for shift in range(56, -8, -8):
        if (x >> shift) & 0xFF:
            break
        n += 1
    return n


@dataclass(frozen=True)
class FpcEncoded:
    n: int
    table_bits: int
    payload: bytes

    @property
    def stored_bits(self) -> int:
        return 8 * len(self.payload)


class FpcCompressor:
    """FCM + DFCM predictive lossless coder for float64 streams.

    Parameters
    ----------
    table_bits:
        log2 of the predictor table size (the original uses up to 2^25
        entries; 16 is plenty at test scale).
    """

    def __init__(self, table_bits: int = 16) -> None:
        if not 4 <= table_bits <= 24:
            raise ValueError(f"table_bits must be in [4, 24], got {table_bits}")
        self.table_bits = table_bits

    # -- encoding -----------------------------------------------------------

    def compress(self, data: np.ndarray) -> FpcEncoded:
        words = np.ascontiguousarray(data, dtype=np.float64).view(np.uint64).ravel()
        size = 1 << self.table_bits
        mask = size - 1
        fcm = [0] * size
        dfcm = [0] * size
        fhash = dhash = 0
        last = 0

        headers = bytearray()
        body = bytearray()
        half = None
        for w in map(int, words):
            pred_f = fcm[fhash]
            pred_d = (dfcm[dhash] + last) & _MASK64
            res_f = w ^ pred_f
            res_d = w ^ pred_d
            lz_f = _leading_zero_bytes(res_f)
            lz_d = _leading_zero_bytes(res_d)
            if lz_f >= lz_d:
                sel, res, lz = 0, res_f, lz_f
            else:
                sel, res, lz = 1, res_d, lz_d
            lz = min(lz, 7)
            code = (sel << 3) | lz
            if half is None:
                half = code
            else:
                headers.append((half << 4) | code)
                half = None
            nbytes = 8 - lz
            body += res.to_bytes(8, "big")[8 - nbytes :] if nbytes else b""

            # Table updates (identical on decode).
            fcm[fhash] = w
            fhash = ((fhash << 6) ^ (w >> 48)) & mask
            delta = (w - last) & _MASK64
            dfcm[dhash] = delta
            dhash = ((dhash << 2) ^ (delta >> 40)) & mask
            last = w
        if half is not None:
            headers.append(half << 4)
        payload = struct.pack("<QB", words.size, self.table_bits) + \
            bytes(headers) + bytes(body)
        return FpcEncoded(n=int(words.size), table_bits=self.table_bits,
                          payload=payload)

    # -- decoding -----------------------------------------------------------

    def decompress(self, encoded: FpcEncoded) -> np.ndarray:
        buf = encoded.payload
        n, table_bits = struct.unpack_from("<QB", buf, 0)
        off = 9
        n_header_bytes = (n + 1) // 2
        headers = buf[off : off + n_header_bytes]
        off += n_header_bytes

        size = 1 << table_bits
        mask = size - 1
        fcm = [0] * size
        dfcm = [0] * size
        fhash = dhash = 0
        last = 0
        out = np.empty(n, dtype=np.uint64)
        pos = off
        for i in range(n):
            code = headers[i // 2]
            code = (code >> 4) if i % 2 == 0 else (code & 0x0F)
            sel = code >> 3
            lz = code & 0x07
            nbytes = 8 - lz
            res = int.from_bytes(buf[pos : pos + nbytes], "big") if nbytes else 0
            pos += nbytes
            pred = fcm[fhash] if sel == 0 else (dfcm[dhash] + last) & _MASK64
            w = res ^ pred
            out[i] = w
            fcm[fhash] = w
            fhash = ((fhash << 6) ^ (w >> 48)) & mask
            delta = (w - last) & _MASK64
            dfcm[dhash] = delta
            dhash = ((dhash << 2) ^ (delta >> 40)) & mask
            last = w
        return out.view(np.float64)

    def compression_ratio(self, encoded: FpcEncoded) -> float:
        """Percent size reduction vs raw doubles (can be negative)."""
        return 100.0 * (1.0 - encoded.stored_bits / (encoded.n * 64.0))
