"""Lossless helpers: zlib plus floating-point preconditioners.

Related work the paper discusses (FPC, Bicer et al.'s CC, Bautista-Gomez &
Cappello's bit masks) all precondition floating-point streams so that a
general-purpose entropy coder finds repeats.  Two classic preconditioners
are provided:

* :func:`xor_precondition` -- XOR each 64-bit word with its predecessor;
  temporally smooth data turns into streams dominated by zero bytes.
* :func:`byte_shuffle` -- transpose the byte planes of the array (all
  byte-0s, then all byte-1s, ...); exponent bytes of similar values group
  together.

These feed the lossless-postpass ablation bench and double as a
demonstration of why plain lossless compression underwhelms on
high-entropy snapshots (paper Section II-A).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = [
    "xor_precondition",
    "xor_unprecondition",
    "byte_shuffle",
    "byte_unshuffle",
    "compress_lossless",
    "decompress_lossless",
]

_MAGIC = b"NLZ1"
_MODES = ("raw", "xor", "shuffle", "xor+shuffle")


def xor_precondition(data: np.ndarray) -> np.ndarray:
    """XOR each float64 with its predecessor (first element kept verbatim)."""
    bits = np.ascontiguousarray(data, dtype=np.float64).view(np.uint64).ravel()
    out = bits.copy()
    out[1:] ^= bits[:-1]
    return out


def xor_unprecondition(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`xor_precondition`; returns float64."""
    w = np.ascontiguousarray(words, dtype=np.uint64)
    out = np.empty_like(w)
    acc = np.uint64(0)
    # Prefix XOR is inherently sequential; use ufunc.accumulate (C speed).
    out = np.bitwise_xor.accumulate(w)
    del acc
    return out.view(np.float64)


def byte_shuffle(raw: bytes, itemsize: int = 8) -> bytes:
    """Group byte planes: all byte-0s of each item, then all byte-1s, ..."""
    arr = np.frombuffer(raw, dtype=np.uint8)
    if arr.size % itemsize:
        raise ValueError(f"buffer length {arr.size} not a multiple of {itemsize}")
    return arr.reshape(-1, itemsize).T.tobytes()


def byte_unshuffle(raw: bytes, itemsize: int = 8) -> bytes:
    """Inverse of :func:`byte_shuffle`."""
    arr = np.frombuffer(raw, dtype=np.uint8)
    if arr.size % itemsize:
        raise ValueError(f"buffer length {arr.size} not a multiple of {itemsize}")
    return arr.reshape(itemsize, -1).T.tobytes()


def compress_lossless(data: np.ndarray, mode: str = "xor+shuffle",
                      level: int = 6) -> bytes:
    """Losslessly compress a float64 array; self-describing payload.

    ``mode`` is one of ``"raw"``, ``"xor"``, ``"shuffle"``,
    ``"xor+shuffle"``.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown mode {mode!r}; available: {_MODES}")
    arr = np.ascontiguousarray(data, dtype=np.float64)
    payload: bytes
    if mode == "raw":
        payload = arr.tobytes()
    elif mode == "xor":
        payload = xor_precondition(arr).tobytes()
    elif mode == "shuffle":
        payload = byte_shuffle(arr.tobytes())
    else:
        payload = byte_shuffle(xor_precondition(arr).tobytes())
    header = _MAGIC + struct.pack("<BQ", _MODES.index(mode), arr.size)
    return header + zlib.compress(payload, level)


def decompress_lossless(blob: bytes) -> np.ndarray:
    """Inverse of :func:`compress_lossless` (1-D float64 output)."""
    if blob[:4] != _MAGIC:
        raise ValueError("not a lossless payload")
    mode_idx, n = struct.unpack_from("<BQ", blob, 4)
    mode = _MODES[mode_idx]
    payload = zlib.decompress(blob[13:])
    if mode == "raw":
        return np.frombuffer(payload, dtype=np.float64).copy()
    if mode == "xor":
        return xor_unprecondition(np.frombuffer(payload, dtype=np.uint64).copy())
    if mode == "shuffle":
        return np.frombuffer(byte_unshuffle(payload), dtype=np.float64).copy()
    words = np.frombuffer(byte_unshuffle(payload), dtype=np.uint64).copy()
    return xor_unprecondition(words)
