"""Baseline compressors the paper compares against (Section III-F).

* :class:`BSplineCompressor` -- straight least-squares cubic B-spline fit
  to the data vector with ``P_S`` coefficients (Chou & Piegl style).  The
  paper fixes ``P_S = 0.8 n``, giving its constant 20 % compression ratio.
* :class:`IsabelaCompressor` -- ISABELA (Lakshminarasimhan et al.): split
  the vector into windows of ``W_0`` values, *sort* each window (storing
  the permutation in ``log2 W_0`` bits per point), and fit the now-monotone
  curve with a ``P_I``-coefficient B-spline.
* :mod:`repro.baselines.lossless` -- zlib with optional XOR-delta and
  byte-shuffle preconditioning, standing in for the FPC/CC-style lossless
  passes discussed in related work.

Both lossy baselines implement ``compress`` / ``decompress`` /
``compression_ratio`` so the Table I/II benches drive all three systems
through one interface.
"""

from repro.baselines.bspline import BSplineCompressor, lsq_bspline_fit
from repro.baselines.fpc import FpcCompressor
from repro.baselines.huffman import (
    code_lengths,
    huffman_decode,
    huffman_encode,
    huffman_size_bits,
)
from repro.baselines.isabela import IsabelaCompressor
from repro.baselines.lossless import (
    byte_shuffle,
    byte_unshuffle,
    compress_lossless,
    decompress_lossless,
    xor_precondition,
    xor_unprecondition,
)

__all__ = [
    "BSplineCompressor",
    "IsabelaCompressor",
    "FpcCompressor",
    "huffman_encode",
    "huffman_decode",
    "huffman_size_bits",
    "code_lengths",
    "lsq_bspline_fit",
    "compress_lossless",
    "decompress_lossless",
    "xor_precondition",
    "xor_unprecondition",
    "byte_shuffle",
    "byte_unshuffle",
]
