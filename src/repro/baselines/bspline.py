"""Least-squares cubic B-spline compression (the paper's "B-Splines" baseline).

The data vector ``y_0..y_{n-1}`` is modelled as a clamped uniform cubic
B-spline over ``x = 0..n-1`` with ``ncoef`` control coefficients; only the
coefficients are stored.  The fit solves the sparse normal equations
``(A^T A) c = A^T y`` where ``A`` is the B-spline design matrix -- banded
with bandwidth ``k+1 = 4``, so the solve is effectively linear in ``n``.

The paper assigns ``P_S = 0.8 n`` coefficients, i.e. a fixed 20 %
compression ratio, and reports roughly an order of magnitude worse RMSE
than ISABELA/NUMARCK because raw simulation snapshots are not smooth in
index order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.interpolate import BSpline
from scipy.sparse.linalg import spsolve

__all__ = ["lsq_bspline_fit", "BSplineCompressor", "BSplineEncoded"]

_DEGREE = 3


def _clamped_knots(x_min: float, x_max: float, ncoef: int, degree: int = _DEGREE) -> np.ndarray:
    """Clamped uniform knot vector with ``ncoef`` basis functions."""
    n_interior = ncoef - degree - 1
    if n_interior < 0:
        raise ValueError(f"ncoef must be >= {degree + 1}, got {ncoef}")
    interior = np.linspace(x_min, x_max, n_interior + 2)[1:-1]
    return np.concatenate([
        np.full(degree + 1, x_min),
        interior,
        np.full(degree + 1, x_max),
    ])


def lsq_bspline_fit(y: np.ndarray, ncoef: int, degree: int = _DEGREE) -> BSpline:
    """Least-squares fit of a clamped uniform B-spline to ``y`` vs its index.

    Parameters
    ----------
    y:
        1-D data vector.
    ncoef:
        Number of spline coefficients (``>= degree + 1`` and ``<= len(y)``).

    Returns
    -------
    scipy.interpolate.BSpline
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    n = arr.size
    if n < degree + 1:
        raise ValueError(f"need at least {degree + 1} samples, got {n}")
    ncoef = int(min(max(ncoef, degree + 1), n))
    x = np.arange(n, dtype=np.float64)
    t = _clamped_knots(0.0, float(n - 1), ncoef, degree)
    design = BSpline.design_matrix(x, t, degree)  # sparse (n, ncoef)
    gram = (design.T @ design).tocsc()
    # Tiny Tikhonov term keeps the solve well-posed if a basis function
    # happens to cover no sample (possible for ncoef close to n).
    gram.setdiag(gram.diagonal() + 1e-12)
    coef = spsolve(gram, design.T @ arr)
    return BSpline(t, coef, degree)


@dataclass(frozen=True)
class BSplineEncoded:
    """Stored form: knot layout is implicit (clamped uniform), only
    coefficients and the original length are kept."""

    n: int
    degree: int
    coefficients: np.ndarray

    @property
    def stored_bits(self) -> int:
        return int(self.coefficients.size) * 64


class BSplineCompressor:
    """The paper's B-Splines baseline with ``P_S = coef_fraction * n``.

    Examples
    --------
    >>> import numpy as np
    >>> comp = BSplineCompressor(coef_fraction=0.8)
    >>> y = np.sin(np.linspace(0, 3, 500))
    >>> enc = comp.compress(y)
    >>> out = comp.decompress(enc)
    >>> bool(np.max(np.abs(out - y)) < 1e-6)
    True
    """

    def __init__(self, coef_fraction: float = 0.8, degree: int = _DEGREE) -> None:
        if not 0.0 < coef_fraction <= 1.0:
            raise ValueError(f"coef_fraction must be in (0, 1], got {coef_fraction}")
        self.coef_fraction = coef_fraction
        self.degree = degree

    def compress(self, data: np.ndarray) -> BSplineEncoded:
        arr = np.asarray(data, dtype=np.float64).ravel()
        ncoef = max(self.degree + 1, int(round(self.coef_fraction * arr.size)))
        spline = lsq_bspline_fit(arr, ncoef, self.degree)
        return BSplineEncoded(n=arr.size, degree=self.degree,
                              coefficients=np.asarray(spline.c, dtype=np.float64))

    def decompress(self, encoded: BSplineEncoded) -> np.ndarray:
        t = _clamped_knots(0.0, float(encoded.n - 1), encoded.coefficients.size,
                           encoded.degree)
        spline = BSpline(t, encoded.coefficients, encoded.degree)
        return spline(np.arange(encoded.n, dtype=np.float64))

    def compression_ratio(self, encoded: BSplineEncoded) -> float:
        """Percent size reduction: coefficients (64 bits each) vs raw doubles."""
        return 100.0 * (1.0 - encoded.stored_bits / (encoded.n * 64))
