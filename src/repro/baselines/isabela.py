"""ISABELA: In-situ Sort-And-B-spline Error-bounded Lossy Abatement.

Reimplementation of the baseline from Lakshminarasimhan et al. (Euro-Par
2011) as configured in the NUMARCK paper's Table I/II comparison:

1. split the vector into windows of ``W_0`` values (the last window may be
   shorter);
2. sort each window -- the sorted curve is monotone and extremely smooth,
   which is what makes "incompressible" data compressible;
3. store, per window, a ``P_I``-coefficient least-squares cubic B-spline of
   the sorted curve plus the sorting permutation at ``ceil(log2 W_0)`` bits
   per point.

Storage model (used for the compression ratio, matching the paper's
numbers exactly)::

    bits/point = log2(W_0) + P_I * 64 / W_0
    W_0=512, P_I=30  ->  1 - 12.75/64 = 80.078 %
    W_0=256, P_I=30  ->  1 - 15.5 /64 = 75.781 %
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.bspline import lsq_bspline_fit
from repro.bitpack import pack_bits, unpack_bits

__all__ = ["IsabelaCompressor", "IsabelaEncoded", "IsabelaWindow"]

_DEGREE = 3


def _eval_window(coefficients: np.ndarray, length: int) -> np.ndarray:
    """Evaluate a window's clamped-knot spline at its sample positions."""
    from scipy.interpolate import BSpline

    from repro.baselines.bspline import _clamped_knots

    t = _clamped_knots(0.0, float(length - 1), coefficients.size)
    spline = BSpline(t, coefficients, _DEGREE)
    return spline(np.arange(length, dtype=np.float64))


@dataclass(frozen=True)
class IsabelaWindow:
    """One compressed window: spline coefficients + packed permutation.

    ``fixup_*`` implement ISABELA's per-point error guarantee: sorted-curve
    positions whose spline fit misses the value by more than the relative
    tolerance keep their exact value (position index + raw float each).
    """

    length: int
    coefficients: np.ndarray
    packed_perm: bytes
    perm_bits: int
    fixup_packed: bytes = b""
    fixup_values: np.ndarray = None  # type: ignore[assignment]
    n_fixups: int = 0


@dataclass(frozen=True)
class IsabelaEncoded:
    n: int
    window_size: int
    n_coef: int
    windows: tuple[IsabelaWindow, ...]

    @property
    def stored_bits(self) -> int:
        """Actual stored payload: coefficients + permutations + fixups."""
        bits = 0
        for w in self.windows:
            bits += w.coefficients.size * 64 + w.length * w.perm_bits
            bits += w.n_fixups * (w.perm_bits + 64)
        return bits

    @property
    def n_fixups(self) -> int:
        return sum(w.n_fixups for w in self.windows)


class IsabelaCompressor:
    """Sorting + per-window B-spline compressor.

    Parameters
    ----------
    window_size:
        ``W_0``; the paper uses 512 for CMIP5 data and 256 for FLASH.
    n_coef:
        ``P_I``; fixed to 30 in the paper, per the ISABELA authors'
        recommendation.
    error_bound:
        Optional per-point *relative* tolerance.  When set, any point whose
        spline reconstruction deviates by more than this fraction of its
        value is stored exactly (the ISABELA paper's error-quantization
        guarantee); the extra storage is charged by ``stored_bits`` /
        :meth:`compression_ratio_actual`.
    """

    def __init__(self, window_size: int = 512, n_coef: int = 30,
                 error_bound: float | None = None) -> None:
        if window_size < 8:
            raise ValueError(f"window_size must be >= 8, got {window_size}")
        if n_coef < _DEGREE + 1:
            raise ValueError(f"n_coef must be >= {_DEGREE + 1}, got {n_coef}")
        if error_bound is not None and error_bound <= 0:
            raise ValueError(f"error_bound must be positive, got {error_bound}")
        self.window_size = window_size
        self.n_coef = n_coef
        self.error_bound = error_bound

    def compress(self, data: np.ndarray) -> IsabelaEncoded:
        arr = np.asarray(data, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValueError("cannot compress an empty vector")
        if not np.all(np.isfinite(arr)):
            raise ValueError("ISABELA requires finite input")
        w0 = self.window_size
        windows: list[IsabelaWindow] = []
        perm_bits = max(1, math.ceil(math.log2(w0)))
        for start in range(0, arr.size, w0):
            win = arr[start : start + w0]
            order = np.argsort(win, kind="stable")
            sorted_vals = win[order]
            ncoef = min(self.n_coef, win.size)
            if win.size < _DEGREE + 1:
                # Degenerate tail window: store values verbatim as "coefficients".
                coef = sorted_vals.copy()
            else:
                coef = np.asarray(
                    lsq_bspline_fit(sorted_vals, ncoef).c, dtype=np.float64
                )
            # perm[j] = original position of the j-th sorted value.
            packed = pack_bits(order.astype(np.uint32), perm_bits)

            fixup_packed = b""
            fixup_values = np.empty(0, dtype=np.float64)
            if self.error_bound is not None and win.size >= _DEGREE + 1 \
                    and coef.size != win.size:
                fit = _eval_window(coef, win.size)
                denom = np.maximum(np.abs(sorted_vals), 1e-300)
                bad = np.flatnonzero(
                    np.abs(fit - sorted_vals) > self.error_bound * denom
                )
                if bad.size:
                    fixup_packed = pack_bits(bad.astype(np.uint32), perm_bits)
                    fixup_values = sorted_vals[bad].copy()
            windows.append(
                IsabelaWindow(length=win.size, coefficients=coef,
                              packed_perm=packed, perm_bits=perm_bits,
                              fixup_packed=fixup_packed,
                              fixup_values=fixup_values,
                              n_fixups=int(fixup_values.size))
            )
        return IsabelaEncoded(n=arr.size, window_size=w0, n_coef=self.n_coef,
                              windows=tuple(windows))

    def decompress(self, encoded: IsabelaEncoded) -> np.ndarray:
        out = np.empty(encoded.n, dtype=np.float64)
        pos = 0
        for w in encoded.windows:
            order = unpack_bits(w.packed_perm, w.length, w.perm_bits)
            if w.length < _DEGREE + 1 or w.coefficients.size == w.length:
                sorted_vals = w.coefficients.copy()
            else:
                sorted_vals = _eval_window(w.coefficients, w.length)
            if w.n_fixups:
                bad = unpack_bits(w.fixup_packed, w.n_fixups, w.perm_bits)
                sorted_vals[bad] = w.fixup_values
            win = np.empty(w.length, dtype=np.float64)
            win[order] = sorted_vals
            out[pos : pos + w.length] = win
            pos += w.length
        return out

    def compression_ratio(self, encoded: IsabelaEncoded) -> float:
        """Percent reduction per the ISABELA storage model."""
        bits_per_point = (
            math.log2(encoded.window_size) + encoded.n_coef * 64.0 / encoded.window_size
        )
        return 100.0 * (1.0 - bits_per_point / 64.0)

    def compression_ratio_actual(self, encoded: IsabelaEncoded) -> float:
        """Percent reduction charging the actually stored payload."""
        return 100.0 * (1.0 - encoded.stored_bits / (encoded.n * 64.0))
