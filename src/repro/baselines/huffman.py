"""Canonical Huffman coding for NUMARCK index streams.

The ablation bench shows the B-bit index stream carries ~4 bits/index of
zeroth-order entropy: most points land in a few dense bins.  A Huffman
code over the index alphabet captures exactly that headroom (it is the
optimal prefix code for a zeroth-order model), and unlike zlib the decoder
state is a table that ships in a few hundred bytes.

Implementation notes:

* codes are **canonical** -- only the per-symbol code *lengths* are
  stored; both sides rebuild identical codebooks from the lengths;
* encoding/decoding are table-driven and vectorised where possible; the
  bit-level inner decode loop is plain Python over *bytes* with an 8-bit
  lookup fast path, adequate for checkpoint-sized streams at test scale;
* like any Huffman code, pathological inputs cost at most ~1 bit/symbol
  over entropy; the :func:`huffman_size_bits` helper estimates gains
  without encoding.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

__all__ = ["huffman_encode", "huffman_decode", "huffman_size_bits",
           "code_lengths"]

_MAGIC = b"HUF1"
_MAX_CODE_LEN = 32


def code_lengths(counts: np.ndarray) -> np.ndarray:
    """Huffman code length per symbol from occurrence counts.

    Zero-count symbols get length 0 (absent from the code).  A one-symbol
    alphabet gets length 1.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("counts must be a non-empty 1-D array")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    present = np.flatnonzero(counts)
    lengths = np.zeros(counts.size, dtype=np.int64)
    if present.size == 0:
        raise ValueError("at least one symbol must occur")
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Standard heap construction; entries carry (weight, tiebreak, node).
    heap: list[tuple[int, int, object]] = []
    for tie, sym in enumerate(present):
        heap.append((int(counts[sym]), tie, int(sym)))
    heapq.heapify(heap)
    tie = present.size
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, tie, (n1, n2)))
        tie += 1

    def walk(node, depth):
        if isinstance(node, int):
            lengths[node] = max(depth, 1)
        else:
            walk(node[0], depth + 1)
            walk(node[1], depth + 1)

    walk(heap[0][2], 0)
    if lengths.max() > _MAX_CODE_LEN:
        raise ValueError("code length overflow (pathological distribution)")
    return lengths


def _canonical_codes(lengths: np.ndarray) -> dict[int, tuple[int, int]]:
    """symbol -> (code, length), canonical ordering (length, then symbol)."""
    order = sorted(
        (int(length), int(sym)) for sym, length in enumerate(lengths) if length
    )
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for length, sym in order:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


def huffman_size_bits(values: np.ndarray, alphabet_size: int) -> int:
    """Exact coded size in bits (payload only) without building the stream."""
    counts = np.bincount(np.asarray(values).ravel(), minlength=alphabet_size)
    lengths = code_lengths(counts)
    return int((counts * lengths).sum())


def huffman_encode(values: np.ndarray, alphabet_size: int) -> bytes:
    """Encode small non-negative integers; self-describing payload.

    Layout: magic, n:u64, alphabet:u32, lengths:u8[alphabet], bitstream
    (MSB-first within bytes).
    """
    vals = np.asarray(values).ravel()
    if vals.size and (vals.min() < 0 or vals.max() >= alphabet_size):
        raise ValueError("values out of alphabet range")
    header = _MAGIC + struct.pack("<QI", vals.size, alphabet_size)
    if vals.size == 0:
        return header + bytes(alphabet_size)
    counts = np.bincount(vals, minlength=alphabet_size)
    lengths = code_lengths(counts)
    codes = _canonical_codes(lengths)

    # Bit emission via a Python int accumulator (simple, exact).
    acc = 0
    nbits = 0
    out = bytearray()
    for v in map(int, vals):
        code, length = codes[v]
        acc = (acc << length) | code
        nbits += length
        while nbits >= 8:
            nbits -= 8
            out.append((acc >> nbits) & 0xFF)
            acc &= (1 << nbits) - 1
    if nbits:
        out.append((acc << (8 - nbits)) & 0xFF)
    return header + lengths.astype(np.uint8).tobytes() + bytes(out)


def huffman_decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`huffman_encode`; returns uint32 values."""
    if blob[:4] != _MAGIC:
        raise ValueError("not a Huffman payload")
    n, alphabet = struct.unpack_from("<QI", blob, 4)
    off = 16
    lengths = np.frombuffer(blob[off : off + alphabet], dtype=np.uint8)
    if lengths.size != alphabet:
        raise ValueError("truncated code-length table")
    off += alphabet
    out = np.empty(n, dtype=np.uint32)
    if n == 0:
        return out
    codes = _canonical_codes(lengths.astype(np.int64))
    # Invert: (length, code) -> symbol.
    decode_map = {(length, code): sym for sym, (code, length) in codes.items()}

    bits = np.unpackbits(np.frombuffer(blob[off:], dtype=np.uint8))
    pos = 0
    code = 0
    length = 0
    produced = 0
    max_len = int(lengths.max())
    for b in bits:
        code = (code << 1) | int(b)
        length += 1
        if length > max_len:
            raise ValueError("corrupt bitstream: no code matches")
        sym = decode_map.get((length, code))
        if sym is not None:
            out[produced] = sym
            produced += 1
            if produced == n:
                return out
            code = 0
            length = 0
        pos += 1
    raise ValueError(f"truncated bitstream: decoded {produced} of {n} symbols")
