"""Checkpoint/restart economics: what compression buys at system level.

The paper's motivation is that "the storage space and time costs of
checkpointing threaten to overwhelm ... the simulation".  This package
quantifies that claim and NUMARCK's effect on it:

* :class:`CheckpointCostModel` -- write/restart times from data volume,
  I/O bandwidth and a compressor's ratio;
* :func:`young_interval` / :func:`daly_interval` -- the classical optimal
  checkpoint intervals;
* :func:`expected_waste` / :func:`expected_makespan` -- first-order
  analytic run-time under exponential failures;
* :func:`simulate_makespan` -- a discrete-event failure simulator that
  validates the analytic model and measures regimes where it breaks down.

The resilience bench (`benchmarks/test_resilience_economics.py`) runs a
NUMARCK-measured compression ratio through this model to report the
end-to-end makespan saving -- the number the paper's introduction is
really about.
"""

from repro.resilience.model import (
    CheckpointCostModel,
    daly_interval,
    expected_makespan,
    expected_waste,
    simulate_makespan,
    young_interval,
)

__all__ = [
    "CheckpointCostModel",
    "young_interval",
    "daly_interval",
    "expected_waste",
    "expected_makespan",
    "simulate_makespan",
]
