"""Analytic and simulated checkpoint/restart run-time models.

Notation (classical, e.g. Young 1974, Daly 2006): ``C`` = time to write a
checkpoint, ``R`` = time to restart from one, ``M`` = mean time between
failures (exponential), ``T`` = compute time between checkpoints.

First-order waste per compute segment::

    waste(T) = C / T            (checkpoint overhead)
             + (T + C) / (2 M)  (expected rework after a failure)
             + R / M            (expected restart cost)

Minimising the ``T``-dependent part gives Young's ``T* = sqrt(2 C M)``;
Daly's refinement subtracts ``C``.  ``expected_makespan`` applies the
waste to a given amount of useful work; ``simulate_makespan`` replays the
same process with actual exponential failure draws, which the tests use
to validate the analytic expressions (and which stays accurate where the
first-order model degrades, i.e. ``T`` not << ``M``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CheckpointCostModel",
    "young_interval",
    "daly_interval",
    "expected_waste",
    "expected_makespan",
    "simulate_makespan",
]


@dataclass(frozen=True)
class CheckpointCostModel:
    """I/O cost of one checkpoint under a given compressor.

    Parameters
    ----------
    data_bytes:
        Raw size of one checkpoint.
    write_bandwidth / read_bandwidth:
        Sustained I/O bandwidth in bytes/second (read defaults to write).
    compression_ratio:
        Percent size reduction (the paper's ``R``; 0 = uncompressed,
        85 = output is 15 % of input).
    compress_overhead / decompress_overhead:
        CPU seconds spent encoding/decoding one checkpoint (NUMARCK's
        encode cost is small next to exascale I/O, but it is not free).
    """

    data_bytes: float
    write_bandwidth: float
    read_bandwidth: float | None = None
    compression_ratio: float = 0.0
    compress_overhead: float = 0.0
    decompress_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.data_bytes <= 0:
            raise ValueError("data_bytes must be positive")
        if self.write_bandwidth <= 0:
            raise ValueError("write_bandwidth must be positive")
        if self.read_bandwidth is not None and self.read_bandwidth <= 0:
            raise ValueError("read_bandwidth must be positive")
        if not 0.0 <= self.compression_ratio < 100.0:
            raise ValueError("compression_ratio must be in [0, 100)")
        if self.compress_overhead < 0 or self.decompress_overhead < 0:
            raise ValueError("overheads must be non-negative")

    @property
    def stored_bytes(self) -> float:
        return self.data_bytes * (1.0 - self.compression_ratio / 100.0)

    @property
    def checkpoint_time(self) -> float:
        """C: seconds to produce and write one checkpoint."""
        return self.stored_bytes / self.write_bandwidth + self.compress_overhead

    @property
    def restart_time(self) -> float:
        """R: seconds to read and decode one checkpoint."""
        bw = self.read_bandwidth if self.read_bandwidth is not None \
            else self.write_bandwidth
        return self.stored_bytes / bw + self.decompress_overhead


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def young_interval(checkpoint_time: float, mtbf: float) -> float:
    """Young's optimal compute time between checkpoints: sqrt(2 C M)."""
    _check_positive(checkpoint_time=checkpoint_time, mtbf=mtbf)
    return float(np.sqrt(2.0 * checkpoint_time * mtbf))


def daly_interval(checkpoint_time: float, mtbf: float) -> float:
    """Daly's refinement: sqrt(2 C M) - C (floored at C)."""
    _check_positive(checkpoint_time=checkpoint_time, mtbf=mtbf)
    return float(max(np.sqrt(2.0 * checkpoint_time * mtbf) - checkpoint_time,
                     checkpoint_time))


def expected_waste(interval: float, checkpoint_time: float,
                   restart_time: float, mtbf: float) -> float:
    """First-order fraction of time lost to checkpoint/failure overheads."""
    _check_positive(interval=interval, checkpoint_time=checkpoint_time,
                    mtbf=mtbf)
    if restart_time < 0:
        raise ValueError("restart_time must be non-negative")
    return (checkpoint_time / interval
            + (interval + checkpoint_time) / (2.0 * mtbf)
            + restart_time / mtbf)


def expected_makespan(work: float, interval: float, checkpoint_time: float,
                      restart_time: float, mtbf: float) -> float:
    """Analytic wall time to complete ``work`` seconds of useful compute."""
    _check_positive(work=work)
    waste = expected_waste(interval, checkpoint_time, restart_time, mtbf)
    if waste >= 1.0:
        return float("inf")
    return float(work / (1.0 - waste))


def simulate_makespan(work: float, interval: float, checkpoint_time: float,
                      restart_time: float, mtbf: float,
                      rng: np.random.Generator | None = None,
                      n_runs: int = 32, max_events: int = 10_000_000) -> float:
    """Discrete-event mean wall time under exponential failures.

    The process: compute ``interval`` seconds, write a checkpoint
    (``checkpoint_time``), repeat; a failure at any moment loses all work
    since the last completed checkpoint and costs ``restart_time`` before
    computing resumes.  Failures can also strike during checkpoint writes
    and restarts (the written checkpoint then doesn't complete).
    """
    _check_positive(work=work, interval=interval,
                    checkpoint_time=checkpoint_time, mtbf=mtbf)
    if restart_time < 0:
        raise ValueError("restart_time must be non-negative")
    rng = rng if rng is not None else np.random.default_rng(0)

    totals = []
    for _ in range(n_runs):
        wall = 0.0
        done = 0.0        # work safely checkpointed
        next_failure = rng.exponential(mtbf)
        events = 0
        while done < work:
            events += 1
            if events > max_events:  # pragma: no cover - pathological configs
                raise RuntimeError("simulation did not converge")
            segment = min(interval, work - done)
            # Attempt: compute `segment`, then (if more work remains) write
            # a checkpoint.  The segment is lost unless the checkpoint (or
            # the final result) completes before the next failure.
            cost = segment + (checkpoint_time if done + segment < work else 0.0)
            if wall + cost <= next_failure:
                wall += cost
                done += segment
            else:
                # Failure: advance to it, pay restart, draw the next one.
                wall = next_failure + restart_time
                next_failure = wall + rng.exponential(mtbf)
        totals.append(wall)
    return float(np.mean(totals))
