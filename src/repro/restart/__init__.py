"""Checkpoint/restart orchestration and fault injection.

Ties the compression chain to a running simulation (paper Section III-G):

* :class:`RestartManager` -- records a simulation's multi-variable
  checkpoints into per-variable NUMARCK chains, reconstructs the restart
  state at any checkpoint, and restarts the simulation from it.
* :class:`RestartExperiment` -- the Fig. 8 harness: run a reference
  simulation, restart a twin from a reconstructed checkpoint, continue
  both, and track the accumulated per-variable mean/max error rate.
* :mod:`repro.restart.faults` -- fault injection: run a simulation under a
  schedule of crashes, restarting from the latest persisted chain each
  time, and verify the run completes within bounded deviation.
  :class:`DiskFaultInjector` extends the schedule *into* the write path:
  torn writes, bit flips and transient I/O errors during persistence,
  with recovery through the torn-tail salvage reader.
"""

from repro.restart.faults import (
    CrashDuringWrite,
    DiskFaultInjector,
    FaultInjector,
    FaultRunResult,
    FaultSchedule,
    run_with_faults,
)
from repro.restart.manager import RestartExperiment, RestartManager, RestartRecord

__all__ = [
    "RestartManager",
    "RestartExperiment",
    "RestartRecord",
    "FaultInjector",
    "DiskFaultInjector",
    "CrashDuringWrite",
    "FaultSchedule",
    "FaultRunResult",
    "run_with_faults",
]
