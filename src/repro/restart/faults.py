"""Fault injection: crash-and-restart runs driven by persisted chains.

Models the paper's operational scenario: a long simulation checkpoints
every interval; the system crashes at scheduled points; each time, the
simulation is rebuilt from scratch and restored from the latest decoded
checkpoint on disk, then continues.  The harness verifies the run reaches
the target iteration and reports how far the crash-recovered trajectory
drifted from a fault-free reference.

Two fault families compose:

* :class:`FaultInjector` crashes the run *between* persists (the seed
  behaviour): everything on disk is intact, recovery is a plain reload.
* :class:`DiskFaultInjector` injects faults *inside* the persistence
  write path, through :class:`~repro.io.container.CheckpointFile`'s
  injectable write hook: a torn write (process dies mid-record, leaving a
  partial frame on disk), a bit flip in flushed bytes, or a transient
  ``OSError``.  Transient errors are absorbed by the retry layer; torn
  writes force recovery through the salvage path
  (``load_chain(..., recover="tail")``), which keeps every
  already-persisted checkpoint and loses at most the one being written.

A third family lives in :mod:`repro.parallel.faults`:
:class:`~repro.parallel.faults.RankFaultInjector` strikes the
*communication* path of distributed encoding (rank crash, hang, message
drop, bit flip, transient I/O error) the same way
:class:`DiskFaultInjector` strikes the persistence path -- same 1-based
fire-once schedules, same injectable-hook design.  The two compose: a
simulation can lose a rank mid-encode, complete the checkpoint degraded,
and then tear the write persisting it.

Persistence is incremental (:meth:`RestartManager.persist_incremental`):
each checkpoint appends O(1) fsynced records per variable instead of
rewriting the whole file, so a run of ``n`` checkpoints costs O(n) record
writes rather than the O(n^2) of repeated full rewrites.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.core.config import NumarckConfig
from repro.core.errors import SalvageReport
from repro.io.container import load_chain
from repro.restart.manager import RestartManager, _relative_error

__all__ = ["FaultSchedule", "FaultInjector", "DiskFaultInjector",
           "CrashDuringWrite", "FaultRunResult", "run_with_faults"]


class CrashDuringWrite(RuntimeError):
    """Simulated process death in the middle of a checkpoint write.

    Deliberately *not* an ``OSError``: the retry/rollback machinery must
    treat it as a hard crash, leaving whatever partial bytes reached the
    disk exactly where they are (a torn tail for salvage to find).
    """


@dataclass(frozen=True)
class FaultSchedule:
    """Checkpoint indices (1-based intervals) at which the run crashes."""

    crash_at: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(c < 1 for c in self.crash_at):
            raise ValueError("crash points must be >= 1")
        if len(set(self.crash_at)) != len(self.crash_at):
            raise ValueError("duplicate crash points")


class FaultInjector:
    """Decides whether a crash fires after a given checkpoint."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._fired: set[int] = set()

    def crashes_after(self, checkpoint_index: int) -> bool:
        """True exactly once per scheduled crash point."""
        if checkpoint_index in self.schedule.crash_at and \
                checkpoint_index not in self._fired:
            self._fired.add(checkpoint_index)
            return True
        return False


class DiskFaultInjector:
    """Write hook that damages checkpoint record writes on schedule.

    Record writes are counted across every file the run touches (1-based,
    including retried writes); the ``*_at`` schedules name the counts at
    which a fault fires, each at most once:

    * ``torn_at`` -- write only ``torn_fraction`` of the record's bytes,
      flush and fsync them (they really reach the disk), then raise
      :class:`CrashDuringWrite`: the process "dies" mid-record.
    * ``flip_at`` -- flip one bit in the record's bytes before writing;
      the damage is silent until a CRC check reads it back.
    * ``error_at`` -- raise a transient ``OSError`` (``EIO``) instead of
      writing; a retry of the same record then succeeds.

    Pass ``hook`` as the ``write_hook`` of
    :class:`~repro.io.container.CheckpointFile` (or through
    :func:`run_with_faults`, which wires it into the persist path).
    """

    def __init__(self, *, torn_at: tuple[int, ...] = (),
                 flip_at: tuple[int, ...] = (),
                 error_at: tuple[int, ...] = (),
                 torn_fraction: float = 0.5,
                 flip_bit: int = 0) -> None:
        if not 0.0 < torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in (0, 1)")
        if not 0 <= flip_bit <= 7:
            raise ValueError("flip_bit must be a bit index (0-7)")
        self.torn_at = frozenset(torn_at)
        self.flip_at = frozenset(flip_at)
        self.error_at = frozenset(error_at)
        self.torn_fraction = torn_fraction
        self.flip_bit = flip_bit
        self.writes_seen = 0
        self._fired: set[tuple[str, int]] = set()

    def _fires(self, kind: str, n: int, schedule: frozenset[int]) -> bool:
        if n in schedule and (kind, n) not in self._fired:
            self._fired.add((kind, n))
            return True
        return False

    def hook(self, fh: BinaryIO, data: bytes) -> None:
        """The injectable write: called with the full framed record."""
        self.writes_seen += 1
        n = self.writes_seen
        if self._fires("error", n, self.error_at):
            raise OSError(errno.EIO, f"injected transient I/O error "
                                     f"(write {n})")
        if self._fires("flip", n, self.flip_at):
            corrupted = bytearray(data)
            corrupted[len(corrupted) // 2] ^= 1 << self.flip_bit
            data = bytes(corrupted)
        if self._fires("torn", n, self.torn_at):
            cut = max(1, int(len(data) * self.torn_fraction))
            fh.write(data[:cut])
            # The partial frame really lands on disk -- that is the torn
            # tail recovery must cope with.
            fh.flush()
            os.fsync(fh.fileno())
            raise CrashDuringWrite(
                f"torn write: {cut}/{len(data)} bytes of record write {n}"
            )
        fh.write(data)


@dataclass
class FaultRunResult:
    """Outcome of a crash-recovery run."""

    completed: bool
    n_crashes: int
    checkpoints_written: int
    final_mean_error: dict[str, float]
    final_max_error: dict[str, float]
    #: crashes that hit *inside* a write and recovered via torn-tail salvage
    n_salvages: int = 0
    #: checkpoints that had to be recomputed because their records were lost
    checkpoints_lost: int = 0
    #: per-file salvage details for every non-clean recovery
    salvage_reports: tuple[SalvageReport, ...] = ()
    #: total records appended across all persists (the O(n) guarantee)
    records_appended: int = 0


def run_with_faults(
    sim_factory,
    variables: tuple[str, ...],
    n_checkpoints: int,
    schedule: FaultSchedule,
    workdir: str | Path,
    config: NumarckConfig | None = None,
    disk_faults: DiskFaultInjector | None = None,
) -> FaultRunResult:
    """Run ``n_checkpoints`` intervals under a crash schedule.

    Each variable's chain is persisted to ``workdir`` after every
    checkpoint by appending only the new records (per-record fsync); a
    crash destroys the in-memory simulation and manager, and recovery
    reloads the chains from disk with torn-tail salvage, truncates them to
    a common depth, decodes the latest state, and restores a fresh
    simulation from it.  With ``disk_faults``, crashes can also fire *in
    the middle of a record write*: the run then resumes from the last
    durable checkpoint, recomputing at most the checkpoint whose write was
    torn.

    Returns the final per-variable error against a fault-free reference
    run of the same factory.
    """
    cfg = config if config is not None else NumarckConfig()
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    def chain_path(v: str) -> Path:
        return workdir / f"{v}.nmk"

    write_hook = disk_faults.hook if disk_faults is not None else None

    def persist(manager: RestartManager) -> int:
        return manager.persist_incremental(chain_path, write_hook=write_hook)

    def recover() -> tuple[RestartManager, dict[str, np.ndarray], int,
                           list[SalvageReport]]:
        chains = {}
        reports: list[SalvageReport] = []
        for v in variables:
            chain, report = load_chain(chain_path(v), cfg, recover="tail")
            chains[v] = chain
            if not report.clean:
                reports.append(report)
        depth = min(len(c) for c in chains.values())
        for c in chains.values():
            c.truncate(depth)
        state = {v: c.reconstruct() for v, c in chains.items()}
        return (RestartManager.from_chains(chains, cfg), state, depth - 1,
                reports)

    # Fault-free reference trajectory.
    ref = sim_factory()
    for _ in range(n_checkpoints):
        ref.advance()
    ref_final = ref.checkpoint()

    injector = FaultInjector(schedule)
    sim = sim_factory()
    manager = RestartManager(variables, cfg)
    manager.record(sim.checkpoint())
    appended = persist(manager)

    done = 0
    crashes = 0
    salvages = 0
    lost = 0
    salvage_reports: list[SalvageReport] = []
    while done < n_checkpoints:
        sim.advance()
        done += 1
        manager.record(sim.checkpoint())
        died_in_write = False
        try:
            appended += persist(manager)
        except CrashDuringWrite:
            died_in_write = True
        if died_in_write or injector.crashes_after(done):
            crashes += 1
            # Crash: lose all in-memory state.
            del sim, manager
            # Recover from disk through the salvage path.
            manager, state, recovered_at, reports = recover()
            if reports:
                salvages += 1
                salvage_reports.extend(reports)
            lost += done - recovered_at
            done = recovered_at
            sim = sim_factory()
            sim.restore(state)

    manager.close_writers()
    final = sim.checkpoint()
    mean_err: dict[str, float] = {}
    max_err: dict[str, float] = {}
    for v in variables:
        mean_err[v], max_err[v] = _relative_error(ref_final[v], final[v])
    return FaultRunResult(
        completed=done == n_checkpoints,
        n_crashes=crashes,
        checkpoints_written=done + 1,
        final_mean_error=mean_err,
        final_max_error=max_err,
        n_salvages=salvages,
        checkpoints_lost=lost,
        salvage_reports=tuple(salvage_reports),
        records_appended=appended,
    )
