"""Fault injection: crash-and-restart runs driven by persisted chains.

Models the paper's operational scenario: a long simulation checkpoints
every interval; the system crashes at scheduled points; each time, the
simulation is rebuilt from scratch and restored from the latest decoded
checkpoint on disk, then continues.  The harness verifies the run reaches
the target iteration and reports how far the crash-recovered trajectory
drifted from a fault-free reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import NumarckConfig
from repro.io.container import load_chain, save_chain
from repro.restart.manager import RestartManager, _relative_error

__all__ = ["FaultSchedule", "FaultInjector", "run_with_faults"]


@dataclass(frozen=True)
class FaultSchedule:
    """Checkpoint indices (1-based intervals) at which the run crashes."""

    crash_at: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(c < 1 for c in self.crash_at):
            raise ValueError("crash points must be >= 1")
        if len(set(self.crash_at)) != len(self.crash_at):
            raise ValueError("duplicate crash points")


class FaultInjector:
    """Decides whether a crash fires after a given checkpoint."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._fired: set[int] = set()

    def crashes_after(self, checkpoint_index: int) -> bool:
        """True exactly once per scheduled crash point."""
        if checkpoint_index in self.schedule.crash_at and \
                checkpoint_index not in self._fired:
            self._fired.add(checkpoint_index)
            return True
        return False


@dataclass
class FaultRunResult:
    """Outcome of a crash-recovery run."""

    completed: bool
    n_crashes: int
    checkpoints_written: int
    final_mean_error: dict[str, float]
    final_max_error: dict[str, float]


def run_with_faults(
    sim_factory,
    variables: tuple[str, ...],
    n_checkpoints: int,
    schedule: FaultSchedule,
    workdir: str | Path,
    config: NumarckConfig | None = None,
) -> FaultRunResult:
    """Run ``n_checkpoints`` intervals under a crash schedule.

    Each variable's chain is persisted to ``workdir`` after every
    checkpoint; a crash destroys the in-memory simulation and manager, and
    recovery reloads the chains from disk, decodes the latest state, and
    restores a fresh simulation from it.

    Returns the final per-variable error against a fault-free reference
    run of the same factory.
    """
    cfg = config if config is not None else NumarckConfig()
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    def chain_path(v: str) -> Path:
        return workdir / f"{v}.nmk"

    def persist(manager: RestartManager) -> None:
        for v in variables:
            save_chain(chain_path(v), manager.chain(v))

    # Fault-free reference trajectory.
    ref = sim_factory()
    for _ in range(n_checkpoints):
        ref.advance()
    ref_final = ref.checkpoint()

    injector = FaultInjector(schedule)
    sim = sim_factory()
    manager = RestartManager(variables, cfg)
    manager.record(sim.checkpoint())
    persist(manager)

    done = 0
    crashes = 0
    while done < n_checkpoints:
        sim.advance()
        done += 1
        manager.record(sim.checkpoint())
        persist(manager)
        if injector.crashes_after(done):
            crashes += 1
            # Crash: lose all in-memory state.
            del sim, manager
            # Recover from disk.
            chains = {v: load_chain(chain_path(v), cfg) for v in variables}
            state = {v: c.reconstruct() for v, c in chains.items()}
            sim = sim_factory()
            sim.restore(state)
            manager = RestartManager(variables, cfg)
            manager._chains = chains  # noqa: SLF001 - resume recording on loaded chains

    final = sim.checkpoint()
    mean_err: dict[str, float] = {}
    max_err: dict[str, float] = {}
    for v in variables:
        mean_err[v], max_err[v] = _relative_error(ref_final[v], final[v])
    return FaultRunResult(
        completed=done == n_checkpoints,
        n_crashes=crashes,
        checkpoints_written=done + 1,
        final_mean_error=mean_err,
        final_max_error=max_err,
    )
