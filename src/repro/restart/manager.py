"""Multi-variable checkpoint recording and restart."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.errors import StateError
from repro.core.config import NumarckConfig
from repro.core.varset import VariableSet
from repro.io.container import CheckpointFile, WriteHook
from repro.io.durable import retry_io
from repro.simulations.base import Simulation
from repro.telemetry.tracer import get_telemetry

__all__ = ["RestartManager", "RestartExperiment", "RestartRecord"]


class RestartManager(VariableSet):
    """Record a simulation's checkpoints into per-variable NUMARCK chains.

    A thin restart-flavoured view of :class:`~repro.core.varset.VariableSet`:
    ``record`` appends the current simulation state, and
    ``restart_state(i)`` decodes the full multi-variable state at
    checkpoint ``i`` (0 = the initial full checkpoint).  ``save``/``load``
    persist all chains in one container file;
    ``persist_incremental(path_fn)`` instead appends only the records not
    yet on disk -- O(1) per checkpoint -- with per-record ``fsync``.
    """

    def __init__(self, variables: tuple[str, ...],
                 config: NumarckConfig | None = None) -> None:
        super().__init__(variables, config)
        #: open per-variable append writers (see ``persist_incremental``).
        self._writers: dict[str, CheckpointFile] = {}
        #: records per variable that existing files are trusted to share
        #: with the in-memory chains (set by ``from_chains``).
        self._adopted: dict[str, int] = {}

    @classmethod
    def from_chains(cls, chains: dict[str, CheckpointChain],
                    config: NumarckConfig | None = None) -> "RestartManager":
        """Resume recording on already-built chains (e.g. loaded, and
        possibly truncated, after a crash).

        The adopted chain lengths mark how many on-disk records per
        variable are trusted: a later ``persist_incremental`` cuts any
        file back to that point before appending, so records the restarted
        run re-computes never mix with stale ones.
        """
        if not chains:
            raise ValueError("need at least one chain to adopt")
        manager = cls(tuple(chains), config)
        manager._chains = dict(chains)
        manager._adopted = {v: len(c) for v, c in chains.items()}
        return manager

    def restart_state(self, iteration: int | None = None
                      ) -> dict[str, np.ndarray]:
        """Decode every variable at ``iteration`` (None = latest)."""
        return self.reconstruct(iteration)

    # -- incremental persistence -------------------------------------------

    def persist_incremental(self, path_fn: Callable[[str], str | Path], *,
                            write_hook: WriteHook | None = None,
                            sync: bool = True) -> int:
        """Append every not-yet-persisted record to per-variable files.

        ``path_fn`` maps a variable name to its chain file.  The first
        call per variable opens (or creates) the file -- truncating any
        torn tail and any records beyond what :meth:`from_chains` adopted
        -- and later calls reuse the open writer, so each new checkpoint
        costs exactly one appended, individually ``fsync``\\ ed record per
        variable instead of a full rewrite.  Transient ``OSError``\\ s are
        retried with backoff (a failed write rolls back to the record
        boundary first).  Returns the number of records appended.

        On any other failure the writers are closed: a simulated or real
        crash mid-append leaves at most one torn trailing record per file,
        which the salvage path (``recover="tail"``) recovers from.
        """
        if self._chains is None:
            raise StateError("no checkpoints recorded yet")
        appended = 0
        with get_telemetry().span("restart.persist_incremental",
                                  n_variables=len(self.variables)) as sp:
            try:
                for v in self.variables:
                    chain = self._chains[v]
                    writer = self._writers.get(v)
                    if writer is None:
                        writer = self._open_writer(v, path_fn, write_hook, sync)
                        self._writers[v] = writer
                    if writer.n_records == 0:
                        full = chain.full_checkpoint
                        retry_io(lambda w=writer, d=full: w.write_full(d))
                        appended += 1
                    target = 1 + len(chain.deltas)
                    while writer.n_records < target:
                        enc = chain.deltas[writer.n_records - 1]
                        retry_io(lambda w=writer, e=enc: w.write_delta(e))
                        appended += 1
            except BaseException:
                # The writer that failed may hold a torn record; every handle
                # is closed so recovery re-scans the files from scratch.
                self.close_writers()
                raise
            sp.set(records_appended=appended)
        return appended

    def _open_writer(self, variable: str,
                     path_fn: Callable[[str], str | Path],
                     write_hook: WriteHook | None,
                     sync: bool) -> CheckpointFile:
        path = Path(path_fn(variable))
        trusted = self._adopted.get(variable, 0)
        if trusted and path.exists():
            writer = CheckpointFile.append(path, write_hook=write_hook,
                                           sync=sync)
            if writer.n_records > trusted:
                writer.truncate_records(trusted)
            return writer
        # Fresh recording (or a vanished file): start over atomically so a
        # stale file from an earlier run cannot leak records into this one.
        path.parent.mkdir(parents=True, exist_ok=True)
        return CheckpointFile.create(path, write_hook=write_hook, sync=sync)

    def close_writers(self) -> None:
        """Close any writers held open by ``persist_incremental``."""
        writers, self._writers = self._writers, {}
        for writer in writers.values():
            try:
                writer.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


@dataclass
class RestartRecord:
    """Per-variable error trajectory of one restart run.

    ``mean_errors[v][t]`` / ``max_errors[v][t]`` are the mean/max relative
    error of variable ``v`` at the ``t``-th checkpoint after restart,
    measured against the fault-free reference trajectory.
    """

    restart_point: int
    mean_errors: dict[str, list[float]] = field(default_factory=dict)
    max_errors: dict[str, list[float]] = field(default_factory=dict)


def _relative_error(ref: np.ndarray, got: np.ndarray) -> tuple[float, float]:
    """Mean and max |got - ref| / |ref| with zero-reference points skipped."""
    r = np.asarray(ref, dtype=np.float64).ravel()
    g = np.asarray(got, dtype=np.float64).ravel()
    nz = r != 0
    if not nz.any():
        return 0.0, 0.0
    err = np.abs((g[nz] - r[nz]) / r[nz])
    return float(err.mean()), float(err.max())


class RestartExperiment:
    """The paper's Fig. 8 harness.

    Given a factory producing *identical* simulations, the experiment:

    1. runs the reference simulation for ``n_record + n_continue``
       checkpoints, recording the first ``n_record + 1`` states into
       compressed chains;
    2. for each requested restart point ``s``, builds a twin simulation,
       restores it from the *reconstructed* checkpoint ``s``, and advances
       it through the remaining checkpoints;
    3. reports mean/max relative error of every tracked variable at each
       post-restart checkpoint against the reference trajectory.
    """

    def __init__(self, sim_factory, variables: tuple[str, ...],
                 config: NumarckConfig | None = None,
                 record_variables: tuple[str, ...] | None = None) -> None:
        self.sim_factory = sim_factory
        #: variables whose restart error is tracked
        self.variables = tuple(variables)
        #: variables recorded into chains (must cover what ``restore`` needs);
        #: defaults to the tracked set.  Tracked-only variables need no
        #: chain: errors are measured against the live simulation output.
        self.record_variables = tuple(record_variables) if record_variables \
            else tuple(variables)
        self.config = config if config is not None else NumarckConfig()

    def run(self, restart_points: tuple[int, ...], n_record: int,
            n_continue: int) -> list[RestartRecord]:
        if min(restart_points) < 0 or max(restart_points) > n_record:
            raise ValueError("restart points must lie within the recorded range")
        # Reference trajectory (also drives the chains).
        ref_sim: Simulation = self.sim_factory()
        manager = RestartManager(self.record_variables, self.config)
        reference: list[dict[str, np.ndarray]] = []
        state = ref_sim.checkpoint()
        manager.record({v: state[v] for v in self.record_variables})
        reference.append(state)
        for i in range(n_record + n_continue):
            ref_sim.advance()
            state = ref_sim.checkpoint()
            if i < n_record:
                manager.record({v: state[v] for v in self.record_variables})
            reference.append(state)

        records: list[RestartRecord] = []
        for s in restart_points:
            twin: Simulation = self.sim_factory()
            twin.restore(manager.restart_state(s))  # type: ignore[attr-defined]
            record = RestartRecord(restart_point=s)
            for v in self.variables:
                record.mean_errors[v] = []
                record.max_errors[v] = []
            for t in range(s + 1, len(reference)):
                twin.advance()
                got = twin.checkpoint()
                for v in self.variables:
                    mean_e, max_e = _relative_error(reference[t][v], got[v])
                    record.mean_errors[v].append(mean_e)
                    record.max_errors[v].append(max_e)
            records.append(record)
        return records
