"""Multi-variable checkpoint recording and restart."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import NumarckConfig
from repro.core.varset import VariableSet
from repro.simulations.base import Simulation

__all__ = ["RestartManager", "RestartExperiment", "RestartRecord"]


class RestartManager(VariableSet):
    """Record a simulation's checkpoints into per-variable NUMARCK chains.

    A thin restart-flavoured view of :class:`~repro.core.varset.VariableSet`:
    ``record`` appends the current simulation state, and
    ``restart_state(i)`` decodes the full multi-variable state at
    checkpoint ``i`` (0 = the initial full checkpoint).  ``save``/``load``
    persist all chains in one container file.
    """

    def restart_state(self, iteration: int | None = None
                      ) -> dict[str, np.ndarray]:
        """Decode every variable at ``iteration`` (None = latest)."""
        return self.reconstruct(iteration)


@dataclass
class RestartRecord:
    """Per-variable error trajectory of one restart run.

    ``mean_errors[v][t]`` / ``max_errors[v][t]`` are the mean/max relative
    error of variable ``v`` at the ``t``-th checkpoint after restart,
    measured against the fault-free reference trajectory.
    """

    restart_point: int
    mean_errors: dict[str, list[float]] = field(default_factory=dict)
    max_errors: dict[str, list[float]] = field(default_factory=dict)


def _relative_error(ref: np.ndarray, got: np.ndarray) -> tuple[float, float]:
    """Mean and max |got - ref| / |ref| with zero-reference points skipped."""
    r = np.asarray(ref, dtype=np.float64).ravel()
    g = np.asarray(got, dtype=np.float64).ravel()
    nz = r != 0
    if not nz.any():
        return 0.0, 0.0
    err = np.abs((g[nz] - r[nz]) / r[nz])
    return float(err.mean()), float(err.max())


class RestartExperiment:
    """The paper's Fig. 8 harness.

    Given a factory producing *identical* simulations, the experiment:

    1. runs the reference simulation for ``n_record + n_continue``
       checkpoints, recording the first ``n_record + 1`` states into
       compressed chains;
    2. for each requested restart point ``s``, builds a twin simulation,
       restores it from the *reconstructed* checkpoint ``s``, and advances
       it through the remaining checkpoints;
    3. reports mean/max relative error of every tracked variable at each
       post-restart checkpoint against the reference trajectory.
    """

    def __init__(self, sim_factory, variables: tuple[str, ...],
                 config: NumarckConfig | None = None,
                 record_variables: tuple[str, ...] | None = None) -> None:
        self.sim_factory = sim_factory
        #: variables whose restart error is tracked
        self.variables = tuple(variables)
        #: variables recorded into chains (must cover what ``restore`` needs);
        #: defaults to the tracked set.
        self.record_variables = tuple(record_variables) if record_variables \
            else tuple(variables)
        missing = set(self.variables) - set(self.record_variables)
        if missing and record_variables is not None:
            # Tracked-only variables are fine: errors are measured against
            # the live simulation output, not against the chains.
            pass
        self.config = config if config is not None else NumarckConfig()

    def run(self, restart_points: tuple[int, ...], n_record: int,
            n_continue: int) -> list[RestartRecord]:
        if min(restart_points) < 0 or max(restart_points) > n_record:
            raise ValueError("restart points must lie within the recorded range")
        # Reference trajectory (also drives the chains).
        ref_sim: Simulation = self.sim_factory()
        manager = RestartManager(self.record_variables, self.config)
        reference: list[dict[str, np.ndarray]] = []
        state = ref_sim.checkpoint()
        manager.record({v: state[v] for v in self.record_variables})
        reference.append(state)
        for i in range(n_record + n_continue):
            ref_sim.advance()
            state = ref_sim.checkpoint()
            if i < n_record:
                manager.record({v: state[v] for v in self.record_variables})
            reference.append(state)

        records: list[RestartRecord] = []
        for s in restart_points:
            twin: Simulation = self.sim_factory()
            twin.restore(manager.restart_state(s))  # type: ignore[attr-defined]
            record = RestartRecord(restart_point=s)
            for v in self.variables:
                record.mean_errors[v] = []
                record.max_errors[v] = []
            for t in range(s + 1, len(reference)):
                twin.advance()
                got = twin.checkpoint()
                for v in self.variables:
                    mean_e, max_e = _relative_error(reference[t][v], got[v])
                    record.mean_errors[v].append(mean_e)
                    record.max_errors[v].append(max_e)
            records.append(record)
        return records
