"""Unified public exception hierarchy for the NUMARCK library.

Every error the library raises on purpose derives from :class:`NumarckError`,
so ``except NumarckError`` at any boundary (CLI, service, embedding
application) catches exactly the library's own failures and nothing else.
The hierarchy grew up scattered -- config/format errors lived in
``repro.core.errors``, :class:`RankFailureError` in ``repro.parallel.faults``
-- and this module is now their single home; the old import paths remain
valid aliases.

Each concrete error also keeps its historical builtin base
(:class:`ConfigError` is still a :class:`ValueError`,
:class:`RankFailureError` still a :class:`RuntimeError`), so pre-hierarchy
``except`` clauses keep working unchanged.

The compression service (:mod:`repro.service`) maps this hierarchy onto
HTTP status codes through :func:`http_status` -- the mapping lives here,
next to the classes, so adding an error type and choosing its status code
is one edit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NumarckError",
    "ConfigError",
    "FormatError",
    "SalvageError",
    "SalvageReport",
    "StateError",
    "RankFailureError",
    "ServiceError",
    "JobNotFoundError",
    "ChainNotFoundError",
    "QueueFullError",
    "JobCancelledError",
    "ServiceUnavailableError",
    "http_status",
]


class NumarckError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(NumarckError, ValueError):
    """Invalid compression configuration (bad error bound, bit width, ...)."""


class FormatError(NumarckError, ValueError):
    """Corrupt or incompatible serialized checkpoint data."""


class SalvageError(FormatError):
    """A salvage-mode read found nothing recoverable.

    Raised by ``load_chain(..., recover="tail")`` and friends when the
    file's header is invalid or no complete record survives -- there is no
    valid prefix to return.  Subclasses :class:`FormatError`, so strict
    callers keep working unchanged.
    """


class StateError(NumarckError, RuntimeError):
    """An operation was issued against an object in the wrong state
    (e.g. persisting a restart manager that never recorded a checkpoint)."""


class RankFailureError(NumarckError, RuntimeError):
    """A peer rank was lost (died, hung past the deadline, or its channel
    is irrecoverably corrupt).

    Raised on every survivor instead of deadlocking.  ``rank`` is the
    lost peer, ``phase`` the pipeline phase the detecting rank was in
    (empty when none was declared), ``reason`` the detection evidence.
    """

    def __init__(self, rank: int, reason: str, phase: str = "") -> None:
        self.rank = rank
        self.reason = reason
        self.phase = phase
        where = f" during {phase}" if phase else ""
        super().__init__(f"rank {rank} lost{where}: {reason}")


# -- service-facing errors ---------------------------------------------------


class ServiceError(NumarckError):
    """Base class for compression-service failures (:mod:`repro.service`)."""


class JobNotFoundError(ServiceError, KeyError):
    """No job with the requested id (unknown, or already evicted)."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class ChainNotFoundError(ServiceError, KeyError):
    """No checkpoint chain with the requested id."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class QueueFullError(ServiceError):
    """The job queue is at capacity; the submission was *not* accepted.

    ``retry_after`` is the server's estimate (in seconds) of when capacity
    frees up -- the HTTP layer forwards it as a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobCancelledError(ServiceError):
    """Raised inside a job that observed its cancellation flag, and by
    operations that require a non-cancelled job."""


class ServiceUnavailableError(ServiceError):
    """The service is shutting down or degraded and cannot accept work."""


#: hierarchy -> HTTP status, most specific class first.  The single source
#: of truth for the service's error responses: :func:`http_status` walks
#: this table with ``isinstance``, so subclasses inherit their parent's
#: status unless listed explicitly.
HTTP_STATUS: tuple[tuple[type[Exception], int], ...] = (
    (QueueFullError, 429),
    (JobNotFoundError, 404),
    (ChainNotFoundError, 404),
    (JobCancelledError, 409),
    (ServiceUnavailableError, 503),
    (ConfigError, 400),
    (FormatError, 422),        # covers SalvageError
    (StateError, 409),
    (RankFailureError, 500),
    (ServiceError, 500),
    (NumarckError, 500),
)


def http_status(exc: BaseException) -> int:
    """HTTP status code for a library error (500 for anything unmapped)."""
    for cls, status in HTTP_STATUS:
        if isinstance(exc, cls):
            return status
    return 500


@dataclass(frozen=True)
class SalvageReport:
    """Outcome of a salvage-mode read or an on-disk repair.

    A *torn tail* (the damage crash-consistent appends can leave behind)
    loses at most the record being written when the crash hit; the report
    records exactly what was kept and what was cut.  Framing is lost at the
    first bad byte, so ``records_dropped`` is 0 for a clean file and 1 when
    a damaged trailing region was discarded -- the region may have held a
    partial record or one whole corrupt record, never more that could be
    counted.
    """

    path: str
    records_kept: int
    records_dropped: int
    bytes_truncated: int
    reason: str | None = None

    @property
    def clean(self) -> bool:
        """True when the file needed no salvage at all."""
        return self.reason is None

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.clean:
            return f"{self.path}: clean ({self.records_kept} records)"
        return (f"{self.path}: kept {self.records_kept} records, dropped "
                f"{self.records_dropped} damaged trailing region "
                f"({self.bytes_truncated} bytes): {self.reason}")
