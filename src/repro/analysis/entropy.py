"""Shannon entropy estimators for floating-point data.

The paper's premise (Section II-A) is that scientific snapshots are "high
entropy data": their byte streams are near-incompressible for lossless
coders.  These estimators quantify that, and the corresponding tests
demonstrate the premise on the FLASH/CMIP substrates: snapshot bytes are
close to 8 bits/byte while NUMARCK's index streams are far below
``B`` bits/index.
"""

from __future__ import annotations

import numpy as np

__all__ = ["byte_entropy", "word_entropy", "histogram_entropy"]


def _shannon(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def byte_entropy(data: np.ndarray | bytes) -> float:
    """Shannon entropy of the byte stream, in bits/byte (max 8)."""
    if isinstance(data, (bytes, bytearray)):
        raw = np.frombuffer(bytes(data), dtype=np.uint8)
    else:
        raw = np.frombuffer(np.ascontiguousarray(data).tobytes(), dtype=np.uint8)
    return _shannon(np.bincount(raw, minlength=256))


def word_entropy(values: np.ndarray) -> float:
    """Empirical entropy of the value distribution, in bits/value.

    Treats each distinct value (e.g. a 64-bit double or a B-bit index) as a
    symbol; this is the ideal-coder size for a zeroth-order model, i.e. the
    best any per-symbol lossless code could do.
    """
    arr = np.asarray(values).ravel()
    if arr.size == 0:
        return 0.0
    _, counts = np.unique(arr, return_counts=True)
    return _shannon(counts)


def histogram_entropy(values: np.ndarray, bins: int = 256) -> float:
    """Differential-style entropy proxy: entropy of an equal-width binning."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        return 0.0
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return 0.0
    counts, _ = np.histogram(finite, bins=bins)
    return _shannon(counts)
