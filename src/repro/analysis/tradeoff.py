"""Rate-distortion sweeps: compression ratio vs accuracy across (E, B).

Figs 6 and 7 of the paper are one-dimensional slices of the same surface:
how the compression ratio and the realised error trade off as the
tolerance ``E`` and the index width ``B`` vary.  :func:`sweep` computes
the whole grid for an iteration pair and :func:`pareto_frontier` extracts
the configurations no other configuration dominates -- the curve a user
actually chooses from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import NumarckConfig
from repro.core.encoder import encode_pair
from repro.core.metrics import iteration_stats

__all__ = ["TradeoffPoint", "sweep", "pareto_frontier"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One (E, B) configuration's measured outcome."""

    error_bound: float
    nbits: int
    ratio: float
    mean_error: float
    max_error: float
    incompressible_ratio: float

    def dominates(self, other: "TradeoffPoint") -> bool:
        """Better-or-equal on both axes, strictly better on one."""
        ge = (self.ratio >= other.ratio
              and self.mean_error <= other.mean_error)
        gt = (self.ratio > other.ratio
              or self.mean_error < other.mean_error)
        return ge and gt


def sweep(prev: np.ndarray, curr: np.ndarray,
          error_bounds: Sequence[float] = (5e-4, 1e-3, 2e-3, 5e-3),
          nbits: Sequence[int] = (6, 8, 10),
          strategy: str = "clustering") -> list[TradeoffPoint]:
    """Measure every (E, B) combination on one iteration pair."""
    if not error_bounds or not nbits:
        raise ValueError("need at least one error bound and one bit width")
    points: list[TradeoffPoint] = []
    for e in error_bounds:
        for b in nbits:
            cfg = NumarckConfig(error_bound=e, nbits=b, strategy=strategy)
            enc, _ = encode_pair(prev, curr, cfg)
            stats = iteration_stats(prev, curr, enc)
            points.append(TradeoffPoint(
                error_bound=e,
                nbits=b,
                ratio=stats.ratio_paper,
                mean_error=stats.mean_error,
                max_error=stats.max_error,
                incompressible_ratio=stats.incompressible_ratio,
            ))
    return points


def pareto_frontier(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated subset, sorted by ascending mean error.

    A point survives unless some other point compresses at least as much
    *and* errs at most as much (with one strict).
    """
    if not points:
        raise ValueError("no points to filter")
    survivors = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(survivors, key=lambda p: (p.mean_error, -p.ratio))
