"""Adaptive checkpoint cadence (paper future work).

"... adaptation of these techniques can help enable ... determining
dynamic checkpointing frequency based on how evolving distributions
change."  Two signals NUMARCK computes anyway make a natural controller:

* the **incompressible ratio** of each delta -- when the change
  distribution stops being representable, deltas stop paying for
  themselves and a fresh *full* checkpoint resets the chain;
* the **chain depth** -- under the paper's open-loop references, value
  error accumulates roughly linearly in depth, so a depth cap bounds the
  worst-case restart error at ``depth x E``.

:class:`CadenceController` combines both: it recommends writing a full
checkpoint when the estimated accumulated error budget is spent, when the
incompressible ratio crosses a threshold (compression no longer worth it),
or when a maximum depth is reached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import CompressionStats

__all__ = ["CadenceController", "CadenceDecision"]


@dataclass(frozen=True)
class CadenceDecision:
    """Controller output for one appended delta."""

    write_full: bool
    reason: str
    depth: int
    accumulated_error: float


class CadenceController:
    """Decide, per delta, whether the next checkpoint should be full.

    Parameters
    ----------
    error_budget:
        Bound on the *accumulated* mean ratio error along the open-loop
        chain (sum of per-delta mean errors -- the first-order growth law
        Fig. 8 exhibits).  A restart from the chain stays within roughly
        this mean deviation.
    gamma_threshold:
        Incompressible ratio above which a delta is judged not worth
        storing as a delta (e.g. 0.5: half the points raw anyway).
    max_depth:
        Hard cap on deltas per full checkpoint.
    """

    def __init__(self, error_budget: float = 5e-3, gamma_threshold: float = 0.5,
                 max_depth: int = 32) -> None:
        if error_budget <= 0:
            raise ValueError(f"error_budget must be positive, got {error_budget}")
        if not 0 < gamma_threshold <= 1:
            raise ValueError(f"gamma_threshold must be in (0, 1], got {gamma_threshold}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.error_budget = error_budget
        self.gamma_threshold = gamma_threshold
        self.max_depth = max_depth
        self._depth = 0
        self._acc_error = 0.0

    @property
    def depth(self) -> int:
        return self._depth

    def notify_full_checkpoint(self) -> None:
        """Reset after a full checkpoint has been written."""
        self._depth = 0
        self._acc_error = 0.0

    def observe_delta(self, stats: CompressionStats) -> CadenceDecision:
        """Register one appended delta; returns the recommendation."""
        self._depth += 1
        self._acc_error += stats.mean_error

        if stats.incompressible_ratio >= self.gamma_threshold:
            reason = (f"incompressible ratio {stats.incompressible_ratio:.2f} "
                      f">= {self.gamma_threshold}")
            write_full = True
        elif self._acc_error >= self.error_budget:
            reason = (f"accumulated mean error {self._acc_error:.2e} "
                      f">= budget {self.error_budget:.2e}")
            write_full = True
        elif self._depth >= self.max_depth:
            reason = f"depth {self._depth} >= max {self.max_depth}"
            write_full = True
        else:
            reason = "within budget"
            write_full = False
        return CadenceDecision(
            write_full=write_full,
            reason=reason,
            depth=self._depth,
            accumulated_error=self._acc_error,
        )
