"""Plain-text tables and series for benchmark output.

Every benchmark prints its reproduction of a paper table/figure through
these helpers so EXPERIMENTS.md and the bench logs share one format.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def _fmt_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 3, title: str | None = None) -> str:
    """Fixed-width table with a header rule; floats at ``precision``."""
    cells = [[_fmt_cell(v, precision) for v in row] for row in rows]
    for i, row in enumerate(cells):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [
        max(len(str(h)), *(len(r[j]) for r in cells)) if cells else len(str(h))
        for j, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], precision: int = 4,
                  per_line: int = 10) -> str:
    """A labelled numeric series, wrapped for readability."""
    chunks = []
    vals = [f"{v:.{precision}f}" for v in values]
    for i in range(0, len(vals), per_line):
        chunks.append(" ".join(vals[i : i + per_line]))
    body = "\n  ".join(chunks) if chunks else "(empty)"
    return f"{name} [{len(values)} values]:\n  {body}"
