"""Soft-error / regime-change detection from change distributions.

The paper's future-work section: "NUMARCK's mechanisms in learning the
evolving data distributions can also enable understanding anomalies at
scale, thereby potentially identifying erroneous calculations due to soft
errors or hardware errors."

:class:`DriftDetector` implements that idea as an online monitor.  Feed it
each iteration's state (or, cheaper, the change histogram NUMARCK already
computes for free during encoding); it keeps a rolling baseline of the
Jensen-Shannon divergence between consecutive change histograms and flags
iterations whose drift exceeds ``threshold`` times the rolling median.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.analysis.distribution import distribution_drift
from repro.core.change import change_ratios

__all__ = ["DriftDetector", "DriftReading"]


@dataclass(frozen=True)
class DriftReading:
    """One monitored step."""

    iteration: int
    drift: float
    baseline: float
    anomalous: bool


class DriftDetector:
    """Online change-distribution monitor.

    Parameters
    ----------
    bins:
        Histogram resolution over the clipped ratio range.
    clip:
        Ratios are clipped to ``[-clip, clip]`` so a handful of outliers
        land in the edge bins instead of stretching the binning.
    window:
        Rolling window (in steps) for the baseline median drift.
    threshold:
        Flag when drift exceeds ``threshold x`` the rolling median.
    warmup:
        Steps to observe before flagging anything (the baseline needs
        samples to be meaningful).
    """

    def __init__(self, bins: int = 128, clip: float = 0.05, window: int = 20,
                 threshold: float = 4.0, warmup: int = 3) -> None:
        if bins < 8:
            raise ValueError(f"bins must be >= 8, got {bins}")
        if clip <= 0:
            raise ValueError(f"clip must be positive, got {clip}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if threshold <= 1.0:
            raise ValueError(f"threshold must exceed 1, got {threshold}")
        self.bins = bins
        self.clip = clip
        self.window = window
        self.threshold = threshold
        self.warmup = warmup
        self._prev_state: np.ndarray | None = None
        self._prev_hist: np.ndarray | None = None
        self._drifts: deque[float] = deque(maxlen=window)
        self._iteration = 0
        self.readings: list[DriftReading] = []

    def _histogram(self, prev: np.ndarray, curr: np.ndarray) -> np.ndarray:
        field = change_ratios(prev, curr)
        r = np.clip(field.ratios[~field.forced_exact], -self.clip, self.clip)
        counts, _ = np.histogram(r, bins=self.bins, range=(-self.clip, self.clip))
        # Avoid empty-histogram corner cases downstream.
        return counts + (1 if counts.sum() == 0 else 0)

    def observe(self, state: np.ndarray) -> DriftReading | None:
        """Feed the next iteration's state; returns a reading from step 2 on."""
        state = np.asarray(state, dtype=np.float64)
        self._iteration += 1
        if self._prev_state is None:
            self._prev_state = state.copy()
            return None
        hist = self._histogram(self._prev_state, state)
        self._prev_state = state.copy()
        if self._prev_hist is None:
            self._prev_hist = hist
            return None
        drift = distribution_drift(self._prev_hist, hist)
        self._prev_hist = hist

        baseline = float(np.median(self._drifts)) if self._drifts else drift
        warmed = len(self._drifts) >= self.warmup
        anomalous = warmed and baseline > 0 and drift > self.threshold * baseline
        # Anomalous drifts are excluded from the baseline so a detected
        # event does not desensitise the detector.
        if not anomalous:
            self._drifts.append(drift)
        reading = DriftReading(self._iteration, drift, baseline, anomalous)
        self.readings.append(reading)
        return reading

    @property
    def flagged(self) -> list[int]:
        """Iterations flagged so far."""
        return [r.iteration for r in self.readings if r.anomalous]
