"""Change-ratio distribution diagnostics.

Reproduces the paper's Fig. 1C/1D view of an iteration pair (where do the
changes fall, how concentrated are they) and implements the future-work
idea of *tracking* the distribution across iterations: a drifting change
distribution signals regime changes or soft errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.change import change_ratios

__all__ = ["ChangeSummary", "summarize_changes", "change_histogram",
           "distribution_drift"]


@dataclass(frozen=True)
class ChangeSummary:
    """Summary statistics of one iteration pair's change ratios."""

    n_points: int
    n_forced_exact: int
    frac_below: dict[float, float]
    median_abs: float
    p95_abs: float
    max_abs: float

    def frac_unchanged(self, threshold: float = 0.005) -> float:
        """Fraction of points changing by less than ``threshold`` (0.5 %)."""
        return self.frac_below.get(threshold, float("nan"))


def summarize_changes(prev: np.ndarray, curr: np.ndarray,
                      thresholds: tuple[float, ...] = (0.001, 0.005, 0.01, 0.05),
                      ) -> ChangeSummary:
    """Paper-Fig.-1 style summary of the relative changes between iterates."""
    field = change_ratios(prev, curr)
    valid = np.abs(field.ratios[~field.forced_exact])
    if valid.size == 0:
        frac = {t: 1.0 for t in thresholds}
        return ChangeSummary(field.n_points, int(field.forced_exact.sum()),
                             frac, 0.0, 0.0, 0.0)
    frac = {t: float(np.mean(valid < t)) for t in thresholds}
    return ChangeSummary(
        n_points=field.n_points,
        n_forced_exact=int(field.forced_exact.sum()),
        frac_below=frac,
        median_abs=float(np.median(valid)),
        p95_abs=float(np.percentile(valid, 95)),
        max_abs=float(valid.max()),
    )


def change_histogram(prev: np.ndarray, curr: np.ndarray, bins: int = 255,
                     clip_percentile: float = 99.5,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of change ratios (counts, edges), tails clipped for display.

    Mirrors Fig. 1D / Fig. 3: the central mass of the distribution at a
    fixed bin count; ratios beyond the clip percentile are folded into the
    edge bins so a single outlier cannot flatten the histogram.
    """
    field = change_ratios(prev, curr)
    vals = field.ratios[~field.forced_exact]
    if vals.size == 0:
        return np.zeros(bins, dtype=np.int64), np.linspace(-1, 1, bins + 1)
    lo = float(np.percentile(vals, 100 - clip_percentile))
    hi = float(np.percentile(vals, clip_percentile))
    if lo == hi:
        lo, hi = lo - 1e-12, hi + 1e-12
    clipped = np.clip(vals, lo, hi)
    counts, edges = np.histogram(clipped, bins=bins, range=(lo, hi))
    return counts, edges


def distribution_drift(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """Jensen-Shannon divergence (bits) between two histograms.

    Both histograms must share a binning (same length).  0 means identical
    distributions; 1 is the maximum.  A spike in drift between consecutive
    iterations flags an abrupt regime change -- the paper's proposed
    anomaly signal.
    """
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"histograms must share a binning: {a.shape} vs {b.shape}")
    if a.sum() == 0 or b.sum() == 0:
        raise ValueError("histograms must be non-empty")
    p = a / a.sum()
    q = b / b.sum()
    m = 0.5 * (p + q)

    def _kl(x: np.ndarray, y: np.ndarray) -> float:
        mask = x > 0
        return float((x[mask] * np.log2(x[mask] / y[mask])).sum())

    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)
