"""Mergeable change-ratio sketches for communication-light model fitting.

The in-situ encoder's sample-gather costs O(ranks x sample) traffic and
loses tail resolution.  A :class:`RatioSketch` is a fixed-size histogram
over a *deterministic* binning of ``asinh(ratio / error_bound)``:

* the binning depends only on ``(error_bound, bins, max_magnitude)``, so
  sketches built independently on different ranks are **mergeable** by
  adding their count arrays -- one O(bins) allreduce replaces the gather;
* asinh spacing gives near-uniform resolution in *units of the error
  bound* for small ratios and logarithmic resolution for large ones; with
  the defaults (16384 bins over magnitude ``1e3``) every ratio up to about
  ``1000 x E`` sits in a bin narrower than ``2 E``, so sketch-fit models can
  cover the same points an exact fit covers -- beyond that the bins are
  coarser than the tolerance and those (rare, huge) changes fall back to
  exact storage, a deliberate resolution-for-traffic trade;
* :meth:`fit_model` runs *weighted* k-means over the occupied bin centers
  (clustering a histogram of its data), yielding the same kind of
  :class:`~repro.core.strategies.base.BinModel` the exact fit produces.

Every rank that holds the merged counts can fit the model locally and
deterministically -- no broadcast of representatives is needed.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies.base import BinModel
from repro.kmeans import histogram_init, kmeans1d

__all__ = ["RatioSketch"]


class RatioSketch:
    """Fixed-binning mergeable histogram of change ratios.

    Parameters
    ----------
    error_bound:
        The tolerance ``E``; sets the resolution scale.
    bins:
        Number of histogram bins (count array length; must match to merge).
    max_magnitude:
        Ratios beyond this magnitude land in the edge bins.
    """

    def __init__(self, error_bound: float, bins: int = 16384,
                 max_magnitude: float = 1e3) -> None:
        if error_bound <= 0:
            raise ValueError(f"error_bound must be positive, got {error_bound}")
        if bins < 16:
            raise ValueError(f"bins must be >= 16, got {bins}")
        if max_magnitude <= error_bound:
            raise ValueError("max_magnitude must exceed error_bound")
        self.error_bound = float(error_bound)
        self.bins = int(bins)
        self.max_magnitude = float(max_magnitude)
        t_max = np.arcsinh(self.max_magnitude / self.error_bound)
        #: bin edges in transformed space, symmetric about 0
        self.t_edges = np.linspace(-t_max, t_max, bins + 1)
        self.counts = np.zeros(bins, dtype=np.int64)

    # -- construction -------------------------------------------------------

    def _transform(self, ratios: np.ndarray) -> np.ndarray:
        return np.arcsinh(np.asarray(ratios, dtype=np.float64) / self.error_bound)

    def add(self, ratios: np.ndarray) -> "RatioSketch":
        """Accumulate ratios into the sketch (chainable)."""
        t = self._transform(np.ravel(ratios))
        if t.size:
            idx = np.clip(np.searchsorted(self.t_edges, t, side="right") - 1,
                          0, self.bins - 1)
            self.counts += np.bincount(idx, minlength=self.bins)
        return self

    def compatible(self, other: "RatioSketch") -> bool:
        return (self.bins == other.bins
                and self.error_bound == other.error_bound
                and self.max_magnitude == other.max_magnitude)

    def merge(self, other: "RatioSketch") -> "RatioSketch":
        """Add another sketch's counts into this one (chainable)."""
        if not self.compatible(other):
            raise ValueError("cannot merge sketches with different binnings")
        self.counts += other.counts
        return self

    def __add__(self, other: "RatioSketch") -> "RatioSketch":
        out = RatioSketch(self.error_bound, self.bins, self.max_magnitude)
        out.counts = self.counts.copy()
        return out.merge(other)

    # -- queries ------------------------------------------------------------

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def bin_centers(self) -> np.ndarray:
        """Occupied-bin representative ratios (inverse-transformed centers)."""
        t_centers = 0.5 * (self.t_edges[:-1] + self.t_edges[1:])
        return np.sinh(t_centers) * self.error_bound

    def quantile(self, q: float) -> float:
        """Approximate ratio quantile (within one bin width)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.total == 0:
            raise ValueError("empty sketch")
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, q * self.total, side="left"))
        idx = min(idx, self.bins - 1)
        return float(self.bin_centers()[idx])

    def fit_model(self, k: int, max_iter: int = 25) -> BinModel:
        """Representative ratios from the sketch, via safeguarded selection.

        Mirrors the serial clustering strategy's ``space="auto"``: fit
        *weighted* k-means over the occupied bin centers both in the
        transformed space and in linear ratio space, plus an equal-width
        candidate over the occupied range, and keep the model whose
        weighted out-of-tolerance mass (bin centers vs nearest
        representative) is smallest.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self.total == 0:
            raise ValueError("cannot fit a model on an empty sketch")
        occupied = np.flatnonzero(self.counts)
        t_centers = 0.5 * (self.t_edges[:-1] + self.t_edges[1:])[occupied]
        centers = np.sinh(t_centers) * self.error_bound
        weights = self.counts[occupied].astype(np.float64)
        if occupied.size <= k:
            return BinModel(np.unique(centers))

        def weighted_histogram_init(points: np.ndarray) -> np.ndarray:
            """Weighted analogue of ``histogram_init``: centers of the k
            most *weight*-populated of 4k equal-width groups -- seeding
            from the densest-bin centers directly would collapse all seeds
            into the distribution's core."""
            lo_p, hi_p = float(points.min()), float(points.max())
            if hi_p <= lo_p:
                return histogram_init(points, k)
            ngroups = 4 * k
            idx = np.clip(((points - lo_p) / (hi_p - lo_p) * ngroups)
                          .astype(np.int64), 0, ngroups - 1)
            group_w = np.bincount(idx, weights=weights, minlength=ngroups)
            top = np.flatnonzero(group_w)[
                np.argsort(group_w[group_w > 0], kind="stable")[::-1][:k]
            ]
            width = (hi_p - lo_p) / ngroups
            init = np.sort(lo_p + (top + 0.5) * width)
            if np.unique(init).size < k:
                return histogram_init(points, k)
            return init

        def seeded_kmeans(points: np.ndarray) -> np.ndarray:
            init = weighted_histogram_init(points)
            return kmeans1d(points, init, max_iter=max_iter,
                            weights=weights).centroids

        candidates = [
            BinModel(np.unique(np.sinh(seeded_kmeans(t_centers))
                               * self.error_bound)),
            BinModel(np.unique(seeded_kmeans(centers))),
        ]
        # Equal-width prior over the occupied ratio range.
        lo, hi = float(centers.min()), float(centers.max())
        if hi > lo:
            edges = np.linspace(lo, hi, k + 1)
            mids = 0.5 * (edges[:-1] + edges[1:])
            idx = np.unique(np.clip(((centers - lo) / (hi - lo) * k)
                                    .astype(np.int64), 0, k - 1))
            candidates.append(BinModel(mids[idx]))

        def weighted_fails(model: BinModel) -> float:
            err = np.abs(model.approximate(centers) - centers)
            return float(weights[err >= self.error_bound].sum())

        fails = [weighted_fails(m) for m in candidates]
        return candidates[int(np.argmin(fails))]
