"""Diagnostics: entropy, change-distribution statistics, report tables.

Supports the paper's motivating analysis (Section II-A: snapshots are
high-entropy, changes are concentrated) and its future-work direction
(tracking how the change distribution evolves to detect anomalies):

* :mod:`repro.analysis.entropy` -- byte- and word-level Shannon entropy of
  float arrays, quantifying why lossless compression fails on snapshots.
* :mod:`repro.analysis.distribution` -- change-ratio histograms, summary
  statistics, and distribution-drift measures between iterations
  (Jensen-Shannon divergence over shared binnings).
* :mod:`repro.analysis.report` -- fixed-width text tables and series used
  by every benchmark to print paper-shaped output.
"""

from repro.analysis.adaptive import CadenceController, CadenceDecision
from repro.analysis.anomaly import DriftDetector, DriftReading
from repro.analysis.distribution import (
    ChangeSummary,
    change_histogram,
    distribution_drift,
    summarize_changes,
)
from repro.analysis.entropy import byte_entropy, histogram_entropy, word_entropy
from repro.analysis.report import format_series, format_table
from repro.analysis.sketch import RatioSketch
from repro.analysis.tradeoff import TradeoffPoint, pareto_frontier, sweep

__all__ = [
    "byte_entropy",
    "word_entropy",
    "histogram_entropy",
    "ChangeSummary",
    "summarize_changes",
    "change_histogram",
    "distribution_drift",
    "format_table",
    "format_series",
    "DriftDetector",
    "DriftReading",
    "CadenceController",
    "CadenceDecision",
    "RatioSketch",
    "TradeoffPoint",
    "sweep",
    "pareto_frontier",
]
