"""Durable write primitives: atomic replace and bounded retry.

Checkpoint files are the last line of defence against a crash, so the
writes that produce them must themselves survive a crash.  Two building
blocks implement the standard POSIX recipe:

* :func:`atomic_write` -- write into a temporary file in the *same*
  directory, flush, ``fsync``, then :func:`os.replace` over the target
  (and ``fsync`` the directory so the rename itself is durable).  A crash
  at any point leaves either the complete old file or the complete new
  file, never a torn mixture.
* :func:`retry_io` -- call an I/O action again after *transient*
  ``OSError``\\ s (``EINTR``, ``EAGAIN``, ``EIO``, ...) with bounded
  exponential backoff, while letting permanent failures (``ENOENT``,
  ``EACCES``, ``ENOSPC``, ...) surface immediately.

:func:`~repro.io.container.save_chain`,
:func:`~repro.io.multichain.save_chains` and
:func:`~repro.io.streamed.save_streamed` all go through these helpers;
append-mode persistence (:meth:`~repro.io.container.CheckpointFile.append`)
relies on per-record ``fsync`` instead, because an append never rewrites
already-durable records.
"""

from __future__ import annotations

import errno
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import BinaryIO, Callable, Iterator, TypeVar

__all__ = ["atomic_write", "retry_io", "fsync_dir", "is_transient_oserror"]

T = TypeVar("T")

#: errno values treated as *permanent*: retrying cannot help, so
#: :func:`retry_io` re-raises these immediately.
_PERMANENT_ERRNOS = frozenset({
    errno.ENOENT,
    errno.EACCES,
    errno.EPERM,
    errno.EROFS,
    errno.EISDIR,
    errno.ENOTDIR,
    errno.ENOSPC,
    errno.ENAMETOOLONG,
    errno.EEXIST,
    errno.EBADF,
})


def is_transient_oserror(exc: OSError) -> bool:
    """Whether an ``OSError`` is worth retrying (see :func:`retry_io`)."""
    return exc.errno not in _PERMANENT_ERRNOS


def retry_io(fn: Callable[[], T], *,
             attempts: int = 4,
             base_delay: float = 0.01,
             max_delay: float = 0.5,
             transient: Callable[[OSError], bool] | None = None,
             sleep: Callable[[float], None] | None = None) -> T:
    """Call ``fn`` with bounded exponential backoff on transient errors.

    ``fn`` is attempted up to ``attempts`` times.  A transient ``OSError``
    (per the ``transient`` predicate, default
    :func:`is_transient_oserror`) triggers a ``sleep`` (default
    :func:`time.sleep`) of ``base_delay * 2**k`` seconds, capped at
    ``max_delay``; a permanent ``OSError`` -- or exhaustion of the attempt
    budget -- re-raises.  Non-``OSError`` exceptions propagate
    immediately.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if transient is None:
        transient = is_transient_oserror
    if sleep is None:
        sleep = time.sleep
    delay = base_delay
    for attempt in range(attempts):
        try:
            return fn()
        except OSError as exc:
            if attempt == attempts - 1 or not transient(exc):
                raise
            sleep(min(delay, max_delay))
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover


def fsync_dir(path: str | Path) -> None:
    """``fsync`` a directory so a rename inside it is durable (POSIX only).

    Best-effort: platforms or filesystems that cannot fsync a directory
    are silently skipped -- the rename is still atomic, just not yet
    guaranteed on stable storage.
    """
    if os.name != "posix":  # pragma: no cover - POSIX-only container
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - unreadable parent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on NFS dirs
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | Path, *, sync: bool = True) -> Iterator[BinaryIO]:
    """Context manager yielding a binary handle whose contents replace
    ``path`` atomically on success.

    The handle points at a temporary file in ``path``'s directory.  On a
    clean exit the file is flushed, ``fsync``\\ ed (when ``sync``), closed,
    and renamed over ``path`` with :func:`os.replace`; the directory is
    then fsynced so the rename survives a power loss.  On *any* exception
    the temporary file is removed and ``path`` is left untouched.
    """
    target = Path(path)
    parent = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(dir=parent, prefix=f".{target.name}.",
                                    suffix=".tmp")
    fh = os.fdopen(fd, "wb")
    try:
        yield fh
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
    except BaseException:
        fh.close()
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already gone
            pass
        raise
    fh.close()
    os.replace(tmp_name, target)
    if sync:
        fsync_dir(parent)
