"""Multi-variable checkpoint files.

A real FLASH checkpoint holds *all* variables in one file; this module
stores a whole ``{variable: CheckpointChain}`` set in a single framed
container.  Two additional record tags carry a variable-name prefix:

* ``NFUL`` -- named full checkpoint: ``name_len:u8 name payload``
* ``NDEL`` -- named delta: same prefix, then a standard delta payload.

Records may be interleaved arbitrarily (e.g. appended iteration by
iteration across variables); per-variable order is preserved.  Each
variable's first record must be its ``NFUL``.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig
from repro.core.decoder import decode_iteration
from repro.core.errors import FormatError
from repro.io.container import CheckpointFile
from repro.io.format import (
    decode_delta_bytes,
    decode_full_bytes,
    encode_delta_bytes,
    encode_full_bytes,
)

__all__ = ["save_chains", "load_chains", "MultiChainWriter"]

TAG_NAMED_FULL = b"NFUL"
TAG_NAMED_DELTA = b"NDEL"


def _named(name: str, payload: bytes) -> bytes:
    raw = name.encode("utf-8")
    if not raw:
        raise FormatError("variable name must be non-empty")
    if len(raw) > 255:
        raise FormatError(f"variable name too long: {name!r}")
    return struct.pack("<B", len(raw)) + raw + payload


def _split_named(payload: bytes) -> tuple[str, bytes]:
    if not payload:
        raise FormatError("empty named record")
    (nlen,) = struct.unpack_from("<B", payload, 0)
    if len(payload) < 1 + nlen:
        raise FormatError("truncated variable name")
    name = payload[1 : 1 + nlen].decode("utf-8")
    return name, payload[1 + nlen :]


class MultiChainWriter:
    """Streaming writer for multi-variable checkpoint files.

    Intended for in-situ use: write each variable's full checkpoint once,
    then append deltas as the simulation produces iterations::

        with MultiChainWriter.create(path) as w:
            for name, data in first_checkpoint.items():
                w.write_full(name, data)
            ...
            w.write_delta(name, encoded)
    """

    def __init__(self, inner: CheckpointFile) -> None:
        self._inner = inner
        self._seen_full: set[str] = set()

    @classmethod
    def create(cls, path: str | Path) -> "MultiChainWriter":
        return cls(CheckpointFile.create(path))

    def write_full(self, name: str, data: np.ndarray) -> None:
        if name in self._seen_full:
            raise FormatError(f"variable {name!r} already has a full record")
        self._seen_full.add(name)
        self._inner._write_record(TAG_NAMED_FULL,
                                  _named(name, encode_full_bytes(data)))

    def write_delta(self, name: str, encoded) -> None:
        if name not in self._seen_full:
            raise FormatError(f"variable {name!r} has no full record yet")
        self._inner._write_record(TAG_NAMED_DELTA,
                                  _named(name, encode_delta_bytes(encoded)))

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "MultiChainWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def save_chains(path: str | Path, chains: dict[str, CheckpointChain]) -> int:
    """Write a set of chains into one file; returns bytes written.

    Records are interleaved by iteration (all variables' fulls, then every
    variable's delta 1, delta 2, ...), matching how an in-situ writer would
    append them.
    """
    if not chains:
        raise FormatError("no chains to save")
    with MultiChainWriter.create(path) as w:
        for name, chain in chains.items():
            w.write_full(name, chain.full_checkpoint)
        depth = max(len(c.deltas) for c in chains.values())
        for i in range(depth):
            for name, chain in chains.items():
                if i < len(chain.deltas):
                    w.write_delta(name, chain.deltas[i])
    return Path(path).stat().st_size


def load_chains(path: str | Path,
                config: NumarckConfig | None = None
                ) -> dict[str, CheckpointChain]:
    """Read a multi-variable checkpoint file back into chains."""
    fulls: dict[str, np.ndarray] = {}
    deltas: dict[str, list] = {}
    with CheckpointFile.open(path) as f:
        for tag, payload in f.records():
            if tag == TAG_NAMED_FULL:
                name, body = _split_named(payload)
                if name in fulls:
                    raise FormatError(f"duplicate full record for {name!r}")
                fulls[name] = decode_full_bytes(body)
                deltas[name] = []
            elif tag == TAG_NAMED_DELTA:
                name, body = _split_named(payload)
                if name not in fulls:
                    raise FormatError(f"delta for unknown variable {name!r}")
                deltas[name].append(decode_delta_bytes(body))
            else:
                raise FormatError(
                    f"unexpected record tag {tag!r} in multi-chain file"
                )
    if not fulls:
        raise FormatError("multi-chain file has no records")
    out: dict[str, CheckpointChain] = {}
    for name, full in fulls.items():
        chain = CheckpointChain(full, config)
        chain._deltas = deltas[name]  # noqa: SLF001 - same-package rebuild
        state = full.copy()
        for enc in deltas[name]:
            state = decode_iteration(state, enc)
        chain._ref = state  # noqa: SLF001
        out[name] = chain
    return out
