"""Multi-variable checkpoint files.

A real FLASH checkpoint holds *all* variables in one file; this module
stores a whole ``{variable: CheckpointChain}`` set in a single framed
container.  Two additional record tags carry a variable-name prefix:

* ``NFUL`` -- named full checkpoint: ``name_len:u8 name payload``
* ``NDEL`` -- named delta: same prefix, then a standard delta payload.

Records may be interleaved arbitrarily (e.g. appended iteration by
iteration across variables); per-variable order is preserved.  Each
variable's first record must be its ``NFUL``.

Durability follows :mod:`repro.io.container`: :func:`save_chains` is an
atomic whole-file replace, :meth:`MultiChainWriter.append` adds records in
place with per-record ``fsync``, and :func:`load_chains` with
``recover="tail"`` salvages the longest valid prefix of a torn file.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig
from repro.core.decoder import decode_iteration
from repro.core.errors import FormatError, SalvageError, SalvageReport
from repro.io.container import HEADER_SIZE, CheckpointFile, WriteHook
from repro.io.durable import atomic_write, retry_io
from repro.io.format import (
    decode_delta_bytes,
    decode_full_bytes,
    encode_delta_bytes,
    encode_full_bytes,
    peek_delta_table,
)

__all__ = ["save_chains", "load_chains", "MultiChainWriter"]

TAG_NAMED_FULL = b"NFUL"
TAG_NAMED_DELTA = b"NDEL"


def _named(name: str, payload: bytes) -> bytes:
    raw = name.encode("utf-8")
    if not raw:
        raise FormatError("variable name must be non-empty")
    if len(raw) > 255:
        raise FormatError(f"variable name too long: {name!r}")
    return struct.pack("<B", len(raw)) + raw + payload


def _split_named(payload: bytes) -> tuple[str, bytes]:
    if not payload:
        raise FormatError("empty named record")
    (nlen,) = struct.unpack_from("<B", payload, 0)
    if len(payload) < 1 + nlen:
        raise FormatError("truncated variable name")
    name = payload[1 : 1 + nlen].decode("utf-8")
    return name, payload[1 + nlen :]


class MultiChainWriter:
    """Streaming writer for multi-variable checkpoint files.

    Intended for in-situ use: write each variable's full checkpoint once,
    then append deltas as the simulation produces iterations::

        with MultiChainWriter.create(path) as w:
            for name, data in first_checkpoint.items():
                w.write_full(name, data)
            ...
            w.write_delta(name, encoded)
    """

    def __init__(self, inner: CheckpointFile) -> None:
        self._inner = inner
        self._seen_full: set[str] = set()
        #: per-variable table-dedup anchor (last written delta's table).
        self._last_reps: dict[str, np.ndarray] = {}

    @classmethod
    def create(cls, path: str | Path, *,
               write_hook: WriteHook | None = None,
               sync: bool = False) -> "MultiChainWriter":
        return cls(CheckpointFile.create(path, write_hook=write_hook,
                                         sync=sync))

    @classmethod
    def append(cls, path: str | Path, *,
               write_hook: WriteHook | None = None,
               sync: bool = True) -> "MultiChainWriter":
        """Open an existing multi-variable file for crash-consistent
        appending (torn tails are truncated, see
        :meth:`CheckpointFile.append`); replays the surviving records so
        per-variable full/delta bookkeeping continues correctly."""
        seen: set[str] = set()
        last_reps: dict[str, np.ndarray] = {}
        with CheckpointFile.open(path) as reader:
            for tag, payload in reader.records(strict=False):
                if tag == TAG_NAMED_FULL:
                    name, _ = _split_named(payload)
                    seen.add(name)
                elif tag == TAG_NAMED_DELTA:
                    # Rebuild each variable's table-dedup anchor so new
                    # reuse-hit deltas keep eliding repeated tables.
                    name, body = _split_named(payload)
                    last_reps[name] = peek_delta_table(body,
                                                       last_reps.get(name))
                else:
                    raise FormatError(
                        f"unexpected record tag {tag!r} in multi-chain file"
                    )
        writer = cls(CheckpointFile.append(path, write_hook=write_hook,
                                           sync=sync))
        writer._seen_full = seen
        writer._last_reps = last_reps
        return writer

    def write_full(self, name: str, data: np.ndarray) -> None:
        if name in self._seen_full:
            raise FormatError(f"variable {name!r} already has a full record")
        self._seen_full.add(name)
        self._inner.write_record(TAG_NAMED_FULL,
                                 _named(name, encode_full_bytes(data)))

    def write_delta(self, name: str, encoded) -> None:
        if name not in self._seen_full:
            raise FormatError(f"variable {name!r} has no full record yet")
        prev = self._last_reps.get(name)
        ref = bool(
            encoded.model_reused
            and prev is not None
            and encoded.representatives.size == prev.size
            and np.array_equal(encoded.representatives, prev)
        )
        self._inner.write_record(
            TAG_NAMED_DELTA,
            _named(name, encode_delta_bytes(encoded, table_ref=ref)))
        if not ref:
            self._last_reps[name] = np.asarray(encoded.representatives,
                                               dtype=np.float64).copy()

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "MultiChainWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _write_interleaved(w: MultiChainWriter,
                       chains: dict[str, CheckpointChain]) -> None:
    for name, chain in chains.items():
        w.write_full(name, chain.full_checkpoint)
    depth = max(len(c.deltas) for c in chains.values())
    for i in range(depth):
        for name, chain in chains.items():
            if i < len(chain.deltas):
                w.write_delta(name, chain.deltas[i])


def save_chains(path: str | Path, chains: dict[str, CheckpointChain], *,
                durable: bool = True) -> int:
    """Write a set of chains into one file; returns bytes written.

    Records are interleaved by iteration (all variables' fulls, then every
    variable's delta 1, delta 2, ...), matching how an in-situ writer would
    append them.  With ``durable`` (the default) the file is replaced
    atomically and transient ``OSError``\\ s are retried, so a crash never
    destroys the previous checkpoint set.
    """
    if not chains:
        raise FormatError("no chains to save")

    def _write_all() -> None:
        if durable:
            with atomic_write(path) as fh:
                inner = CheckpointFile.from_handle(fh)
                _write_interleaved(MultiChainWriter(inner), chains)
        else:
            with MultiChainWriter.create(path) as w:
                _write_interleaved(w, chains)

    if durable:
        retry_io(_write_all)
    else:
        _write_all()
    return Path(path).stat().st_size


def _rebuild(fulls: dict[str, np.ndarray], deltas: dict[str, list],
             config: NumarckConfig | None) -> dict[str, CheckpointChain]:
    out: dict[str, CheckpointChain] = {}
    for name, full in fulls.items():
        chain = CheckpointChain(full, config)
        chain._deltas = deltas[name]  # noqa: SLF001 - same-package rebuild
        state = full.copy()
        for enc in deltas[name]:
            state = decode_iteration(state, enc)
        chain._ref = state  # noqa: SLF001
        out[name] = chain
    return out


def load_chains(path: str | Path,
                config: NumarckConfig | None = None,
                recover: str | None = None):
    """Read a multi-variable checkpoint file back into chains.

    With ``recover="tail"`` a torn trailing record is dropped instead of
    raising and the call returns ``(chains, SalvageReport)``.  Because a
    torn tail can cut mid-iteration, the surviving chains may differ in
    length by one; callers resuming a run should truncate them to the
    shortest (see :meth:`CheckpointChain.truncate`).  Interior corruption
    still raises :class:`FormatError`; a file with no salvageable records
    raises :class:`SalvageError`.
    """
    if recover not in (None, "tail"):
        raise ValueError(f"unknown recover mode {recover!r}")
    fulls: dict[str, np.ndarray] = {}
    deltas: dict[str, list] = {}

    if recover is None:
        f = CheckpointFile.open(path)
    else:
        try:
            f = CheckpointFile.open(path)
        except FormatError as exc:
            raise SalvageError(f"{path}: nothing to salvage: {exc}") from exc
    with f:
        try:
            for tag, payload in f.records(strict=recover is None):
                if tag == TAG_NAMED_FULL:
                    name, body = _split_named(payload)
                    if name in fulls:
                        raise FormatError(
                            f"duplicate full record for {name!r}")
                    fulls[name] = decode_full_bytes(body)
                    deltas[name] = []
                elif tag == TAG_NAMED_DELTA:
                    name, body = _split_named(payload)
                    if name not in fulls:
                        raise FormatError(
                            f"delta for unknown variable {name!r}")
                    prior = deltas[name]
                    prev_reps = prior[-1].representatives if prior else None
                    deltas[name].append(
                        decode_delta_bytes(body, prev_reps=prev_reps))
                else:
                    raise FormatError(
                        f"unexpected record tag {tag!r} in multi-chain file"
                    )
        except FormatError as exc:
            if recover is not None and f.valid_end == HEADER_SIZE:
                raise SalvageError(
                    f"{path}: nothing to salvage: {exc}") from exc
            raise
        if not fulls:
            if recover is not None:
                raise SalvageError(f"{path}: nothing to salvage: "
                                   f"multi-chain file has no records")
            raise FormatError("multi-chain file has no records")
        if recover is not None:
            file_size = os.fstat(f._fh.fileno()).st_size  # noqa: SLF001
            truncated = file_size - f.valid_end
            n_records = len(fulls) + sum(len(d) for d in deltas.values())
            report = SalvageReport(
                path=str(path),
                records_kept=n_records,
                records_dropped=1 if truncated else 0,
                bytes_truncated=truncated,
                reason=f.damage[0] if f.damage else None,
            )
    chains = _rebuild(fulls, deltas, config)
    if recover is None:
        return chains
    return chains, report
