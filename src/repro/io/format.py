"""Record payload encoding.

All integers are little-endian.  A *full* payload is::

    ndim:u8  dims:u64[ndim]  data:f64[prod(dims)]

A *delta* payload is::

    nbits:u8  flags:u8  strategy_len:u8  strategy:bytes
    error_bound:f64
    ndim:u8  dims:u64[ndim]
    n_reps:u32          reps:f64[n_reps]
    n_exact:u64         exact:f64[n_exact]
    bitmap:u8[ceil(n/8)]            (incompressibility mask, little bit order)
    packed_indices:u8[ceil(n*nbits/8)]

``flags`` bit 0 = zero index reserved; bit 1 = exact values stored as
float32; bit 2 = the iteration reused the previous iteration's bin model
(adaptive reuse hit); bit 3 = *table reference*: ``n_reps`` is written as
0 and the reader must substitute the representative table of the nearest
preceding delta of the same chain -- repeated tables are thereby stored
once per run of reuse hits.  Exact values appear in flat index order,
i.e. the j-th set bit of the bitmap corresponds to ``exact[j]``.

Format version 2 introduced bits 2/3; version-1 files (which can never
carry them) read back unchanged.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.bitpack import pack_bits, packed_nbytes, unpack_bits
from repro.core.encoder import EncodedIteration
from repro.core.errors import FormatError

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "encode_full_bytes",
    "decode_full_bytes",
    "encode_delta_bytes",
    "decode_delta_bytes",
    "peek_delta_table",
]

MAGIC = b"NMRK"
FORMAT_VERSION = 2
#: versions this reader accepts (v1 lacks the reuse/table-ref flag bits).
SUPPORTED_VERSIONS = (1, 2)

_FLAG_ZERO_RESERVED = 0x01
_FLAG_FLOAT32_VALUES = 0x02
_FLAG_MODEL_REUSED = 0x04
_FLAG_TABLE_REF = 0x08


def _pack_dims(shape: tuple[int, ...]) -> bytes:
    if len(shape) > 255:
        raise FormatError(f"too many dimensions: {len(shape)}")
    return struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}Q", *shape)


def _unpack_dims(buf: memoryview, off: int) -> tuple[tuple[int, ...], int]:
    (ndim,) = struct.unpack_from("<B", buf, off)
    off += 1
    dims = struct.unpack_from(f"<{ndim}Q", buf, off)
    off += 8 * ndim
    return tuple(int(d) for d in dims), off


def encode_full_bytes(data: np.ndarray) -> bytes:
    """Serialise an exact full checkpoint array."""
    arr = np.ascontiguousarray(data, dtype=np.float64)
    return _pack_dims(arr.shape) + arr.tobytes()


def decode_full_bytes(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_full_bytes`."""
    buf = memoryview(payload)
    try:
        shape, off = _unpack_dims(buf, 0)
    except struct.error as exc:
        raise FormatError(f"truncated full-checkpoint payload: {exc}") from exc
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    need = off + 8 * n
    if len(payload) < need:
        raise FormatError(
            f"full-checkpoint payload too short: need {need} bytes, have {len(payload)}"
        )
    data = np.frombuffer(buf[off : off + 8 * n], dtype="<f8").copy()
    return data.reshape(shape)


def encode_delta_bytes(enc: EncodedIteration, *, table_ref: bool = False) -> bytes:
    """Serialise one encoded iteration.

    With ``table_ref`` the representative table is *elided* (``n_reps``
    written as 0, flag bit 3 set): the writer asserts it equals the table
    of the nearest preceding delta in the same chain, and the reader must
    pass that table as ``prev_reps`` to :func:`decode_delta_bytes`.
    """
    strategy = enc.strategy.encode("ascii")
    if len(strategy) > 255:
        raise FormatError("strategy name too long")
    if enc.value_bits not in (32, 64):
        raise FormatError(f"unsupported value_bits {enc.value_bits}")
    flags = _FLAG_ZERO_RESERVED if enc.zero_reserved else 0
    if enc.value_bits == 32:
        flags |= _FLAG_FLOAT32_VALUES
    if enc.model_reused:
        flags |= _FLAG_MODEL_REUSED
    if table_ref:
        flags |= _FLAG_TABLE_REF
    head = struct.pack("<BBB", enc.nbits, flags, len(strategy)) + strategy
    head += struct.pack("<d", enc.error_bound)
    head += _pack_dims(enc.shape)

    reps = np.ascontiguousarray(enc.representatives, dtype="<f8")
    if table_ref:
        reps = np.empty(0, dtype="<f8")
    exact_dtype = "<f4" if enc.value_bits == 32 else "<f8"
    exact = np.ascontiguousarray(enc.exact_values, dtype=exact_dtype)
    bitmap = np.packbits(enc.incompressible.astype(np.uint8), bitorder="little")
    packed = pack_bits(enc.indices, enc.nbits)

    body = (
        struct.pack("<I", reps.size)
        + reps.tobytes()
        + struct.pack("<Q", exact.size)
        + exact.tobytes()
        + bitmap.tobytes()
        + packed
    )
    return head + body


def decode_delta_bytes(payload: bytes,
                       prev_reps: np.ndarray | None = None) -> EncodedIteration:
    """Inverse of :func:`encode_delta_bytes`.

    ``prev_reps`` is the representative table of the nearest preceding
    delta in the same chain; it is required to resolve a table-reference
    delta (flag bit 3) and ignored otherwise.
    """
    buf = memoryview(payload)
    try:
        nbits, flags, slen = struct.unpack_from("<BBB", buf, 0)
        off = 3
        strategy = bytes(buf[off : off + slen]).decode("ascii")
        off += slen
        (error_bound,) = struct.unpack_from("<d", buf, off)
        off += 8
        shape, off = _unpack_dims(buf, off)
        (n_reps,) = struct.unpack_from("<I", buf, off)
        off += 4
        reps = np.frombuffer(buf[off : off + 8 * n_reps], dtype="<f8").copy()
        if reps.size != n_reps:
            raise FormatError("truncated representatives table")
        off += 8 * n_reps
        if flags & _FLAG_TABLE_REF:
            if prev_reps is None:
                raise FormatError(
                    "table-reference delta needs the preceding delta's "
                    "representative table (prev_reps)"
                )
            reps = np.asarray(prev_reps, dtype=np.float64).copy()
            n_reps = reps.size
        (n_exact,) = struct.unpack_from("<Q", buf, off)
        off += 8
        exact_width = 4 if flags & _FLAG_FLOAT32_VALUES else 8
        exact_dtype = "<f4" if exact_width == 4 else "<f8"
        exact = np.frombuffer(
            buf[off : off + exact_width * n_exact], dtype=exact_dtype
        ).astype(np.float64)
        if exact.size != n_exact:
            raise FormatError("truncated exact-value stream")
        off += exact_width * n_exact

        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        bitmap_bytes = (n + 7) // 8
        raw_bitmap = np.frombuffer(buf[off : off + bitmap_bytes], dtype=np.uint8)
        if raw_bitmap.size != bitmap_bytes:
            raise FormatError("truncated incompressibility bitmap")
        incompressible = np.unpackbits(raw_bitmap, bitorder="little")[:n].astype(bool)
        off += bitmap_bytes

        idx_bytes = packed_nbytes(n, nbits)
        indices = unpack_bits(bytes(buf[off : off + idx_bytes]), n, nbits)
        off += idx_bytes
    except (struct.error, ValueError) as exc:
        raise FormatError(f"corrupt delta payload: {exc}") from exc

    if int(incompressible.sum()) != n_exact:
        raise FormatError(
            f"bitmap population ({int(incompressible.sum())}) does not match "
            f"exact-value count ({n_exact})"
        )
    zero_reserved = bool(flags & _FLAG_ZERO_RESERVED)
    max_valid = n_reps if zero_reserved else max(n_reps - 1, 0)
    if indices.size and int(indices.max()) > max_valid:
        raise FormatError(
            f"index {int(indices.max())} exceeds bin table of {n_reps} entries"
        )
    return EncodedIteration(
        shape=shape,
        nbits=int(nbits),
        representatives=reps,
        indices=indices.astype(np.uint32),
        incompressible=incompressible,
        exact_values=exact,
        error_bound=float(error_bound),
        strategy=strategy,
        zero_reserved=zero_reserved,
        value_bits=32 if flags & _FLAG_FLOAT32_VALUES else 64,
        model_reused=bool(flags & _FLAG_MODEL_REUSED),
    )


def peek_delta_table(payload: bytes,
                     prev_reps: np.ndarray | None = None) -> np.ndarray:
    """Representative table of a serialised delta, without a full decode.

    Parses only the fixed head (cheap -- no bitmap/index unpacking); used
    by append-mode writers to rebuild their table-dedup state from the
    records already on disk.  ``prev_reps`` resolves table references as
    in :func:`decode_delta_bytes`.
    """
    buf = memoryview(payload)
    try:
        _nbits, flags, slen = struct.unpack_from("<BBB", buf, 0)
        off = 3 + slen + 8
        _shape, off = _unpack_dims(buf, off)
        (n_reps,) = struct.unpack_from("<I", buf, off)
        off += 4
        reps = np.frombuffer(buf[off : off + 8 * n_reps], dtype="<f8").copy()
        if reps.size != n_reps:
            raise FormatError("truncated representatives table")
    except (struct.error, ValueError) as exc:
        raise FormatError(f"corrupt delta payload: {exc}") from exc
    if flags & _FLAG_TABLE_REF:
        if prev_reps is None:
            raise FormatError(
                "table-reference delta needs the preceding delta's "
                "representative table (prev_reps)"
            )
        return np.asarray(prev_reps, dtype=np.float64).copy()
    return reps
