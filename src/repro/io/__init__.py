"""Binary checkpoint container format.

Serialises NUMARCK chains to disk so a simulation can actually restart
from files (paper Section II-D): one *full* record holding the exact
``D_0`` followed by one *delta* record per compressed iteration.  Each
record is framed with a type tag, a payload length and a CRC32, so
truncated or corrupted checkpoint files are detected at read time instead
of silently feeding garbage into a restart.

High-level API::

    from repro.io import save_chain, load_chain, CheckpointFile

    save_chain(path, chain)                 # CheckpointChain -> file
    full, deltas = load_chain(path)         # file -> arrays + EncodedIterations

    with CheckpointFile.create(path) as f:  # streaming writer
        f.write_full(d0)
        f.write_delta(encoded)

    with CheckpointFile.append(path) as f:  # crash-consistent appends
        f.write_delta(encoded)              # per-record fsync

    chain, report = load_chain(path, recover="tail")   # torn-tail salvage

Durability: ``save_*`` replace files atomically (temp file + fsync +
rename, see :mod:`repro.io.durable`); ``append`` fsyncs per record and
truncates torn tails left by interrupted writes; ``salvage_truncate``
repairs a damaged file in place.
"""

from repro.io.container import (
    CheckpointFile,
    chain_from_bytes,
    chain_to_bytes,
    load_chain,
    salvage_truncate,
    save_chain,
)
from repro.io.durable import atomic_write, fsync_dir, retry_io
from repro.io.multichain import MultiChainWriter, load_chains, save_chains
from repro.io.streamed import (
    load_streamed,
    save_streamed,
    streamed_from_bytes,
    streamed_to_bytes,
)
from repro.io.format import (
    FORMAT_VERSION,
    MAGIC,
    decode_delta_bytes,
    decode_full_bytes,
    encode_delta_bytes,
    encode_full_bytes,
)

__all__ = [
    "CheckpointFile",
    "save_chain",
    "load_chain",
    "save_chains",
    "load_chains",
    "MultiChainWriter",
    "save_streamed",
    "load_streamed",
    "chain_to_bytes",
    "chain_from_bytes",
    "streamed_to_bytes",
    "streamed_from_bytes",
    "salvage_truncate",
    "atomic_write",
    "retry_io",
    "fsync_dir",
    "encode_delta_bytes",
    "decode_delta_bytes",
    "encode_full_bytes",
    "decode_full_bytes",
    "MAGIC",
    "FORMAT_VERSION",
]
