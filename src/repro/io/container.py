"""Framed multi-record checkpoint files.

File layout::

    file  := magic:u8[4] version:u16 record*
    record:= tag:u8[4] payload_len:u64 payload crc32:u32

Tags: ``b"FULL"`` (exact checkpoint) and ``b"DELT"`` (encoded iteration).
The CRC covers tag + length + payload, so any bit flip or truncation in a
record is caught.  Records are strictly appended; a chain file is one FULL
followed by zero or more DELT records.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig
from repro.core.encoder import EncodedIteration
from repro.core.errors import FormatError
from repro.io.format import (
    FORMAT_VERSION,
    MAGIC,
    decode_delta_bytes,
    decode_full_bytes,
    encode_delta_bytes,
    encode_full_bytes,
)

__all__ = ["CheckpointFile", "save_chain", "load_chain"]

TAG_FULL = b"FULL"
TAG_DELTA = b"DELT"


class CheckpointFile:
    """Streaming writer/reader for framed checkpoint records."""

    def __init__(self, fh: BinaryIO, mode: str) -> None:
        self._fh = fh
        self._mode = mode

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path) -> "CheckpointFile":
        """Create/truncate a checkpoint file and write the header."""
        fh = open(path, "wb")
        fh.write(MAGIC + struct.pack("<H", FORMAT_VERSION))
        return cls(fh, "w")

    @classmethod
    def open(cls, path: str | Path) -> "CheckpointFile":
        """Open an existing checkpoint file for reading (validates header)."""
        fh = open(path, "rb")
        head = fh.read(6)
        if len(head) != 6 or head[:4] != MAGIC:
            fh.close()
            raise FormatError(f"{path}: not a NUMARCK checkpoint file")
        (version,) = struct.unpack("<H", head[4:])
        if version != FORMAT_VERSION:
            fh.close()
            raise FormatError(f"{path}: unsupported format version {version}")
        return cls(fh, "r")

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "CheckpointFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def _write_record(self, tag: bytes, payload: bytes) -> None:
        if self._mode != "w":
            raise FormatError("file opened for reading")
        frame = tag + struct.pack("<Q", len(payload)) + payload
        crc = zlib.crc32(frame) & 0xFFFFFFFF
        self._fh.write(frame + struct.pack("<I", crc))

    def write_full(self, data: np.ndarray) -> None:
        """Append an exact full-checkpoint record."""
        self._write_record(TAG_FULL, encode_full_bytes(data))

    def write_delta(self, encoded: EncodedIteration) -> None:
        """Append one encoded-iteration record."""
        self._write_record(TAG_DELTA, encode_delta_bytes(encoded))

    # -- reading -----------------------------------------------------------

    def records(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(tag, payload)`` for every record, verifying CRCs."""
        if self._mode != "r":
            raise FormatError("file opened for writing")
        import os

        file_size = os.fstat(self._fh.fileno()).st_size
        while True:
            head = self._fh.read(12)
            if not head:
                return
            if len(head) < 12:
                raise FormatError("truncated record header")
            tag = head[:4]
            (length,) = struct.unpack("<Q", head[4:])
            # A corrupt length field must not trigger a giant allocation:
            # the payload plus its CRC cannot exceed what is left on disk.
            remaining = file_size - self._fh.tell()
            if length > max(remaining - 4, 0):
                raise FormatError(
                    f"record length {length} exceeds remaining file size "
                    f"({remaining} bytes)"
                )
            payload = self._fh.read(length)
            if len(payload) < length:
                raise FormatError(f"truncated record payload (tag {tag!r})")
            crc_bytes = self._fh.read(4)
            if len(crc_bytes) < 4:
                raise FormatError("truncated record CRC")
            (crc,) = struct.unpack("<I", crc_bytes)
            if zlib.crc32(head + payload) & 0xFFFFFFFF != crc:
                raise FormatError(f"CRC mismatch in record (tag {tag!r})")
            yield tag, payload

    def read_chain(self) -> tuple[np.ndarray, list[EncodedIteration]]:
        """Read a FULL record followed by DELT records."""
        full: np.ndarray | None = None
        deltas: list[EncodedIteration] = []
        for tag, payload in self.records():
            if tag == TAG_FULL:
                if full is not None:
                    raise FormatError("multiple FULL records in one chain file")
                full = decode_full_bytes(payload)
            elif tag == TAG_DELTA:
                if full is None:
                    raise FormatError("DELT record before FULL record")
                deltas.append(decode_delta_bytes(payload))
            else:
                raise FormatError(f"unknown record tag {tag!r}")
        if full is None:
            raise FormatError("checkpoint file has no FULL record")
        return full, deltas


def save_chain(path: str | Path, chain: CheckpointChain) -> int:
    """Write a :class:`CheckpointChain` to ``path``; returns bytes written."""
    with CheckpointFile.create(path) as f:
        f.write_full(chain.full_checkpoint)
        for enc in chain.deltas:
            f.write_delta(enc)
    return Path(path).stat().st_size


def load_chain(path: str | Path,
               config: NumarckConfig | None = None) -> CheckpointChain:
    """Rebuild a :class:`CheckpointChain` from ``path``.

    The returned chain can be reconstructed at any iteration; appending to
    it continues from the last stored iteration's *decoded* state under
    ``reference="reconstructed"``, or from the decoded state treated as
    original under the default mode (the true originals are not stored).
    """
    with CheckpointFile.open(path) as f:
        full, deltas = f.read_chain()
    chain = CheckpointChain(full, config)
    chain._deltas = deltas  # noqa: SLF001 - same-module rebuild of private state
    # Restore the running reference so further appends are well-defined.
    state = full.copy()
    from repro.core.decoder import decode_iteration

    for enc in deltas:
        state = decode_iteration(state, enc)
    chain._ref = state  # noqa: SLF001
    return chain
