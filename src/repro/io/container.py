"""Framed multi-record checkpoint files.

File layout::

    file  := magic:u8[4] version:u16 record*
    record:= tag:u8[4] payload_len:u64 payload crc32:u32

Tags: ``b"FULL"`` (exact checkpoint) and ``b"DELT"`` (encoded iteration).
The CRC covers tag + length + payload, so any bit flip or truncation in a
record is caught.  Records are strictly appended; a chain file is one FULL
followed by zero or more DELT records.

Durability model
----------------

* :func:`save_chain` rewrites the whole file through
  :func:`~repro.io.durable.atomic_write`: a crash mid-save leaves the old
  file intact, never a torn mixture.
* :meth:`CheckpointFile.append` adds records in place with per-record
  ``fsync``: a crash mid-append can only damage the record being written
  (a *torn tail*), never an already-persisted one.
* :meth:`CheckpointFile.records` with ``strict=False`` -- and
  :func:`load_chain` with ``recover="tail"`` -- salvage the longest valid
  record prefix from a torn file instead of raising.  Corruption *before*
  the last record still raises: the delta chain after a damaged interior
  record cannot be trusted.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Callable, Iterator

import numpy as np

from repro.core.checkpoint import CheckpointChain
from repro.core.config import NumarckConfig
from repro.core.decoder import decode_iteration
from repro.core.encoder import EncodedIteration
from repro.core.errors import FormatError, SalvageError, SalvageReport
from repro.io.durable import atomic_write, retry_io
from repro.io.format import (
    FORMAT_VERSION,
    MAGIC,
    SUPPORTED_VERSIONS,
    decode_delta_bytes,
    decode_full_bytes,
    encode_delta_bytes,
    encode_full_bytes,
    peek_delta_table,
)
from repro.telemetry.tracer import get_telemetry

__all__ = ["CheckpointFile", "save_chain", "load_chain", "salvage_truncate",
           "chain_to_bytes", "chain_from_bytes", "WriteHook"]

TAG_FULL = b"FULL"
TAG_DELTA = b"DELT"

#: length of ``magic + version`` -- the offset of the first record.
HEADER_SIZE = 6

#: signature of an injectable raw-write hook: ``hook(fh, data)`` performs
#: the actual ``fh.write(data)`` (or deliberately fails to, for fault
#: injection).
WriteHook = Callable[[BinaryIO, bytes], None]


class _ScanFailure(Exception):
    """Internal: a record failed to parse while walking the file.

    ``offset`` is where the bad record starts, ``tail`` whether the damage
    is consistent with a torn trailing write (salvageable) as opposed to
    corruption with intact records after it (not salvageable).
    """

    def __init__(self, offset: int, reason: str, tail: bool) -> None:
        super().__init__(reason)
        self.offset = offset
        self.reason = reason
        self.tail = tail


def _check_header(fh: BinaryIO, path: str | Path) -> None:
    head = fh.read(HEADER_SIZE)
    if len(head) != HEADER_SIZE or head[:4] != MAGIC:
        raise FormatError(f"{path}: not a NUMARCK checkpoint file")
    (version,) = struct.unpack("<H", head[4:])
    if version not in SUPPORTED_VERSIONS:
        raise FormatError(f"{path}: unsupported format version {version}")


def _stream_size(fh: BinaryIO) -> int:
    """Total byte size of a seekable stream (files and ``BytesIO`` alike)."""
    pos = fh.tell()
    size = fh.seek(0, os.SEEK_END)
    fh.seek(pos)
    return size


def _iter_frames(fh: BinaryIO) -> Iterator[tuple[bytes, bytes]]:
    """Yield ``(tag, payload)`` per CRC-valid record; raise
    :class:`_ScanFailure` at the first record that does not parse."""
    file_size = _stream_size(fh)
    while True:
        offset = fh.tell()
        head = fh.read(12)
        if not head:
            return
        if len(head) < 12:
            raise _ScanFailure(offset, "truncated record header", tail=True)
        tag = head[:4]
        (length,) = struct.unpack("<Q", head[4:])
        # A corrupt length field must not trigger a giant allocation:
        # the payload plus its CRC cannot exceed what is left on disk.
        remaining = file_size - fh.tell()
        if length > max(remaining - 4, 0):
            raise _ScanFailure(
                offset,
                f"record length {length} exceeds remaining file size "
                f"({remaining} bytes)",
                tail=True,
            )
        payload = fh.read(length)
        if len(payload) < length:
            raise _ScanFailure(offset,
                               f"truncated record payload (tag {tag!r})",
                               tail=True)
        crc_bytes = fh.read(4)
        if len(crc_bytes) < 4:
            raise _ScanFailure(offset, "truncated record CRC", tail=True)
        (crc,) = struct.unpack("<I", crc_bytes)
        if zlib.crc32(head + payload) & 0xFFFFFFFF != crc:
            raise _ScanFailure(offset,
                               f"CRC mismatch in record (tag {tag!r})",
                               tail=fh.tell() == file_size)
        yield tag, payload


class CheckpointFile:
    """Streaming writer/reader for framed checkpoint records."""

    def __init__(self, fh: BinaryIO, mode: str, *,
                 write_hook: WriteHook | None = None,
                 sync: bool = False,
                 owns_handle: bool = True) -> None:
        self._fh = fh
        self._mode = mode
        self._write_hook = write_hook
        self._sync = sync
        self._owns_handle = owns_handle
        #: records confirmed on this handle (written, or found by append()).
        self.n_records = 0
        #: byte offset just past record ``i`` (index 0 = end of header).
        self._record_ends: list[int] = [HEADER_SIZE]
        #: offset just past the last CRC-valid record seen by ``records()``.
        self.valid_end = HEADER_SIZE
        #: ``(reason, tail)`` when a non-strict ``records()`` walk stopped
        #: at damage; ``None`` while the file looks clean.
        self.damage: tuple[str, bool] | None = None
        #: :class:`SalvageReport` describing what ``append()`` found and
        #: cut when it opened the file; ``None`` for other constructors.
        self.salvage: SalvageReport | None = None
        #: representative table of the last delta written/seen on this
        #: handle -- the dedup anchor for table-reference records.
        self._last_reps: np.ndarray | None = None

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, *,
               write_hook: WriteHook | None = None,
               sync: bool = False) -> "CheckpointFile":
        """Create/truncate a checkpoint file and write the header."""
        fh = open(path, "wb")
        fh.write(MAGIC + struct.pack("<H", FORMAT_VERSION))
        return cls(fh, "w", write_hook=write_hook, sync=sync)

    @classmethod
    def from_handle(cls, fh: BinaryIO, *,
                    write_hook: WriteHook | None = None) -> "CheckpointFile":
        """Start a checkpoint stream on an already-open writable handle
        (e.g. inside :func:`~repro.io.durable.atomic_write`); the caller
        keeps ownership of the handle."""
        fh.write(MAGIC + struct.pack("<H", FORMAT_VERSION))
        return cls(fh, "w", write_hook=write_hook, owns_handle=False)

    @classmethod
    def open(cls, path: str | Path) -> "CheckpointFile":
        """Open an existing checkpoint file for reading (validates header)."""
        fh = open(path, "rb")
        try:
            _check_header(fh, path)
        except FormatError:
            fh.close()
            raise
        return cls(fh, "r")

    @classmethod
    def append(cls, path: str | Path, *,
               write_hook: WriteHook | None = None,
               sync: bool = True) -> "CheckpointFile":
        """Open ``path`` for crash-consistent appending.

        Validates the header, scans to the end of the last CRC-valid
        record, truncates any torn tail left by an interrupted write, and
        positions the writer there.  ``n_records`` holds the number of
        valid records found and ``salvage`` a :class:`SalvageReport` of
        what (if anything) was cut.  A file whose damage is *not* a torn
        tail (valid records after a corrupt one) raises
        :class:`FormatError` -- appending to it would bury the corruption.

        With ``sync`` (the default) every appended record is flushed and
        ``fsync``\\ ed individually, so a crash can only tear the record
        being written.
        """
        fh = open(path, "r+b")
        try:
            _check_header(fh, path)
            ends = [HEADER_SIZE]
            reason = None
            last_reps = None
            try:
                for tag, payload in _iter_frames(fh):
                    ends.append(fh.tell())
                    # Rebuild the table-dedup anchor from the surviving
                    # records so appended reuse-hit deltas keep eliding
                    # repeated tables correctly.
                    if tag == TAG_DELTA:
                        last_reps = peek_delta_table(payload, last_reps)
                    elif tag == TAG_FULL:
                        last_reps = None
            except _ScanFailure as exc:
                if not exc.tail:
                    raise FormatError(
                        f"{path}: damaged interior record cannot be "
                        f"repaired by appending: {exc.reason}"
                    ) from None
                reason = exc.reason
        except BaseException:
            fh.close()
            raise
        file_size = os.fstat(fh.fileno()).st_size
        truncated = file_size - ends[-1]
        if truncated:
            fh.truncate(ends[-1])
            fh.flush()
            os.fsync(fh.fileno())
        fh.seek(ends[-1])
        obj = cls(fh, "w", write_hook=write_hook, sync=sync)
        obj.n_records = len(ends) - 1
        obj._record_ends = ends
        obj._last_reps = last_reps
        obj.salvage = SalvageReport(
            path=str(path),
            records_kept=len(ends) - 1,
            records_dropped=1 if truncated else 0,
            bytes_truncated=truncated,
            reason=reason,
        )
        if truncated:
            get_telemetry().metrics.counter(
                "io.records_salvaged").inc(obj.salvage.records_kept)
        return obj

    def close(self) -> None:
        if self._owns_handle:
            self._fh.close()

    def __enter__(self) -> "CheckpointFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def _write(self, data: bytes) -> None:
        if self._write_hook is not None:
            self._write_hook(self._fh, data)
        else:
            self._fh.write(data)

    def write_record(self, tag: bytes, payload: bytes) -> None:
        """Append one framed record (tag + length + payload + CRC32).

        In ``sync`` mode the record is flushed and ``fsync``\\ ed before
        returning, making it durable on its own.  A failed write
        (transient ``OSError``) rolls the file back to the record
        boundary, so the caller may simply retry -- e.g. through
        :func:`~repro.io.durable.retry_io`.
        """
        if self._mode != "w":
            raise FormatError("file opened for reading")
        frame = tag + struct.pack("<Q", len(payload)) + payload
        crc = zlib.crc32(frame) & 0xFFFFFFFF
        data = frame + struct.pack("<I", crc)
        start = self._record_ends[-1]
        tel = get_telemetry()
        with tel.span("io.write_record", tag=tag.decode("ascii", "replace"),
                      bytes_out=len(data), sync=self._sync):
            try:
                self._write(data)
                if self._sync:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                    tel.metrics.counter("io.fsync").inc()
            except OSError:
                # Roll back to the record boundary so a retry appends cleanly
                # instead of concatenating two half-records.
                try:
                    self._fh.flush()
                except OSError:
                    pass
                try:
                    self._fh.truncate(start)
                    self._fh.seek(start)
                except OSError:
                    pass
                raise
        tel.metrics.counter("io.bytes_written").inc(len(data))
        self.n_records += 1
        self._record_ends.append(start + len(data))

    # Kept as an alias for one release: external callers should use the
    # public ``write_record``.
    _write_record = write_record

    def truncate_records(self, n: int) -> None:
        """Drop every record after the first ``n`` (writer mode only).

        Used when resuming an append on a file that holds more records
        than the adopted in-memory chain trusts.
        """
        if self._mode != "w":
            raise FormatError("file opened for reading")
        if not 0 <= n <= self.n_records:
            raise ValueError(f"cannot keep {n} of {self.n_records} records")
        if n == self.n_records:
            return
        end = self._record_ends[n]
        self._fh.truncate(end)
        self._fh.seek(end)
        if self._sync:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        del self._record_ends[n + 1:]
        self.n_records = n
        # The dedup anchor may have been cut away; writing the next delta
        # with a full table is always safe.
        self._last_reps = None

    def write_full(self, data: np.ndarray) -> None:
        """Append an exact full-checkpoint record."""
        self.write_record(TAG_FULL, encode_full_bytes(data))
        self._last_reps = None

    def write_delta(self, encoded: EncodedIteration) -> None:
        """Append one encoded-iteration record.

        When the iteration reused the previous delta's bin model
        (``model_reused``) and the tables verifiably match, the table is
        stored as a back-reference instead of repeating it.
        """
        ref = bool(
            encoded.model_reused
            and self._last_reps is not None
            and encoded.representatives.size == self._last_reps.size
            and np.array_equal(encoded.representatives, self._last_reps)
        )
        self.write_record(TAG_DELTA, encode_delta_bytes(encoded, table_ref=ref))
        if ref:
            get_telemetry().metrics.counter("io.table_refs").inc()
        else:
            self._last_reps = np.asarray(encoded.representatives,
                                         dtype=np.float64).copy()

    # -- reading -----------------------------------------------------------

    def records(self, strict: bool = True) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(tag, payload)`` for every record, verifying CRCs.

        With ``strict=True`` (the default) any damage raises
        :class:`FormatError`.  With ``strict=False`` a *torn tail* --
        damage extending to end-of-file, the signature of an interrupted
        append -- stops the iteration instead, leaving ``self.damage``
        set and ``self.valid_end`` at the last good record boundary.
        Damage with file content *after* it (an interior record) raises
        either way: the records beyond it decode against an untrusted
        base.
        """
        if self._mode != "r":
            raise FormatError("file opened for writing")
        frames = _iter_frames(self._fh)
        while True:
            try:
                tag, payload = next(frames)
            except StopIteration:
                return
            except _ScanFailure as exc:
                if strict or not exc.tail:
                    raise FormatError(exc.reason) from None
                self.damage = (exc.reason, exc.tail)
                return
            self.valid_end = self._fh.tell()
            yield tag, payload

    def read_chain(self, strict: bool = True
                   ) -> tuple[np.ndarray, list[EncodedIteration]]:
        """Read a FULL record followed by DELT records."""
        full: np.ndarray | None = None
        deltas: list[EncodedIteration] = []
        last_reps: np.ndarray | None = None
        for tag, payload in self.records(strict=strict):
            if tag == TAG_FULL:
                if full is not None:
                    raise FormatError("multiple FULL records in one chain file")
                full = decode_full_bytes(payload)
            elif tag == TAG_DELTA:
                if full is None:
                    raise FormatError("DELT record before FULL record")
                enc = decode_delta_bytes(payload, prev_reps=last_reps)
                last_reps = enc.representatives
                deltas.append(enc)
            else:
                raise FormatError(f"unknown record tag {tag!r}")
        if full is None:
            raise FormatError("checkpoint file has no FULL record")
        return full, deltas


def chain_to_bytes(chain: CheckpointChain) -> bytes:
    """Serialise a chain to container bytes (same layout as
    :func:`save_chain` writes to disk, byte for byte).

    The in-memory twin of :func:`save_chain`, used by the compression
    service to stream a chain down an HTTP response without touching the
    filesystem.
    """
    buf = io.BytesIO()
    with get_telemetry().span("io.chain_to_bytes",
                              records=1 + len(chain.deltas)) as sp:
        f = CheckpointFile.from_handle(buf)
        f.write_full(chain.full_checkpoint)
        for enc in chain.deltas:
            f.write_delta(enc)
        data = buf.getvalue()
        sp.set(bytes_out=len(data))
    return data


def chain_from_bytes(data: bytes,
                     config: NumarckConfig | None = None) -> CheckpointChain:
    """Rebuild a :class:`CheckpointChain` from container bytes.

    The in-memory twin of :func:`load_chain` (strict mode: any damage
    raises :class:`~repro.errors.FormatError` -- bytes received over a
    checksummed transport have no torn-tail story to salvage).
    """
    buf = io.BytesIO(data)
    with get_telemetry().span("io.chain_from_bytes",
                              bytes_in=len(data)) as sp:
        _check_header(buf, "<bytes>")
        f = CheckpointFile(buf, "r", owns_handle=False)
        full, deltas = f.read_chain()
        sp.set(records=1 + len(deltas))
    return _rebuild_chain(full, deltas, config)


def salvage_truncate(path: str | Path) -> SalvageReport:
    """Truncate ``path`` in place to its longest valid record prefix.

    Unlike :meth:`CheckpointFile.append`, this is a repair tool: it cuts
    at the *first* damaged record even when intact-looking records follow
    (they decode against an untrusted base, so they are unusable anyway).
    Returns a :class:`SalvageReport`; a clean file is left untouched.
    """
    fh = open(path, "r+b")
    try:
        _check_header(fh, path)
        end = HEADER_SIZE
        kept = 0
        reason = None
        try:
            for _tag, _payload in _iter_frames(fh):
                end = fh.tell()
                kept += 1
        except _ScanFailure as exc:
            reason = exc.reason
        file_size = os.fstat(fh.fileno()).st_size
        truncated = file_size - end
        if truncated:
            fh.truncate(end)
            fh.flush()
            os.fsync(fh.fileno())
    finally:
        fh.close()
    if truncated:
        get_telemetry().metrics.counter("io.records_salvaged").inc(kept)
    return SalvageReport(path=str(path), records_kept=kept,
                         records_dropped=1 if truncated else 0,
                         bytes_truncated=truncated, reason=reason)


def save_chain(path: str | Path, chain: CheckpointChain, *,
               durable: bool = True) -> int:
    """Write a :class:`CheckpointChain` to ``path``; returns bytes written.

    With ``durable`` (the default) the file is produced via
    :func:`~repro.io.durable.atomic_write` under
    :func:`~repro.io.durable.retry_io`: the previous contents of ``path``
    survive any mid-write crash, and transient ``OSError``\\ s are retried
    with backoff.
    """

    def _write_all() -> None:
        if durable:
            with atomic_write(path) as fh:
                f = CheckpointFile.from_handle(fh)
                f.write_full(chain.full_checkpoint)
                for enc in chain.deltas:
                    f.write_delta(enc)
        else:
            with CheckpointFile.create(path) as f:
                f.write_full(chain.full_checkpoint)
                for enc in chain.deltas:
                    f.write_delta(enc)

    with get_telemetry().span("io.save_chain", records=1 + len(chain.deltas),
                              durable=durable) as sp:
        if durable:
            retry_io(_write_all)
        else:
            _write_all()
        nbytes = Path(path).stat().st_size
        sp.set(bytes_out=nbytes)
    return nbytes


def _rebuild_chain(full: np.ndarray, deltas: list[EncodedIteration],
                   config: NumarckConfig | None) -> CheckpointChain:
    chain = CheckpointChain(full, config)
    chain._deltas = deltas  # noqa: SLF001 - same-module rebuild of private state
    # Restore the running reference so further appends are well-defined.
    state = full.copy()
    for enc in deltas:
        state = decode_iteration(state, enc)
    chain._ref = state  # noqa: SLF001
    # Resume model reuse across a save/load cycle: prime the adaptive
    # cache with the last stored table (conservative zero baseline).
    adaptive = chain._adaptive  # noqa: SLF001
    if adaptive is not None and deltas and deltas[-1].representatives.size:
        from repro.core.strategies.base import BinModel

        adaptive.seed(BinModel(deltas[-1].representatives))
    return chain


def load_chain(path: str | Path,
               config: NumarckConfig | None = None,
               recover: str | None = None):
    """Rebuild a :class:`CheckpointChain` from ``path``.

    The returned chain can be reconstructed at any iteration; appending to
    it continues from the last stored iteration's *decoded* state under
    ``reference="reconstructed"``, or from the decoded state treated as
    original under the default mode (the true originals are not stored).

    With ``recover="tail"`` a torn trailing record is dropped instead of
    raising, and the call returns ``(chain, SalvageReport)`` -- the
    longest valid prefix plus what was lost.  Interior corruption still
    raises :class:`FormatError`; a file with no salvageable prefix at all
    (bad header, no FULL record) raises :class:`SalvageError`.
    """
    if recover not in (None, "tail"):
        raise ValueError(f"unknown recover mode {recover!r}")
    tel = get_telemetry()
    if recover is None:
        with tel.span("io.load_chain") as sp:
            with CheckpointFile.open(path) as f:
                full, deltas = f.read_chain()
            sp.set(records=1 + len(deltas),
                   bytes_in=Path(path).stat().st_size)
            return _rebuild_chain(full, deltas, config)

    with tel.span("io.load_chain", recover="tail") as sp:
        try:
            f = CheckpointFile.open(path)
        except FormatError as exc:
            raise SalvageError(f"{path}: nothing to salvage: {exc}") from exc
        with f:
            try:
                full, deltas = f.read_chain(strict=False)
            except FormatError as exc:
                if f.valid_end == HEADER_SIZE:
                    # Not even the FULL record survived.
                    raise SalvageError(
                        f"{path}: nothing to salvage: {exc}") from exc
                raise
            file_size = os.fstat(f._fh.fileno()).st_size  # noqa: SLF001
            truncated = file_size - f.valid_end
            report = SalvageReport(
                path=str(path),
                records_kept=1 + len(deltas),
                records_dropped=1 if truncated else 0,
                bytes_truncated=truncated,
                reason=f.damage[0] if f.damage else None,
            )
        sp.set(records=report.records_kept, bytes_in=f.valid_end)
        if truncated:
            tel.metrics.counter("io.records_salvaged").inc(report.records_kept)
        return _rebuild_chain(full, deltas, config), report
