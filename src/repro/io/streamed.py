"""Persistence for streamed (chunked) encodings.

A :class:`~repro.core.streaming.StreamedIteration` could be concatenated
and written as one delta record, but that defeats the point of streaming:
the writer would materialise the whole iteration.  This module stores the
stream as-is --

* one ``SHDR`` record: stream metadata + the shared representative table;
* one ``CHNK`` record per chunk: start offset, indices (bit-packed),
  incompressibility bitmap, exact values --

so both writing and reading touch one chunk at a time.  Reading back
yields a ``StreamedIteration`` whose chunks decode against the same
replayed reference stream used at encode time.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path

import numpy as np

from repro.bitpack import pack_bits, packed_nbytes, unpack_bits
from repro.core.errors import FormatError
from repro.core.streaming import ChunkRecord, StreamedIteration
from repro.io.container import CheckpointFile, _check_header
from repro.io.durable import atomic_write, retry_io
from repro.telemetry.tracer import get_telemetry

__all__ = ["save_streamed", "load_streamed", "streamed_to_bytes",
           "streamed_from_bytes"]

TAG_STREAM_HEADER = b"SHDR"
TAG_CHUNK = b"CHNK"

_FLAG_ZERO_RESERVED = 0x01


def _header_payload(streamed: StreamedIteration) -> bytes:
    strategy = streamed.strategy.encode("ascii")
    flags = _FLAG_ZERO_RESERVED if streamed.zero_reserved else 0
    reps = np.ascontiguousarray(streamed.representatives, dtype="<f8")
    return (
        struct.pack("<QBBB", streamed.n_points, streamed.nbits, flags,
                    len(strategy))
        + strategy
        + struct.pack("<d", streamed.error_bound)
        + struct.pack("<I", reps.size)
        + reps.tobytes()
    )


def _parse_header(payload: bytes):
    try:
        n_points, nbits, flags, slen = struct.unpack_from("<QBBB", payload, 0)
        off = 11
        strategy = payload[off : off + slen].decode("ascii")
        off += slen
        (error_bound,) = struct.unpack_from("<d", payload, off)
        off += 8
        (n_reps,) = struct.unpack_from("<I", payload, off)
        off += 4
        reps = np.frombuffer(payload[off : off + 8 * n_reps], dtype="<f8").copy()
        if reps.size != n_reps:
            raise FormatError("truncated representative table")
    except (struct.error, UnicodeDecodeError) as exc:
        raise FormatError(f"corrupt stream header: {exc}") from exc
    return (int(n_points), int(nbits), bool(flags & _FLAG_ZERO_RESERVED),
            strategy, float(error_bound), reps)


def _chunk_payload(chunk: ChunkRecord, nbits: int) -> bytes:
    exact = np.ascontiguousarray(chunk.exact_values, dtype="<f8")
    bitmap = np.packbits(chunk.incompressible.astype(np.uint8),
                         bitorder="little")
    return (
        struct.pack("<QQQ", chunk.start, chunk.n_points, exact.size)
        + exact.tobytes()
        + bitmap.tobytes()
        + pack_bits(chunk.indices, nbits)
    )


def _parse_chunk(payload: bytes, nbits: int) -> ChunkRecord:
    try:
        start, n, n_exact = struct.unpack_from("<QQQ", payload, 0)
        off = 24
        exact = np.frombuffer(payload[off : off + 8 * n_exact],
                              dtype="<f8").copy()
        if exact.size != n_exact:
            raise FormatError("truncated exact stream in chunk")
        off += 8 * n_exact
        bitmap_bytes = (n + 7) // 8
        raw = np.frombuffer(payload[off : off + bitmap_bytes], dtype=np.uint8)
        if raw.size != bitmap_bytes:
            raise FormatError("truncated bitmap in chunk")
        mask = np.unpackbits(raw, bitorder="little")[:n].astype(bool)
        off += bitmap_bytes
        idx_bytes = packed_nbytes(n, nbits)
        indices = unpack_bits(payload[off : off + idx_bytes], n, nbits)
    except (struct.error, ValueError) as exc:
        raise FormatError(f"corrupt chunk payload: {exc}") from exc
    if int(mask.sum()) != n_exact:
        raise FormatError("chunk bitmap population mismatch")
    return ChunkRecord(start=int(start), indices=indices.astype(np.uint32),
                       incompressible=mask, exact_values=exact)


def save_streamed(path: str | Path, streamed: StreamedIteration, *,
                  durable: bool = True) -> int:
    """Write a streamed iteration chunk by chunk; returns bytes written.

    With ``durable`` (the default) the file is replaced atomically via
    :func:`~repro.io.durable.atomic_write` under
    :func:`~repro.io.durable.retry_io`, so a crash mid-save never leaves a
    torn stream behind.
    """

    def _write_all() -> None:
        if durable:
            with atomic_write(path) as fh:
                f = CheckpointFile.from_handle(fh)
                _write_records(f)
        else:
            with CheckpointFile.create(path) as f:
                _write_records(f)

    def _write_records(f: CheckpointFile) -> None:
        f.write_record(TAG_STREAM_HEADER, _header_payload(streamed))
        for chunk in streamed.chunks:
            f.write_record(TAG_CHUNK, _chunk_payload(chunk, streamed.nbits))

    with get_telemetry().span("io.save_streamed",
                              n_chunks=len(streamed.chunks),
                              durable=durable) as sp:
        if durable:
            retry_io(_write_all)
        else:
            _write_all()
        nbytes = Path(path).stat().st_size
        sp.set(bytes_out=nbytes)
    return nbytes


def streamed_to_bytes(streamed: StreamedIteration) -> bytes:
    """Serialise a streamed iteration to container bytes (same layout as
    :func:`save_streamed`, byte for byte).  In-memory twin used by the
    compression service's stream endpoints."""
    buf = io.BytesIO()
    with get_telemetry().span("io.streamed_to_bytes",
                              n_chunks=len(streamed.chunks)) as sp:
        f = CheckpointFile.from_handle(buf)
        f.write_record(TAG_STREAM_HEADER, _header_payload(streamed))
        for chunk in streamed.chunks:
            f.write_record(TAG_CHUNK, _chunk_payload(chunk, streamed.nbits))
        data = buf.getvalue()
        sp.set(bytes_out=len(data))
    return data


def streamed_from_bytes(data: bytes) -> StreamedIteration:
    """Rebuild a :class:`~repro.core.streaming.StreamedIteration` from
    container bytes (strict; the in-memory twin of :func:`load_streamed`)."""
    buf = io.BytesIO(data)
    with get_telemetry().span("io.streamed_from_bytes",
                              bytes_in=len(data)) as sp:
        _check_header(buf, "<bytes>")
        f = CheckpointFile(buf, "r", owns_handle=False)
        header, chunks = _read_stream_records(f)
        sp.set(n_chunks=len(chunks))
    return _assemble_stream(header, chunks)


def _read_stream_records(f: CheckpointFile):
    header = None
    chunks: list[ChunkRecord] = []
    for tag, payload in f.records():
        if tag == TAG_STREAM_HEADER:
            if header is not None:
                raise FormatError("multiple stream headers")
            header = _parse_header(payload)
        elif tag == TAG_CHUNK:
            if header is None:
                raise FormatError("chunk before stream header")
            chunks.append(_parse_chunk(payload, header[1]))
        else:
            raise FormatError(f"unexpected record tag {tag!r}")
    return header, chunks


def load_streamed(path: str | Path) -> StreamedIteration:
    """Read a streamed iteration back (chunks stay separate)."""
    with get_telemetry().span("io.load_streamed",
                              bytes_in=Path(path).stat().st_size) as sp, \
            CheckpointFile.open(path) as f:
        header, chunks = _read_stream_records(f)
        sp.set(n_chunks=len(chunks))
    return _assemble_stream(header, chunks)


def _assemble_stream(header, chunks: list[ChunkRecord]) -> StreamedIteration:
    if header is None:
        raise FormatError("no stream header record")
    n_points, nbits, zero_reserved, strategy, error_bound, reps = header
    expected = 0
    for chunk in chunks:
        if chunk.start != expected:
            raise FormatError(
                f"chunk at offset {chunk.start}, expected {expected}"
            )
        expected += chunk.n_points
    if expected != n_points:
        raise FormatError(
            f"chunks cover {expected} points, header declares {n_points}"
        )
    return StreamedIteration(
        n_points=n_points,
        nbits=nbits,
        error_bound=error_bound,
        strategy=strategy,
        zero_reserved=zero_reserved,
        representatives=reps,
        chunks=tuple(chunks),
    )
