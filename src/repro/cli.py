"""Command-line interface.

Single-variable chains operate on ``.npy`` arrays::

    python -m repro init   chain.nmk first.npy
    python -m repro append chain.nmk second.npy --error-bound 1e-3 \
        --nbits 8 --strategy clustering
    python -m repro extract chain.nmk --iteration 2 --output state.npy
    python -m repro inspect chain.nmk

Whole checkpoints (every variable in one file) operate on ``.npz``
archives, mirroring how a simulation writes one multi-variable checkpoint::

    python -m repro init-multi    ckpt.nmk step000.npz --error-bound 1e-3
    python -m repro append-multi  ckpt.nmk step010.npz
    python -m repro extract-multi ckpt.nmk -o restart.npz

``append`` reuses the previous delta's parameters when flags are omitted,
so a chain stays self-consistent without repeating configuration;
``inspect`` understands both file flavours.  When every iteration is
already on disk, ``compress-chain`` builds the whole chain in one shot --
with ``--adaptive`` the bin model is reused across iterations (deltas
report ``model=reused`` under ``inspect``)::

    python -m repro compress-chain chain.nmk step*.npy \
        --error-bound 1e-3 --strategy clustering --adaptive

Integrity tooling (any file flavour)::

    python -m repro verify ckpt.nmk   # per-record CRC walk, exit 1 on damage
    python -m repro repair ckpt.nmk   # backup, then truncate to valid prefix

Telemetry: run any workflow with ``NUMARCK_TRACE=trace.jsonl`` to capture
spans, then summarise them::

    python -m repro stats trace.jsonl   # stage breakdown + metrics tables
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core import CheckpointChain, NumarckConfig, VariableSet
from repro.core.metrics import compression_ratio_paper
from repro.io import load_chain, save_chain

__all__ = ["main"]


def _load_array(path: str) -> np.ndarray:
    arr = np.load(path, allow_pickle=False)
    return np.asarray(arr, dtype=np.float64)


def _config_from_args(args: argparse.Namespace,
                      fallback: NumarckConfig | None = None) -> NumarckConfig:
    base = fallback if fallback is not None else NumarckConfig()
    kwargs = {}
    if args.error_bound is not None:
        kwargs["error_bound"] = args.error_bound
    elif fallback is not None:
        kwargs["error_bound"] = base.error_bound
    if args.nbits is not None:
        kwargs["nbits"] = args.nbits
    elif fallback is not None:
        kwargs["nbits"] = base.nbits
    if args.strategy is not None:
        kwargs["strategy"] = args.strategy
    elif fallback is not None:
        kwargs["strategy"] = base.strategy
    if getattr(args, "adaptive", False):
        kwargs["adaptive"] = True
    if getattr(args, "drift_threshold", None) is not None:
        kwargs["drift_threshold"] = args.drift_threshold
    return NumarckConfig(**kwargs) if kwargs else NumarckConfig()


def _hidden_alias(p: argparse.ArgumentParser, *flags: str, dest: str,
                  **kwargs) -> None:
    """Register a legacy spelling: parses like the canonical flag but is
    absent from ``--help`` and never overrides the canonical default."""
    p.add_argument(*flags, dest=dest, default=argparse.SUPPRESS,
                   help=argparse.SUPPRESS, **kwargs)


def _config_parent() -> argparse.ArgumentParser:
    """Shared parent holding the compression flags, so every subcommand
    spells them identically (``-E`` is the short form of
    ``--error-bound``)."""
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group("compression options")
    g.add_argument("--error-bound", "-E", type=float, default=None,
                   help="per-point tolerance E on the change ratio")
    g.add_argument("--nbits", type=int, default=None,
                   help="index width B (table has 2^B - 1 bins)")
    g.add_argument("--strategy", default=None,
                   choices=("equal_width", "log_scale", "clustering"))
    g.add_argument("--adaptive", action="store_true",
                   help="reuse the fitted bin model across iterations, "
                        "refitting only on drift (see --drift-threshold)")
    g.add_argument("--drift-threshold", type=float, default=None,
                   help="refit when the incompressible fraction rises more "
                        "than this above the last fit's (default 0.05)")
    return parent


def _output_parent(*, required: bool = False,
                   default: str | None = None,
                   help_text: str = "output file") -> argparse.ArgumentParser:
    """Shared parent for the destination flag: canonical ``--output``/
    ``-o`` with the legacy ``--out`` spelling as a hidden alias."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--output", "-o", dest="output",
                        default=default, help=help_text)
    _hidden_alias(parent, "--out", dest="output")
    # argparse's `required=` would not be satisfied by the alias action;
    # main() enforces presence after parsing instead.
    parent.set_defaults(_require_output=required)
    return parent




def _cmd_init(args: argparse.Namespace) -> int:
    data = _load_array(args.array)
    chain = CheckpointChain(data, _config_from_args(args))
    nbytes = save_chain(args.chain, chain)
    print(f"{args.chain}: full checkpoint, {data.size} points, {nbytes} bytes")
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    chain_path = Path(args.chain)
    if not chain_path.exists():
        print(f"error: {args.chain} does not exist (run 'init' first)",
              file=sys.stderr)
        return 2
    existing = load_chain(chain_path)
    fallback = None
    if existing.deltas:
        last = existing.deltas[-1]
        fallback = NumarckConfig(error_bound=last.error_bound,
                                 nbits=last.nbits, strategy=last.strategy)
    config = _config_from_args(args, fallback)
    chain = load_chain(chain_path, config)
    stats = chain.append(_load_array(args.array))
    nbytes = save_chain(chain_path, chain)
    print(f"{args.chain}: iteration {len(chain) - 1} appended | "
          f"gamma={stats.incompressible_ratio:.4f} "
          f"R={stats.ratio_paper:.2f}% "
          f"mean_err={stats.mean_error:.2e} | file {nbytes} bytes")
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    chain = load_chain(args.chain)
    state = chain.reconstruct(args.iteration)
    np.save(args.output, state)
    it = args.iteration if args.iteration is not None else len(chain) - 1
    print(f"{args.output}: iteration {it}, shape {state.shape}")
    return 0


def _load_npz(path: str) -> dict[str, np.ndarray]:
    with np.load(path, allow_pickle=False) as npz:
        return {k: np.asarray(npz[k], dtype=np.float64) for k in npz.files}


def _cmd_init_multi(args: argparse.Namespace) -> int:
    checkpoint = _load_npz(args.checkpoint)
    if not checkpoint:
        print("error: checkpoint archive is empty", file=sys.stderr)
        return 2
    vs = VariableSet(tuple(sorted(checkpoint)), _config_from_args(args))
    vs.record(checkpoint)
    nbytes = vs.save(args.chain)
    print(f"{args.chain}: {len(checkpoint)} variables "
          f"({', '.join(sorted(checkpoint))}), {nbytes} bytes")
    return 0


def _cmd_append_multi(args: argparse.Namespace) -> int:
    chain_path = Path(args.chain)
    if not chain_path.exists():
        print(f"error: {args.chain} does not exist (run 'init-multi' first)",
              file=sys.stderr)
        return 2
    existing = VariableSet.load(chain_path)
    fallback = None
    any_chain = existing.chain(existing.variables[0])
    if any_chain.deltas:
        last = any_chain.deltas[-1]
        fallback = NumarckConfig(error_bound=last.error_bound,
                                 nbits=last.nbits, strategy=last.strategy)
    config = _config_from_args(args, fallback)
    vs = VariableSet.load(chain_path, config)
    stats = vs.record(_load_npz(args.checkpoint))
    nbytes = vs.save(chain_path)
    mean_gamma = np.mean([s.incompressible_ratio for s in stats.values()])
    mean_ratio = np.mean([s.ratio_paper for s in stats.values()])
    print(f"{args.chain}: iteration {vs.n_checkpoints - 1} appended | "
          f"mean gamma={mean_gamma:.4f} mean R={mean_ratio:.2f}% | "
          f"file {nbytes} bytes")
    return 0


def _cmd_extract_multi(args: argparse.Namespace) -> int:
    vs = VariableSet.load(args.chain)
    state = vs.reconstruct(args.iteration)
    np.savez(args.output, **state)
    it = args.iteration if args.iteration is not None else vs.n_checkpoints - 1
    print(f"{args.output}: iteration {it}, "
          f"{len(state)} variables ({', '.join(sorted(state))})")
    return 0


def _cmd_compress_chain(args: argparse.Namespace) -> int:
    from repro.codec import Codec

    codec = Codec(config=_config_from_args(args))
    chain = codec.compress_chain(_load_array(p) for p in args.arrays)
    nbytes = save_chain(args.chain, chain)
    line = (f"{args.chain}: {len(chain)} iterations "
            f"(1 full + {len(chain.deltas)} deltas), {nbytes:,} bytes")
    stats = chain.reuse_stats
    if stats is not None:
        line += (f" | adaptive: {stats.reuse_hits}/{stats.encodes} reuse "
                 f"hits, {stats.refits} refits")
    print(line)
    return 0


def _memmap_chunks(path: str, chunk_size: int):
    """Replayable chunk-iterator factory over a memory-mapped .npy file."""

    def factory():
        arr = np.load(path, mmap_mode="r")
        flat = arr.reshape(-1)
        for start in range(0, flat.size, chunk_size):
            yield np.asarray(flat[start : start + chunk_size], dtype=np.float64)

    return factory


def _cmd_compress_stream(args: argparse.Namespace) -> int:
    from repro.codec import Codec
    from repro.io import save_streamed

    if args.output is not None:
        if len(args.paths) != 2:
            print("error: with --output, give exactly PREV CURR",
                  file=sys.stderr)
            return 2
        prev, curr = args.paths
    elif len(args.paths) == 3:
        # Legacy `compress-stream OUTPUT PREV CURR` spelling.
        args.output, prev, curr = args.paths
        print("note: positional OUTPUT is deprecated; "
              "use --output/-o", file=sys.stderr)
    else:
        print("error: give PREV CURR with --output OUTPUT "
              "(or the legacy OUTPUT PREV CURR)", file=sys.stderr)
        return 2

    codec = Codec(config=_config_from_args(args), chunk_size=args.chunk_size)
    streamed = codec.compress_stream(_memmap_chunks(prev, args.chunk_size),
                                     _memmap_chunks(curr, args.chunk_size))
    nbytes = save_streamed(args.output, streamed)
    n_exact = sum(c.exact_values.size for c in streamed.chunks)
    raw = streamed.n_points * 8
    print(f"{args.output}: {streamed.n_points:,} points in "
          f"{len(streamed.chunks)} chunks | exact {n_exact:,} "
          f"({n_exact / max(streamed.n_points, 1):.2%}) | "
          f"{nbytes:,} bytes ({nbytes / raw:.1%} of raw)")
    return 0


def _cmd_decompress_stream(args: argparse.Namespace) -> int:
    from repro.core import decode_stream
    from repro.io import load_streamed

    streamed = load_streamed(args.stream)
    ref = np.load(args.prev, mmap_mode="r")
    if ref.size != streamed.n_points:
        print(f"error: reference has {ref.size} points, stream has "
              f"{streamed.n_points}", file=sys.stderr)
        return 2
    chunk_sizes = [c.n_points for c in streamed.chunks]

    def ref_chunks():
        flat = ref.reshape(-1)
        pos = 0
        for n in chunk_sizes:
            yield np.asarray(flat[pos : pos + n], dtype=np.float64)
            pos += n

    out = np.lib.format.open_memmap(args.output, mode="w+",
                                    dtype=np.float64,
                                    shape=(streamed.n_points,))
    pos = 0
    for decoded in decode_stream(ref_chunks(), streamed):
        out[pos : pos + decoded.size] = decoded
        pos += decoded.size
    out.flush()
    print(f"{args.output}: {pos:,} points decoded")
    return 0


def _describe_chain(name: str, chain: CheckpointChain, indent: str = "") -> None:
    from repro.telemetry.accounting import (
        delta_payload_nbytes,
        full_payload_nbytes,
        raw_nbytes,
        record_nbytes,
    )

    full = chain.full_checkpoint
    print(f"{indent}{name}: {len(chain)} iterations "
          f"(1 full + {len(chain.deltas)} deltas), "
          f"{full.size} points of shape {full.shape}")
    full_bytes = record_nbytes(full_payload_nbytes(full))
    stored = full_bytes
    raw = raw_nbytes(full.size)
    print(f"{indent}  full: {full_bytes:,} bytes on disk "
          f"({raw:,} raw)")
    for i, enc in enumerate(chain.deltas, start=1):
        ratio = compression_ratio_paper(enc.n_points, enc.n_incompressible,
                                        enc.nbits,
                                        value_bits=enc.value_bits)
        nbytes = record_nbytes(delta_payload_nbytes(enc))
        stored += nbytes
        raw += raw_nbytes(enc.n_points, value_bits=enc.value_bits)
        reused = " model=reused" if enc.model_reused else ""
        print(f"{indent}  delta {i}: strategy={enc.strategy} B={enc.nbits} "
              f"E={enc.error_bound:g} bins={enc.representatives.size}"
              f"{reused} gamma={enc.incompressible_ratio:.4f} R={ratio:.2f}% | "
              f"{nbytes:,} bytes, chain {stored / raw:.1%} of raw")


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.errors import FormatError
    from repro.io.container import CheckpointFile

    with CheckpointFile.open(args.file) as f:
        index = 0
        damage: str | None = None
        try:
            for tag, payload in f.records(strict=False):
                index += 1
                print(f"  record {index}: tag={tag.decode('ascii', 'replace')}"
                      f" {len(payload)} bytes  crc ok")
            if f.damage is not None:
                damage = f"torn tail: {f.damage[0]}"
        except FormatError as exc:
            damage = f"interior damage: {exc}"
    if damage is None:
        print(f"{args.file}: clean ({index} records)")
        return 0
    print(f"{args.file}: DAMAGED after {index} valid records -- {damage}",
          file=sys.stderr)
    print(f"run 'repro repair {args.file}' to truncate to the valid prefix",
          file=sys.stderr)
    return 1


def _cmd_repair(args: argparse.Namespace) -> int:
    import shutil

    from repro.io import salvage_truncate

    backup = args.backup if args.backup else f"{args.file}.bak"
    shutil.copy2(args.file, backup)
    report = salvage_truncate(args.file)
    if report.clean:
        Path(backup).unlink()
        print(f"{args.file}: already clean ({report.records_kept} records), "
              f"backup removed")
        return 0
    print(f"{args.file}: kept {report.records_kept} records, truncated "
          f"{report.bytes_truncated} damaged bytes ({report.reason})")
    print(f"original preserved at {backup}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        diff_table,
        metrics_table,
        read_trace,
        self_time_ranking,
        stage_table,
        trace_totals,
    )

    if args.diff is not None:
        a_path, b_path = args.diff
        a = read_trace(a_path)
        b = read_trace(b_path)
        if not any(r.get("type") == "span" for r in a) or \
                not any(r.get("type") == "span" for r in b):
            print("error: both traces must contain spans to diff",
                  file=sys.stderr)
            return 1
        print(diff_table(a, b, top=args.top,
                         title=f"trace diff: A={a_path} B={b_path}"))
        return 0

    if args.trace is None:
        print("error: stats needs a trace file (or --diff A B)",
              file=sys.stderr)
        return 2
    records = read_trace(args.trace)
    spans = [r for r in records if r.get("type") == "span"]
    if not spans:
        print(f"error: {args.trace}: trace contains no spans", file=sys.stderr)
        return 1
    totals = trace_totals(spans)
    print(f"{args.trace}: {len(spans)} spans, "
          f"{totals['root_wall_s'] * 1e3:.2f} ms traced, "
          f"{totals['bytes_out'] / 1e6:.2f} MB out")
    print()
    print(stage_table(spans))
    if args.top is not None:
        ranked = self_time_ranking(spans, args.top)
        print()
        print(f"top {args.top} stages by self time:")
        for i, agg in enumerate(ranked, start=1):
            print(f"  {i}. {agg['stage']}: {agg['self_s'] * 1e3:.2f} ms self "
                  f"({agg['calls']} calls)")
    metrics = [r for r in records if r.get("type") == "metrics"]
    if metrics:
        print()
        print(metrics_table(metrics[-1]))
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import run_suite, scenario_names

    unknown = [n for n in (args.scenario or []) if n not in scenario_names()]
    if unknown:
        print(f"error: unknown scenarios {unknown}; "
              f"available: {scenario_names()}", file=sys.stderr)
        return 2

    def progress(doc):
        total = doc["total"]["wall_s"]
        print(f"{doc['scenario']}: median {total['median'] * 1e3:.2f} ms "
              f"(MAD {total['mad'] * 1e3:.2f} ms, {doc['repeats']} repeats, "
              f"{doc['mode']}) -> "
              f"{args.out}/BENCH_{doc['scenario']}.json")

    run_suite(args.scenario or None, quick=args.quick, repeats=args.repeats,
              memory=not args.no_memory, out_dir=args.out, progress=progress)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import Thresholds, compare_dirs, comparison_table

    thresholds = Thresholds(k=args.k, rel_floor=args.rel_floor,
                            abs_floor=args.abs_floor)
    comparison = compare_dirs(args.baseline, args.current, thresholds)
    print(comparison_table(comparison, top=args.top))
    for note in comparison.notes:
        print(f"note: {note}")
    improved = comparison.improvements
    if improved:
        print(f"{len(improved)} metric(s) improved beyond the noise gate")
    regressions = comparison.regressions
    if regressions:
        print(f"REGRESSION: {len(regressions)} metric(s) exceeded the "
              f"noise gate", file=sys.stderr)
        return 1
    print(f"ok: no regressions across {len(comparison.deltas)} gated metrics")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.bench import load_bench

    files = sorted(Path(args.dir).glob("BENCH_*.json"))
    if not files:
        print(f"error: no BENCH_*.json files under {args.dir}",
              file=sys.stderr)
        return 1
    rows = []
    for path in files:
        doc = load_bench(path)
        total = doc["total"]["wall_s"]
        hottest = max(doc["stages"].items(),
                      key=lambda kv: kv[1]["self_s"]["median"],
                      default=(None, None))
        mem = (doc.get("memory") or {}).get("rss_peak_kb")
        rows.append([
            doc["scenario"], doc["mode"], doc["repeats"],
            f"{total['median'] * 1e3:.2f}", f"{total['mad'] * 1e3:.2f}",
            hottest[0] or "-",
            f"{mem / 1024:.1f}" if mem is not None else "-",
        ])
    print(format_table(
        ["scenario", "mode", "reps", "median ms", "MAD ms",
         "hottest stage", "RSS MB"],
        rows, title=f"benchmark results: {args.dir}"))
    return 0


def _chaos_worker(comm, prev_shards, curr_shards, cfg):
    """Rank body for ``repro chaos``: encode under telemetry, verify the
    bound locally, and ship the summary plus telemetry records home."""
    from repro.core import decode_iteration
    from repro.parallel import parallel_encode
    from repro.telemetry import Telemetry, use

    tel = Telemetry(keep_spans=True)
    with use(tel):
        enc, stats = parallel_encode(comm, prev_shards[comm.rank],
                                     curr_shards[comm.rank], cfg)
    prev = prev_shards[comm.rank]
    curr = curr_shards[comm.rank]
    out = decode_iteration(prev, enc)
    # The NUMARCK guarantee is on change ratios: |out - curr| / |prev| <= E
    # for every compressible point.
    rel = np.abs((out - curr) / prev)
    rel[enc.incompressible] = 0
    return {
        "rank": comm.rank,
        "degraded": stats.degraded,
        "lost_ranks": list(stats.lost_ranks),
        "max_rel_err": float(rel.max()),
        "n_points": stats.n_points,
        "n_bins": stats.n_bins,
        "records": tel.records(),
    }


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.parallel import RankFaultInjector, block_partition, run_spmd

    if args.rank >= args.ranks:
        print(f"error: --rank {args.rank} out of range for "
              f"--ranks {args.ranks}", file=sys.stderr)
        return 2
    fault_kwargs = {
        "crash": {"crash_in_phase": args.phase},
        "hang": {"hang_in_phase": args.phase, "hang_seconds": args.timeout * 3},
        "drop": {"drop_in_phase": args.phase},
        "flip": {"flip_in_phase": args.phase},
        "transient": {"error_in_phase": args.phase},
        "none": None,
    }[args.fault]
    faults = (None if fault_kwargs is None
              else {args.rank: RankFaultInjector(**fault_kwargs)})

    rng = np.random.default_rng(args.seed)
    prev = rng.uniform(1.0, 2.0, args.n)
    curr = prev * (1.0 + rng.normal(0.0, args.error_bound * 3, args.n))
    cfg = NumarckConfig(error_bound=args.error_bound, nbits=8)
    prev_shards = block_partition(prev, args.ranks)
    curr_shards = block_partition(curr, args.ranks)

    outcomes = run_spmd(
        _chaos_worker, args.ranks, prev_shards, curr_shards, cfg,
        strict=False, comm_timeout=args.timeout, faults=faults,
        timeout=max(10.0 * args.timeout, 30.0))

    trace_records = []
    bad = 0
    for o in outcomes:
        if o.ok:
            r = o.value
            honored = r["max_rel_err"] <= args.error_bound * (1 + 1e-9)
            state = "degraded" if r["degraded"] else "complete"
            print(f"rank {o.rank}: {state} lost={r['lost_ranks']} "
                  f"max_err={r['max_rel_err']:.3e} "
                  f"bound={'ok' if honored else 'VIOLATED'}")
            if not honored:
                bad += 1
            for rec in r["records"]:
                trace_records.append({"rank": o.rank, **rec})
        else:
            kind = "timeout" if o.timed_out else "failed"
            print(f"rank {o.rank}: {kind}: {o.error}")
    survivors = [o for o in outcomes if o.ok]
    if args.trace is not None:
        with open(args.trace, "w", encoding="utf-8") as fh:
            for rec in trace_records:
                fh.write(json.dumps(rec) + "\n")
        print(f"wrote {len(trace_records)} telemetry records to {args.trace}")
    if not survivors:
        print("error: no rank completed", file=sys.stderr)
        return 1
    if bad:
        print(f"error: {bad} rank(s) violated the error bound",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig
    from repro.service.http import serve

    config = ServiceConfig(workers=args.workers, capacity=args.capacity,
                           retry_after=args.retry_after,
                           store_dir=args.store_dir,
                           codec=_config_from_args(args))
    serve(config, host=args.host, port=args.port)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core.errors import FormatError

    try:
        chain = load_chain(args.chain)
    except FormatError:
        vs = VariableSet.load(args.chain)
        print(f"{args.chain}: multi-variable checkpoint, "
              f"{len(vs.variables)} variables")
        for name in vs.variables:
            _describe_chain(name, vs.chain(name), indent="  ")
        return 0
    _describe_chain(str(args.chain), chain)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NUMARCK error-bounded checkpoint compression",
    )
    parser.add_argument("--trace", dest="trace_out", metavar="FILE",
                        default=None,
                        help="write telemetry spans of this invocation to a "
                             ".jsonl file (flag form of NUMARCK_TRACE)")
    cfg = _config_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", parents=[cfg],
                       help="create a chain from a full checkpoint")
    p.add_argument("chain", help="output .nmk chain file")
    p.add_argument("array", help="input .npy array")
    p.set_defaults(func=_cmd_init)

    p = sub.add_parser("append", parents=[cfg],
                       help="append one iteration to a chain")
    p.add_argument("chain", help=".nmk chain file")
    p.add_argument("array", help="input .npy array")
    p.set_defaults(func=_cmd_append)

    p = sub.add_parser("extract", help="decode an iteration to .npy",
                       parents=[_output_parent(required=True,
                                               help_text="output .npy file")])
    p.add_argument("chain", help=".nmk chain file")
    p.add_argument("--iteration", "-i", type=int, default=None,
                   help="iteration index (default: latest)")
    p.set_defaults(func=_cmd_extract)

    p = sub.add_parser("init-multi", parents=[cfg],
                       help="create a multi-variable chain from a .npz checkpoint")
    p.add_argument("chain", help="output .nmk file")
    p.add_argument("checkpoint", help="input .npz archive (one array per variable)")
    p.set_defaults(func=_cmd_init_multi)

    p = sub.add_parser("append-multi", parents=[cfg],
                       help="append one .npz checkpoint to a multi-variable chain")
    p.add_argument("chain", help=".nmk file")
    p.add_argument("checkpoint", help="input .npz archive")
    p.set_defaults(func=_cmd_append_multi)

    p = sub.add_parser("extract-multi",
                       help="decode a multi-variable iteration to .npz",
                       parents=[_output_parent(required=True,
                                               help_text="output .npz file")])
    p.add_argument("chain", help=".nmk file")
    p.add_argument("--iteration", "-i", type=int, default=None)
    p.set_defaults(func=_cmd_extract_multi)

    p = sub.add_parser("compress-chain", parents=[cfg],
                       help="build a whole chain from .npy iterations in "
                            "one shot (first array is the full checkpoint); "
                            "--adaptive reuses the bin model across them")
    p.add_argument("chain", help="output .nmk chain file")
    p.add_argument("arrays", nargs="+",
                   help="iteration .npy arrays, in simulation order")
    p.set_defaults(func=_cmd_compress_chain)

    p = sub.add_parser("compress-stream",
                       parents=[cfg,
                                _output_parent(help_text="output .nms "
                                                         "stream file")],
                       help="chunked compression of one iteration pair "
                            "(out-of-core, memory-mapped)")
    p.add_argument("paths", nargs="+", metavar="PATH",
                   help="PREV CURR .npy arrays (with --output); the legacy "
                        "OUTPUT PREV CURR positional form still works")
    p.add_argument("--chunk-size", type=int, default=1 << 20,
                   help="points per chunk (default 1M)")
    p.set_defaults(func=_cmd_compress_stream)

    p = sub.add_parser("decompress-stream",
                       parents=[_output_parent(required=True,
                                               help_text="output .npy file")],
                       help="chunked decode of a .nms stream against its "
                            "reference iteration")
    p.add_argument("stream", help=".nms stream file")
    p.add_argument("prev", help="reference iteration (.npy)")
    p.set_defaults(func=_cmd_decompress_stream)

    p = sub.add_parser("serve", parents=[cfg],
                       help="run the compression service: an HTTP job API "
                            "over per-tenant checkpoint chains (the "
                            "compression flags set the default chain "
                            "config)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8765,
                   help="bind port, 0 for ephemeral (default 8765)")
    p.add_argument("--workers", type=int, default=2,
                   help="compression worker threads (default 2)")
    p.add_argument("--capacity", type=int, default=32,
                   help="queued-job bound before submits get 429 "
                        "(default 32)")
    p.add_argument("--retry-after", type=float, default=0.05,
                   help="Retry-After hint on 429 responses, seconds "
                        "(default 0.05)")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="persist chains under DIR (crash-consistent "
                        "appends; chains are recovered on restart)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("inspect", help="summarise a chain file (either flavour)")
    p.add_argument("chain", help=".nmk chain file")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("stats",
                       help="stage-breakdown and metrics tables from a "
                            "telemetry trace; exits 1 when the trace is "
                            "missing, unreadable, or contains no spans")
    p.add_argument("trace", nargs="?", default=None,
                   help="trace .jsonl file (see NUMARCK_TRACE); omit only "
                        "with --diff")
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="also print the top-N stages ranked by self time "
                        "(with --diff: keep only the top-N rows)")
    p.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                   help="attribute the wall-time delta between two traces "
                        "to stages (per-stage self-time deltas; positive "
                        "delta means B is slower)")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("bench",
                       help="scenario benchmarks: run, compare against a "
                            "baseline, report")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser("run",
                             help="run scenarios and write schema-validated "
                                  "BENCH_<scenario>.json documents")
    b.add_argument("--quick", action="store_true",
                   help="reduced sizes for CI / pre-commit (seconds, "
                        "not minutes)")
    b.add_argument("--scenario", action="append", metavar="NAME",
                   help="run only this scenario (repeatable; default: all)")
    b.add_argument("--repeats", type=int, default=5,
                   help="timed repeats per scenario (default 5)")
    b.add_argument("--output", "-o", dest="out", default="bench_results",
                   help="output directory (default: bench_results)")
    _hidden_alias(b, "--out", dest="out")
    b.add_argument("--no-memory", action="store_true",
                   help="skip the separate memory-gauged pass")
    b.set_defaults(func=_cmd_bench_run)

    b = bench_sub.add_parser("compare",
                             help="gate a run against a baseline; exits 1 "
                                  "when any metric regresses beyond its "
                                  "MAD-based noise threshold")
    b.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    b.add_argument("current", help="current BENCH_*.json file or directory")
    b.add_argument("--k", type=float, default=4.0,
                   help="noise-gate width in MAD-derived sigmas (default 4)")
    b.add_argument("--rel-floor", type=float, default=0.25,
                   help="minimum gate as a fraction of the baseline median "
                        "(default 0.25)")
    b.add_argument("--abs-floor", type=float, default=5e-4,
                   help="minimum gate in seconds (default 5e-4)")
    b.add_argument("--top", type=int, default=None, metavar="N",
                   help="print only the top-N rows")
    b.set_defaults(func=_cmd_bench_compare)

    b = bench_sub.add_parser("report",
                             help="summarise the BENCH_*.json documents in "
                                  "a directory")
    b.add_argument("dir", nargs="?", default="bench_results",
                   help="results directory (default: bench_results)")
    b.set_defaults(func=_cmd_bench_report)

    p = sub.add_parser("verify",
                       help="walk a checkpoint file and report per-record "
                            "CRC status (exit 1 on damage)")
    p.add_argument("file", help="checkpoint file (any flavour)")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("chaos",
                       help="run a distributed encode with an injected rank "
                            "fault and verify degraded-mode recovery (exit "
                            "1 if no rank completes or any completed rank "
                            "violates the error bound)")
    p.add_argument("--ranks", type=int, default=3,
                   help="number of SPMD ranks (default 3)")
    p.add_argument("--fault", default="crash",
                   choices=["crash", "hang", "drop", "flip", "transient",
                            "none"],
                   help="fault family to inject (default crash)")
    p.add_argument("--phase", default="insitu.sample_gather",
                   help="pipeline phase to strike "
                        "(default insitu.sample_gather)")
    p.add_argument("--rank", type=int, default=1,
                   help="rank to inject the fault into (default 1)")
    p.add_argument("--timeout", type=float, default=2.0,
                   help="per-message comm silence deadline in seconds "
                        "(default 2)")
    p.add_argument("--n", type=int, default=50_000,
                   help="synthetic data points (default 50000)")
    p.add_argument("--error-bound", type=float, default=1e-3,
                   help="NUMARCK relative error bound E (default 1e-3)")
    p.add_argument("--seed", type=int, default=0,
                   help="synthetic data seed (default 0)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write merged per-rank telemetry records (fault "
                        "spans included) to this .jsonl file")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("repair",
                       help="truncate a damaged checkpoint file to its last "
                            "valid record (a backup is written first)")
    p.add_argument("file", help="checkpoint file (any flavour)")
    p.add_argument("--backup", default=None,
                   help="backup path (default: FILE.bak)")
    p.set_defaults(func=_cmd_repair)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "_require_output", False) and args.output is None:
        print(f"error: {args.command}: --output/-o is required",
              file=sys.stderr)
        return 2
    try:
        if args.trace_out is not None:
            from repro.telemetry import JsonlSink, Telemetry, use

            tel = Telemetry(sink=JsonlSink(args.trace_out), keep_spans=False)
            try:
                with use(tel):
                    return args.func(args)
            finally:
                tel.close()
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
