"""Communicator abstraction and SPMD process harness.

Two implementations of the same protocol:

* :class:`SerialComm` -- ``size == 1``; collective operations degenerate to
  identity.  This is the default communicator for every algorithm in the
  library, so nothing here forces callers to pay process-spawn costs.
* :class:`PipeComm` -- each rank is an OS process (``multiprocessing``,
  ``spawn`` not required; we use the default start method) holding one
  duplex :class:`multiprocessing.connection.Connection` to every other
  rank.  Collectives are implemented with the classic linear/rooted
  algorithms, which is plenty for the rank counts (2--8) exercised here.

Payloads are arbitrary picklable objects; NumPy arrays ride through
``Connection.send`` efficiently (pickle protocol 5 buffers).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from functools import reduce as _functools_reduce
from multiprocessing import Pipe, Process, get_context
from typing import Any, Callable, Sequence

__all__ = ["Comm", "SerialComm", "PipeComm", "run_spmd"]


class Comm:
    """Protocol for a communicator.

    Concrete subclasses provide :attr:`rank`, :attr:`size` and point-to-point
    ``send``/``recv``; the collectives below are implemented generically on
    top of those, with the linear algorithms rooted at rank 0.
    """

    rank: int
    size: int

    # -- point to point -------------------------------------------------
    def send(self, obj: Any, dest: int) -> None:
        raise NotImplementedError

    def recv(self, source: int) -> Any:
        raise NotImplementedError

    # -- collectives -----------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        # Linear barrier: everyone pings 0, then 0 pongs everyone.
        if self.size == 1:
            return
        if self.rank == 0:
            for src in range(1, self.size):
                self.recv(src)
            for dst in range(1, self.size):
                self.send(None, dst)
        else:
            self.send(None, 0)
            self.recv(0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all ranks; returns the object."""
        if self.size == 1:
            return obj
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst)
            return obj
        return self.recv(root)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one element of ``objs`` (length ``size``) to each rank."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} items at root")
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst)
            return objs[root]
        return self.recv(root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object from every rank to ``root`` (``None`` elsewhere)."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src)
            return out
        self.send(obj, root)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to rank 0, then broadcast the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = operator.add,
               root: int = 0) -> Any | None:
        """Reduce objects from all ranks with ``op`` at ``root``.

        ``op`` must be associative; application order is by ascending rank.
        Returns the reduction at ``root`` and ``None`` elsewhere.
        """
        gathered = self.gather(obj, root=root)
        if gathered is None:
            return None
        return _functools_reduce(op, gathered)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = operator.add) -> Any:
        """Reduce with ``op`` and broadcast the result to every rank."""
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)


class SerialComm(Comm):
    """Single-process communicator: all collectives are identities."""

    def __init__(self) -> None:
        self.rank = 0
        self.size = 1

    def send(self, obj: Any, dest: int) -> None:  # pragma: no cover - guarded
        raise RuntimeError("SerialComm has no peers to send to")

    def recv(self, source: int) -> Any:  # pragma: no cover - guarded
        raise RuntimeError("SerialComm has no peers to receive from")


class PipeComm(Comm):
    """Communicator over a full mesh of duplex pipes.

    Built by :func:`run_spmd`; not intended to be constructed directly.
    """

    def __init__(self, rank: int, size: int, links: dict[int, Any]) -> None:
        self.rank = rank
        self.size = size
        self._links = links

    def send(self, obj: Any, dest: int) -> None:
        if dest == self.rank:
            raise ValueError("cannot send to self")
        self._links[dest].send(obj)

    def recv(self, source: int) -> Any:
        if source == self.rank:
            raise ValueError("cannot receive from self")
        return self._links[source].recv()


@dataclass
class _RankResult:
    rank: int
    value: Any = None
    error: str | None = None


def _spmd_child(rank: int, size: int, links: dict[int, Any], result_conn: Any,
                fn: Callable[..., Any], args: tuple, kwargs: dict) -> None:
    comm = PipeComm(rank, size, links)
    try:
        value = fn(comm, *args, **kwargs)
        result_conn.send(_RankResult(rank, value=value))
    except Exception as exc:  # noqa: BLE001 - relayed to the parent
        result_conn.send(_RankResult(rank, error=f"{type(exc).__name__}: {exc}"))
    finally:
        result_conn.close()


def run_spmd(fn: Callable[..., Any], nprocs: int, *args: Any,
             timeout: float = 120.0, **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks; return all results.

    Spawns ``nprocs`` OS processes wired into a full pipe mesh, calls ``fn``
    on each with its :class:`PipeComm`, and returns the per-rank return
    values ordered by rank.  If any rank raises, a ``RuntimeError`` naming
    the failing ranks is raised after all processes are reaped.

    ``nprocs == 1`` short-circuits to an in-process call with a
    :class:`SerialComm`, which keeps tests fast and debuggable.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if nprocs == 1:
        return [fn(SerialComm(), *args, **kwargs)]

    ctx = get_context()
    # links[i][j]: connection rank i uses to talk to rank j.
    links: list[dict[int, Any]] = [dict() for _ in range(nprocs)]
    for i in range(nprocs):
        for j in range(i + 1, nprocs):
            a, b = Pipe(duplex=True)
            links[i][j] = a
            links[j][i] = b

    result_parents = []
    procs: list[Process] = []
    for rank in range(nprocs):
        parent_conn, child_conn = Pipe(duplex=False)
        result_parents.append(parent_conn)
        p = ctx.Process(
            target=_spmd_child,
            args=(rank, nprocs, links[rank], child_conn, fn, args, kwargs),
            daemon=True,
        )
        procs.append(p)
        p.start()

    results: list[Any] = [None] * nprocs
    errors: list[str] = []
    for rank, conn in enumerate(result_parents):
        if conn.poll(timeout):
            res: _RankResult = conn.recv()
            if res.error is not None:
                errors.append(f"rank {rank}: {res.error}")
            else:
                results[rank] = res.value
        else:
            errors.append(f"rank {rank}: timeout after {timeout}s")
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # pragma: no cover - defensive
            p.terminate()
    if errors:
        raise RuntimeError("SPMD execution failed: " + "; ".join(errors))
    return results
